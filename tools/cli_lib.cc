#include "tools/cli_lib.h"

#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/pattern_parser.h"
#include "engine/query_engine.h"
#include "gen/knowledge_gen.h"
#include "gen/social_gen.h"
#include "gen/synthetic_gen.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "parallel/dpar.h"
#include "parallel/fragment_io.h"
#include "qgar/miner.h"
#include "service/client.h"
#include "service/query_service.h"
#include "shard/shard.h"

namespace qgp::cli {

namespace {

// Parsed "--key=value" flags plus positional arguments.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t FlagInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    int64_t v = 0;
    return ParseInt64(it->second, &v) ? v : fallback;
  }
  double FlagDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    double v = 0;
    return ParseDouble(it->second, &v) ? v : fallback;
  }
};

Args ParseArgs(const std::vector<std::string>& raw) {
  Args args;
  for (const std::string& a : raw) {
    if (StartsWith(a, "--")) {
      size_t eq = a.find('=');
      if (eq == std::string::npos) {
        args.flags[a.substr(2)] = "true";
      } else {
        args.flags[a.substr(2, eq - 2)] = a.substr(eq + 1);
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

// Loads a graph file, auto-detecting binary vs text by the magic bytes.
Result<Graph> LoadGraph(const std::string& path) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::IoError("cannot open '" + path + "'");
    char magic[5] = {0};
    probe.read(magic, 5);
    if (probe.gcount() == 5 && std::string(magic, 5) == "QGPB1") {
      return GraphIo::ReadBinaryFile(path);
    }
  }
  return GraphIo::ReadFile(path);
}

int Usage(std::ostream& err) {
  err << "usage: qgp <command> [args]\n"
         "  stats <graph>\n"
         "  convert <graph-in> <graph-out.bin>\n"
         "  match <graph> <pattern-file>... "
         "[--algo=auto|qmatch|qmatchn|enum|pqmatch|penum]\n"
         "        [--stats] [--limit=N] [--threads=N] [--n=4] [--d=2]\n"
         "  generate <social|knowledge|synthetic> <out> [--size=N] "
         "[--seed=N] [--binary]\n"
         "  partition <graph> [--n=4] [--d=2]\n"
         "  mine <graph> [--eta=0.5] [--support=20] [--rules=5]\n"
         "  serve <graph> [--port=0] [--threads=N] [--dispatch=2]\n"
         "        [--max-inflight=64] [--max-per-client=8] "
         "[--allow-shutdown]\n"
         "        [--result-cache] [--n=4] [--d=2]\n"
         "  shard-export <graph> <out-prefix> [--n=4] [--d=2] "
         "[--balance=1.6]\n"
         "        writes <out-prefix>.<i>.graph/.meta fragment bundles\n"
         "  shard-serve <bundle-prefix> [--port=0] [--threads=N] "
         "[--dispatch=2]\n"
         "        [--max-inflight=64] [--max-per-client=8] "
         "[--allow-shutdown]\n"
         "        [--result-cache] [--n=4]\n"
         "        serves one exported fragment as a shard (owned foci "
         "only)\n"
         "  delta <port> <op>... [--host=127.0.0.1] [--tag=]\n"
         "        ops: +v:LABEL  -v:ID  +e:SRC,DST,LABEL  -e:SRC,DST,LABEL\n";
  return 2;
}

int CmdStats(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return Usage(err);
  auto g = LoadGraph(args.positional[1]);
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  out << FormatGraphStats(*g, ComputeGraphStats(*g)) << "\n";
  return 0;
}

int CmdConvert(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 3) return Usage(err);
  auto g = LoadGraph(args.positional[1]);
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  Status s = GraphIo::WriteBinaryFile(*g, args.positional[2]);
  if (!s.ok()) {
    err << s.ToString() << "\n";
    return 1;
  }
  out << "wrote " << args.positional[2] << " (|V|=" << g->num_vertices()
      << " |E|=" << g->num_edges() << ")\n";
  return 0;
}

// `match` evaluates one or more pattern files through a QueryEngine:
// the graph is loaded once, and every pattern of the invocation shares
// the engine's candidate cache and worker pool (a multi-pattern
// invocation is a batch in the server sense). --algo selects the
// matcher, --threads the pool width, --n/--d the partition the
// pqmatch/penum algorithms evaluate over.
int CmdMatch(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 3) return Usage(err);
  auto graph = LoadGraph(args.positional[1]);
  if (!graph.ok()) {
    err << graph.status().ToString() << "\n";
    return 1;
  }
  Graph g = std::move(graph).value();
  const std::string algo_name = args.Flag("algo", "qmatch");
  std::optional<EngineAlgo> algo = ParseEngineAlgo(algo_name);
  if (!algo.has_value()) {
    err << "unknown --algo '" << algo_name << "'\n";
    return 2;
  }
  std::vector<QuerySpec> specs;
  for (size_t p = 2; p < args.positional.size(); ++p) {
    const std::string& path = args.positional[p];
    std::ifstream pf(path);
    if (!pf) {
      err << "cannot open pattern file '" << path << "'\n";
      return 1;
    }
    std::stringstream text;
    text << pf.rdbuf();
    auto pattern = PatternParser::Parse(text.str(), g.mutable_dict());
    if (!pattern.ok()) {
      err << pattern.status().ToString() << "\n";
      return 1;
    }
    QuerySpec spec;
    spec.pattern = std::move(pattern).value();
    spec.algo = *algo;
    spec.tag = path;
    if (*algo == EngineAlgo::kEnum || *algo == EngineAlgo::kPEnum) {
      spec.options.max_isomorphisms = 10'000'000;
    }
    specs.push_back(std::move(spec));
  }

  const int64_t threads = args.FlagInt("threads", 0);
  const int64_t fragments = args.FlagInt("n", 4);
  const int64_t depth = args.FlagInt("d", 2);
  if (threads < 0 || fragments < 1 || depth < 0) {
    err << "--threads/--n/--d must be non-negative (--n at least 1)\n";
    return 2;
  }
  EngineOptions engine_options;
  engine_options.num_threads = static_cast<size_t>(threads);
  engine_options.partition_fragments = static_cast<size_t>(fragments);
  engine_options.partition_d = static_cast<int>(depth);
  QueryEngine engine(std::move(g), engine_options);

  const bool multi = specs.size() > 1;
  int64_t limit = args.FlagInt("limit", 20);
  for (const QuerySpec& spec : specs) {
    auto outcome = engine.Submit(spec);
    if (!outcome.ok()) {
      err << outcome.status().ToString() << "\n";
      return 1;
    }
    if (multi) out << spec.tag << ": ";
    out << "matches: " << outcome->answers.size() << " (in "
        << outcome->wall_ms / 1000.0 << "s)";
    if (*algo == EngineAlgo::kAuto) {
      // Surface the planner's decision: which matcher ran, and whether
      // its pattern family's plan came from the plan cache.
      out << " [algo=" << EngineAlgoName(outcome->algo)
          << (outcome->plan_cache_hit ? ", plan cached" : "") << "]";
    }
    out << "\n";
    for (size_t i = 0; i < outcome->answers.size() &&
                       i < static_cast<size_t>(limit < 0 ? 0 : limit);
         ++i) {
      out << "  " << outcome->answers[i] << "\n";
    }
    if (args.flags.count("stats") != 0) {
      out << "stats: " << outcome->stats.ToString() << "\n";
    }
  }
  if (args.flags.count("stats") != 0) {
    const EngineStats es = engine.stats();
    out << "engine: queries=" << es.queries
        << " cache_hits=" << es.cache_hits
        << " cache_misses=" << es.cache_misses << " hit_ratio="
        << es.HitRatio() << " wall_ms=" << es.wall_ms;
    if (*algo == EngineAlgo::kAuto) {
      out << " plans_built=" << es.plans_built
          << " plan_hits=" << es.plan_hits;
    }
    out << "\n";
  }
  return 0;
}

int CmdGenerate(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 3) return Usage(err);
  const std::string& family = args.positional[1];
  size_t size = static_cast<size_t>(args.FlagInt("size", 10000));
  uint64_t seed = static_cast<uint64_t>(args.FlagInt("seed", 42));
  Result<Graph> g = Status::Ok();
  if (family == "social") {
    SocialConfig c;
    c.num_users = size;
    c.seed = seed;
    g = GenerateSocialGraph(c);
  } else if (family == "knowledge") {
    KnowledgeConfig c;
    c.num_scientists = size;
    c.seed = seed;
    g = GenerateKnowledgeGraph(c);
  } else if (family == "synthetic") {
    SyntheticConfig c;
    c.num_vertices = size;
    c.num_edges = size * 2;
    c.seed = seed;
    g = GenerateSynthetic(c);
  } else {
    err << "unknown family '" << family << "'\n";
    return 2;
  }
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  Status s = args.flags.count("binary") != 0
                 ? GraphIo::WriteBinaryFile(*g, args.positional[2])
                 : GraphIo::WriteFile(*g, args.positional[2]);
  if (!s.ok()) {
    err << s.ToString() << "\n";
    return 1;
  }
  out << "generated " << family << " graph: |V|=" << g->num_vertices()
      << " |E|=" << g->num_edges() << " -> " << args.positional[2] << "\n";
  return 0;
}

int CmdPartition(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return Usage(err);
  auto g = LoadGraph(args.positional[1]);
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  DParConfig c;
  c.num_fragments = static_cast<size_t>(args.FlagInt("n", 4));
  c.d = static_cast<int>(args.FlagInt("d", 2));
  DParTimings timings;
  auto part = DPar(*g, c, &timings);
  if (!part.ok()) {
    err << part.status().ToString() << "\n";
    return 1;
  }
  out << "d-hop preserving partition: n=" << c.num_fragments
      << " d=" << c.d << "\n";
  out << "  border nodes : " << part->num_border_nodes << "\n";
  out << "  skew         : " << part->Skew() << "\n";
  out << "  replication  : " << part->ReplicationFactor(*g) << "x\n";
  out << "  parallel time: " << timings.ParallelSeconds() << "s (seq "
      << timings.SequentialSeconds() << "s)\n";
  for (size_t i = 0; i < part->fragments.size(); ++i) {
    const Fragment& f = part->fragments[i];
    out << "  fragment " << i << ": |V|=" << f.sub.graph.num_vertices()
        << " |E|=" << f.sub.graph.num_edges()
        << " owned=" << f.owned_global.size() << "\n";
  }
  return 0;
}

int CmdMine(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return Usage(err);
  auto graph = LoadGraph(args.positional[1]);
  if (!graph.ok()) {
    err << graph.status().ToString() << "\n";
    return 1;
  }
  Graph g = std::move(graph).value();
  MinerConfig c;
  c.min_confidence = args.FlagDouble("eta", 0.5);
  c.min_support = static_cast<size_t>(args.FlagInt("support", 20));
  c.max_rules = static_cast<size_t>(args.FlagInt("rules", 5));
  auto rules = MineQgars(g, c);
  if (!rules.ok()) {
    err << rules.status().ToString() << "\n";
    return 1;
  }
  out << "mined " << rules->size() << " rules\n";
  for (const MinedRule& r : *rules) {
    out << "=== " << r.rule.name << " support=" << r.support
        << " confidence=" << r.confidence << "\nIF\n"
        << PatternParser::Serialize(r.rule.antecedent, g.dict()) << "THEN\n"
        << PatternParser::Serialize(r.rule.consequent, g.dict()) << "\n";
  }
  return 0;
}

// Service-side flags shared by `serve` and `shard-serve`.
struct ServeFlags {
  int64_t port = 0;
  int64_t dispatch = 2;
  int64_t max_inflight = 64;
  int64_t max_per_client = 8;
  int64_t drain_timeout = 2000;
  bool allow_shutdown = false;
};

int ParseServeFlags(const Args& args, ServeFlags* flags, std::ostream& err) {
  flags->port = args.FlagInt("port", 0);
  flags->dispatch = args.FlagInt("dispatch", 2);
  flags->max_inflight = args.FlagInt("max-inflight", 64);
  flags->max_per_client = args.FlagInt("max-per-client", 8);
  flags->drain_timeout = args.FlagInt("drain-timeout", 2000);
  flags->allow_shutdown = args.flags.count("allow-shutdown") != 0;
  if (flags->port < 0 || flags->port > 65535) {
    err << "--port must be in [0, 65535]\n";
    return 2;
  }
  if (flags->drain_timeout < 0) {
    err << "--drain-timeout must be non-negative\n";
    return 2;
  }
  if (flags->dispatch < 1 || flags->max_inflight < 0 ||
      flags->max_per_client < 0) {
    err << "--max-inflight/--max-per-client must be non-negative, "
           "--dispatch at least 1\n";
    return 2;
  }
  return 0;
}

// Blocks SIGINT/SIGTERM so they trigger the same graceful drain as the
// shutdown op. The mask must be in place BEFORE any thread exists — a
// process-directed signal is delivered to an arbitrary thread that does
// not block it, and the engine's worker pool spawns right after this.
// Threads inherit the mask; a dedicated sigwait thread in ServeLoop
// consumes the signals (a plain handler could not safely wake Wait() —
// condition variables are not async-signal-safe).
void MaskDrainSignals(sigset_t* drain_sigs) {
  sigemptyset(drain_sigs);
  sigaddset(drain_sigs, SIGINT);
  sigaddset(drain_sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, drain_sigs, nullptr);
}

// Runs `engine` behind a QueryService until a client shutdown op or a
// drain signal. Shared by `serve` and `shard-serve`; `drain_sigs` must
// already be blocked via MaskDrainSignals.
int ServeLoop(QueryEngine& engine, const ServeFlags& flags,
              sigset_t* drain_sigs, std::ostream& out, std::ostream& err) {
  service::ServiceOptions service_options;
  service_options.port = static_cast<int>(flags.port);
  service_options.dispatch_threads = static_cast<size_t>(flags.dispatch);
  service_options.max_inflight = static_cast<size_t>(flags.max_inflight);
  service_options.max_inflight_per_client =
      static_cast<size_t>(flags.max_per_client);
  service_options.allow_shutdown = flags.allow_shutdown;
  service_options.drain_timeout_ms = flags.drain_timeout;

  // Fault-injection failpoints arm only at process entry points like
  // this one (QGP_FAILPOINTS env); library code never arms implicitly.
  failpoint::ArmFromEnv();

  service::QueryService service(&engine, service_options);
  Status started = service.Start();
  if (!started.ok()) {
    pthread_sigmask(SIG_UNBLOCK, drain_sigs, nullptr);
    err << started.ToString() << "\n";
    return 1;
  }
  out << "listening on 127.0.0.1:" << service.port() << std::endl;

  std::atomic<int> caught_signal{0};
  std::thread signal_thread([&service, &caught_signal, drain_sigs] {
    int sig = 0;
    if (sigwait(drain_sigs, &sig) != 0) return;
    // -1 is the sentinel the main thread uses to release this thread
    // when Wait() returned for another reason (client shutdown op).
    if (caught_signal.exchange(sig) != 0) return;
    service.Stop();
  });

  service.Wait();
  if (caught_signal.load() != 0) {
    out << "caught signal " << caught_signal.load() << ", draining"
        << std::endl;
  } else {
    // Woken by a shutdown op: release the sigwait thread with a
    // self-directed SIGTERM it will recognize as already-handled.
    caught_signal.store(-1);
    pthread_kill(signal_thread.native_handle(), SIGTERM);
  }
  signal_thread.join();
  service.Stop();
  // Absorb anything still pending (e.g. a second Ctrl-C during the
  // drain) so restoring the mask cannot kill the process before the
  // final summary below.
  timespec no_wait{};
  while (sigtimedwait(drain_sigs, nullptr, &no_wait) > 0) {
  }
  pthread_sigmask(SIG_UNBLOCK, drain_sigs, nullptr);

  const service::ServiceStats ss = service.stats();
  const EngineStats es = engine.stats();
  out << "served " << ss.requests << " requests on " << ss.connections
      << " connections: " << ss.queries_ok << " ok, " << ss.queries_failed
      << " failed, " << ss.rejected << " rejected, " << ss.malformed
      << " malformed, " << ss.shed << " shed\n";
  out << "engine: queries=" << es.queries << " cache_hits=" << es.cache_hits
      << " cache_misses=" << es.cache_misses << " hit_ratio=" << es.HitRatio()
      << " wall_ms=" << es.wall_ms << " timeouts=" << es.timeouts
      << " cancellations=" << es.cancellations << "\n";
  return 0;
}

// `serve` exposes one QueryEngine over TCP (newline-delimited JSON;
// src/service/protocol.h documents the wire format). The bound port is
// printed as "listening on 127.0.0.1:<port>" — with --port=0 a script
// reads the ephemeral port from that line. The process runs until a
// client sends {"op":"shutdown"} (only honored with --allow-shutdown)
// or it is killed.
int CmdServe(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return Usage(err);
  auto graph = LoadGraph(args.positional[1]);
  if (!graph.ok()) {
    err << graph.status().ToString() << "\n";
    return 1;
  }
  ServeFlags flags;
  if (int rc = ParseServeFlags(args, &flags, err); rc != 0) return rc;
  const int64_t threads = args.FlagInt("threads", 0);
  const int64_t fragments = args.FlagInt("n", 4);
  const int64_t depth = args.FlagInt("d", 2);
  if (threads < 0 || fragments < 1 || depth < 0) {
    err << "--threads/--d must be non-negative, --n at least 1\n";
    return 2;
  }

  sigset_t drain_sigs;
  MaskDrainSignals(&drain_sigs);

  EngineOptions engine_options;
  engine_options.num_threads = static_cast<size_t>(threads);
  engine_options.partition_fragments = static_cast<size_t>(fragments);
  engine_options.partition_d = static_cast<int>(depth);
  engine_options.enable_result_cache = args.flags.count("result-cache") != 0;
  QueryEngine engine(std::move(graph).value(), engine_options);
  return ServeLoop(engine, flags, &drain_sigs, out, err);
}

// `shard-export` partitions a graph with DPar and writes every fragment
// as a bundle (`<prefix>.<i>.graph` + `<prefix>.<i>.meta`) that
// `shard-serve` loads. DPar is deterministic, so a coordinator running
// the same partition config reconstructs the identical fragment layout
// without reading the bundles back.
int CmdShardExport(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 3) return Usage(err);
  auto g = LoadGraph(args.positional[1]);
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  const int64_t fragments = args.FlagInt("n", 4);
  const int64_t depth = args.FlagInt("d", 2);
  const double balance = args.FlagDouble("balance", 1.6);
  if (fragments < 1 || depth < 0) {
    err << "--n must be at least 1, --d non-negative\n";
    return 2;
  }
  DParConfig config;
  config.num_fragments = static_cast<size_t>(fragments);
  config.d = static_cast<int>(depth);
  config.balance_factor = balance;
  auto part = DPar(*g, config);
  if (!part.ok()) {
    err << part.status().ToString() << "\n";
    return 1;
  }
  const std::string& prefix = args.positional[2];
  for (size_t i = 0; i < part->fragments.size(); ++i) {
    const Fragment& f = part->fragments[i];
    const std::string bundle = prefix + "." + std::to_string(i);
    Status written = WriteFragmentBundle(f, part->d, i,
                                         part->fragments.size(), bundle);
    if (!written.ok()) {
      err << written.ToString() << "\n";
      return 1;
    }
    out << "wrote " << bundle << ".graph/.meta: |V|="
        << f.sub.graph.num_vertices() << " |E|=" << f.sub.graph.num_edges()
        << " owned=" << f.owned_global.size() << "\n";
  }
  return 0;
}

// `shard-serve` loads one exported fragment bundle and serves it as a
// shard: a QueryEngine whose focus subset is the fragment's owned
// vertices, behind the same TCP protocol as `serve`. A ShardedEngine
// coordinator connects via ShardedOptions::remote_ports.
int CmdShardServe(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return Usage(err);
  auto bundle = ReadFragmentBundle(args.positional[1]);
  if (!bundle.ok()) {
    err << bundle.status().ToString() << "\n";
    return 1;
  }
  ServeFlags flags;
  if (int rc = ParseServeFlags(args, &flags, err); rc != 0) return rc;
  const int64_t threads = args.FlagInt("threads", 0);
  const int64_t fragments = args.FlagInt("n", 4);
  if (threads < 0 || fragments < 1) {
    err << "--threads must be non-negative, --n at least 1\n";
    return 2;
  }

  sigset_t drain_sigs;
  MaskDrainSignals(&drain_sigs);

  EngineOptions engine_options;
  engine_options.num_threads = static_cast<size_t>(threads);
  engine_options.partition_fragments = static_cast<size_t>(fragments);
  engine_options.enable_result_cache = args.flags.count("result-cache") != 0;
  FragmentBundle b = std::move(bundle).value();
  out << "shard fragment " << b.index << "/" << b.num_fragments
      << " (d=" << b.d << "): |V|=" << b.graph.num_vertices()
      << " |E|=" << b.graph.num_edges() << " owned=" << b.owned_local.size()
      << "\n";
  std::unique_ptr<QueryEngine> engine = shard::MakeShardEngine(
      std::move(b.graph), std::move(b.owned_local), b.d, engine_options);
  return ServeLoop(*engine, flags, &drain_sigs, out, err);
}

// One "+e:SRC,DST,LABEL" / "-e:..." operand -> a wire edge. LABEL may
// itself contain commas only if quoting were added; the synthetic and
// paper label alphabets never need it.
bool ParseEdgeOperand(const std::string& body,
                      NamedGraphDelta::NamedEdge* edge) {
  const size_t c1 = body.find(',');
  if (c1 == std::string::npos) return false;
  const size_t c2 = body.find(',', c1 + 1);
  if (c2 == std::string::npos || c2 + 1 >= body.size()) return false;
  int64_t src = 0, dst = 0;
  if (!ParseInt64(body.substr(0, c1), &src) || src < 0) return false;
  if (!ParseInt64(body.substr(c1 + 1, c2 - c1 - 1), &dst) || dst < 0) {
    return false;
  }
  edge->src = static_cast<VertexId>(src);
  edge->dst = static_cast<VertexId>(dst);
  edge->label = body.substr(c2 + 1);
  return true;
}

// `delta` is a *client* command: it connects to a running `serve`
// process and submits one batched mutation. Operands accumulate into a
// single batch — the server applies it atomically and replies with the
// new graph version and the net effect.
int CmdDelta(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 3) return Usage(err);
  int64_t port = 0;
  if (!ParseInt64(args.positional[1], &port) || port <= 0 || port > 65535) {
    err << "delta: '" << args.positional[1] << "' is not a port\n";
    return 2;
  }
  service::ServiceRequest request;
  request.op = service::ServiceRequest::Op::kDelta;
  request.tag = args.Flag("tag", "");
  for (size_t i = 2; i < args.positional.size(); ++i) {
    const std::string& op = args.positional[i];
    const size_t colon = op.find(':');
    const std::string kind = op.substr(0, colon);
    const std::string body =
        colon == std::string::npos ? "" : op.substr(colon + 1);
    bool ok = !body.empty();
    if (ok && kind == "+v") {
      request.delta.add_vertices.push_back(body);
    } else if (ok && kind == "-v") {
      int64_t id = 0;
      ok = ParseInt64(body, &id) && id >= 0;
      if (ok) request.delta.remove_vertices.push_back(
          static_cast<VertexId>(id));
    } else if (ok && (kind == "+e" || kind == "-e")) {
      NamedGraphDelta::NamedEdge edge;
      ok = ParseEdgeOperand(body, &edge);
      if (ok) {
        (kind == "+e" ? request.delta.add_edges : request.delta.remove_edges)
            .push_back(std::move(edge));
      }
    } else {
      ok = false;
    }
    if (!ok) {
      err << "delta: bad operand '" << op
          << "' (want +v:LABEL, -v:ID, +e:SRC,DST,LABEL or "
             "-e:SRC,DST,LABEL)\n";
      return 2;
    }
  }

  auto client = service::ServiceClient::Connect(
      static_cast<int>(port), args.Flag("host", "127.0.0.1"));
  if (!client.ok()) {
    err << client.status().ToString() << "\n";
    return 1;
  }
  auto response = client->Call(request);
  if (!response.ok()) {
    err << response.status().ToString() << "\n";
    return 1;
  }
  if (!response->ok) {
    err << "delta rejected: " << response->error_code << ": "
        << response->error_message << "\n";
    return 1;
  }
  auto count = [&](const char* field) -> uint64_t {
    const service::JsonValue* v = response->body.Find(field);
    return v != nullptr && v->is_number()
               ? static_cast<uint64_t>(v->as_number())
               : 0;
  };
  out << "delta applied: version=" << response->graph_version
      << " +v=" << count("vertices_added") << " -v="
      << count("vertices_removed") << " +e=" << count("edges_added")
      << " -e=" << count("edges_removed") << " (evicted "
      << count("candidate_sets_evicted") << " candidate sets, invalidated "
      << count("results_invalidated") << " results)\n";
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty()) return Usage(err);
  Args parsed = ParseArgs(args);
  if (parsed.positional.empty()) return Usage(err);
  const std::string& cmd = parsed.positional[0];
  if (cmd == "stats") return CmdStats(parsed, out, err);
  if (cmd == "convert") return CmdConvert(parsed, out, err);
  if (cmd == "match") return CmdMatch(parsed, out, err);
  if (cmd == "generate") return CmdGenerate(parsed, out, err);
  if (cmd == "partition") return CmdPartition(parsed, out, err);
  if (cmd == "mine") return CmdMine(parsed, out, err);
  if (cmd == "serve") return CmdServe(parsed, out, err);
  if (cmd == "shard-export") return CmdShardExport(parsed, out, err);
  if (cmd == "shard-serve") return CmdShardServe(parsed, out, err);
  if (cmd == "delta") return CmdDelta(parsed, out, err);
  err << "unknown command '" << cmd << "'\n";
  return Usage(err);
}

}  // namespace qgp::cli
