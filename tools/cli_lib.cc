#include "tools/cli_lib.h"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/enum_matcher.h"
#include "core/pattern_parser.h"
#include "core/qmatch.h"
#include "gen/knowledge_gen.h"
#include "gen/social_gen.h"
#include "gen/synthetic_gen.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "parallel/dpar.h"
#include "qgar/miner.h"

namespace qgp::cli {

namespace {

// Parsed "--key=value" flags plus positional arguments.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t FlagInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    int64_t v = 0;
    return ParseInt64(it->second, &v) ? v : fallback;
  }
  double FlagDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    double v = 0;
    return ParseDouble(it->second, &v) ? v : fallback;
  }
};

Args ParseArgs(const std::vector<std::string>& raw) {
  Args args;
  for (const std::string& a : raw) {
    if (StartsWith(a, "--")) {
      size_t eq = a.find('=');
      if (eq == std::string::npos) {
        args.flags[a.substr(2)] = "true";
      } else {
        args.flags[a.substr(2, eq - 2)] = a.substr(eq + 1);
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

// Loads a graph file, auto-detecting binary vs text by the magic bytes.
Result<Graph> LoadGraph(const std::string& path) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::IoError("cannot open '" + path + "'");
    char magic[5] = {0};
    probe.read(magic, 5);
    if (probe.gcount() == 5 && std::string(magic, 5) == "QGPB1") {
      return GraphIo::ReadBinaryFile(path);
    }
  }
  return GraphIo::ReadFile(path);
}

int Usage(std::ostream& err) {
  err << "usage: qgp <command> [args]\n"
         "  stats <graph>\n"
         "  convert <graph-in> <graph-out.bin>\n"
         "  match <graph> <pattern-file> [--algo=qmatch|qmatchn|enum] "
         "[--stats] [--limit=N]\n"
         "  generate <social|knowledge|synthetic> <out> [--size=N] "
         "[--seed=N] [--binary]\n"
         "  partition <graph> [--n=4] [--d=2]\n"
         "  mine <graph> [--eta=0.5] [--support=20] [--rules=5]\n";
  return 2;
}

int CmdStats(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return Usage(err);
  auto g = LoadGraph(args.positional[1]);
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  out << FormatGraphStats(*g, ComputeGraphStats(*g)) << "\n";
  return 0;
}

int CmdConvert(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 3) return Usage(err);
  auto g = LoadGraph(args.positional[1]);
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  Status s = GraphIo::WriteBinaryFile(*g, args.positional[2]);
  if (!s.ok()) {
    err << s.ToString() << "\n";
    return 1;
  }
  out << "wrote " << args.positional[2] << " (|V|=" << g->num_vertices()
      << " |E|=" << g->num_edges() << ")\n";
  return 0;
}

int CmdMatch(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 3) return Usage(err);
  auto graph = LoadGraph(args.positional[1]);
  if (!graph.ok()) {
    err << graph.status().ToString() << "\n";
    return 1;
  }
  Graph g = std::move(graph).value();
  std::ifstream pf(args.positional[2]);
  if (!pf) {
    err << "cannot open pattern file '" << args.positional[2] << "'\n";
    return 1;
  }
  std::stringstream text;
  text << pf.rdbuf();
  auto pattern = PatternParser::Parse(text.str(), g.mutable_dict());
  if (!pattern.ok()) {
    err << pattern.status().ToString() << "\n";
    return 1;
  }
  const std::string algo = args.Flag("algo", "qmatch");
  MatchOptions opts;
  WallTimer timer;
  MatchStats stats;
  Result<AnswerSet> answers = Status::Ok();
  if (algo == "enum") {
    opts.max_isomorphisms = 10'000'000;
    answers = EnumMatcher::Evaluate(*pattern, g, opts, &stats);
  } else if (algo == "qmatchn") {
    answers = QMatchNaiveEvaluate(*pattern, g, opts, &stats);
  } else if (algo == "qmatch") {
    answers = QMatch::Evaluate(*pattern, g, opts, &stats);
  } else {
    err << "unknown --algo '" << algo << "'\n";
    return 2;
  }
  if (!answers.ok()) {
    err << answers.status().ToString() << "\n";
    return 1;
  }
  double seconds = timer.ElapsedSeconds();
  out << "matches: " << answers->size() << " (in " << seconds << "s)\n";
  int64_t limit = args.FlagInt("limit", 20);
  for (size_t i = 0; i < answers->size() &&
                     i < static_cast<size_t>(limit < 0 ? 0 : limit);
       ++i) {
    out << "  " << (*answers)[i] << "\n";
  }
  if (args.flags.count("stats") != 0) {
    out << "stats: " << stats.ToString() << "\n";
  }
  return 0;
}

int CmdGenerate(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 3) return Usage(err);
  const std::string& family = args.positional[1];
  size_t size = static_cast<size_t>(args.FlagInt("size", 10000));
  uint64_t seed = static_cast<uint64_t>(args.FlagInt("seed", 42));
  Result<Graph> g = Status::Ok();
  if (family == "social") {
    SocialConfig c;
    c.num_users = size;
    c.seed = seed;
    g = GenerateSocialGraph(c);
  } else if (family == "knowledge") {
    KnowledgeConfig c;
    c.num_scientists = size;
    c.seed = seed;
    g = GenerateKnowledgeGraph(c);
  } else if (family == "synthetic") {
    SyntheticConfig c;
    c.num_vertices = size;
    c.num_edges = size * 2;
    c.seed = seed;
    g = GenerateSynthetic(c);
  } else {
    err << "unknown family '" << family << "'\n";
    return 2;
  }
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  Status s = args.flags.count("binary") != 0
                 ? GraphIo::WriteBinaryFile(*g, args.positional[2])
                 : GraphIo::WriteFile(*g, args.positional[2]);
  if (!s.ok()) {
    err << s.ToString() << "\n";
    return 1;
  }
  out << "generated " << family << " graph: |V|=" << g->num_vertices()
      << " |E|=" << g->num_edges() << " -> " << args.positional[2] << "\n";
  return 0;
}

int CmdPartition(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return Usage(err);
  auto g = LoadGraph(args.positional[1]);
  if (!g.ok()) {
    err << g.status().ToString() << "\n";
    return 1;
  }
  DParConfig c;
  c.num_fragments = static_cast<size_t>(args.FlagInt("n", 4));
  c.d = static_cast<int>(args.FlagInt("d", 2));
  DParTimings timings;
  auto part = DPar(*g, c, &timings);
  if (!part.ok()) {
    err << part.status().ToString() << "\n";
    return 1;
  }
  out << "d-hop preserving partition: n=" << c.num_fragments
      << " d=" << c.d << "\n";
  out << "  border nodes : " << part->num_border_nodes << "\n";
  out << "  skew         : " << part->Skew() << "\n";
  out << "  replication  : " << part->ReplicationFactor(*g) << "x\n";
  out << "  parallel time: " << timings.ParallelSeconds() << "s (seq "
      << timings.SequentialSeconds() << "s)\n";
  for (size_t i = 0; i < part->fragments.size(); ++i) {
    const Fragment& f = part->fragments[i];
    out << "  fragment " << i << ": |V|=" << f.sub.graph.num_vertices()
        << " |E|=" << f.sub.graph.num_edges()
        << " owned=" << f.owned_global.size() << "\n";
  }
  return 0;
}

int CmdMine(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return Usage(err);
  auto graph = LoadGraph(args.positional[1]);
  if (!graph.ok()) {
    err << graph.status().ToString() << "\n";
    return 1;
  }
  Graph g = std::move(graph).value();
  MinerConfig c;
  c.min_confidence = args.FlagDouble("eta", 0.5);
  c.min_support = static_cast<size_t>(args.FlagInt("support", 20));
  c.max_rules = static_cast<size_t>(args.FlagInt("rules", 5));
  auto rules = MineQgars(g, c);
  if (!rules.ok()) {
    err << rules.status().ToString() << "\n";
    return 1;
  }
  out << "mined " << rules->size() << " rules\n";
  for (const MinedRule& r : *rules) {
    out << "=== " << r.rule.name << " support=" << r.support
        << " confidence=" << r.confidence << "\nIF\n"
        << PatternParser::Serialize(r.rule.antecedent, g.dict()) << "THEN\n"
        << PatternParser::Serialize(r.rule.consequent, g.dict()) << "\n";
  }
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty()) return Usage(err);
  Args parsed = ParseArgs(args);
  if (parsed.positional.empty()) return Usage(err);
  const std::string& cmd = parsed.positional[0];
  if (cmd == "stats") return CmdStats(parsed, out, err);
  if (cmd == "convert") return CmdConvert(parsed, out, err);
  if (cmd == "match") return CmdMatch(parsed, out, err);
  if (cmd == "generate") return CmdGenerate(parsed, out, err);
  if (cmd == "partition") return CmdPartition(parsed, out, err);
  if (cmd == "mine") return CmdMine(parsed, out, err);
  err << "unknown command '" << cmd << "'\n";
  return Usage(err);
}

}  // namespace qgp::cli
