#!/usr/bin/env bash
# One-command tier-1 verify: configure, build, and run the full ctest
# suite. Usage:
#   tools/run_tier1.sh            # Release
#   tools/run_tier1.sh asan      # Debug + ASan/UBSan
#   BUILD_DIR=out tools/run_tier1.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
config="${1:-release}"
jobs="${JOBS:-$(nproc)}"

case "$config" in
  release)
    build_dir="${BUILD_DIR:-$repo_root/build}"
    cmake_flags=(-DCMAKE_BUILD_TYPE=Release)
    ;;
  asan)
    build_dir="${BUILD_DIR:-$repo_root/build-asan}"
    cmake_flags=(-DCMAKE_BUILD_TYPE=Debug -DQGP_SANITIZE=ON)
    ;;
  *)
    echo "usage: $0 [release|asan]" >&2
    exit 2
    ;;
esac

cmake -B "$build_dir" -S "$repo_root" "${cmake_flags[@]}"
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
