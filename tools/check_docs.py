#!/usr/bin/env python3
"""Markdown link checker for the documentation suite.

Scans every tracked ``*.md`` at the repo root and under ``docs/`` for
inline links and images (``[text](target)`` / ``![alt](target)``) and
verifies that each relative target exists on disk. External schemes
(http/https/mailto) are deliberately NOT fetched — the check must be
fast and non-flaky in CI — and pure in-page anchors (``#section``) are
skipped. A ``path#anchor`` target is checked for the path only.

Runs from anywhere (resolves the repo root from its own location);
exits non-zero listing every broken link. Used by the CI ``docs`` job
and registered as a ctest (see tests/tools/CMakeLists.txt).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline link/image: [text](target) — target may carry an optional
# 'title'. Fenced code blocks are stripped first so example links inside
# ``` blocks (e.g. JSON snippets) are not checked.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def doc_files():
    yield from sorted(REPO_ROOT.glob("*.md"))
    yield from sorted((REPO_ROOT / "docs").glob("**/*.md"))


def check_file(path: Path):
    """Yields (target, reason) for every broken link in `path`."""
    text = FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            continue  # in-page anchor
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            yield target, f"target does not exist ({resolved})"


def main() -> int:
    broken = []
    checked = 0
    for path in doc_files():
        checked += 1
        for target, reason in check_file(path):
            broken.append((path.relative_to(REPO_ROOT), target, reason))
    if broken:
        print(f"check_docs: {len(broken)} broken link(s):")
        for path, target, reason in broken:
            print(f"  {path}: [{target}] — {reason}")
        return 1
    print(f"check_docs: OK ({checked} markdown files, no broken links)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
