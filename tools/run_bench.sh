#!/usr/bin/env bash
# One-command benchmark run: configure + build Release, execute every
# bench binary at the chosen QGP_BENCH_SCALE, collect the per-binary
# BENCH_<name>.json files (see bench/common/bench_common.h:BenchReporter)
# into an output directory, validate that each parses, and aggregate them
# into BENCH_SUMMARY.json — the machine-readable performance trajectory.
#
# Usage: tools/run_bench.sh [-s tiny|small|medium|large] [-o outdir]
#                           [-f filter] [-j jobs]
#   -s  benchmark scale (default: tiny)
#   -o  output directory for BENCH_*.json (default: bench-results/<scale>)
#   -f  only run bench binaries whose name contains this substring
#   -j  parallel build jobs (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE=tiny
OUTDIR=""
FILTER=""
JOBS="$(nproc)"
while getopts "s:o:f:j:h" opt; do
  case "$opt" in
    s) SCALE="$OPTARG" ;;
    o) OUTDIR="$OPTARG" ;;
    f) FILTER="$OPTARG" ;;
    j) JOBS="$OPTARG" ;;
    h)
      grep '^#' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) exit 2 ;;
  esac
done
[ -n "$OUTDIR" ] || OUTDIR="bench-results/$SCALE"

case "$SCALE" in
  tiny | small | medium | large) ;;
  *)
    echo "error: unknown scale '$SCALE'" >&2
    exit 2
    ;;
esac

BUILD_DIR=build
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target all >/dev/null

mkdir -p "$OUTDIR"
GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export QGP_BENCH_SCALE="$SCALE" QGP_BENCH_OUT="$OUTDIR" QGP_GIT_REV="$GIT_REV"

echo "== bench suite: scale=$SCALE rev=$GIT_REV out=$OUTDIR"
failures=0
ran=0
for bin in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  case "$name" in
    *"$FILTER"*) ;;
    *) continue ;;
  esac
  echo "-- $name"
  if ! "$bin" >"$OUTDIR/$name.log" 2>&1; then
    echo "   FAILED (see $OUTDIR/$name.log)" >&2
    failures=$((failures + 1))
  fi
  ran=$((ran + 1))
done
[ "$ran" -gt 0 ] || {
  echo "error: no bench binary matched filter '$FILTER'" >&2
  exit 1
}

# Validate every BENCH_*.json and fold them into BENCH_SUMMARY.json.
python3 - "$OUTDIR" "$SCALE" "$GIT_REV" <<'EOF'
import glob, json, os, sys

outdir, scale, rev = sys.argv[1:4]
files = sorted(glob.glob(os.path.join(outdir, "BENCH_*.json")))
files = [f for f in files if os.path.basename(f) != "BENCH_SUMMARY.json"]
if not files:
    sys.exit("error: no BENCH_*.json emitted")
summary = {"scale": scale, "git_rev": rev, "benches": {}}
bad = 0
for path in files:
    name = os.path.basename(path)
    try:
        with open(path) as fh:
            summary["benches"][name] = json.load(fh)
    except json.JSONDecodeError as exc:
        print(f"error: {name} does not parse: {exc}", file=sys.stderr)
        bad += 1
if bad:
    sys.exit(f"error: {bad} of {len(files)} BENCH files failed validation")
with open(os.path.join(outdir, "BENCH_SUMMARY.json"), "w") as fh:
    json.dump(summary, fh, indent=1)
print(f"== {len(files)} BENCH files validated, summary at "
      f"{os.path.join(outdir, 'BENCH_SUMMARY.json')}")
EOF

if [ "$failures" -gt 0 ]; then
  echo "== $failures bench binaries failed" >&2
  exit 1
fi
