#!/usr/bin/env python3
"""Diff two BENCH_<name>.json files and fail on wall-ms regressions.

Usage:
  tools/compare_bench.py BASELINE CURRENT [--threshold 0.25]
                         [--min-wall-ms 0.05] [--match SUBSTR]
                         [--row-threshold SUBSTR=FRACTION ...]
                         [--allow-scale-mismatch]

Compares rows by their `config` key. A row regresses when
  current_wall_ms > baseline_wall_ms * (1 + threshold)
and the baseline row is at least --min-wall-ms (sub-noise rows are
reported but never gate). Rows present on only one side are warnings,
not failures — benches grow rows over time.

--row-threshold overrides the global threshold for every row whose
config contains SUBSTR (repeatable; the longest matching SUBSTR wins).
This is how known-noisy rows — e.g. small-scale DPar partition phases,
whose wall time sits near the scheduler dispatch floor — get a looser
gate without loosening it for the chunky rows that matter.

Exit codes: 0 = no regression, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys


def die(message):
    """Usage/parse failure: distinct exit code from a real regression."""
    print(message, file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        die(f"error: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        die(f"error: {path} does not parse: {exc}")
    if not isinstance(doc, dict) or not isinstance(doc.get("rows"), list):
        die(f"error: {path} is not a BENCH json (missing rows)")
    rows = {}
    for row in doc["rows"]:
        config = row.get("config")
        wall = row.get("wall_ms")
        if not isinstance(config, str) or not isinstance(wall, (int, float)):
            die(f"error: {path} has a malformed row: {row!r}")
        rows[config] = float(wall)
    return doc, rows


def parse_row_thresholds(specs):
    """Parses repeated SUBSTR=FRACTION specs into an override list."""
    overrides = []
    for spec in specs:
        substr, sep, value = spec.rpartition("=")
        if not sep or not substr:
            die(f"error: --row-threshold needs SUBSTR=FRACTION, got {spec!r}")
        try:
            fraction = float(value)
        except ValueError:
            die(f"error: --row-threshold fraction does not parse: {spec!r}")
        if fraction < 0:
            die(f"error: --row-threshold must be >= 0: {spec!r}")
        overrides.append((substr, fraction))
    return overrides


def threshold_for(config, default, overrides):
    """Longest matching substring override wins; ties prefer the later
    flag (argparse order), matching the usual last-one-wins CLI rule."""
    best = default
    best_len = -1
    for substr, fraction in overrides:
        if substr in config and len(substr) >= best_len:
            best = fraction
            best_len = len(substr)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail when a BENCH json regresses vs the committed "
        "baseline.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--min-wall-ms", type=float, default=0.05,
                        help="ignore rows whose baseline is below this "
                        "(noise floor, default 0.05 ms)")
    parser.add_argument("--match", default="",
                        help="only compare configs containing this substring")
    parser.add_argument("--row-threshold", action="append", default=[],
                        metavar="SUBSTR=FRACTION",
                        help="per-row threshold override for configs "
                        "containing SUBSTR (repeatable; longest match wins)")
    parser.add_argument("--allow-scale-mismatch", action="store_true",
                        help="compare even when QGP_BENCH_SCALE differs")
    args = parser.parse_args(argv)

    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    overrides = parse_row_thresholds(args.row_threshold)

    base_doc, base_rows = load(args.baseline)
    cur_doc, cur_rows = load(args.current)

    base_scale = base_doc.get("scale")
    cur_scale = cur_doc.get("scale")
    if base_scale != cur_scale and not args.allow_scale_mismatch:
        die(f"error: scale mismatch (baseline {base_scale!r} vs "
            f"current {cur_scale!r}); wall-ms comparison would be "
            "meaningless. Re-run at the baseline scale or pass "
            "--allow-scale-mismatch.")

    regressions = []
    compared = 0
    print(f"{'config':<44} {'base ms':>12} {'cur ms':>12} {'ratio':>7}")
    for config in sorted(set(base_rows) | set(cur_rows)):
        if args.match and args.match not in config:
            continue
        if config not in base_rows:
            print(f"{config:<44} {'-':>12} {cur_rows[config]:>12.4f} "
                  f"{'new':>7}")
            continue
        if config not in cur_rows:
            print(f"{config:<44} {base_rows[config]:>12.4f} {'-':>12} "
                  f"{'gone':>7}  WARNING: row disappeared")
            continue
        base = base_rows[config]
        cur = cur_rows[config]
        ratio = cur / base if base > 0 else float("inf")
        threshold = threshold_for(config, args.threshold, overrides)
        verdict = ""
        if base < args.min_wall_ms:
            verdict = "  (below noise floor, not gated)"
        elif cur > base * (1.0 + threshold):
            verdict = "  REGRESSION"
            regressions.append((config, base, cur, ratio))
        elif threshold != args.threshold:
            verdict = f"  (row threshold {threshold:.0%})"
        print(f"{config:<44} {base:>12.4f} {cur:>12.4f} {ratio:>6.2f}x"
              f"{verdict}")
        compared += 1

    if compared == 0:
        die("error: no comparable rows (wrong file pair or --match "
            "filter?)")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond their "
              "threshold:", file=sys.stderr)
        for config, base, cur, ratio in regressions:
            print(f"  {config}: {base:.4f} ms -> {cur:.4f} ms "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    print(f"\nOK: {compared} rows within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
