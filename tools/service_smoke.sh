#!/usr/bin/env bash
# Integration smoke test for the network query service: boots
# `qgp_cli serve` on an ephemeral loopback port, drives it with the
# `qgp_cli delta` client and a scripted python3 client (query /
# malformed line / delta / stats ops), then stops it cleanly via the
# shutdown op and checks the exit code.
#
#   tools/service_smoke.sh <path-to-qgp_cli> [workdir]
#
# Exits non-zero if the server fails to boot, any check fails, or the
# server does not shut down cleanly within the timeout.
set -euo pipefail

CLI=${1:?usage: service_smoke.sh <path-to-qgp_cli> [workdir]}
WORK=${2:-$(mktemp -d)}
LOG="$WORK/serve.log"

"$CLI" generate social "$WORK/graph.txt" --size=300 --seed=7 >/dev/null

"$CLI" serve "$WORK/graph.txt" --port=0 --allow-shutdown --result-cache \
  >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# The ephemeral port is announced as "listening on 127.0.0.1:<port>".
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$LOG" || true)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "server never announced a port"; cat "$LOG"; exit 1; }

# The CLI delta client: one batched mutation over the wire (set
# semantics make re-adding a present edge a harmless no-op, so this is
# stable across generator tweaks). The reply line carries the version.
"$CLI" delta "$PORT" +v:person +e:0,1,follow --tag=cli-1 \
  | grep -q "^delta applied: version=" \
  || { echo "cli delta failed"; exit 1; }

python3 - "$PORT" <<'EOF'
import json, socket, sys

port = int(sys.argv[1])
sock = socket.create_connection(("127.0.0.1", port), timeout=30)
reader = sock.makefile("r")

def call(line):
    sock.sendall(line.encode() + b"\n")
    return json.loads(reader.readline())

# A pattern in the parser DSL: two person nodes linked by a follow edge.
pattern = "node x0 person\nnode x1 person\nedge x0 x1 follow\nfocus x0\n"

r = call(json.dumps({"op": "query", "pattern": pattern, "tag": "smoke-1"}))
assert r["ok"], r
assert r["tag"] == "smoke-1", r
assert isinstance(r["answers"], list) and len(r["answers"]) > 0, r

# The same query again: served from the result cache.
r = call(json.dumps({"op": "query", "pattern": pattern, "tag": "smoke-2"}))
assert r["ok"] and r["result_cache_hit"], r

# Malformed input gets a structured error, not a dropped connection.
r = call("this is not json")
assert not r["ok"] and r["error"]["code"] == "InvalidArgument", r
r = call(json.dumps({"op": "query", "pattern": pattern, "bogus_key": 1}))
assert not r["ok"] and r["error"]["code"] == "InvalidArgument", r

# Stats reflect the traffic so far (the CLI delta already ran).
r = call(json.dumps({"op": "stats"}))
assert r["ok"], r
assert r["service"]["queries_ok"] == 2, r
assert r["service"]["malformed"] == 2, r
assert r["service"]["deltas_ok"] == 1, r
assert r["engine"]["result_hits"] == 1, r

# A delta over the wire: tombstone one current answer; the version
# bumps, the cached result is invalidated, and the re-query no longer
# reports the removed vertex.
pre = call(json.dumps({"op": "query", "pattern": pattern, "tag": "pre-d"}))
assert pre["ok"] and len(pre["answers"]) > 0, pre
victim = pre["answers"][0]
r = call(json.dumps({"op": "delta", "remove_vertices": [victim],
                     "tag": "d-1"}))
assert r["ok"] and r["op"] == "delta" and r["tag"] == "d-1", r
assert r["graph_version"] == 2, r          # cli delta was version 1
assert r["vertices_removed"] == 1, r
post = call(json.dumps({"op": "query", "pattern": pattern, "tag": "post-d"}))
assert post["ok"] and not post["result_cache_hit"], post
assert victim not in post["answers"], post

# A broken delta is a structured error, not a dropped connection.
r = call(json.dumps({"op": "delta", "remove_vertices": [10**9]}))
assert not r["ok"] and r["error"]["code"] == "InvalidArgument", r

r = call(json.dumps({"op": "stats"}))
assert r["service"]["deltas_ok"] == 2, r
assert r["service"]["deltas_failed"] == 1, r
assert r["engine"]["deltas"] == 2, r
# Robustness counters are on the wire (additive keys).
assert r["service"]["shed"] == 0, r
assert r["engine"]["timeouts"] == 0, r
assert r["engine"]["cancellations"] == 0, r

# A query with a generous end-to-end deadline succeeds normally, and
# timeout_ms on a non-query op is a structured error.
r = call(json.dumps({"op": "query", "pattern": pattern, "tag": "deadline-1",
                     "timeout_ms": 30000}))
assert r["ok"] and r["tag"] == "deadline-1", r
r = call(json.dumps({"op": "stats", "timeout_ms": 5}))
assert not r["ok"] and r["error"]["code"] == "InvalidArgument", r

# Clean shutdown.
r = call(json.dumps({"op": "shutdown"}))
assert r["ok"] and r["op"] == "shutdown", r
print("client checks passed")
EOF

for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "server did not exit after shutdown op"; cat "$LOG"; exit 1
fi
wait "$SERVER_PID"
trap - EXIT

grep -q "^served " "$LOG" || { echo "missing final stats"; cat "$LOG"; exit 1; }

# Second boot: SIGTERM must trigger the same graceful drain as the
# shutdown op — the server announces the signal, drains, prints the
# final summary and exits 0 (not the default signal death).
LOG2="$WORK/serve_sigterm.log"
"$CLI" serve "$WORK/graph.txt" --port=0 --drain-timeout=1000 \
  >"$LOG2" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "^listening on " "$LOG2" && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG2"; exit 1; }
  sleep 0.1
done
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "server did not exit after SIGTERM"; cat "$LOG2"; exit 1
fi
wait "$SERVER_PID" || { echo "non-zero exit after SIGTERM"; cat "$LOG2"; exit 1; }
trap - EXIT
grep -q "caught signal 15, draining" "$LOG2" \
  || { echo "missing drain announcement"; cat "$LOG2"; exit 1; }
grep -q "^served " "$LOG2" || { echo "missing final stats"; cat "$LOG2"; exit 1; }

echo "service smoke test passed"
