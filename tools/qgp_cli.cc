// The `qgp` command-line tool: generate / inspect / convert graphs,
// match quantified patterns, build d-hop preserving partitions and mine
// QGARs, all from the shell. See tools/cli_lib.h for the subcommands.
#include <iostream>

#include "tools/cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return qgp::cli::RunCli(args, std::cout, std::cerr);
}
