#ifndef QGP_TOOLS_CLI_LIB_H_
#define QGP_TOOLS_CLI_LIB_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace qgp::cli {

/// Entry point of the `qgp` command-line tool, factored out of main()
/// so tests can drive it in-process. Returns the process exit code and
/// writes all output to `out` / `err`.
///
/// Subcommands:
///   qgp stats <graph>
///   qgp convert <graph-in> <graph-out.bin>
///   qgp match <graph> <pattern-file>...
///             [--algo=qmatch|qmatchn|enum|pqmatch|penum]
///             [--stats] [--limit=N] [--threads=N] [--n=4] [--d=2]
///
/// `match` evaluates every pattern file through one QueryEngine
/// (src/engine/query_engine.h): the graph is loaded once, candidate
/// filters are interned across the patterns, and `--stats` appends the
/// engine's cumulative cache hit ratio after the per-pattern results.
///   qgp generate <social|knowledge|synthetic> <out> [--size=N] [--seed=N]
///   qgp partition <graph> [--n=4] [--d=2]
///   qgp mine <graph> [--eta=0.5] [--support=20] [--rules=5]
///   qgp serve <graph> [--port=0] [--threads=N] [--dispatch=2]
///             [--max-inflight=64] [--max-per-client=8] [--allow-shutdown]
///             [--result-cache] [--n=4] [--d=2]
///
/// `serve` runs the TCP query service (src/service/query_service.h) over
/// one engine: newline-delimited JSON requests from many concurrent
/// clients, admission control with backpressure, responses in request
/// order per connection. Note: `serve` blocks the calling thread until a
/// client shutdown op (--allow-shutdown) arrives.
///   qgp delta <port> <op>... [--host=127.0.0.1] [--tag=]
///
/// `delta` connects to a running `serve` process and applies one batched
/// graph mutation (op "delta" on the wire). Operands accumulate into a
/// single atomic batch: `+v:LABEL` appends a vertex, `-v:ID` tombstones
/// one, `+e:SRC,DST,LABEL` / `-e:SRC,DST,LABEL` add/remove edges. The
/// server replies with the new graph version and the net effect.
///
/// Graph files may be the text format (graph_io.h) or the binary format
/// (auto-detected by magic). Pattern files use the PatternParser DSL.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace qgp::cli

#endif  // QGP_TOOLS_CLI_LIB_H_
