#include "qgar/metrics.h"

namespace qgp {

AnswerSet ComputeXo(const Qgar& rule, const Graph& g) {
  const Pattern& q2 = rule.consequent;
  std::vector<Label> required;
  for (PatternEdgeId e : q2.OutEdgeIds(q2.focus())) {
    required.push_back(q2.edge(e).label);
  }
  AnswerSet xo;
  for (VertexId v : g.VerticesWithLabel(q2.node(q2.focus()).label)) {
    bool ok = true;
    for (Label l : required) {
      if (g.OutDegreeWithLabel(v, l) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) xo.push_back(v);
  }
  Canonicalize(xo);
  return xo;
}

size_t Support(const AnswerSet& q1_answers, const AnswerSet& q2_answers) {
  return SetIntersection(q1_answers, q2_answers).size();
}

double Confidence(const AnswerSet& q1_answers, const AnswerSet& q2_answers,
                  const AnswerSet& xo_set) {
  AnswerSet denom = SetIntersection(q1_answers, xo_set);
  if (denom.empty()) return 0.0;
  AnswerSet numer = SetIntersection(q1_answers, q2_answers);
  return static_cast<double>(numer.size()) /
         static_cast<double>(denom.size());
}

}  // namespace qgp
