#ifndef QGP_QGAR_MINER_H_
#define QGP_QGAR_MINER_H_

#include <vector>

#include "common/result.h"
#include "core/match_types.h"
#include "engine/query_engine.h"
#include "graph/graph.h"
#include "qgar/qgar.h"

namespace qgp {

/// Configuration for the Exp-3 style QGAR miner.
struct MinerConfig {
  double min_confidence = 0.5;  // η
  size_t min_support = 10;
  size_t max_rules = 8;
  /// Frequent features considered as antecedent/consequent building
  /// blocks.
  size_t top_features = 20;
  size_t path_samples = 20000;
  /// Quantifier enlargement: starting ratio and step (Exp-3 enlarges pa
  /// by 10% while confidence stays above η).
  double start_percent = 30.0;
  double quantifier_step = 10.0;
  /// Maximum consequent size (R3/R7-style multi-edge consequents).
  size_t max_consequent_edges = 2;
  /// Budget on rule evaluations (each costs two QMatch runs).
  size_t max_evaluations = 60;
  MatchOptions match;
  uint64_t seed = 17;
  /// Worker threads of the QueryEngine the miner evaluates through
  /// (0 = hardware concurrency). Mined rules are identical at any
  /// setting — evaluation is deterministic across thread counts.
  size_t threads = 0;
  /// Matcher every rule evaluation runs as. kAuto hands the choice to
  /// the engine's planner — the enlargement loop's quantifier-only
  /// variants then share one plan-cache entry (and the candidate sets
  /// it warmed), which is the plan cache's design workload. Mined rules
  /// are identical for any choice.
  EngineAlgo algo = EngineAlgo::kQMatch;
};

/// A mined rule with its measured interestingness.
struct MinedRule {
  Qgar rule;
  size_t support = 0;
  double confidence = 0.0;
};

/// Mines QGARs following §7 Exp-3's recipe: seed GPAR-like rules from
/// frequent features (single-edge consequents, path antecedents), keep
/// those meeting the support/confidence thresholds, then (a) enlarge
/// positive quantifiers stepwise while confidence stays above η and
/// (b) extend consequents with further frequent edges. Returns rules
/// sorted by support (desc), then confidence. When `engine_stats` is
/// non-null it receives the cumulative EngineStats of the mining run's
/// internal QueryEngine (plan/candidate/result-cache traffic included),
/// so drivers can assert e.g. that auto mining hit the plan cache.
Result<std::vector<MinedRule>> MineQgars(const Graph& g,
                                         const MinerConfig& config,
                                         EngineStats* engine_stats = nullptr);

}  // namespace qgp

#endif  // QGP_QGAR_MINER_H_
