#ifndef QGP_QGAR_QGAR_H_
#define QGP_QGAR_QGAR_H_

#include <string>

#include "common/status.h"
#include "core/pattern.h"

namespace qgp {

/// Quantified graph association rule R(xo): Q1(xo) ⇒ Q2(xo) (§6).
/// Both sides are QGPs over the same focus variable; in a graph G,
/// R(xo, G) = Q1(xo, G) ∩ Q2(xo, G).
struct Qgar {
  Pattern antecedent;  // Q1(xo)
  Pattern consequent;  // Q2(xo)
  std::string name;    // diagnostic label ("R1", "buy-album", ...)

  /// §6's practicality requirements: both patterns valid and non-empty
  /// (>= 1 edge each), same focus label, and no shared edge (matched by
  /// endpoint names + label; see PatternsShareEdge).
  Status Validate(int max_quantified_per_path = 2) const;
};

}  // namespace qgp

#endif  // QGP_QGAR_QGAR_H_
