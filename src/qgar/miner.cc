#include "qgar/miner.h"

#include <algorithm>
#include <map>

#include "engine/query_engine.h"
#include "gen/frequent_features.h"
#include "qgar/gar_match.h"

namespace qgp {

namespace {

// Antecedent from a 2-path feature xo -e0-> z -e1-> y: the quantifier
// sits on (xo, z), reading "at least p% of xo's e0-children reach a y".
Pattern PathAntecedent(const PathFeature& path, double percent) {
  Pattern q;
  PatternNodeId xo = q.AddNode(path.node_labels[0], "xo");
  PatternNodeId z = q.AddNode(path.node_labels[1], "z");
  (void)q.AddEdge(xo, z, path.edge_labels[0],
                  Quantifier::Ratio(QuantOp::kGe, percent));
  if (path.node_labels.size() > 2) {
    PatternNodeId y = q.AddNode(path.node_labels[2], "y");
    (void)q.AddEdge(z, y, path.edge_labels[1]);
  }
  (void)q.set_focus(xo);
  return q;
}

// Single-edge consequent xo -e-> w (GPAR-style).
Pattern EdgeConsequent(Label focus_label, const EdgeFeature& f,
                       size_t name_suffix) {
  Pattern q;
  PatternNodeId xo = q.AddNode(focus_label, "xo");
  PatternNodeId w =
      q.AddNode(f.dst_label, "w" + std::to_string(name_suffix));
  (void)q.AddEdge(xo, w, f.edge_label);
  (void)q.set_focus(xo);
  return q;
}

// Replaces the ratio on the antecedent's focus edge (index 0) with a new
// percent, used by the enlargement loop.
Pattern WithPercent(const Pattern& antecedent, double percent) {
  Pattern q;
  for (PatternNodeId u = 0; u < antecedent.num_nodes(); ++u) {
    q.AddNode(antecedent.node(u).label, antecedent.node(u).name);
  }
  for (PatternEdgeId e = 0; e < antecedent.num_edges(); ++e) {
    const PatternEdge& pe = antecedent.edge(e);
    Quantifier quant = pe.quantifier;
    if (!quant.IsExistential() && quant.kind() == QuantKind::kRatio) {
      quant = Quantifier::Ratio(quant.op(), percent);
    }
    (void)q.AddEdge(pe.src, pe.dst, pe.label, quant);
  }
  (void)q.set_focus(antecedent.focus());
  return q;
}

}  // namespace

Result<std::vector<MinedRule>> MineQgars(const Graph& g,
                                         const MinerConfig& config,
                                         EngineStats* engine_stats) {
  std::vector<EdgeFeature> edge_features =
      MineEdgeFeatures(g, config.top_features);
  std::vector<PathFeature> path_features = MinePathFeatures(
      g, 2, config.top_features, config.path_samples, config.seed);
  if (edge_features.empty()) {
    return Status::NotFound("graph has no edges to mine");
  }

  // One engine for the whole mining run: every candidate rule reuses the
  // same interned label/degree candidate sets and worker pool instead of
  // rebuilding them twice per GarMatch. Rules share most of their
  // structure (the same path antecedents under different quantifiers,
  // the same single-edge consequents), so the cache hit ratio is high.
  EngineOptions engine_options;
  engine_options.num_threads = config.threads;
  QueryEngine engine(&g, engine_options);
  size_t evaluations = 0;
  auto evaluate = [&](const Qgar& rule) -> Result<GarMatchResult> {
    ++evaluations;
    return GarMatch(rule, engine, /*eta=*/0.0, config.match, nullptr,
                    config.algo);
  };

  std::vector<MinedRule> mined;
  size_t rule_counter = 0;
  for (const PathFeature& path : path_features) {
    if (evaluations >= config.max_evaluations) break;
    if (path.node_labels.size() < 3) continue;
    const Label focus_label = path.node_labels[0];
    Pattern q1 = PathAntecedent(path, config.start_percent);

    for (const EdgeFeature& f : edge_features) {
      if (evaluations >= config.max_evaluations) break;
      if (f.src_label != focus_label) continue;
      // Avoid trivially-overlapping rules: skip consequents whose edge
      // label already appears on the antecedent's focus edges.
      if (f.edge_label == path.edge_labels[0]) continue;
      Qgar rule;
      rule.antecedent = q1;
      rule.consequent = EdgeConsequent(focus_label, f, 0);
      rule.name = "mined_" + std::to_string(rule_counter++);
      if (!rule.Validate(config.match.max_quantified_per_path).ok()) continue;

      Result<GarMatchResult> res = evaluate(rule);
      if (!res.ok()) continue;
      if (res->support < config.min_support ||
          res->confidence < config.min_confidence) {
        continue;
      }
      MinedRule best{rule, res->support, res->confidence};

      // (a) Enlarge the quantifier while confidence stays above η.
      for (double p = config.start_percent + config.quantifier_step;
           p <= 100.0 && evaluations < config.max_evaluations;
           p += config.quantifier_step) {
        Qgar enlarged = best.rule;
        enlarged.antecedent = WithPercent(rule.antecedent, p);
        Result<GarMatchResult> r2 = evaluate(enlarged);
        if (!r2.ok() || r2->confidence < config.min_confidence ||
            r2->support < config.min_support) {
          break;
        }
        best = MinedRule{enlarged, r2->support, r2->confidence};
      }

      // (b) Extend the consequent with one more frequent edge.
      if (config.max_consequent_edges > 1 &&
          evaluations < config.max_evaluations) {
        for (const EdgeFeature& f2 : edge_features) {
          if (evaluations >= config.max_evaluations) break;
          if (f2.src_label != focus_label) continue;
          if (f2.edge_label == f.edge_label ||
              f2.edge_label == path.edge_labels[0]) {
            continue;
          }
          Qgar extended = best.rule;
          PatternNodeId w2 = extended.consequent.AddNode(f2.dst_label, "w1");
          (void)extended.consequent.AddEdge(extended.consequent.focus(), w2,
                                            f2.edge_label);
          Result<GarMatchResult> r3 = evaluate(extended);
          if (r3.ok() && r3->confidence >= config.min_confidence &&
              r3->support >= config.min_support) {
            best = MinedRule{extended, r3->support, r3->confidence};
          }
          break;  // one extension attempt per rule keeps the budget sane
        }
      }
      mined.push_back(std::move(best));
    }
  }

  std::sort(mined.begin(), mined.end(),
            [](const MinedRule& a, const MinedRule& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.confidence > b.confidence;
            });
  if (mined.size() > config.max_rules) mined.resize(config.max_rules);
  if (engine_stats != nullptr) *engine_stats = engine.stats();
  return mined;
}

}  // namespace qgp
