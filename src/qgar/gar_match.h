#ifndef QGP_QGAR_GAR_MATCH_H_
#define QGP_QGAR_GAR_MATCH_H_

#include "common/result.h"
#include "core/match_types.h"
#include "engine/query_engine.h"
#include "graph/graph.h"
#include "parallel/pqmatch.h"
#include "qgar/qgar.h"

namespace qgp {

/// Outcome of quantified entity identification (§6, Corollary 11).
struct GarMatchResult {
  AnswerSet q1_answers;  // Q1(xo, G)
  AnswerSet q2_answers;  // Q2(xo, G)
  AnswerSet rule_matches;  // R(xo, G) = Q1 ∩ Q2
  AnswerSet entities;      // R(xo, η, G): rule_matches if conf >= η else ∅
  size_t support = 0;
  double confidence = 0.0;
};

/// garMatch: sequential QEI via two QMatch runs + the LCWA metrics.
Result<GarMatchResult> GarMatch(const Qgar& rule, const Graph& g, double eta,
                                const MatchOptions& options = {},
                                MatchStats* stats = nullptr);

/// garMatch through a QueryEngine: both patterns are evaluated as engine
/// queries against engine.graph(), so the antecedent, the consequent,
/// and every other rule sharing the engine reuse one interned candidate
/// pool and one worker pool (rule mining evaluates hundreds of
/// structurally overlapping patterns — the miner's hot path). Answers
/// and metrics are identical to the per-graph overload. `algo` selects
/// the engine matcher per query; EngineAlgo::kAuto hands the choice to
/// the planner, whose pattern-family plan cache is exactly shaped for
/// the miner's quantifier-only variants.
Result<GarMatchResult> GarMatch(const Qgar& rule, QueryEngine& engine,
                                double eta, const MatchOptions& options = {},
                                MatchStats* stats = nullptr,
                                EngineAlgo algo = EngineAlgo::kQMatch);

/// dgarMatch: parallel QEI over a d-hop preserving partition (both
/// patterns must have radius <= partition.d). Per Corollary 11 each
/// worker evaluates Q1 and Q2 locally; the coordinator assembles answer
/// sets, Xo and the confidence.
Result<GarMatchResult> DGarMatch(const Qgar& rule, const Graph& g,
                                 const Partition& partition, double eta,
                                 const ParallelConfig& config = {});

}  // namespace qgp

#endif  // QGP_QGAR_GAR_MATCH_H_
