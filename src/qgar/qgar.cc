#include "qgar/qgar.h"

#include "core/pattern_analysis.h"

namespace qgp {

Status Qgar::Validate(int max_quantified_per_path) const {
  QGP_RETURN_IF_ERROR(antecedent.Validate(max_quantified_per_path));
  QGP_RETURN_IF_ERROR(consequent.Validate(max_quantified_per_path));
  if (antecedent.num_edges() == 0 || consequent.num_edges() == 0) {
    return Status::InvalidArgument(
        "QGAR requires non-empty antecedent and consequent");
  }
  if (antecedent.node(antecedent.focus()).label !=
      consequent.node(consequent.focus()).label) {
    return Status::InvalidArgument(
        "QGAR antecedent and consequent must share the focus label");
  }
  if (PatternsShareEdge(antecedent, consequent)) {
    return Status::InvalidArgument(
        "QGAR antecedent and consequent must not overlap (shared edge)");
  }
  return Status::Ok();
}

}  // namespace qgp
