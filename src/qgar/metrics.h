#ifndef QGP_QGAR_METRICS_H_
#define QGP_QGAR_METRICS_H_

#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"
#include "qgar/qgar.h"

namespace qgp {

/// Xo (§6, Appendix C): the LCWA denominator set. A vertex belongs to Xo
/// iff it carries the consequent's focus label and, for EVERY consequent
/// edge (xo, u) with label ℓ, it has at least one outgoing ℓ-edge in G —
/// under the local closed-world assumption such vertices have complete
/// ℓ-neighborhoods, so failing the consequent really is a negative
/// example rather than missing data.
AnswerSet ComputeXo(const Qgar& rule, const Graph& g);

/// supp(R, G) = |Q1(xo,G) ∩ Q2(xo,G)| (§6; anti-monotonic by Lemma 10).
size_t Support(const AnswerSet& q1_answers, const AnswerSet& q2_answers);

/// conf(R, G) = |R(xo,G)| / |Q1(xo,G) ∩ Xo|. Returns 0 when the
/// denominator is empty.
double Confidence(const AnswerSet& q1_answers, const AnswerSet& q2_answers,
                  const AnswerSet& xo_set);

}  // namespace qgp

#endif  // QGP_QGAR_METRICS_H_
