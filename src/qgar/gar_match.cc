#include "qgar/gar_match.h"

#include "core/qmatch.h"
#include "qgar/metrics.h"

namespace qgp {

namespace {

GarMatchResult AssembleResult(const Qgar& rule, const Graph& g, double eta,
                              AnswerSet q1, AnswerSet q2) {
  GarMatchResult out;
  out.q1_answers = std::move(q1);
  out.q2_answers = std::move(q2);
  out.rule_matches = SetIntersection(out.q1_answers, out.q2_answers);
  out.support = out.rule_matches.size();
  out.confidence =
      Confidence(out.q1_answers, out.q2_answers, ComputeXo(rule, g));
  if (out.confidence >= eta) out.entities = out.rule_matches;
  return out;
}

}  // namespace

Result<GarMatchResult> GarMatch(const Qgar& rule, const Graph& g, double eta,
                                const MatchOptions& options,
                                MatchStats* stats) {
  QGP_RETURN_IF_ERROR(rule.Validate(options.max_quantified_per_path));
  QGP_ASSIGN_OR_RETURN(AnswerSet q1,
                       QMatch::Evaluate(rule.antecedent, g, options, stats));
  QGP_ASSIGN_OR_RETURN(AnswerSet q2,
                       QMatch::Evaluate(rule.consequent, g, options, stats));
  return AssembleResult(rule, g, eta, std::move(q1), std::move(q2));
}

Result<GarMatchResult> GarMatch(const Qgar& rule, QueryEngine& engine,
                                double eta, const MatchOptions& options,
                                MatchStats* stats, EngineAlgo algo) {
  QGP_RETURN_IF_ERROR(rule.Validate(options.max_quantified_per_path));
  QuerySpec spec;
  spec.algo = algo;
  spec.options = options;
  spec.pattern = rule.antecedent;
  QGP_ASSIGN_OR_RETURN(QueryOutcome o1, engine.Submit(spec));
  spec.pattern = rule.consequent;
  QGP_ASSIGN_OR_RETURN(QueryOutcome o2, engine.Submit(spec));
  if (stats != nullptr) {
    stats->Add(o1.stats);
    stats->Add(o2.stats);
  }
  return AssembleResult(rule, engine.graph(), eta, std::move(o1.answers),
                        std::move(o2.answers));
}

Result<GarMatchResult> DGarMatch(const Qgar& rule, const Graph& g,
                                 const Partition& partition, double eta,
                                 const ParallelConfig& config) {
  QGP_RETURN_IF_ERROR(rule.Validate(config.match.max_quantified_per_path));
  QGP_ASSIGN_OR_RETURN(ParallelRunResult r1,
                       PQMatch::Evaluate(rule.antecedent, partition, config));
  QGP_ASSIGN_OR_RETURN(ParallelRunResult r2,
                       PQMatch::Evaluate(rule.consequent, partition, config));
  return AssembleResult(rule, g, eta, std::move(r1.answers),
                        std::move(r2.answers));
}

}  // namespace qgp
