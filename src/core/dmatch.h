#ifndef QGP_CORE_DMATCH_H_
#define QGP_CORE_DMATCH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "core/candidate_space.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

/// Per-focus artifacts cached by DMatch for one verified answer, consumed
/// by IncQMatch (§4.2). Failed witness pairs are keyed by the ORIGINAL
/// pattern's edge ids so they can be transferred to Π(Q⁺ᵉ): adding
/// constraints can only remove embeddings, so a pair with no witness in
/// Π(Q) has none in Π(Q⁺ᵉ) either.
struct FocusCache {
  int radius = 0;
  /// True when `ball` really covers radius hops; false when the hub
  /// guard aborted ball extraction (ball is then empty and the
  /// verification ran on global candidate sets).
  bool ball_complete = false;
  /// Fingerprint of the edge-label filter the ball was traversed with;
  /// a consumer whose filter differs must recompute the ball.
  uint64_t ball_filter_fingerprint = 0;
  std::vector<VertexId> ball;  // sorted undirected ball around the focus
  /// failed[e_orig] = set of (v << 32 | v') pairs proven witness-free.
  std::vector<std::unordered_set<uint64_t>> failed_by_original_edge;
  /// The all-good embedding found (by this pattern's node ids).
  std::vector<VertexId> witness;
};

/// Optional input to PositiveEvaluator::Create: repair the candidate
/// space incrementally from a previous evaluator's space instead of
/// building it from scratch. `previous` must be the space of an
/// evaluator Create built for the SAME pattern and options against the
/// pre-delta graph, and `delta` the (possibly merged) summary of every
/// ApplyDelta between the two graph states. The result is identical to
/// a fresh build (CandidateSpace::Repair's contract); `info` (optional)
/// receives the repair metadata the engine's answer-repair path needs.
struct SpaceRepairHint {
  const CandidateSpace* previous = nullptr;
  const GraphDeltaSummary* delta = nullptr;
  CandidateRepairInfo* info = nullptr;
};

/// DMatch (§4.1): evaluates a POSITIVE QGP. The published algorithm
/// interleaves quantifier counting with the Fig. 4 search; this
/// implementation factors the same strategy into per-focus phases (see
/// DESIGN.md §2): ball-restricted candidate space, lazily-counted
/// quantifier "goodness" with memoized pinned witness searches, early
/// stop on monotone thresholds, upper-bound pruning, and potential-score
/// child ordering (Appendix B).
///
/// The evaluator is immutable after Create(); VerifyFocus is const and
/// thread-safe, which is what mQMatch exploits for intra-fragment
/// parallelism.
class PositiveEvaluator {
 public:
  /// Builds candidate sets for `positive` (which must be positive and
  /// valid). `edge_to_original` maps this pattern's edges to the ids of
  /// the original QGP it was derived from (Π / Π(Q⁺ᵉ) mappings); pass
  /// nullptr for identity. `num_original_edges` sizes the failed-pair
  /// cache (use the original QGP's edge count). `ball_label_filter`
  /// (optional) overrides the edge-label set used for ball traversal —
  /// QMatch passes the ORIGINAL pattern's labels so balls cached during
  /// the Π(Q) run stay valid for every Π(Q⁺ᵉ) (they must cover the
  /// positified labels too).
  /// `pool` (optional) parallelizes candidate-space construction across
  /// its workers (bit-identical to the serial build); `cache` (optional)
  /// interns label/degree candidate sets across builds on the same graph.
  /// `repair` (optional) swaps the from-scratch candidate-space build
  /// for an incremental CandidateSpace::Repair from a prior evaluator's
  /// space — same resulting sets, less work after a small graph delta.
  static Result<PositiveEvaluator> Create(
      Pattern positive, const Graph& g, MatchOptions options,
      const std::vector<PatternEdgeId>* edge_to_original = nullptr,
      size_t num_original_edges = 0,
      const DynamicBitset* ball_label_filter = nullptr,
      ThreadPool* pool = nullptr, CandidateCache* cache = nullptr,
      const SpaceRepairHint* repair = nullptr);

  /// Good focus candidates (the outer-loop domain of Fig. 5). The span
  /// views the evaluator's shared candidate set and stays valid for the
  /// evaluator's lifetime.
  std::span<const VertexId> FocusCandidates() const {
    return cs_.good(pattern_.focus());
  }

  /// Verifies one focus candidate: true iff vx ∈ P(xo, G).
  /// `warm` (optional) seeds the ball and failed-pair memo from a prior
  /// run on a sub-pattern (IncQMatch); `cache_out` (optional) receives
  /// this verification's artifacts.
  bool VerifyFocus(VertexId vx, const FocusCache* warm,
                   FocusCache* cache_out, MatchStats* stats) const;

  /// Evaluates the full answer set; fills `caches` (optional) for every
  /// answer vertex.
  AnswerSet EvaluateAll(MatchStats* stats,
                        std::unordered_map<VertexId, FocusCache>* caches) const;

  /// Evaluates membership for an explicit focus subset (sorted not
  /// required). Used by PQMatch to restrict to fragment-owned vertices
  /// and by IncQMatch to restrict to cached answers.
  AnswerSet EvaluateSubset(std::span<const VertexId> focus_subset,
                           MatchStats* stats,
                           std::unordered_map<VertexId, FocusCache>* caches) const;

  const Pattern& pattern() const { return pattern_; }
  const CandidateSpace& candidate_space() const { return cs_; }
  int radius() const { return radius_; }
  const MatchOptions& options() const { return options_; }

  /// Cheap upper-bound proxy for how expensive verifying `vx` will be:
  /// the undirected degree, which drives the size of the radius-hop
  /// ball the verifier extracts. The work-stealing focus map sorts
  /// candidates by this, largest first, so hub-centred balls start
  /// early and the tail of cheap foci backfills the workers.
  uint64_t FocusCostHint(VertexId vx) const;

 private:
  PositiveEvaluator() = default;

  Pattern pattern_;     // with quantifiers
  Pattern stratified_;  // topology used by searches
  const Graph* g_ = nullptr;
  MatchOptions options_;
  CandidateSpace cs_;
  int radius_ = 0;
  std::vector<PatternEdgeId> edge_to_original_;  // identity when underived
  size_t num_original_edges_ = 0;
  /// Out-edges with non-existential quantifiers, per pattern node.
  std::vector<std::vector<PatternEdgeId>> quantified_out_;
  /// Edge labels the pattern uses (ball traversal filter).
  DynamicBitset pattern_edge_labels_;
  size_t ball_limit_ = 0;
};

/// Convenience wrapper: evaluates a positive QGP end to end.
Result<AnswerSet> DMatchEvaluate(const Pattern& positive, const Graph& g,
                                 const MatchOptions& options,
                                 MatchStats* stats);

}  // namespace qgp

#endif  // QGP_CORE_DMATCH_H_
