#ifndef QGP_CORE_QMATCH_H_
#define QGP_CORE_QMATCH_H_

#include <span>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/candidate_cache.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

/// QMatch (Fig. 5, §4): the paper's quantified matching algorithm.
///
///   1. Π(Q)(xo, G) is computed by DMatch (dynamic candidate pruning,
///      lazy counter verification, potential ordering).
///   2. Each negated edge e is positified and Π(Q⁺ᵉ)(xo, G) evaluated —
///      incrementally via IncQMatch over the cached Π(Q) artifacts when
///      options.use_incremental_negation is set (QMatch), or from scratch
///      (the QMatchn baseline of §7) when it is not.
///   3. Q(xo, G) = Π(Q)(xo, G) \ ∪e Π(Q⁺ᵉ)(xo, G).
///
/// Passing a ThreadPool parallelizes focus-candidate verification across
/// its workers (the paper's mQMatch intra-fragment parallelism): focus
/// verifications are independent, so this is a plain parallel map. The
/// same pool also parallelizes the candidate-space Build phase of Π(Q)
/// and of every positified Π(Q⁺ᵉ) — bit-identical to the serial build.
///
/// Passing a CandidateCache (constructed for `g`) interns label/degree
/// candidate sets across those builds — and across QMatch calls that
/// share the cache, which is how PQMatch workers reuse per-fragment
/// filters instead of rebuilding them. When no cache is given, each
/// evaluation interns within itself (Π(Q) and the positified patterns
/// still share).
class QMatch {
 public:
  /// Computes Q(xo, G).
  static Result<AnswerSet> Evaluate(const Pattern& pattern, const Graph& g,
                                    const MatchOptions& options = {},
                                    MatchStats* stats = nullptr,
                                    ThreadPool* pool = nullptr,
                                    CandidateCache* cache = nullptr);

  /// Same, restricted to an explicit focus-candidate subset — PQMatch's
  /// per-fragment entry point (fragments own disjoint candidate sets).
  static Result<AnswerSet> EvaluateSubset(
      const Pattern& pattern, const Graph& g,
      std::span<const VertexId> focus_subset, const MatchOptions& options,
      MatchStats* stats, ThreadPool* pool = nullptr,
      CandidateCache* cache = nullptr);
};

/// QMatchn: QMatch without incremental negation (recomputes every
/// Π(Q⁺ᵉ) with DMatch). Equivalent answers, more work — the §7 baseline.
Result<AnswerSet> QMatchNaiveEvaluate(const Pattern& pattern, const Graph& g,
                                      MatchOptions options = {},
                                      MatchStats* stats = nullptr);

}  // namespace qgp

#endif  // QGP_CORE_QMATCH_H_
