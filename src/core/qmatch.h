#ifndef QGP_CORE_QMATCH_H_
#define QGP_CORE_QMATCH_H_

#include <span>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/candidate_cache.h"
#include "core/candidate_space.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

struct GraphDeltaSummary;

/// Evaluation artifacts that make a query repairable after a graph
/// delta: the candidate space DMatch built for Π(Q). QueryEngine stores
/// them per positive query and feeds them back through
/// QMatch::EvaluateRepaired when the same query returns on a mutated
/// graph.
struct QMatchArtifacts {
  CandidateSpace pi_space;
};

/// QMatch (Fig. 5, §4): the paper's quantified matching algorithm.
///
///   1. Π(Q)(xo, G) is computed by DMatch (dynamic candidate pruning,
///      lazy counter verification, potential ordering).
///   2. Each negated edge e is positified and Π(Q⁺ᵉ)(xo, G) evaluated —
///      incrementally via IncQMatch over the cached Π(Q) artifacts when
///      options.use_incremental_negation is set (QMatch), or from scratch
///      (the QMatchn baseline of §7) when it is not.
///   3. Q(xo, G) = Π(Q)(xo, G) \ ∪e Π(Q⁺ᵉ)(xo, G).
///
/// Passing a ThreadPool parallelizes focus-candidate verification across
/// its workers (the paper's mQMatch intra-fragment parallelism): focus
/// verifications are independent, so this is a plain parallel map. The
/// same pool also parallelizes the candidate-space Build phase of Π(Q)
/// and of every positified Π(Q⁺ᵉ) — bit-identical to the serial build.
///
/// Passing a CandidateCache (constructed for `g`) interns label/degree
/// candidate sets across those builds — and across QMatch calls that
/// share the cache, which is how PQMatch workers reuse per-fragment
/// filters instead of rebuilding them. When no cache is given, each
/// evaluation interns within itself (Π(Q) and the positified patterns
/// still share).
class QMatch {
 public:
  /// Computes Q(xo, G). `artifacts` (optional) receives the Π(Q)
  /// candidate space — capturing it changes neither answers nor stats.
  static Result<AnswerSet> Evaluate(const Pattern& pattern, const Graph& g,
                                    const MatchOptions& options = {},
                                    MatchStats* stats = nullptr,
                                    ThreadPool* pool = nullptr,
                                    CandidateCache* cache = nullptr,
                                    QMatchArtifacts* artifacts = nullptr);

  /// Incrementally re-evaluates a POSITIVE pattern after a graph delta,
  /// given the previous evaluation's artifacts against the pre-delta
  /// graph. Answers are identical to a fresh Evaluate on the current
  /// graph; only the work differs:
  ///
  ///  1. The candidate space is repaired, not rebuilt
  ///     (CandidateSpace::Repair — exact by the fixpoint-uniqueness
  ///     argument documented there).
  ///  2. A focus verdict is a pure function of the focus's radius-hop
  ///     neighborhood over pattern-labeled edges plus the candidate
  ///     memberships inside it, so only foci within radius hops of a
  ///     touched vertex or a candidacy change can flip. Cached answers
  ///     outside that affected region are kept; inside it, good focus
  ///     candidates are re-verified from scratch — the same
  ///     keep-or-reverify discipline IncQMatchEvaluate applies to
  ///     cached answers under ΔE, except that warm balls/failed pairs
  ///     are NOT transferred (the graph changed underneath them, so
  ///     unlike the same-graph ΔE case they are not sound to reuse).
  ///     Re-verified foci are counted in stats->inc_candidates_checked.
  ///
  /// When the affected region outgrows half the graph the repair
  /// degenerates to verifying every focus candidate (`*fell_back` set);
  /// the repaired space is still reused, and answers stay exact.
  ///
  /// Negated patterns are rejected: Q(xo,G) subtracts every positified
  /// Π(Q⁺ᵉ), and a delta can grow those subtrahends anywhere, so
  /// nothing short of re-evaluating them is sound.
  static Result<AnswerSet> EvaluateRepaired(
      const Pattern& pattern, const Graph& g, const MatchOptions& options,
      const CandidateSpace& previous_space, const AnswerSet& previous_answers,
      const GraphDeltaSummary& delta, MatchStats* stats,
      ThreadPool* pool = nullptr, CandidateCache* cache = nullptr,
      QMatchArtifacts* artifacts = nullptr, bool* fell_back = nullptr);

  /// Same, restricted to an explicit focus-candidate subset — PQMatch's
  /// per-fragment entry point (fragments own disjoint candidate sets).
  static Result<AnswerSet> EvaluateSubset(
      const Pattern& pattern, const Graph& g,
      std::span<const VertexId> focus_subset, const MatchOptions& options,
      MatchStats* stats, ThreadPool* pool = nullptr,
      CandidateCache* cache = nullptr);
};

/// QMatchn: QMatch without incremental negation (recomputes every
/// Π(Q⁺ᵉ) with DMatch). Equivalent answers, more work — the §7 baseline.
Result<AnswerSet> QMatchNaiveEvaluate(const Pattern& pattern, const Graph& g,
                                      MatchOptions options = {},
                                      MatchStats* stats = nullptr);

}  // namespace qgp

#endif  // QGP_CORE_QMATCH_H_
