#include "core/simulation.h"

#include <algorithm>

#include "common/bitset.h"

namespace qgp {

std::vector<std::vector<VertexId>> DualSimulation(const Pattern& pattern,
                                                  const Graph& g) {
  const size_t nq = pattern.num_nodes();
  // Membership bitmaps per pattern node.
  std::vector<DynamicBitset> in_sim(nq, DynamicBitset(g.num_vertices()));
  std::vector<std::vector<VertexId>> sim(nq);
  for (PatternNodeId u = 0; u < nq; ++u) {
    for (VertexId v : g.VerticesWithLabel(pattern.node(u).label)) {
      in_sim[u].Set(v);
      sim[u].push_back(v);
    }
  }

  // Fixpoint refinement. Patterns are tiny, graphs are the big dimension,
  // so a simple "recheck all members of dirty nodes" loop converges fast.
  bool changed = true;
  while (changed) {
    changed = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      std::vector<VertexId>& members = sim[u];
      size_t kept = 0;
      for (size_t i = 0; i < members.size(); ++i) {
        VertexId v = members[i];
        bool ok = true;
        for (PatternEdgeId e : pattern.OutEdgeIds(u)) {
          const PatternEdge& pe = pattern.edge(e);
          bool found = false;
          for (const Neighbor& n : g.OutNeighborsWithLabel(v, pe.label)) {
            if (in_sim[pe.dst].Test(n.v)) {
              found = true;
              break;
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
        if (ok) {
          for (PatternEdgeId e : pattern.InEdgeIds(u)) {
            const PatternEdge& pe = pattern.edge(e);
            bool found = false;
            for (const Neighbor& n : g.InNeighborsWithLabel(v, pe.label)) {
              if (in_sim[pe.src].Test(n.v)) {
                found = true;
                break;
              }
            }
            if (!found) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          members[kept++] = v;
        } else {
          in_sim[u].Clear(v);
          changed = true;
        }
      }
      members.resize(kept);
    }
  }
  return sim;
}

}  // namespace qgp
