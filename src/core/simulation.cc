#include "core/simulation.h"

#include <algorithm>

#include "common/bitset.h"

namespace qgp {

namespace {

// Chunk floor for parallel member checks: below this many members a
// chunk is not worth a queue round-trip.
constexpr size_t kSimGrain = 256;

}  // namespace

std::vector<std::vector<VertexId>> DualSimulation(
    const Pattern& pattern, const Graph& g, ThreadPool* pool,
    const std::vector<CandidateSetRef>* seeds, const CancelToken* cancel) {
  const size_t nq = pattern.num_nodes();
  // Membership bitmaps per pattern node. A seeded node starts from its
  // (tighter) interned label/degree set instead of the label scan; both
  // starts contain the greatest fixpoint, so the rounds below converge
  // to the same sets either way (see the header note).
  std::vector<DynamicBitset> in_sim(nq, DynamicBitset(g.num_vertices()));
  std::vector<std::vector<VertexId>> sim(nq);
  for (PatternNodeId u = 0; u < nq; ++u) {
    const CandidateSet* seed =
        (seeds != nullptr && u < seeds->size()) ? (*seeds)[u].get() : nullptr;
    if (seed != nullptr) {
      sim[u] = seed->members;
      for (VertexId v : sim[u]) in_sim[u].Set(v);
      continue;
    }
    for (VertexId v : g.VerticesWithLabel(pattern.node(u).label)) {
      in_sim[u].Set(v);
      sim[u].push_back(v);
    }
  }

  // Does v still simulate u, judged against the current bitmaps?
  auto member_ok = [&](PatternNodeId u, VertexId v) {
    for (PatternEdgeId e : pattern.OutEdgeIds(u)) {
      const PatternEdge& pe = pattern.edge(e);
      bool found = false;
      for (const Neighbor& n : g.OutNeighborsWithLabel(v, pe.label)) {
        if (in_sim[pe.dst].Test(n.v)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    for (PatternEdgeId e : pattern.InEdgeIds(u)) {
      const PatternEdge& pe = pattern.edge(e);
      bool found = false;
      for (const Neighbor& n : g.InNeighborsWithLabel(v, pe.label)) {
        if (in_sim[pe.src].Test(n.v)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };

  // Synchronous refinement rounds. The flag phase only READS the bitmaps
  // (all of them frozen for the round) and writes disjoint keep slots, so
  // it parallelizes without coordination; the apply phase then compacts
  // and clears serially. Deferring removals to the round boundary can
  // cost extra rounds versus in-place clearing, but converges to the same
  // unique greatest fixpoint — and makes the schedule irrelevant.
  std::vector<std::vector<char>> keep(nq);
  bool changed = true;
  while (changed) {
    // Cancellation point, once per round: an early break leaves every
    // set a superset of the fixpoint (rounds only remove), which the
    // Status-returning callers discard after checking the token — the
    // partial sets never escape into caches or answers.
    if (cancel != nullptr && cancel->ShouldStop()) break;
    changed = false;
    for (PatternNodeId u = 0; u < nq; ++u) {
      std::vector<VertexId>& members = sim[u];
      keep[u].assign(members.size(), 1);
      std::vector<char>& flags = keep[u];
      auto flag_range = [&, u](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (!member_ok(u, members[i])) flags[i] = 0;
        }
      };
      if (pool != nullptr) {
        pool->ParallelForRange(members.size(), kSimGrain, flag_range);
      } else {
        flag_range(0, members.size());
      }
    }
    for (PatternNodeId u = 0; u < nq; ++u) {
      std::vector<VertexId>& members = sim[u];
      size_t kept = 0;
      for (size_t i = 0; i < members.size(); ++i) {
        if (keep[u][i]) {
          members[kept++] = members[i];
        } else {
          in_sim[u].Clear(members[i]);
          changed = true;
        }
      }
      members.resize(kept);
    }
  }
  return sim;
}

}  // namespace qgp
