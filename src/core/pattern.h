#ifndef QGP_CORE_PATTERN_H_
#define QGP_CORE_PATTERN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/quantifier.h"
#include "graph/label_dict.h"
#include "graph/types.h"

namespace qgp {

/// Index of a node / edge within a Pattern.
using PatternNodeId = uint32_t;
using PatternEdgeId = uint32_t;
inline constexpr uint32_t kInvalidPatternId = UINT32_MAX;

/// One pattern node: a required node label plus an optional variable name
/// used by the parser and for diagnostics ("xo", "z1", ...).
struct PatternNode {
  Label label = kInvalidLabel;
  std::string name;
};

/// One pattern edge with its counting quantifier f(e).
struct PatternEdge {
  PatternNodeId src = kInvalidPatternId;
  PatternNodeId dst = kInvalidPatternId;
  Label label = kInvalidLabel;
  Quantifier quantifier;  // defaults to existential (>= 1)
};

class Pattern;

/// A sub-pattern (Π(Q) or Π(Q⁺ᵉ)) with mappings back to the pattern it
/// was derived from, used by QMatch/IncQMatch to relate candidate caches.
struct SubPattern {
  Pattern* pattern_ptr = nullptr;  // unused; kept for ABI clarity
  /// The derived pattern itself.
  std::vector<PatternNodeId> node_to_original;  // new node -> original node
  std::vector<PatternNodeId> node_from_original;  // original -> new or kInvalidPatternId
  std::vector<PatternEdgeId> edge_to_original;  // new edge -> original edge
};

/// Quantified graph pattern Q(xo) = (VQ, EQ, LQ, f) (§2.2).
///
/// Node and edge labels are interned through the SAME LabelDict as the
/// data graph that will be queried (pass the graph's dict to the parser /
/// generator), so label equality is integer equality at match time.
class Pattern {
 public:
  Pattern() = default;

  /// Appends a node; returns its id. The first node added is the default
  /// focus until set_focus() is called.
  PatternNodeId AddNode(Label label, std::string name = "");

  /// Appends an edge. Endpoints must exist.
  Status AddEdge(PatternNodeId src, PatternNodeId dst, Label label,
                 Quantifier quantifier = Quantifier());

  /// Designates the query focus xo.
  Status set_focus(PatternNodeId node);
  PatternNodeId focus() const { return focus_; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const PatternNode& node(PatternNodeId u) const { return nodes_[u]; }
  const PatternEdge& edge(PatternEdgeId e) const { return edges_[e]; }

  /// Edge ids leaving / entering `u`.
  std::span<const PatternEdgeId> OutEdgeIds(PatternNodeId u) const {
    return out_edges_[u];
  }
  std::span<const PatternEdgeId> InEdgeIds(PatternNodeId u) const {
    return in_edges_[u];
  }

  /// Ids of negated edges E−Q.
  std::vector<PatternEdgeId> NegatedEdgeIds() const;

  /// True iff the pattern has no negated edge (§2.2 "positive").
  bool IsPositive() const { return NegatedEdgeIds().empty(); }

  /// True iff every quantifier is existential (a conventional pattern).
  bool IsConventional() const;

  /// The stratified pattern Qπ: same topology, every quantifier replaced
  /// by the existential σ(e) >= 1.
  Pattern Stratified() const;

  /// Π(Q): the sub-pattern induced by nodes with a directed non-negated
  /// path from or to the focus, with all negated edges removed (§2.2;
  /// see DESIGN.md for the directed-path reading, which matches the
  /// paper's Fig. 3 examples). Always contains the focus.
  /// Returns the derived pattern plus node/edge mappings.
  Result<std::pair<Pattern, SubPattern>> Pi() const;

  /// Q⁺ᵉ: this pattern with negated edge `e` positified to σ(e) >= 1.
  Result<Pattern> Positify(PatternEdgeId e) const;

  /// Structural validation (§2.2 Remark): focus set and in range; weakly
  /// connected; quantifiers individually valid; on every directed simple
  /// path at most `max_quantified_per_path` non-existential quantifiers
  /// and at most one negated edge (no double negation).
  Status Validate(int max_quantified_per_path = 2) const;

  /// Longest undirected shortest-path distance from the focus to any
  /// pattern node (the paper's pattern radius, §5.1; undirected because
  /// match verification walks pattern edges both ways).
  int Radius() const;

  /// Human-readable dump; resolves label names through `dict` if given.
  std::string ToString(const LabelDict* dict = nullptr) const;

  friend bool operator==(const Pattern& a, const Pattern& b);

 private:
  std::vector<PatternNode> nodes_;
  std::vector<PatternEdge> edges_;
  std::vector<std::vector<PatternEdgeId>> out_edges_;
  std::vector<std::vector<PatternEdgeId>> in_edges_;
  PatternNodeId focus_ = kInvalidPatternId;
};

}  // namespace qgp

#endif  // QGP_CORE_PATTERN_H_
