#ifndef QGP_CORE_GENERIC_MATCHER_H_
#define QGP_CORE_GENERIC_MATCHER_H_

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/vertex_set.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

/// The generic subgraph-isomorphism search of Fig. 4 ([27]'s skeleton):
/// SelectNext picks the next pattern node (connectivity-first, smallest
/// candidate list), IsExtend checks label/edge consistency and injectivity,
/// and the recursion backtracks through all embeddings.
///
/// One engine serves every matcher in the library:
///  * Enum / NaiveMatcher-style full enumeration (callback per embedding),
///  * DMatch witness searches (pins + stop at first embedding),
///  * DMatch answer searches (per-node `accept` predicate = quantifier
///    goodness, evaluated lazily),
///  * potential-score child ordering (Appendix B selection rule).
///
/// Instances are reusable: Enumerate/FindAny may be called any number of
/// times (DMatch runs every witness search of a focus through one
/// matcher). The injectivity set and per-depth frontier buffers are
/// retained across calls, so per-call setup costs O(|Q| + work done), not
/// O(|V|).
///
/// Quantifiers on the pattern are ignored here — callers pass stratified
/// topology plus whatever candidate sets encode their pruning.
class GenericMatcher {
 public:
  /// The matcher's |V|-sized working buffers (injectivity set, per-depth
  /// frontiers). A caller that builds matchers in a loop (DMatch: one per
  /// focus candidate) passes the same arena to each so the buffers are
  /// allocated once per thread, not once per focus.
  struct Scratch {
    SparseBitset used;
    std::vector<std::vector<VertexId>> frontier_bufs;
  };

  /// Return false to stop the enumeration early.
  using Callback = std::function<bool(const std::vector<VertexId>&)>;
  /// Extension predicate: may (u, v) appear in an embedding? Evaluated
  /// after topological consistency, so expensive predicates run rarely.
  using Accept = std::function<bool(PatternNodeId, VertexId)>;
  /// Child-ordering score: higher is tried first.
  using Score = std::function<double(PatternNodeId, VertexId)>;

  struct SearchOptions {
    /// Pre-assigned pattern nodes (e.g. the focus, witness pins).
    std::span<const std::pair<PatternNodeId, VertexId>> pins;
    const Accept* accept = nullptr;
    const Score* score = nullptr;
    MatchStats* stats = nullptr;
    /// Stop after this many embeddings (0 = unlimited).
    uint64_t max_isomorphisms = 0;
  };

  /// `candidates[u]` must be sorted ascending; the engine intersects them
  /// with adjacency lists when extending. The referenced vectors must
  /// outlive the matcher.
  GenericMatcher(const Pattern& pattern, const Graph& g,
                 const std::vector<std::vector<VertexId>>& candidates);

  /// Span-based variant for callers that assemble per-focus candidate
  /// views without copying (DMatch's local sets). The spans' underlying
  /// storage — and `scratch`, when given — must stay alive and unmoved
  /// while the matcher is in use.
  GenericMatcher(const Pattern& pattern, const Graph& g,
                 std::vector<std::span<const VertexId>> candidates,
                 Scratch* scratch = nullptr);

  /// Enumerates embeddings; invokes `cb` for each complete assignment
  /// (indexed by pattern node). Returns true if the enumeration ran to
  /// completion, false if it hit max_isomorphisms.
  bool Enumerate(const SearchOptions& options, const Callback& cb);

  /// Convenience: is there at least one embedding?
  bool FindAny(const SearchOptions& options,
               std::vector<VertexId>* found = nullptr);

 private:
  struct Step {
    PatternNodeId u = kInvalidPatternId;
    // Anchor: an edge between u and an earlier-assigned node, used to
    // iterate adjacency instead of the full candidate list.
    PatternEdgeId anchor_edge = kInvalidPatternId;
    bool anchor_outgoing = false;  // true: anchor -> u is (assigned -> u)
  };

  std::vector<Step> PlanOrder(
      std::span<const std::pair<PatternNodeId, VertexId>> pins) const;

  bool Consistent(PatternNodeId u, VertexId v) const;
  bool Extend(size_t depth, const SearchOptions& options, const Callback& cb);

  const Pattern& q_;
  const Graph& g_;
  std::vector<std::span<const VertexId>> candidates_;

  // Search state (single-threaded per instance), reused across calls.
  std::vector<Step> plan_;
  std::vector<VertexId> assignment_;
  Scratch own_scratch_;          // used when no external arena was given
  Scratch* scratch_ = nullptr;   // &own_scratch_ or the caller's arena
  uint64_t found_ = 0;
  bool stopped_ = false;
  bool overflow_ = false;
};

}  // namespace qgp

#endif  // QGP_CORE_GENERIC_MATCHER_H_
