#include "core/pattern.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace qgp {

PatternNodeId Pattern::AddNode(Label label, std::string name) {
  PatternNodeId id = static_cast<PatternNodeId>(nodes_.size());
  nodes_.push_back(PatternNode{label, std::move(name)});
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  if (focus_ == kInvalidPatternId) focus_ = id;
  return id;
}

Status Pattern::AddEdge(PatternNodeId src, PatternNodeId dst, Label label,
                        Quantifier quantifier) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    return Status::InvalidArgument("pattern edge endpoint out of range");
  }
  QGP_RETURN_IF_ERROR(quantifier.Validate());
  PatternEdgeId id = static_cast<PatternEdgeId>(edges_.size());
  edges_.push_back(PatternEdge{src, dst, label, quantifier});
  out_edges_[src].push_back(id);
  in_edges_[dst].push_back(id);
  return Status::Ok();
}

Status Pattern::set_focus(PatternNodeId node) {
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("focus out of range");
  }
  focus_ = node;
  return Status::Ok();
}

std::vector<PatternEdgeId> Pattern::NegatedEdgeIds() const {
  std::vector<PatternEdgeId> out;
  for (PatternEdgeId e = 0; e < edges_.size(); ++e) {
    if (edges_[e].quantifier.IsNegation()) out.push_back(e);
  }
  return out;
}

bool Pattern::IsConventional() const {
  return std::all_of(edges_.begin(), edges_.end(), [](const PatternEdge& e) {
    return e.quantifier.IsExistential();
  });
}

Pattern Pattern::Stratified() const {
  Pattern q;
  for (const PatternNode& n : nodes_) q.AddNode(n.label, n.name);
  for (const PatternEdge& e : edges_) {
    // Endpoints are in range by construction; ignore the status.
    (void)q.AddEdge(e.src, e.dst, e.label, Quantifier());
  }
  (void)q.set_focus(focus_);
  return q;
}

Result<std::pair<Pattern, SubPattern>> Pattern::Pi() const {
  if (focus_ == kInvalidPatternId) {
    return Status::InvalidArgument("pattern has no focus");
  }
  const size_t n = nodes_.size();
  // Π(Q) construction (DESIGN.md §2 clarification). The paper's prose
  // ("nodes connected to xo ... with non-negated edges") is read as:
  //   1. delete every negated edge;
  //   2. for each negated edge, drop its focus-FAR endpoint (the one at
  //      greater undirected distance from xo in the deleted pattern —
  //      that endpoint exists to give the negation its meaning, per the
  //      paper's "Π(Q) excludes all those nodes connected via at least
  //      one negated edge");
  //   3. keep the nodes still connected to xo without the dropped ones.
  // This reproduces Fig. 3 exactly (Q3 loses z2 and its bad-rating edge
  // even though z2 also touches the shared product node; Q5 loses UK and
  // PhD), and is the identity on positive patterns, as §2.2 requires.
  std::vector<char> dropped(n, 0);
  const bool has_negated = !NegatedEdgeIds().empty();
  if (has_negated) {
    // Undirected BFS distances from the focus over non-negated edges.
    std::vector<uint32_t> dist(n, UINT32_MAX);
    std::deque<PatternNodeId> queue{focus_};
    dist[focus_] = 0;
    while (!queue.empty()) {
      PatternNodeId u = queue.front();
      queue.pop_front();
      auto visit = [&](PatternNodeId w) {
        if (dist[w] == UINT32_MAX) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
      };
      for (PatternEdgeId e : out_edges_[u]) {
        if (!edges_[e].quantifier.IsNegation()) visit(edges_[e].dst);
      }
      for (PatternEdgeId e : in_edges_[u]) {
        if (!edges_[e].quantifier.IsNegation()) visit(edges_[e].src);
      }
    }
    for (PatternEdgeId e : NegatedEdgeIds()) {
      PatternNodeId s = edges_[e].src, t = edges_[e].dst;
      // Drop the endpoint farther from the focus (ties: the target).
      PatternNodeId victim = dist[t] >= dist[s] ? t : s;
      if (victim == focus_) victim = victim == t ? s : t;
      if (victim != focus_) dropped[victim] = 1;
    }
  }
  // Keep the focus component over non-negated edges avoiding dropped
  // nodes.
  std::vector<char> reachable(n, 0);
  {
    std::deque<PatternNodeId> queue{focus_};
    reachable[focus_] = 1;
    while (!queue.empty()) {
      PatternNodeId u = queue.front();
      queue.pop_front();
      auto visit = [&](PatternNodeId w) {
        if (!reachable[w] && !dropped[w]) {
          reachable[w] = 1;
          queue.push_back(w);
        }
      };
      for (PatternEdgeId e : out_edges_[u]) {
        if (!edges_[e].quantifier.IsNegation()) visit(edges_[e].dst);
      }
      for (PatternEdgeId e : in_edges_[u]) {
        if (!edges_[e].quantifier.IsNegation()) visit(edges_[e].src);
      }
    }
  }

  Pattern pi;
  SubPattern map;
  map.node_from_original.assign(n, kInvalidPatternId);
  for (PatternNodeId u = 0; u < n; ++u) {
    if (!reachable[u]) continue;
    PatternNodeId nu = pi.AddNode(nodes_[u].label, nodes_[u].name);
    map.node_from_original[u] = nu;
    map.node_to_original.push_back(u);
  }
  for (PatternEdgeId e = 0; e < edges_.size(); ++e) {
    const PatternEdge& pe = edges_[e];
    if (pe.quantifier.IsNegation()) continue;
    PatternNodeId s = map.node_from_original[pe.src];
    PatternNodeId d = map.node_from_original[pe.dst];
    if (s == kInvalidPatternId || d == kInvalidPatternId) continue;
    QGP_RETURN_IF_ERROR(pi.AddEdge(s, d, pe.label, pe.quantifier));
    map.edge_to_original.push_back(e);
  }
  QGP_RETURN_IF_ERROR(pi.set_focus(map.node_from_original[focus_]));
  return std::make_pair(std::move(pi), std::move(map));
}

Result<Pattern> Pattern::Positify(PatternEdgeId e) const {
  if (e >= edges_.size()) {
    return Status::InvalidArgument("positify: edge id out of range");
  }
  if (!edges_[e].quantifier.IsNegation()) {
    return Status::InvalidArgument("positify: edge is not negated");
  }
  Pattern q = *this;
  q.edges_[e].quantifier = Quantifier();  // sigma(e) >= 1
  return q;
}

namespace {

// DFS over directed simple paths, tracking the number of non-existential
// quantifiers and negated edges along the current path. Patterns are tiny
// (|EQ| <= ~12), so exhaustive enumeration is fine.
struct PathChecker {
  const Pattern& q;
  int max_quantified;
  std::vector<char> on_path;
  Status failure = Status::Ok();

  PathChecker(const Pattern& pattern, int max_q)
      : q(pattern), max_quantified(max_q), on_path(pattern.num_nodes(), 0) {}

  void Dfs(PatternNodeId u, int quantified, int negated) {
    if (!failure.ok()) return;
    if (quantified > max_quantified) {
      failure = Status::InvalidArgument(
          "pattern violates the path restriction: more than " +
          std::to_string(max_quantified) +
          " non-existential quantifiers on a simple path");
      return;
    }
    if (negated > 1) {
      failure = Status::InvalidArgument(
          "pattern violates the path restriction: two negated edges on a "
          "simple path (double negation)");
      return;
    }
    on_path[u] = 1;
    for (PatternEdgeId eid : q.OutEdgeIds(u)) {
      const PatternEdge& e = q.edge(eid);
      if (on_path[e.dst]) continue;  // simple paths only
      const Quantifier& f = e.quantifier;
      int dq = f.IsExistential() ? 0 : 1;
      int dn = f.IsNegation() ? 1 : 0;
      Dfs(e.dst, quantified + dq, negated + dn);
      if (!failure.ok()) break;
    }
    on_path[u] = 0;
  }
};

}  // namespace

Status Pattern::Validate(int max_quantified_per_path) const {
  if (nodes_.empty()) return Status::InvalidArgument("pattern has no nodes");
  if (focus_ == kInvalidPatternId || focus_ >= nodes_.size()) {
    return Status::InvalidArgument("pattern focus not set");
  }
  for (const PatternEdge& e : edges_) {
    QGP_RETURN_IF_ERROR(e.quantifier.Validate());
  }
  // Weak connectivity (over all edges, negated included).
  if (nodes_.size() > 1) {
    std::vector<char> seen(nodes_.size(), 0);
    std::deque<PatternNodeId> queue{focus_};
    seen[focus_] = 1;
    size_t count = 1;
    while (!queue.empty()) {
      PatternNodeId u = queue.front();
      queue.pop_front();
      auto visit = [&](PatternNodeId w) {
        if (!seen[w]) {
          seen[w] = 1;
          ++count;
          queue.push_back(w);
        }
      };
      for (PatternEdgeId e : out_edges_[u]) visit(edges_[e].dst);
      for (PatternEdgeId e : in_edges_[u]) visit(edges_[e].src);
    }
    if (count != nodes_.size()) {
      return Status::InvalidArgument(
          "pattern is not connected to its focus");
    }
  }
  // Path restrictions (the §2.2 Remark), from every start node.
  PathChecker checker(*this, max_quantified_per_path);
  for (PatternNodeId u = 0; u < nodes_.size(); ++u) {
    checker.Dfs(u, 0, 0);
    if (!checker.failure.ok()) return checker.failure;
  }
  return Status::Ok();
}

int Pattern::Radius() const {
  if (focus_ == kInvalidPatternId) return 0;
  std::vector<int> dist(nodes_.size(), -1);
  std::deque<PatternNodeId> queue{focus_};
  dist[focus_] = 0;
  int radius = 0;
  while (!queue.empty()) {
    PatternNodeId u = queue.front();
    queue.pop_front();
    auto visit = [&](PatternNodeId w) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        radius = std::max(radius, dist[w]);
        queue.push_back(w);
      }
    };
    for (PatternEdgeId e : out_edges_[u]) visit(edges_[e].dst);
    for (PatternEdgeId e : in_edges_[u]) visit(edges_[e].src);
  }
  return radius;
}

std::string Pattern::ToString(const LabelDict* dict) const {
  auto label_name = [&](Label l) -> std::string {
    if (dict != nullptr) return dict->Name(l);
    return "L" + std::to_string(l);
  };
  std::ostringstream out;
  out << "pattern(" << nodes_.size() << " nodes, " << edges_.size()
      << " edges, focus=" << focus_ << ")\n";
  for (PatternNodeId u = 0; u < nodes_.size(); ++u) {
    out << "  node " << u;
    if (!nodes_[u].name.empty()) out << " [" << nodes_[u].name << "]";
    out << " : " << label_name(nodes_[u].label);
    if (u == focus_) out << "  (focus)";
    out << '\n';
  }
  for (const PatternEdge& e : edges_) {
    out << "  edge " << e.src << " -> " << e.dst << " : "
        << label_name(e.label);
    if (!e.quantifier.IsExistential()) {
      out << "  [" << e.quantifier.ToString() << "]";
    }
    out << '\n';
  }
  return out.str();
}

bool operator==(const Pattern& a, const Pattern& b) {
  if (a.focus_ != b.focus_ || a.nodes_.size() != b.nodes_.size() ||
      a.edges_.size() != b.edges_.size()) {
    return false;
  }
  for (size_t i = 0; i < a.nodes_.size(); ++i) {
    if (a.nodes_[i].label != b.nodes_[i].label) return false;
  }
  for (size_t i = 0; i < a.edges_.size(); ++i) {
    const PatternEdge& x = a.edges_[i];
    const PatternEdge& y = b.edges_[i];
    if (x.src != y.src || x.dst != y.dst || x.label != y.label ||
        !(x.quantifier == y.quantifier)) {
      return false;
    }
  }
  return true;
}

}  // namespace qgp
