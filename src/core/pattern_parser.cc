#include "core/pattern_parser.h"

#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace qgp {

Result<Quantifier> PatternParser::ParseQuantifier(std::string_view token) {
  QuantOp op;
  std::string_view rest;
  if (StartsWith(token, ">=")) {
    op = QuantOp::kGe;
    rest = token.substr(2);
  } else if (StartsWith(token, ">")) {
    op = QuantOp::kGt;
    rest = token.substr(1);
  } else if (StartsWith(token, "=")) {
    op = QuantOp::kEq;
    rest = token.substr(1);
  } else {
    return Status::InvalidArgument("bad quantifier '" + std::string(token) +
                                   "': must start with >=, > or =");
  }
  bool ratio = !rest.empty() && rest.back() == '%';
  if (ratio) rest.remove_suffix(1);
  if (ratio) {
    double p = 0;
    if (!ParseDouble(rest, &p)) {
      return Status::InvalidArgument("bad ratio in quantifier '" +
                                     std::string(token) + "'");
    }
    Quantifier q = Quantifier::Ratio(op, p);
    QGP_RETURN_IF_ERROR(q.Validate());
    return q;
  }
  int64_t p = 0;
  if (!ParseInt64(rest, &p) || p < 0) {
    return Status::InvalidArgument("bad count in quantifier '" +
                                   std::string(token) + "'");
  }
  if (p == 0) {
    if (op != QuantOp::kEq) {
      return Status::InvalidArgument(
          "count 0 only allowed as '=0' (negated edge)");
    }
    return Quantifier::Negation();
  }
  Quantifier q = Quantifier::Numeric(op, static_cast<uint32_t>(p));
  QGP_RETURN_IF_ERROR(q.Validate());
  return q;
}

Result<Pattern> PatternParser::Parse(std::string_view text,
                                     LabelDict& dict) {
  Pattern pattern;
  std::unordered_map<std::string, PatternNodeId> names;
  bool focus_seen = false;
  size_t line_no = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> tok = SplitWhitespace(sv);
    auto err = [&](const std::string& what) {
      return Status::InvalidArgument("pattern line " +
                                     std::to_string(line_no) + ": " + what);
    };
    if (tok[0] == "node") {
      if (tok.size() != 3) return err("expected 'node <name> <label>'");
      if (names.count(tok[1]) != 0) {
        return err("duplicate node name '" + tok[1] + "'");
      }
      names.emplace(tok[1], pattern.AddNode(dict.Intern(tok[2]), tok[1]));
    } else if (tok[0] == "edge") {
      if (tok.size() != 4 && tok.size() != 5) {
        return err("expected 'edge <src> <dst> <label> [<quantifier>]'");
      }
      auto si = names.find(tok[1]);
      auto di = names.find(tok[2]);
      if (si == names.end() || di == names.end()) {
        return err("edge references undeclared node");
      }
      Quantifier q;
      if (tok.size() == 5) {
        QGP_ASSIGN_OR_RETURN(q, ParseQuantifier(tok[4]));
      }
      QGP_RETURN_IF_ERROR(pattern.AddEdge(si->second, di->second,
                                          dict.Intern(tok[3]), q));
    } else if (tok[0] == "focus") {
      if (tok.size() != 2) return err("expected 'focus <name>'");
      auto it = names.find(tok[1]);
      if (it == names.end()) return err("focus references undeclared node");
      QGP_RETURN_IF_ERROR(pattern.set_focus(it->second));
      focus_seen = true;
    } else {
      return err("unknown record '" + tok[0] + "'");
    }
  }
  if (pattern.num_nodes() == 0) {
    return Status::InvalidArgument("pattern text declares no nodes");
  }
  if (!focus_seen) {
    return Status::InvalidArgument("pattern text has no 'focus' record");
  }
  return pattern;
}

std::string PatternParser::Serialize(const Pattern& pattern,
                                     const LabelDict& dict) {
  std::ostringstream out;
  auto node_name = [&](PatternNodeId u) {
    const std::string& n = pattern.node(u).name;
    return n.empty() ? "n" + std::to_string(u) : n;
  };
  for (PatternNodeId u = 0; u < pattern.num_nodes(); ++u) {
    out << "node " << node_name(u) << ' '
        << dict.Name(pattern.node(u).label) << '\n';
  }
  for (PatternEdgeId e = 0; e < pattern.num_edges(); ++e) {
    const PatternEdge& pe = pattern.edge(e);
    out << "edge " << node_name(pe.src) << ' ' << node_name(pe.dst) << ' '
        << dict.Name(pe.label);
    if (!pe.quantifier.IsExistential()) {
      out << ' ' << pe.quantifier.ToString();
    }
    out << '\n';
  }
  out << "focus " << node_name(pattern.focus()) << '\n';
  return out.str();
}

}  // namespace qgp
