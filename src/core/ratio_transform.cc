#include "core/ratio_transform.h"

namespace qgp {

NumericForm ToNumericAt(const Quantifier& q, uint64_t total) {
  NumericForm out;
  std::optional<uint64_t> needed = q.MinCountNeeded(total);
  if (!needed.has_value()) return out;  // unsatisfiable
  out.satisfiable = true;
  out.min_count = *needed;
  out.exact = q.op() == QuantOp::kEq && !q.IsNegation();
  // A required count above the child total is unsatisfiable too.
  if (out.min_count > total) out.satisfiable = false;
  return out;
}

Pattern NormalizeGtQuantifiers(const Pattern& pattern) {
  Pattern out;
  for (PatternNodeId u = 0; u < pattern.num_nodes(); ++u) {
    out.AddNode(pattern.node(u).label, pattern.node(u).name);
  }
  for (PatternEdgeId e = 0; e < pattern.num_edges(); ++e) {
    const PatternEdge& pe = pattern.edge(e);
    Quantifier q = pe.quantifier;
    if (q.kind() == QuantKind::kNumeric && q.op() == QuantOp::kGt) {
      q = Quantifier::Numeric(QuantOp::kGe, q.count() + 1);
    }
    (void)out.AddEdge(pe.src, pe.dst, pe.label, q);
  }
  (void)out.set_focus(pattern.focus());
  return out;
}

}  // namespace qgp
