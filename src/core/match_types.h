#ifndef QGP_CORE_MATCH_TYPES_H_
#define QGP_CORE_MATCH_TYPES_H_

/// \file
/// The types every matcher speaks: answer sets, the shared MatchOptions
/// knobs, and the MatchStats work counters whose cross-implementation
/// identity the differential suites assert.

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "graph/types.h"

namespace qgp {

/// Query answer Q(xo, G): the sorted, duplicate-free vertex set matching
/// the focus.
using AnswerSet = std::vector<VertexId>;

/// Knobs shared by the matchers. Defaults reproduce the full QMatch of
/// §4; the ablation benches toggle individual strategies.
struct MatchOptions {
  /// Dual-simulation prefilter on candidate sets (Lemma 13 / [21]).
  bool use_simulation = true;
  /// Quantifier upper-bound pruning of candidates (§4.1, Appendix B).
  bool use_quantifier_pruning = true;
  /// Potential-score ordering of children during search (Appendix B).
  bool use_potential_ordering = true;
  /// Stop counting children once a monotone (>=) quantifier is met.
  bool early_stop_counting = true;
  /// Process negated edges incrementally (IncQMatch, §4.2). When false,
  /// each Π(Q⁺ᵉ) is recomputed from scratch (the QMatchn baseline).
  bool use_incremental_negation = true;
  /// The §2.2 path restriction constant l.
  int max_quantified_per_path = 2;
  /// Safety cap on enumerated isomorphisms for the enumeration-based
  /// matchers (0 = unlimited). Exceeding it is an Internal error, never a
  /// silently-wrong answer.
  uint64_t max_isomorphisms = 0;
  /// Per-focus neighborhood ball size cap (hub-explosion guard); when a
  /// ball exceeds it, DMatch falls back to global candidate sets, which
  /// is equally correct. 0 = auto: max(4096, |V| / 8).
  size_t ball_limit = 0;
  /// Chunk grain for the work-stealing focus map (foci per stealable
  /// task). 0 = auto (≈ |subset| / (threads · 8), at least 1). The
  /// forced-steal stress tests pin this to 1 so every focus is its own
  /// stealable task; answers never depend on it.
  size_t scheduler_grain = 0;
  /// Cooperative cancellation (common/cancellation.h). When set, the
  /// matchers and CandidateSpace::Build/Repair poll it at coarse
  /// granularity — per focus, per fixpoint round, per fragment — and
  /// unwind with kDeadlineExceeded/kCancelled, leaving caches and
  /// scratch state intact. Never part of any cache key (like
  /// scheduler_grain, it cannot change an answer). The token must
  /// outlive the evaluation. nullptr = never cancelled (no overhead).
  const CancelToken* cancel = nullptr;
};

/// Instrumentation counters. Verification work (the paper's cost measure
/// for incremental optimality, §4.2) is `search_extensions`.
struct MatchStats {
  uint64_t isomorphisms_enumerated = 0;  ///< complete embeddings seen
  uint64_t witness_searches = 0;         ///< pinned-pair searches run
  uint64_t search_extensions = 0;        ///< candidate extensions tried
  uint64_t candidates_initial = 0;       ///< sum of |C(u)| before pruning
  uint64_t candidates_pruned = 0;        ///< removed by filters
  uint64_t focus_candidates_checked = 0; ///< DMatch outer loop size
  uint64_t inc_candidates_checked = 0;   ///< IncQMatch re-verifications
  uint64_t balls_built = 0;              ///< per-focus neighborhoods built

  /// Work-stealing scheduler telemetry (tasks run / tasks that were
  /// stolen from another worker's deque). Unlike every counter above,
  /// these describe the SCHEDULE, not the work: they may vary run to run
  /// and are excluded from the determinism contract the differential
  /// suites assert.
  uint64_t scheduler_tasks = 0;
  uint64_t scheduler_steals = 0;

  /// Accumulates `other` into this (for cross-fragment aggregation).
  void Add(const MatchStats& other);

  std::string ToString() const;
};

/// Sorts and deduplicates in place, yielding a canonical AnswerSet.
void Canonicalize(AnswerSet& answers);

/// Set algebra on canonical AnswerSets.
AnswerSet SetUnion(const AnswerSet& a, const AnswerSet& b);
AnswerSet SetIntersection(const AnswerSet& a, const AnswerSet& b);
AnswerSet SetDifference(const AnswerSet& a, const AnswerSet& b);

}  // namespace qgp

#endif  // QGP_CORE_MATCH_TYPES_H_
