#ifndef QGP_CORE_CANDIDATE_CACHE_H_
#define QGP_CORE_CANDIDATE_CACHE_H_

/// \file
/// Shared, refcounted candidate sets and the per-graph intern pool that
/// shares them across CandidateSpace builds — within one evaluation,
/// across a PQMatch/PEnum worker's fragment builds, and across whole
/// queries when a QueryEngine owns the pool for the graph's lifetime.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "graph/graph.h"

namespace qgp {

/// One immutable candidate set: sorted members plus an O(1) membership
/// bitset over the graph's vertex universe. Instances are shared —
/// between pattern nodes whose filters coincide, between the stratified
/// and good families when no quantifier pruning applies, and across
/// CandidateSpace builds through the CandidateCache intern pool — and
/// refcounted via shared_ptr, so a set stays alive exactly as long as
/// some CandidateSpace (or the pool) still references it.
struct CandidateSet {
  std::vector<VertexId> members;  ///< sorted ascending, duplicate-free
  DynamicBitset bits;             ///< membership over [0, |V|)
};

/// Shared, immutable handle. Copying is a refcount bump, never a data
/// copy; the pointee is never mutated after construction, so handles may
/// be read concurrently from any number of threads.
using CandidateSetRef = std::shared_ptr<const CandidateSet>;

/// Wraps sorted `members` into a refcounted set, building its bitset.
CandidateSetRef MakeCandidateSet(std::vector<VertexId> members,
                                 size_t universe);

/// The label/degree candidate filter every non-simulation build starts
/// from: vertices labeled `node_label` that have at least one out-edge
/// for every label in `out_labels` and one in-edge for every label in
/// `in_labels` (the existential degree refinement of DegreeRefine).
/// `out_labels` / `in_labels` must be sorted and duplicate-free.
CandidateSetRef ComputeLabelDegreeSet(const Graph& g, Label node_label,
                                      std::span<const Label> out_labels,
                                      std::span<const Label> in_labels);

/// Per-graph intern pool for label/degree candidate sets. Two pattern
/// nodes with the same node label and the same sets of incident edge
/// labels have identical degree-refined candidates; the pool computes
/// that set once and hands out shared references, so repeated
/// CandidateSpace builds against one graph — the positified patterns of
/// a negated QGP, every fragment-local build a PQMatch/PEnum worker
/// runs, EnumMatcher's plain builds — stop recomputing per-label work.
///
/// Thread-safe: concurrent Get() calls from parallel Build tasks are
/// fine. Two racing misses on the same key may both compute the set
/// (identical content either way); the first insert wins and the loser's
/// copy is dropped, so returned handles for one key always alias one
/// allocation once the pool has seen it.
///
/// Mutability: every entry is stamped with the graph version() it was
/// computed against. A Get() that finds a stale entry recomputes and
/// replaces it (counted as a miss), and EvictStale() drops exactly the
/// stale entries in one sweep — QueryEngine::ApplyDelta calls it under
/// the admission lock so no evaluation runs concurrently.
class CandidateCache {
 public:
  /// The pool is bound to `g` (keys are label ids of its dictionary);
  /// callers must not use it with a different graph. `g` must outlive
  /// the pool.
  explicit CandidateCache(const Graph& g) : g_(&g) {}

  CandidateCache(const CandidateCache&) = delete;
  CandidateCache& operator=(const CandidateCache&) = delete;

  /// Interned label/degree set for (node_label, out_labels, in_labels).
  /// Label lists need not be sorted or unique; the key normalizes them.
  CandidateSetRef Get(Label node_label, std::vector<Label> out_labels,
                      std::vector<Label> in_labels);

  /// Drops every entry no caller references anymore (use_count == 1);
  /// returns how many were evicted. Entries still referenced by a live
  /// CandidateSpace survive and keep their identity.
  size_t EvictUnused();

  /// Drops exactly the entries stamped with a graph version other than
  /// the current one; returns how many were evicted. Still-referenced
  /// stale sets stay alive through their outstanding handles (shared_ptr
  /// semantics) but leave the pool, so no future Get() can observe them.
  size_t EvictStale();

  /// Admission epoch, for cancellation rollback: every insert (and stale
  /// replace) bumps an internal counter and stamps the entry with it.
  /// MarkEpoch() reads the counter; EvictInsertedSince(mark) drops the
  /// entries admitted after that mark that no caller references anymore
  /// (use_count == 1 — under the engine's one-at-a-time admission, that
  /// is every set a cancelled evaluation interned, since its scratch
  /// state was destroyed on unwind). The QueryEngine brackets deadline-
  /// carrying queries with this pair so a timed-out run admits nothing
  /// (the no-cache-poisoning invariant; ARCHITECTURE.md "Robustness").
  uint64_t MarkEpoch() const;
  size_t EvictInsertedSince(uint64_t mark);

  /// Number of interned entries.
  size_t size() const;

  /// Pool telemetry, cumulative since construction.
  struct Stats {
    uint64_t hits = 0;    ///< Get() served from the pool
    uint64_t misses = 0;  ///< Get() had to compute
  };
  /// Snapshot of the hit/miss counters (exact when quiescent).
  Stats stats() const;

  /// The graph the pool is bound to.
  const Graph& graph() const { return *g_; }

 private:
  struct Key {
    Label node_label = 0;
    std::vector<Label> out_labels;  // sorted, duplicate-free
    std::vector<Label> in_labels;   // sorted, duplicate-free
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  struct Entry {
    CandidateSetRef set;
    uint64_t version = 0;  ///< graph version() the set was computed against
    uint64_t epoch = 0;    ///< admission order (MarkEpoch/EvictInsertedSince)
  };

  const Graph* g_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> pool_;
  Stats stats_;
  uint64_t epoch_counter_ = 0;  // guarded by mu_
};

}  // namespace qgp

#endif  // QGP_CORE_CANDIDATE_CACHE_H_
