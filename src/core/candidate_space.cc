#include "core/candidate_space.h"

#include <algorithm>

#include "common/vertex_set.h"
#include "core/simulation.h"

namespace qgp {

namespace {

// Existential refinement without full simulation: keep v in C(u) only if
// every pattern edge at u has at least one endpoint candidate among v's
// neighbors (by labels alone). One pass; used when simulation is off.
void DegreeRefine(const Pattern& q, const Graph& g,
                  std::vector<std::vector<VertexId>>& sets) {
  for (PatternNodeId u = 0; u < q.num_nodes(); ++u) {
    std::vector<VertexId>& members = sets[u];
    size_t kept = 0;
    for (VertexId v : members) {
      bool ok = true;
      for (PatternEdgeId e : q.OutEdgeIds(u)) {
        if (g.OutDegreeWithLabel(v, q.edge(e).label) == 0) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (PatternEdgeId e : q.InEdgeIds(u)) {
          if (g.InDegreeWithLabel(v, q.edge(e).label) == 0) {
            ok = false;
            break;
          }
        }
      }
      if (ok) members[kept++] = v;
    }
    members.resize(kept);
  }
}

}  // namespace

Result<CandidateSpace> CandidateSpace::Build(const Pattern& pattern,
                                             const Graph& g,
                                             const MatchOptions& options,
                                             MatchStats* stats) {
  if (!pattern.IsPositive()) {
    return Status::InvalidArgument(
        "candidate space requires a positive pattern (apply Pi() first)");
  }
  CandidateSpace cs;
  const size_t nq = pattern.num_nodes();

  if (options.use_simulation) {
    cs.stratified_ = DualSimulation(pattern, g);
  } else {
    cs.stratified_.resize(nq);
    for (PatternNodeId u = 0; u < nq; ++u) {
      auto span = g.VerticesWithLabel(pattern.node(u).label);
      cs.stratified_[u].assign(span.begin(), span.end());
    }
    DegreeRefine(pattern, g, cs.stratified_);
  }

  cs.stratified_bits_.assign(nq, DynamicBitset(g.num_vertices()));
  for (PatternNodeId u = 0; u < nq; ++u) {
    if (stats != nullptr) {
      stats->candidates_initial += g.NumVerticesWithLabel(pattern.node(u).label);
      stats->candidates_pruned +=
          g.NumVerticesWithLabel(pattern.node(u).label) -
          cs.stratified_[u].size();
    }
    for (VertexId v : cs.stratified_[u]) cs.stratified_bits_[u].Set(v);
  }

  // Good sets: prune by the quantifier upper bound U(v,e) against fixed
  // Cπ. Existential edges impose nothing beyond Cπ membership.
  cs.good_.resize(nq);
  cs.good_bits_.assign(nq, DynamicBitset(g.num_vertices()));
  for (PatternNodeId u = 0; u < nq; ++u) {
    std::vector<PatternEdgeId> quantified;
    for (PatternEdgeId e : pattern.OutEdgeIds(u)) {
      if (!pattern.edge(e).quantifier.IsExistential()) quantified.push_back(e);
    }
    if (quantified.empty() || !options.use_quantifier_pruning) {
      cs.good_[u] = cs.stratified_[u];
    } else {
      for (VertexId v : cs.stratified_[u]) {
        bool ok = true;
        for (PatternEdgeId e : quantified) {
          const PatternEdge& pe = pattern.edge(e);
          uint64_t total = g.OutDegreeWithLabel(v, pe.label);
          std::optional<uint64_t> needed =
              pe.quantifier.MinCountNeeded(total);
          if (!needed.has_value()) {
            ok = false;  // unsatisfiable at this vertex (e.g. =p% non-integer)
            break;
          }
          // U(v,e): children via the edge label that are stratified
          // candidates of the target node.
          uint64_t ub = 0;
          for (const Neighbor& n : g.OutNeighborsWithLabel(v, pe.label)) {
            if (cs.stratified_bits_[pe.dst].Test(n.v)) ++ub;
            // Counting can stop once the bound is provably met.
            if (ub >= *needed) break;
          }
          if (ub < *needed) {
            ok = false;
            break;
          }
        }
        if (ok) cs.good_[u].push_back(v);
      }
      if (stats != nullptr) {
        stats->candidates_pruned +=
            cs.stratified_[u].size() - cs.good_[u].size();
      }
    }
    for (VertexId v : cs.good_[u]) cs.good_bits_[u].Set(v);
  }
  return cs;
}

std::vector<std::vector<VertexId>> CandidateSpace::RestrictStratifiedToBall(
    std::span<const VertexId> sorted_ball) const {
  std::vector<std::vector<VertexId>> local(stratified_.size());
  RestrictStratifiedToBall(sorted_ball, {}, &local);
  return local;
}

void CandidateSpace::RestrictStratifiedToBall(
    std::span<const VertexId> sorted_ball,
    std::span<const uint64_t> ball_words,
    std::vector<std::vector<VertexId>>* out) const {
  out->resize(stratified_.size());
  // A word-AND touches every word once; it wins over element-wise kernels
  // roughly when the sets carry more elements than the universe has words.
  const size_t universe_words = stratified_.empty()
                                    ? 0
                                    : stratified_bits_[0].words().size();
  for (PatternNodeId u = 0; u < stratified_.size(); ++u) {
    const std::vector<VertexId>& full = stratified_[u];
    std::vector<VertexId>& dst = (*out)[u];
    dst.clear();
    if (!ball_words.empty() &&
        full.size() + sorted_ball.size() > 2 * universe_words) {
      IntersectWordsInto(stratified_bits_[u].words(), ball_words, dst);
    } else if (full.size() * kGallopRatio <= sorted_ball.size() &&
               !ball_words.empty()) {
      // Sparse candidate set inside a big ball: probe the ball bitset.
      for (VertexId v : full) {
        if ((ball_words[v >> 6] >> (v & 63)) & 1ULL) dst.push_back(v);
      }
    } else if (sorted_ball.size() * kGallopRatio <= full.size()) {
      // Tiny ball inside a big candidate set: probe the stratified bitset.
      for (VertexId v : sorted_ball) {
        if (stratified_bits_[u].Test(v)) dst.push_back(v);
      }
    } else {
      IntersectSortedInto(std::span<const VertexId>(full), sorted_ball, dst);
    }
  }
}

}  // namespace qgp
