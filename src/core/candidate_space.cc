#include "core/candidate_space.h"

#include <algorithm>
#include <optional>

#include "common/thread_pool.h"
#include "common/vertex_set.h"
#include "core/simulation.h"
#include "graph/graph_delta.h"

namespace qgp {

namespace {

// Chunk floor for parallel per-member work (good-set upper-bound checks).
constexpr size_t kBuildGrain = 256;

// Distinct incident edge labels of u, the degree-refinement key halves.
void IncidentLabels(const Pattern& q, PatternNodeId u,
                    std::vector<Label>* out_labels,
                    std::vector<Label>* in_labels) {
  for (PatternEdgeId e : q.OutEdgeIds(u)) out_labels->push_back(q.edge(e).label);
  for (PatternEdgeId e : q.InEdgeIds(u)) in_labels->push_back(q.edge(e).label);
  std::sort(out_labels->begin(), out_labels->end());
  out_labels->erase(std::unique(out_labels->begin(), out_labels->end()),
                    out_labels->end());
  std::sort(in_labels->begin(), in_labels->end());
  in_labels->erase(std::unique(in_labels->begin(), in_labels->end()),
                   in_labels->end());
}

// Runs `fn(begin, end)` over [0, n) — chunked across the pool when one is
// given, inline otherwise.
void ForRange(ThreadPool* pool, size_t n, size_t grain,
              const std::function<void(size_t, size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelForRange(n, grain, fn);
  } else {
    if (n > 0) fn(0, n);
  }
}

// The label/degree filter is a pure function of (node label, incident
// edge labels): group pattern nodes by that key so each distinct filter
// is computed (or fetched from the intern pool) exactly once.
struct KeyedNode {
  Label label;
  std::vector<Label> out_labels;
  std::vector<Label> in_labels;
  std::vector<PatternNodeId> nodes;  // nodes sharing this filter
};

std::vector<KeyedNode> DedupeFilterKeys(const Pattern& pattern) {
  std::vector<KeyedNode> keys;
  for (PatternNodeId u = 0; u < pattern.num_nodes(); ++u) {
    KeyedNode k;
    k.label = pattern.node(u).label;
    IncidentLabels(pattern, u, &k.out_labels, &k.in_labels);
    auto it = std::find_if(keys.begin(), keys.end(), [&](const KeyedNode& e) {
      return e.label == k.label && e.out_labels == k.out_labels &&
             e.in_labels == k.in_labels;
    });
    if (it == keys.end()) {
      k.nodes.push_back(u);
      keys.push_back(std::move(k));
    } else {
      it->nodes.push_back(u);
    }
  }
  return keys;
}

// The sequential stats reduction over the finished stratified sets —
// shared by Build and Repair so both report identical numbers (the sets
// themselves are identical by construction).
void AccumulateInitialStats(const Pattern& pattern, const Graph& g,
                            const std::vector<CandidateSetRef>& stratified,
                            MatchStats* stats) {
  if (stats == nullptr) return;
  for (PatternNodeId u = 0; u < pattern.num_nodes(); ++u) {
    stats->candidates_initial += g.NumVerticesWithLabel(pattern.node(u).label);
    stats->candidates_pruned +=
        g.NumVerticesWithLabel(pattern.node(u).label) -
        stratified[u]->members.size();
  }
}

// Good sets: prune by the quantifier upper bound U(v,e) against fixed
// Cπ. Existential edges impose nothing beyond Cπ membership, in which
// case the good set IS the stratified set (shared, not copied). The
// per-candidate bound checks read only the (frozen) stratified bitsets,
// so they fan out across the pool with a keep-flag per slot. A pure
// function of (pattern, options, graph, stratified sets) — which is what
// lets Repair reuse it verbatim.
std::vector<CandidateSetRef> BuildGoodSets(
    const Pattern& pattern, const Graph& g, const MatchOptions& options,
    const std::vector<CandidateSetRef>& stratified, MatchStats* stats,
    ThreadPool* pool) {
  const size_t nq = pattern.num_nodes();
  std::vector<CandidateSetRef> good_sets(nq);
  std::vector<char> keep;
  for (PatternNodeId u = 0; u < nq; ++u) {
    std::vector<PatternEdgeId> quantified;
    for (PatternEdgeId e : pattern.OutEdgeIds(u)) {
      if (!pattern.edge(e).quantifier.IsExistential()) quantified.push_back(e);
    }
    if (quantified.empty() || !options.use_quantifier_pruning) {
      good_sets[u] = stratified[u];
      continue;
    }
    const std::vector<VertexId>& members = stratified[u]->members;
    keep.assign(members.size(), 1);
    ForRange(pool, members.size(), kBuildGrain,
             [&](size_t begin, size_t end) {
               for (size_t i = begin; i < end; ++i) {
                 const VertexId v = members[i];
                 for (PatternEdgeId e : quantified) {
                   const PatternEdge& pe = pattern.edge(e);
                   uint64_t total = g.OutDegreeWithLabel(v, pe.label);
                   std::optional<uint64_t> needed =
                       pe.quantifier.MinCountNeeded(total);
                   if (!needed.has_value()) {
                     // Unsatisfiable at this vertex (e.g. =p% non-integer).
                     keep[i] = 0;
                     break;
                   }
                   // U(v,e): children via the edge label that are
                   // stratified candidates of the target node.
                   uint64_t ub = 0;
                   for (const Neighbor& n :
                        g.OutNeighborsWithLabel(v, pe.label)) {
                     if (stratified[pe.dst]->bits.Test(n.v)) ++ub;
                     // Counting can stop once the bound is provably met.
                     if (ub >= *needed) break;
                   }
                   if (ub < *needed) {
                     keep[i] = 0;
                     break;
                   }
                 }
               }
             });
    std::vector<VertexId> good;
    for (size_t i = 0; i < members.size(); ++i) {
      if (keep[i]) good.push_back(members[i]);
    }
    if (stats != nullptr) {
      stats->candidates_pruned += members.size() - good.size();
    }
    good_sets[u] = MakeCandidateSet(std::move(good), g.num_vertices());
  }
  return good_sets;
}

// True iff v passes the label/degree filter of `key` — the exact
// per-vertex predicate of ComputeLabelDegreeSet, exposed for the patch
// path of Repair.
// Appends a ⊕ b (both sorted) to *out; callers sort+unique afterwards.
void AppendSymmetricDifference(const std::vector<VertexId>& a,
                               const std::vector<VertexId>& b,
                               std::vector<VertexId>* out) {
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(*out));
}

void SortUniqueVertices(std::vector<VertexId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

bool PassesFilter(const Graph& g, const KeyedNode& key, VertexId v) {
  if (g.vertex_label(v) != key.label) return false;
  for (Label l : key.out_labels) {
    if (g.OutDegreeWithLabel(v, l) == 0) return false;
  }
  for (Label l : key.in_labels) {
    if (g.InDegreeWithLabel(v, l) == 0) return false;
  }
  return true;
}

}  // namespace

Result<CandidateSpace> CandidateSpace::Build(const Pattern& pattern,
                                             const Graph& g,
                                             const MatchOptions& options,
                                             MatchStats* stats,
                                             ThreadPool* pool,
                                             CandidateCache* cache) {
  if (!pattern.IsPositive()) {
    return Status::InvalidArgument(
        "candidate space requires a positive pattern (apply Pi() first)");
  }
  QGP_CHECK_CANCEL(options.cancel);
  CandidateSpace cs;
  const size_t nq = pattern.num_nodes();
  cs.stratified_.resize(nq);

  if (options.use_simulation) {
    // Simulation sets depend on the whole pattern topology, so they are
    // never interned themselves — but their STARTING sets are: when an
    // intern pool is available, each node's label/degree filter is
    // fetched (or computed once) through it and seeds the fixpoint
    // iteration. The greatest fixpoint is contained in every seed, so
    // the result is identical to the unseeded label-scan start; warm
    // queries just skip the per-label scans and open with tighter
    // first-round sets. Nodes sharing a filter key fetch one entry.
    std::vector<CandidateSetRef> seeds;
    if (cache != nullptr) {
      const std::vector<KeyedNode> keys = DedupeFilterKeys(pattern);
      std::vector<CandidateSetRef> per_key(keys.size());
      ForRange(pool, keys.size(), 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          per_key[i] =
              cache->Get(keys[i].label, keys[i].out_labels, keys[i].in_labels);
        }
      });
      seeds.resize(nq);
      for (size_t i = 0; i < keys.size(); ++i) {
        for (PatternNodeId u : keys[i].nodes) seeds[u] = per_key[i];
      }
    }
    // The rounds themselves parallelize (see DualSimulation) and stay
    // bit-identical at any thread count.
    std::vector<std::vector<VertexId>> sim =
        DualSimulation(pattern, g, pool, cache != nullptr ? &seeds : nullptr,
                       options.cancel);
    // A fired token means the fixpoint broke early and `sim` holds
    // partial supersets — discard them before they can reach a caller.
    QGP_CHECK_CANCEL(options.cancel);
    // Bitset construction per node is independent work.
    ForRange(pool, nq, 1, [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        cs.stratified_[u] = MakeCandidateSet(std::move(sim[u]),
                                             g.num_vertices());
      }
    });
  } else {
    // Label + existential degree refinement: dedupe the keys, compute
    // each distinct filter once — through the intern pool when one is
    // given, so other builds on this graph share the result — and alias
    // every node of the key to the same set.
    const std::vector<KeyedNode> keys = DedupeFilterKeys(pattern);
    std::vector<CandidateSetRef> per_key(keys.size());
    ForRange(pool, keys.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const KeyedNode& k = keys[i];
        per_key[i] = cache != nullptr
                         ? cache->Get(k.label, k.out_labels, k.in_labels)
                         : ComputeLabelDegreeSet(g, k.label, k.out_labels,
                                                 k.in_labels);
      }
    });
    for (size_t i = 0; i < keys.size(); ++i) {
      for (PatternNodeId u : keys[i].nodes) cs.stratified_[u] = per_key[i];
    }
  }

  QGP_CHECK_CANCEL(options.cancel);
  // Stats are a sequential reduction so their totals never depend on a
  // schedule.
  AccumulateInitialStats(pattern, g, cs.stratified_, stats);
  cs.good_ = BuildGoodSets(pattern, g, options, cs.stratified_, stats, pool);
  return cs;
}

Result<CandidateSpace> CandidateSpace::Repair(
    const CandidateSpace& previous, const Pattern& pattern, const Graph& g,
    const GraphDeltaSummary& delta, const MatchOptions& options,
    MatchStats* stats, ThreadPool* pool, CandidateCache* cache,
    CandidateRepairInfo* info) {
  if (!pattern.IsPositive()) {
    return Status::InvalidArgument(
        "candidate space requires a positive pattern (apply Pi() first)");
  }
  if (previous.num_pattern_nodes() != pattern.num_nodes()) {
    return Status::InvalidArgument(
        "repair requires the pattern the previous space was built for");
  }
  QGP_CHECK_CANCEL(options.cancel);
  const size_t nq = pattern.num_nodes();
  const size_t n = g.num_vertices();

  // Pattern-relevant labels, as bitsets for the touched/BFS filters.
  Label max_label = 0;
  for (PatternNodeId u = 0; u < nq; ++u) {
    max_label = std::max(max_label, pattern.node(u).label);
  }
  for (PatternEdgeId e = 0; e < pattern.num_edges(); ++e) {
    max_label = std::max(max_label, pattern.edge(e).label);
  }
  DynamicBitset node_labels(max_label + 1), edge_labels(max_label + 1);
  for (PatternNodeId u = 0; u < nq; ++u) {
    node_labels.Set(pattern.node(u).label);
  }
  for (PatternEdgeId e = 0; e < pattern.num_edges(); ++e) {
    edge_labels.Set(pattern.edge(e).label);
  }

  const std::vector<VertexId> touched =
      TouchedVertices(delta, &edge_labels, &node_labels,
                      /*additions_only=*/false);
  const std::vector<VertexId> gain_sites =
      TouchedVertices(delta, &edge_labels, &node_labels,
                      /*additions_only=*/true);

  // The vertex universe the previous sets' bitsets cover; when vertices
  // were appended, even an untouched set needs re-wrapping so membership
  // bitsets match the new |V|.
  const bool universe_grew =
      nq > 0 && previous.stratified_[0]->bits.size() != n;

  if (touched.empty() && !universe_grew) {
    // The delta is invisible to this pattern: every set is reusable.
    CandidateSpace cs;
    cs.stratified_ = previous.stratified_;
    cs.good_ = previous.good_;
    AccumulateInitialStats(pattern, g, cs.stratified_, stats);
    if (stats != nullptr && options.use_quantifier_pruning) {
      for (PatternNodeId u = 0; u < nq; ++u) {
        stats->candidates_pruned +=
            cs.stratified_[u]->members.size() - cs.good_[u]->members.size();
      }
    }
    return cs;
  }

  // Gain region: insertions can ripple candidacy gains, but only through
  // chains of pattern-relevant-labeled edges rooted at a gain site (see
  // header). Sweep those labels breadth-first; a region past the budget
  // means locality has been lost and a fresh Build is cheaper to reason
  // about (and usually to run).
  const size_t budget = std::max<size_t>(64, n / 4);
  DynamicBitset in_region(n);
  std::vector<VertexId> region;
  for (VertexId v : gain_sites) {
    if (v < n && in_region.TestAndSet(v)) region.push_back(v);
  }
  auto relevant = [&](Label l) {
    return l < edge_labels.size() && edge_labels.Test(l);
  };
  for (size_t head = 0; head < region.size(); ++head) {
    const VertexId v = region[head];
    for (const Neighbor& nbr : g.OutNeighbors(v)) {
      if (relevant(nbr.label) && in_region.TestAndSet(nbr.v)) {
        region.push_back(nbr.v);
      }
    }
    for (const Neighbor& nbr : g.InNeighbors(v)) {
      if (relevant(nbr.label) && in_region.TestAndSet(nbr.v)) {
        region.push_back(nbr.v);
      }
    }
    if (region.size() > budget) {
      if (info != nullptr) {
        info->fell_back = true;
        info->gain_region = region.size();
      }
      Result<CandidateSpace> rebuilt =
          Build(pattern, g, options, stats, pool, cache);
      if (rebuilt.ok() && info != nullptr) {
        for (PatternNodeId u = 0; u < nq; ++u) {
          AppendSymmetricDifference(previous.stratified_[u]->members,
                                    rebuilt->stratified_[u]->members,
                                    &info->changed);
        }
        SortUniqueVertices(&info->changed);
      }
      return rebuilt;
    }
  }
  if (info != nullptr) info->gain_region = region.size();
  std::sort(region.begin(), region.end());

  CandidateSpace cs;
  cs.stratified_.resize(nq);
  if (options.use_simulation) {
    // Seed the fixpoint from (still-label-valid old members) ∪ (label-
    // matching gain region): a superset of the new greatest fixpoint, so
    // the seeded rounds converge to exactly the fresh-Build sets.
    std::vector<CandidateSetRef> seeds(nq);
    ForRange(pool, nq, 1, [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        const Label lu = pattern.node(u).label;
        std::vector<VertexId> seed;
        seed.reserve(previous.stratified_[u]->members.size());
        for (VertexId v : previous.stratified_[u]->members) {
          if (g.vertex_label(v) == lu) seed.push_back(v);
        }
        for (VertexId v : region) {
          if (g.vertex_label(v) == lu) seed.push_back(v);
        }
        SortUniqueVertices(&seed);
        seeds[u] = MakeCandidateSet(std::move(seed), n);
      }
    });
    std::vector<std::vector<VertexId>> sim =
        DualSimulation(pattern, g, pool, &seeds, options.cancel);
    QGP_CHECK_CANCEL(options.cancel);  // early-broken sim is partial
    ForRange(pool, nq, 1, [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        cs.stratified_[u] = MakeCandidateSet(std::move(sim[u]), n);
      }
    });
  } else {
    // Label/degree filters are per-vertex local: keep untouched old
    // members, recheck touched ones, and admit touched vertices that now
    // pass. (The gain region is irrelevant here — no fixpoint cascades.)
    DynamicBitset touched_bits(n);
    for (VertexId v : touched) {
      if (v < n) touched_bits.Set(v);
    }
    const std::vector<KeyedNode> keys = DedupeFilterKeys(pattern);
    std::vector<CandidateSetRef> per_key(keys.size());
    ForRange(pool, keys.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const KeyedNode& key = keys[i];
        const CandidateSetRef& old = previous.stratified_[key.nodes[0]];
        std::vector<VertexId> kept, admitted;
        kept.reserve(old->members.size());
        for (VertexId v : old->members) {
          if (!touched_bits.Test(v) || PassesFilter(g, key, v)) {
            kept.push_back(v);
          }
        }
        for (VertexId v : touched) {
          if (v < n && !old->bits.Test(v) && PassesFilter(g, key, v)) {
            admitted.push_back(v);
          }
        }
        std::vector<VertexId> members;
        members.reserve(kept.size() + admitted.size());
        std::merge(kept.begin(), kept.end(), admitted.begin(), admitted.end(),
                   std::back_inserter(members));
        per_key[i] = MakeCandidateSet(std::move(members), n);
      }
    });
    for (size_t i = 0; i < keys.size(); ++i) {
      for (PatternNodeId u : keys[i].nodes) cs.stratified_[u] = per_key[i];
    }
  }

  QGP_CHECK_CANCEL(options.cancel);
  AccumulateInitialStats(pattern, g, cs.stratified_, stats);
  cs.good_ = BuildGoodSets(pattern, g, options, cs.stratified_, stats, pool);

  if (info != nullptr) {
    for (PatternNodeId u = 0; u < nq; ++u) {
      AppendSymmetricDifference(previous.stratified_[u]->members,
                                cs.stratified_[u]->members, &info->changed);
    }
    SortUniqueVertices(&info->changed);
  }
  return cs;
}

std::vector<std::vector<VertexId>> CandidateSpace::RestrictStratifiedToBall(
    std::span<const VertexId> sorted_ball) const {
  std::vector<std::vector<VertexId>> local(stratified_.size());
  RestrictStratifiedToBall(sorted_ball, {}, &local);
  return local;
}

void CandidateSpace::RestrictStratifiedToBall(
    std::span<const VertexId> sorted_ball,
    std::span<const uint64_t> ball_words,
    std::vector<std::vector<VertexId>>* out) const {
  out->resize(stratified_.size());
  // A word-AND touches every word once; it wins over element-wise kernels
  // roughly when the sets carry more elements than the universe has words.
  const size_t universe_words =
      stratified_.empty() ? 0 : stratified_[0]->bits.words().size();
  for (PatternNodeId u = 0; u < stratified_.size(); ++u) {
    const std::vector<VertexId>& full = stratified_[u]->members;
    const DynamicBitset& full_bits = stratified_[u]->bits;
    std::vector<VertexId>& dst = (*out)[u];
    dst.clear();
    if (!ball_words.empty() &&
        full.size() + sorted_ball.size() > 2 * universe_words) {
      IntersectWordsInto(full_bits.words(), ball_words, dst);
    } else if (full.size() * kGallopRatio <= sorted_ball.size() &&
               !ball_words.empty()) {
      // Sparse candidate set inside a big ball: probe the ball bitset.
      for (VertexId v : full) {
        if ((ball_words[v >> 6] >> (v & 63)) & 1ULL) dst.push_back(v);
      }
    } else if (sorted_ball.size() * kGallopRatio <= full.size()) {
      // Tiny ball inside a big candidate set: probe the stratified bitset.
      for (VertexId v : sorted_ball) {
        if (full_bits.Test(v)) dst.push_back(v);
      }
    } else {
      IntersectSortedInto(std::span<const VertexId>(full), sorted_ball, dst);
    }
  }
}

}  // namespace qgp
