#include "core/expand.h"

#include <functional>

namespace qgp {

Result<Pattern> ExpandNumericCopies(const Pattern& pattern) {
  if (!pattern.IsPositive()) {
    return Status::Unimplemented("copy expansion: pattern must be positive");
  }
  // Out-tree check: every non-focus node has exactly one in-edge, the
  // focus has none, and every node is forward-reachable from the focus.
  const PatternNodeId root = pattern.focus();
  for (PatternNodeId u = 0; u < pattern.num_nodes(); ++u) {
    size_t in_degree = pattern.InEdgeIds(u).size();
    if (u == root ? in_degree != 0 : in_degree != 1) {
      return Status::Unimplemented(
          "copy expansion: stratified pattern must be an out-tree rooted "
          "at the focus");
    }
  }
  for (PatternEdgeId e = 0; e < pattern.num_edges(); ++e) {
    const Quantifier& q = pattern.edge(e).quantifier;
    if (q.kind() != QuantKind::kNumeric || q.op() != QuantOp::kGe) {
      return Status::Unimplemented(
          "copy expansion: only numeric >= quantifiers are supported");
    }
  }

  Pattern out;
  // Recursive clone: CopySubtree(u) creates a fresh copy of u and, for
  // each out-edge with sigma(e) >= p, p copies of the child subtree.
  std::function<Result<PatternNodeId>(PatternNodeId)> copy_subtree =
      [&](PatternNodeId u) -> Result<PatternNodeId> {
    PatternNodeId nu = out.AddNode(pattern.node(u).label, pattern.node(u).name);
    for (PatternEdgeId e : pattern.OutEdgeIds(u)) {
      const PatternEdge& pe = pattern.edge(e);
      uint32_t copies = pe.quantifier.count();
      for (uint32_t i = 0; i < copies; ++i) {
        QGP_ASSIGN_OR_RETURN(PatternNodeId child, copy_subtree(pe.dst));
        QGP_RETURN_IF_ERROR(out.AddEdge(nu, child, pe.label, Quantifier()));
      }
    }
    return nu;
  };
  QGP_ASSIGN_OR_RETURN(PatternNodeId new_root, copy_subtree(root));
  QGP_RETURN_IF_ERROR(out.set_focus(new_root));
  return out;
}

}  // namespace qgp
