#ifndef QGP_CORE_INC_QMATCH_H_
#define QGP_CORE_INC_QMATCH_H_

#include <unordered_map>

#include "core/dmatch.h"
#include "core/match_types.h"

namespace qgp {

/// IncQMatch (§4.2): incremental evaluation of a positified pattern
/// Π(Q⁺ᵉ) = Π(Q) ⊕ ΔE against the cached results of Π(Q).
///
/// Incrementality, relative to recomputing from scratch (QMatchn):
///  1. Only cached answers of Π(Q) are re-verified — the set difference
///     Q(xo,G) = Π(Q)(xo,G) \ ∪ Π(Q⁺ᵉ)(xo,G) never needs membership of
///     Π(Q⁺ᵉ) outside Π(Q)(xo,G).
///  2. Per answer, the cached neighborhood ball is reused when the
///     positified pattern's radius did not grow.
///  3. Failed witness pairs transfer soundly (a bigger pattern has fewer
///     embeddings), so verification skips work already proven futile —
///     this is the AFF-bounded behaviour of Proposition 6: only pairs
///     touching ΔE can flip, and only they are re-searched.
///
/// `evaluator` must be built over Π(Q⁺ᵉ) with edge_to_original mappings
/// into the ORIGINAL QGP (the same id space the caches use).
AnswerSet IncQMatchEvaluate(
    const PositiveEvaluator& evaluator, const AnswerSet& cached_answers,
    const std::unordered_map<VertexId, FocusCache>& caches,
    MatchStats* stats);

}  // namespace qgp

#endif  // QGP_CORE_INC_QMATCH_H_
