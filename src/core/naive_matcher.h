#ifndef QGP_CORE_NAIVE_MATCHER_H_
#define QGP_CORE_NAIVE_MATCHER_H_

#include "common/result.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

/// Reference (oracle) implementation of the §2.2 semantics by literal
/// brute force: enumerate every isomorphism of the stratified pattern,
/// materialize the Me(vx, v, Q) sets, evaluate every quantifier, and apply
/// the Π(Q) \ ∪ Π(Q⁺ᵉ) set difference for negation.
///
/// Exponential in |Q| and |G|; intended exclusively as ground truth for
/// the optimized matchers in property tests on small graphs.
class NaiveMatcher {
 public:
  /// Computes Q(xo, G). `options.max_isomorphisms` (default 5M here when
  /// unset) bounds work; exceeding it returns an Internal error rather
  /// than a possibly-wrong answer.
  static Result<AnswerSet> Evaluate(const Pattern& pattern, const Graph& g,
                                    const MatchOptions& options = {});

  /// Positive-pattern evaluation used internally and by tests that want
  /// to probe Π(Q) / Π(Q⁺ᵉ) pieces directly. `pattern` must be positive.
  /// `cancel` (optional) is polled every ~1024 search extensions; a
  /// fired token unwinds with its status.
  static Result<AnswerSet> EvaluatePositive(const Pattern& pattern,
                                            const Graph& g,
                                            uint64_t max_isomorphisms,
                                            const CancelToken* cancel = nullptr);
};

}  // namespace qgp

#endif  // QGP_CORE_NAIVE_MATCHER_H_
