#ifndef QGP_CORE_PATTERN_ANALYSIS_H_
#define QGP_CORE_PATTERN_ANALYSIS_H_

#include <string>
#include <vector>

#include "core/pattern.h"

namespace qgp {

/// Size descriptor |Q| = (|VQ|, |EQ|, pa, |E−Q|) as reported in §7.
struct PatternSize {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double avg_quantifier = 0.0;  // pa: mean p over non-existential positive
                                // quantifiers (ratio p% and numeric p mixed
                                // as in the paper's notation)
  size_t num_negated = 0;

  std::string ToString() const;
};

/// Computes the §7 size descriptor.
PatternSize ComputePatternSize(const Pattern& q);

/// Undirected hop distance from the focus to each node (-1 unreachable;
/// cannot happen for validated patterns).
std::vector<int> FocusDistances(const Pattern& q);

/// Number of non-existential, non-negated quantifiers.
size_t NumQuantifiedEdges(const Pattern& q);

/// True iff patterns `a` and `b` share an edge, where edges correspond
/// when their endpoint *names* and label agree. Used to validate QGARs
/// (§6 requires Q1 and Q2 not to overlap). Unnamed nodes never match.
bool PatternsShareEdge(const Pattern& a, const Pattern& b);

}  // namespace qgp

#endif  // QGP_CORE_PATTERN_ANALYSIS_H_
