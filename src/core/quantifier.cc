#include "core/quantifier.h"

#include <cmath>
#include <sstream>

namespace qgp {

namespace {

// Tolerance for ratio comparisons: thresholds like 80% of 5 children must
// compare exactly, while accumulated floating error stays far below this.
constexpr double kRatioEps = 1e-9;

}  // namespace

bool Quantifier::Eval(uint64_t matched, uint64_t total) const {
  switch (kind_) {
    case QuantKind::kNegation:
      return matched == 0;
    case QuantKind::kNumeric:
      switch (op_) {
        case QuantOp::kGe:
          return matched >= count_;
        case QuantOp::kEq:
          return matched == count_;
        case QuantOp::kGt:
          return matched > count_;
      }
      return false;
    case QuantKind::kRatio: {
      if (total == 0) return false;
      // Compare matched * 100 against percent_ * total without division.
      double lhs = static_cast<double>(matched) * 100.0;
      double rhs = percent_ * static_cast<double>(total);
      switch (op_) {
        case QuantOp::kGe:
          return lhs >= rhs - kRatioEps;
        case QuantOp::kEq:
          return std::fabs(lhs - rhs) <= kRatioEps;
        case QuantOp::kGt:
          return lhs > rhs + kRatioEps;
      }
      return false;
    }
  }
  return false;
}

std::optional<uint64_t> Quantifier::MinCountNeeded(uint64_t total) const {
  switch (kind_) {
    case QuantKind::kNegation:
      return std::nullopt;  // pruning by minimum count is meaningless
    case QuantKind::kNumeric:
      switch (op_) {
        case QuantOp::kGe:
          return count_;
        case QuantOp::kEq:
          return count_;
        case QuantOp::kGt:
          return static_cast<uint64_t>(count_) + 1;
      }
      return std::nullopt;
    case QuantKind::kRatio: {
      double exact = percent_ * static_cast<double>(total) / 100.0;
      switch (op_) {
        case QuantOp::kGe: {
          // Smallest integer m with m*100 >= p*total (ceiling; DESIGN.md
          // deviation 1 corrects the paper's floor).
          uint64_t m = static_cast<uint64_t>(std::ceil(exact - kRatioEps));
          return m;
        }
        case QuantOp::kGt: {
          uint64_t m = static_cast<uint64_t>(std::floor(exact + kRatioEps)) + 1;
          return m;
        }
        case QuantOp::kEq: {
          // Satisfiable only when p% of total is an integer.
          double rounded = std::round(exact);
          if (std::fabs(exact - rounded) > kRatioEps) return std::nullopt;
          return static_cast<uint64_t>(rounded);
        }
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<uint64_t> Quantifier::EarlyStopCount(uint64_t total) const {
  // Only >=-style thresholds are monotone in the count; `=` forms need the
  // exact final count, so counting cannot stop early.
  if (op_ == QuantOp::kEq) return std::nullopt;
  return MinCountNeeded(total);
}

std::string Quantifier::ToString() const {
  std::ostringstream out;
  switch (op_) {
    case QuantOp::kGe:
      out << ">=";
      break;
    case QuantOp::kEq:
      out << "=";
      break;
    case QuantOp::kGt:
      out << ">";
      break;
  }
  if (kind_ == QuantKind::kRatio) {
    // Print integral percents without a trailing ".0".
    double p = percent_;
    if (p == static_cast<double>(static_cast<int64_t>(p))) {
      out << static_cast<int64_t>(p);
    } else {
      out << p;
    }
    out << '%';
  } else {
    out << count_;
  }
  return out.str();
}

Status Quantifier::Validate() const {
  switch (kind_) {
    case QuantKind::kNegation:
      return Status::Ok();
    case QuantKind::kNumeric:
      if (count_ == 0 && !(op_ == QuantOp::kGt)) {
        return Status::InvalidArgument(
            "numeric quantifier requires p >= 1 (use a negated edge for "
            "sigma(e) = 0)");
      }
      return Status::Ok();
    case QuantKind::kRatio:
      if (!(percent_ > 0.0) || percent_ > 100.0) {
        return Status::InvalidArgument(
            "ratio quantifier requires p in (0, 100]");
      }
      return Status::Ok();
  }
  return Status::Internal("unknown quantifier kind");
}

}  // namespace qgp
