#ifndef QGP_CORE_SIMULATION_H_
#define QGP_CORE_SIMULATION_H_

#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/candidate_cache.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

/// Dual graph simulation of a pattern's stratified topology in G
/// ([21], used by QMatch as a candidate prefilter per Lemma 13).
///
/// v simulates pattern node u iff L(v) = LQ(u), for every pattern edge
/// (u,u') some child v' of v via the edge label simulates u', and for
/// every pattern edge (u'',u) some parent v'' of v via the edge label
/// simulates u''. Dual simulation is implied by subgraph isomorphism, so
/// filtering candidate sets to sim(u) is sound and strictly tightens the
/// upper bounds U(v,e) used by the pruning rules.
///
/// Returns, for each pattern node u, the sorted vertex set sim(u).
/// Quantifiers on `pattern` are ignored (the relation is about Qπ).
///
/// The fixpoint runs in synchronous rounds: every (u, v) membership check
/// of a round reads the sets as they stood when the round began, and all
/// removals are applied between rounds. Within a round the checks are
/// independent, which is what `pool` parallelizes (chunked over each
/// sim(u)); because removals are order-free and the maximal dual
/// simulation is a unique greatest fixpoint, the result is bit-identical
/// at every thread count, including pool == nullptr (serial).
///
/// `seeds` (optional; one entry per pattern node, entries may be null)
/// replaces node u's label-scan starting set with seeds[u] — typically
/// the interned label/degree filter a CandidateCache hands out, which is
/// how warm engine queries skip the per-label scans. Each seed must
/// contain the maximal dual simulation of its node (any superset of the
/// label/degree refinement qualifies: every member of the fixpoint has
/// at least one out-/in-edge per incident pattern edge label). The
/// refinement operator is monotone and preserves "superset of the
/// fixpoint" round by round, so iterating down from a seeded start
/// converges to the SAME unique greatest fixpoint — seeding changes how
/// fast the rounds shrink, never the result.
///
/// `cancel` (optional) is polled once per refinement round; when it
/// fires the fixpoint stops early and the (partial, superset-of-
/// fixpoint) sets are returned as-is. Callers that pass a token MUST
/// re-check it after the call and discard the sets when it fired —
/// CandidateSpace::Build/Repair do exactly that, converting the early
/// break into a kDeadlineExceeded/kCancelled status.
std::vector<std::vector<VertexId>> DualSimulation(
    const Pattern& pattern, const Graph& g, ThreadPool* pool = nullptr,
    const std::vector<CandidateSetRef>* seeds = nullptr,
    const CancelToken* cancel = nullptr);

}  // namespace qgp

#endif  // QGP_CORE_SIMULATION_H_
