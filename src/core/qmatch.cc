#include "core/qmatch.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "core/dmatch.h"
#include "graph/graph_delta.h"

namespace qgp {

namespace {

// Parallel map over focus candidates: verification is per-candidate
// independent (PositiveEvaluator::VerifyFocus is const), so candidates
// are verified across the pool as size-ordered (largest-ball-first)
// stealable tasks and results merged deterministically — each task
// writes only its candidates' slots, and the merge folds slots in
// original subset order, so answers and all work counters are identical
// to the serial loop at any thread count (only the scheduler telemetry
// varies with the schedule).
AnswerSet VerifyAcross(const PositiveEvaluator& ev,
                       std::span<const VertexId> subset,
                       const std::unordered_map<VertexId, FocusCache>* warm,
                       std::unordered_map<VertexId, FocusCache>* caches,
                       MatchStats* stats, ThreadPool* pool) {
  // Cancellation: polled per focus (serial) / per stealable chunk
  // (parallel). A fired token makes the remaining foci report
  // "no match" — the partial answer set never escapes, because every
  // caller re-checks the token right after VerifyAcross returns and
  // unwinds with its status instead.
  const CancelToken* cancel = ev.options().cancel;
  AnswerSet answers;
  if (pool == nullptr || subset.size() <= 1) {
    size_t polled = 0;
    for (VertexId vx : subset) {
      // Every 16th focus: ShouldStop reads the clock when a deadline is
      // armed, and a per-focus read is measurable on cheap foci. The
      // local stride bounds both the cost and the overshoot (≤16 foci).
      if (cancel != nullptr && (polled++ & 15) == 0 && cancel->ShouldStop()) {
        break;
      }
      const FocusCache* w = nullptr;
      if (warm != nullptr) {
        auto it = warm->find(vx);
        if (it != warm->end()) w = &it->second;
      }
      FocusCache cache;
      if (ev.VerifyFocus(vx, w, caches != nullptr ? &cache : nullptr,
                         stats)) {
        answers.push_back(vx);
        if (caches != nullptr) caches->emplace(vx, std::move(cache));
      }
    }
    Canonicalize(answers);
    return answers;
  }
  const size_t n = subset.size();
  // Largest-ball-first schedule: order positions by the focus degree
  // proxy, descending, ties by subset position so the order is a pure
  // function of the input. Skewed workloads (one hub focus dwarfing the
  // rest) start their expensive foci immediately instead of discovering
  // them at the tail of a static chunk.
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const uint64_t ca = ev.FocusCostHint(subset[a]);
    const uint64_t cb = ev.FocusCostHint(subset[b]);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  size_t grain = ev.options().scheduler_grain;
  if (grain == 0) {
    grain = std::max<size_t>(1, n / (pool->num_threads() * 8));
  }
  std::vector<char> is_match(n, 0);
  std::vector<FocusCache> cache_vec(caches != nullptr ? n : 0);
  std::vector<MatchStats> stats_vec(stats != nullptr ? n : 0);
  ThreadPool::SchedulerStats before;
  if (stats != nullptr) before = pool->scheduler_stats();
  pool->ParallelForDynamic(n, grain, [&](size_t begin, size_t end) {
    for (size_t pos = begin; pos < end; ++pos) {
      // Inside the chunk, not only at its entry: on a small pool a
      // single chunk can be most of the subset, and a fired deadline
      // must not wait it out. The 16-focus stride keeps the armed-
      // deadline clock read off cheap foci; skipped slots stay "no
      // match", and the truncated answer set never escapes (callers
      // re-check the token right after the map).
      if (cancel != nullptr && (pos & 15) == 0 && cancel->ShouldStop()) {
        return;
      }
      const size_t i = order[pos];
      const FocusCache* w = nullptr;
      if (warm != nullptr) {
        auto it = warm->find(subset[i]);
        if (it != warm->end()) w = &it->second;
      }
      is_match[i] = ev.VerifyFocus(
          subset[i], w, caches != nullptr ? &cache_vec[i] : nullptr,
          stats != nullptr ? &stats_vec[i] : nullptr);
    }
  });
  for (size_t i = 0; i < n; ++i) {
    if (stats != nullptr) stats->Add(stats_vec[i]);
    if (is_match[i]) {
      answers.push_back(subset[i]);
      if (caches != nullptr) caches->emplace(subset[i], std::move(cache_vec[i]));
    }
  }
  if (stats != nullptr) {
    const ThreadPool::SchedulerStats after = pool->scheduler_stats();
    stats->scheduler_tasks += after.total_executed() - before.total_executed();
    stats->scheduler_steals += after.total_stolen() - before.total_stolen();
  }
  Canonicalize(answers);
  return answers;
}

Result<AnswerSet> EvaluateImpl(const Pattern& pattern, const Graph& g,
                               std::span<const VertexId> focus_subset,
                               const MatchOptions& options, MatchStats* stats,
                               ThreadPool* pool, CandidateCache* cache,
                               QMatchArtifacts* artifacts = nullptr) {
  QGP_RETURN_IF_ERROR(pattern.Validate(options.max_quantified_per_path));
  // Intern label/degree candidate sets across Π(Q) and every Π(Q⁺ᵉ) even
  // when the caller brought no cross-call cache.
  std::optional<CandidateCache> local_cache;
  if (cache == nullptr) cache = &local_cache.emplace(g);
  auto pi = pattern.Pi();
  if (!pi.ok()) return pi.status();
  Pattern& pi_pattern = pi.value().first;
  SubPattern& pi_map = pi.value().second;

  // Ball traversal filter over the ORIGINAL pattern's edge labels
  // (negated edges included), so balls cached while evaluating Π(Q)
  // remain valid for every positified Π(Q⁺ᵉ).
  DynamicBitset ball_labels(g.dict().size());
  for (PatternEdgeId e = 0; e < pattern.num_edges(); ++e) {
    Label l = pattern.edge(e).label;
    if (l < ball_labels.size()) ball_labels.Set(l);
  }

  QGP_ASSIGN_OR_RETURN(
      PositiveEvaluator ev0,
      PositiveEvaluator::Create(std::move(pi_pattern), g, options,
                                &pi_map.edge_to_original,
                                pattern.num_edges(), &ball_labels, pool,
                                cache));

  if (artifacts != nullptr) artifacts->pi_space = ev0.candidate_space();

  const std::vector<PatternEdgeId> negated = pattern.NegatedEdgeIds();
  const bool want_caches =
      !negated.empty() && options.use_incremental_negation;
  std::unordered_map<VertexId, FocusCache> caches;

  std::span<const VertexId> subset =
      focus_subset.empty() ? ev0.FocusCandidates() : focus_subset;
  AnswerSet answers = VerifyAcross(ev0, subset, nullptr,
                                   want_caches ? &caches : nullptr, stats,
                                   pool);
  QGP_CHECK_CANCEL(options.cancel);  // a fired token truncated `answers`

  for (PatternEdgeId e : negated) {
    QGP_CHECK_CANCEL(options.cancel);
    if (answers.empty()) break;  // nothing left to subtract from
    QGP_ASSIGN_OR_RETURN(Pattern positified, pattern.Positify(e));
    auto pi_pos = positified.Pi();
    if (!pi_pos.ok()) return pi_pos.status();
    QGP_ASSIGN_OR_RETURN(
        PositiveEvaluator ev_e,
        PositiveEvaluator::Create(std::move(pi_pos.value().first), g, options,
                                  &pi_pos.value().second.edge_to_original,
                                  pattern.num_edges(), &ball_labels, pool,
                                  cache));
    AnswerSet negative;
    if (options.use_incremental_negation) {
      // IncQMatch: only cached answers are re-verified, with warm caches.
      if (stats != nullptr) stats->inc_candidates_checked += answers.size();
      negative = VerifyAcross(ev_e, answers, &caches, nullptr, stats, pool);
    } else {
      // QMatchn: full recomputation of Π(Q⁺ᵉ)(xo, G).
      negative = VerifyAcross(ev_e, ev_e.FocusCandidates(), nullptr, nullptr,
                              stats, pool);
    }
    QGP_CHECK_CANCEL(options.cancel);  // `negative` may be truncated
    answers = SetDifference(answers, negative);
  }
  return answers;
}

}  // namespace

Result<AnswerSet> QMatch::Evaluate(const Pattern& pattern, const Graph& g,
                                   const MatchOptions& options,
                                   MatchStats* stats, ThreadPool* pool,
                                   CandidateCache* cache,
                                   QMatchArtifacts* artifacts) {
  return EvaluateImpl(pattern, g, {}, options, stats, pool, cache, artifacts);
}

Result<AnswerSet> QMatch::EvaluateRepaired(
    const Pattern& pattern, const Graph& g, const MatchOptions& options,
    const CandidateSpace& previous_space, const AnswerSet& previous_answers,
    const GraphDeltaSummary& delta, MatchStats* stats, ThreadPool* pool,
    CandidateCache* cache, QMatchArtifacts* artifacts, bool* fell_back) {
  if (fell_back != nullptr) *fell_back = false;
  if (!pattern.IsPositive()) {
    return Status::InvalidArgument(
        "delta repair requires a positive pattern: negated patterns must "
        "re-evaluate every positified variant");
  }
  QGP_RETURN_IF_ERROR(pattern.Validate(options.max_quantified_per_path));
  std::optional<CandidateCache> local_cache;
  if (cache == nullptr) cache = &local_cache.emplace(g);
  auto pi = pattern.Pi();
  if (!pi.ok()) return pi.status();
  Pattern& pi_pattern = pi.value().first;
  SubPattern& pi_map = pi.value().second;

  DynamicBitset ball_labels(g.dict().size());
  for (PatternEdgeId e = 0; e < pattern.num_edges(); ++e) {
    Label l = pattern.edge(e).label;
    if (l < ball_labels.size()) ball_labels.Set(l);
  }
  DynamicBitset node_labels(g.dict().size());
  for (PatternNodeId u = 0; u < pattern.num_nodes(); ++u) {
    Label l = pattern.node(u).label;
    if (l < node_labels.size()) node_labels.Set(l);
  }

  CandidateRepairInfo info;
  SpaceRepairHint hint{&previous_space, &delta, &info};
  QGP_ASSIGN_OR_RETURN(
      PositiveEvaluator ev,
      PositiveEvaluator::Create(std::move(pi_pattern), g, options,
                                &pi_map.edge_to_original, pattern.num_edges(),
                                &ball_labels, pool, cache, &hint));
  if (artifacts != nullptr) artifacts->pi_space = ev.candidate_space();

  // Affected region: every focus whose verdict can have flipped lies
  // within radius hops (over pattern-labeled edges) of a delta-touched
  // vertex or of a vertex whose stratified candidacy changed. Goodness
  // changes ride along: a focus's quantifier upper bound reads only its
  // own label-degree (touched ⇒ root) and its counted children's
  // candidacy (changed ⇒ root, one hop away ≤ radius).
  const size_t n = g.num_vertices();
  DynamicBitset region(n);
  std::vector<VertexId> frontier;
  auto add_root = [&](VertexId v) {
    if (v < n && region.TestAndSet(v)) frontier.push_back(v);
  };
  for (VertexId v :
       TouchedVertices(delta, &ball_labels, &node_labels,
                       /*additions_only=*/false)) {
    add_root(v);
  }
  for (VertexId v : info.changed) add_root(v);
  size_t region_size = frontier.size();
  const size_t region_budget = n / 2;
  bool overflow = region_size > region_budget;
  for (int hop = 0; hop < ev.radius() && !overflow; ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (const Neighbor& nbr : g.OutNeighbors(v)) {
        if (nbr.label < ball_labels.size() && ball_labels.Test(nbr.label) &&
            region.TestAndSet(nbr.v)) {
          next.push_back(nbr.v);
        }
      }
      for (const Neighbor& nbr : g.InNeighbors(v)) {
        if (nbr.label < ball_labels.size() && ball_labels.Test(nbr.label) &&
            region.TestAndSet(nbr.v)) {
          next.push_back(nbr.v);
        }
      }
    }
    region_size += next.size();
    overflow = region_size > region_budget;
    frontier = std::move(next);
  }

  if (overflow) {
    // Locality lost: verify every focus candidate against the repaired
    // space. Still exact, still cheaper than a from-scratch space build.
    if (fell_back != nullptr) *fell_back = true;
    if (stats != nullptr) {
      stats->inc_candidates_checked += ev.FocusCandidates().size();
    }
    AnswerSet all = VerifyAcross(ev, ev.FocusCandidates(), nullptr, nullptr,
                                 stats, pool);
    QGP_CHECK_CANCEL(options.cancel);  // a fired token truncated `all`
    return all;
  }

  std::vector<VertexId> subset;
  for (VertexId v : ev.FocusCandidates()) {
    if (region.Test(v)) subset.push_back(v);
  }
  if (stats != nullptr) stats->inc_candidates_checked += subset.size();
  AnswerSet verified = VerifyAcross(ev, subset, nullptr, nullptr, stats, pool);
  QGP_CHECK_CANCEL(options.cancel);  // a fired token truncated `verified`
  AnswerSet answers;
  answers.reserve(previous_answers.size() + verified.size());
  for (VertexId v : previous_answers) {
    if (v < n && !region.Test(v)) answers.push_back(v);
  }
  // Kept (outside the region) and re-verified (inside it) are disjoint
  // sorted runs; merging preserves the canonical order.
  AnswerSet merged;
  merged.reserve(answers.size() + verified.size());
  std::merge(answers.begin(), answers.end(), verified.begin(), verified.end(),
             std::back_inserter(merged));
  return merged;
}

Result<AnswerSet> QMatch::EvaluateSubset(const Pattern& pattern,
                                         const Graph& g,
                                         std::span<const VertexId> focus_subset,
                                         const MatchOptions& options,
                                         MatchStats* stats, ThreadPool* pool,
                                         CandidateCache* cache) {
  return EvaluateImpl(pattern, g, focus_subset, options, stats, pool, cache);
}

Result<AnswerSet> QMatchNaiveEvaluate(const Pattern& pattern, const Graph& g,
                                      MatchOptions options,
                                      MatchStats* stats) {
  options.use_incremental_negation = false;
  return QMatch::Evaluate(pattern, g, options, stats);
}

}  // namespace qgp
