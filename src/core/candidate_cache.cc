#include "core/candidate_cache.h"

#include <algorithm>
#include <utility>

namespace qgp {

namespace {

void SortUnique(std::vector<Label>& labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
}

}  // namespace

CandidateSetRef MakeCandidateSet(std::vector<VertexId> members,
                                 size_t universe) {
  auto set = std::make_shared<CandidateSet>();
  set->members = std::move(members);
  set->bits.Resize(universe);
  for (VertexId v : set->members) set->bits.Set(v);
  return set;
}

CandidateSetRef ComputeLabelDegreeSet(const Graph& g, Label node_label,
                                      std::span<const Label> out_labels,
                                      std::span<const Label> in_labels) {
  std::vector<VertexId> members;
  auto span = g.VerticesWithLabel(node_label);
  members.reserve(span.size());
  for (VertexId v : span) {
    bool ok = true;
    for (Label l : out_labels) {
      if (g.OutDegreeWithLabel(v, l) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (Label l : in_labels) {
        if (g.InDegreeWithLabel(v, l) == 0) {
          ok = false;
          break;
        }
      }
    }
    if (ok) members.push_back(v);
  }
  return MakeCandidateSet(std::move(members), g.num_vertices());
}

size_t CandidateCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(k.node_label);
  mix(0x6f75);  // separator between label runs
  for (Label l : k.out_labels) mix(l + 1);
  mix(0x696e);
  for (Label l : k.in_labels) mix(l + 1);
  return static_cast<size_t>(h);
}

CandidateSetRef CandidateCache::Get(Label node_label,
                                    std::vector<Label> out_labels,
                                    std::vector<Label> in_labels) {
  SortUnique(out_labels);
  SortUnique(in_labels);
  Key key{node_label, std::move(out_labels), std::move(in_labels)};
  const uint64_t version = g_->version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pool_.find(key);
    if (it != pool_.end() && it->second.version == version) {
      ++stats_.hits;
      return it->second.set;
    }
  }
  // Compute outside the lock so distinct keys intern in parallel. A race
  // on one key computes twice; both results are identical and the first
  // insert establishes the shared identity. Stale entries (other graph
  // version) are recomputed and replaced, counted as misses.
  CandidateSetRef set =
      ComputeLabelDegreeSet(*g_, key.node_label, key.out_labels,
                            key.in_labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      pool_.emplace(std::move(key), Entry{set, version, 0});
  if (inserted) {
    it->second.epoch = ++epoch_counter_;
    ++stats_.misses;
  } else if (it->second.version != version) {
    it->second = Entry{std::move(set), version, ++epoch_counter_};
    ++stats_.misses;
  } else {
    ++stats_.hits;
  }
  return it->second.set;
}

size_t CandidateCache::EvictUnused() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->second.set.use_count() == 1) {
      it = pool_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

size_t CandidateCache::EvictStale() {
  const uint64_t version = g_->version();
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->second.version != version) {
      it = pool_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

uint64_t CandidateCache::MarkEpoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_counter_;
}

size_t CandidateCache::EvictInsertedSince(uint64_t mark) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->second.epoch > mark && it->second.set.use_count() == 1) {
      it = pool_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

size_t CandidateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.size();
}

CandidateCache::Stats CandidateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qgp
