#include "core/enum_matcher.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/candidate_space.h"
#include "core/generic_matcher.h"

namespace qgp {

Result<AnswerSet> EnumMatcher::EvaluatePositive(
    const Pattern& positive, const Graph& g, const MatchOptions& options,
    MatchStats* stats, std::span<const VertexId> focus_subset,
    CandidateCache* cache) {
  if (!positive.IsPositive()) {
    return Status::InvalidArgument("EvaluatePositive requires positive QGP");
  }
  // Plain candidate sets: label + existential degree refinement only.
  // These are exactly the sets the intern pool shares, so repeated builds
  // against one graph (the positified patterns, PEnum fragments) hit.
  MatchOptions plain = options;
  plain.use_simulation = false;
  plain.use_quantifier_pruning = false;
  QGP_ASSIGN_OR_RETURN(
      CandidateSpace cs,
      CandidateSpace::Build(positive, g, plain, stats, nullptr, cache));

  Pattern stratified = positive.Stratified();
  const PatternNodeId xo = positive.focus();
  // Views into the shared candidate sets — no per-node copies.
  std::vector<std::span<const VertexId>> candidate_sets(positive.num_nodes());
  for (PatternNodeId u = 0; u < positive.num_nodes(); ++u) {
    candidate_sets[u] = cs.stratified(u);
  }

  std::vector<VertexId> owned_focus_list;
  std::span<const VertexId> focus_list;
  if (focus_subset.empty()) {
    focus_list = cs.stratified(xo);
  } else {
    for (VertexId v : focus_subset) {
      if (cs.InStratified(xo, v)) owned_focus_list.push_back(v);
    }
    focus_list = owned_focus_list;
  }

  AnswerSet answers;
  // Per focus candidate: enumerate every embedding, then check counters —
  // the "enumerate first, verify afterwards" discipline of Enum. One
  // matcher serves every focus candidate; its working buffers are reused
  // across Enumerate calls.
  std::vector<std::vector<VertexId>> embeddings;
  GenericMatcher matcher(stratified, g, candidate_sets);
  size_t polled = 0;
  for (VertexId vx : focus_list) {
    // Every 16th focus (armed deadlines read the clock; cheap foci must
    // not pay that per iteration). Overshoot bound: 16 foci.
    if ((polled++ & 15) == 0) QGP_CHECK_CANCEL(options.cancel);
    if (stats != nullptr) ++stats->focus_candidates_checked;
    embeddings.clear();
    std::pair<PatternNodeId, VertexId> pin{xo, vx};
    GenericMatcher::SearchOptions sopts;
    sopts.pins = {&pin, 1};
    sopts.stats = stats;
    sopts.max_isomorphisms = options.max_isomorphisms;
    bool completed = matcher.Enumerate(
        sopts, [&](const std::vector<VertexId>& h) {
          embeddings.push_back(h);
          return true;
        });
    if (!completed) {
      return Status::Internal(
          "Enum exceeded the isomorphism cap; raise "
          "MatchOptions::max_isomorphisms");
    }
    if (embeddings.empty()) continue;

    // Me(vx, v, Q) materialized per quantified edge.
    std::vector<std::unordered_map<VertexId, std::unordered_set<VertexId>>>
        me(positive.num_edges());
    for (PatternEdgeId e = 0; e < positive.num_edges(); ++e) {
      if (positive.edge(e).quantifier.IsExistential()) continue;
      const PatternEdge& pe = positive.edge(e);
      for (const std::vector<VertexId>& h : embeddings) {
        me[e][h[pe.src]].insert(h[pe.dst]);
      }
    }
    for (const std::vector<VertexId>& h0 : embeddings) {
      bool good = true;
      for (PatternEdgeId e = 0; e < positive.num_edges() && good; ++e) {
        const PatternEdge& pe = positive.edge(e);
        if (pe.quantifier.IsExistential()) continue;
        uint64_t matched = me[e][h0[pe.src]].size();
        uint64_t total = g.OutDegreeWithLabel(h0[pe.src], pe.label);
        if (!pe.quantifier.Eval(matched, total)) good = false;
      }
      if (good) {
        answers.push_back(vx);
        break;
      }
    }
  }
  Canonicalize(answers);
  return answers;
}

Result<AnswerSet> EnumMatcher::Evaluate(const Pattern& pattern,
                                        const Graph& g,
                                        const MatchOptions& options,
                                        MatchStats* stats,
                                        CandidateCache* cache) {
  QGP_RETURN_IF_ERROR(pattern.Validate(options.max_quantified_per_path));
  auto pi = pattern.Pi();
  if (!pi.ok()) return pi.status();
  // One intern pool for Π(Q) and every Π(Q⁺ᵉ): the positified patterns
  // differ only around the negated edge, so most nodes hit. A
  // caller-provided pool extends the sharing across Evaluate calls.
  std::optional<CandidateCache> local_cache;
  if (cache == nullptr) cache = &local_cache.emplace(g);
  QGP_ASSIGN_OR_RETURN(
      AnswerSet answers,
      EvaluatePositive(pi.value().first, g, options, stats, {}, cache));
  for (PatternEdgeId e : pattern.NegatedEdgeIds()) {
    QGP_CHECK_CANCEL(options.cancel);
    QGP_ASSIGN_OR_RETURN(Pattern positified, pattern.Positify(e));
    auto pi_pos = positified.Pi();
    if (!pi_pos.ok()) return pi_pos.status();
    QGP_ASSIGN_OR_RETURN(
        AnswerSet negative,
        EvaluatePositive(pi_pos.value().first, g, options, stats, {}, cache));
    answers = SetDifference(answers, negative);
  }
  return answers;
}

}  // namespace qgp
