#include "core/pattern_analysis.h"

#include <deque>
#include <set>
#include <sstream>
#include <tuple>

namespace qgp {

std::string PatternSize::ToString() const {
  std::ostringstream out;
  out << '(' << num_nodes << ", " << num_edges << ", " << avg_quantifier
      << ", " << num_negated << ')';
  return out.str();
}

PatternSize ComputePatternSize(const Pattern& q) {
  PatternSize s;
  s.num_nodes = q.num_nodes();
  s.num_edges = q.num_edges();
  double sum = 0.0;
  size_t quantified = 0;
  for (PatternEdgeId e = 0; e < q.num_edges(); ++e) {
    const Quantifier& f = q.edge(e).quantifier;
    if (f.IsNegation()) {
      ++s.num_negated;
    } else if (!f.IsExistential()) {
      sum += f.kind() == QuantKind::kRatio ? f.percent()
                                           : static_cast<double>(f.count());
      ++quantified;
    }
  }
  s.avg_quantifier = quantified == 0 ? 0.0 : sum / static_cast<double>(quantified);
  return s;
}

std::vector<int> FocusDistances(const Pattern& q) {
  std::vector<int> dist(q.num_nodes(), -1);
  if (q.focus() == kInvalidPatternId) return dist;
  std::deque<PatternNodeId> queue{q.focus()};
  dist[q.focus()] = 0;
  while (!queue.empty()) {
    PatternNodeId u = queue.front();
    queue.pop_front();
    auto visit = [&](PatternNodeId w) {
      if (dist[w] < 0) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    };
    for (PatternEdgeId e : q.OutEdgeIds(u)) visit(q.edge(e).dst);
    for (PatternEdgeId e : q.InEdgeIds(u)) visit(q.edge(e).src);
  }
  return dist;
}

size_t NumQuantifiedEdges(const Pattern& q) {
  size_t count = 0;
  for (PatternEdgeId e = 0; e < q.num_edges(); ++e) {
    const Quantifier& f = q.edge(e).quantifier;
    if (!f.IsExistential() && !f.IsNegation()) ++count;
  }
  return count;
}

bool PatternsShareEdge(const Pattern& a, const Pattern& b) {
  using EdgeKey = std::tuple<std::string, std::string, Label>;
  std::set<EdgeKey> edges_a;
  for (PatternEdgeId e = 0; e < a.num_edges(); ++e) {
    const PatternEdge& pe = a.edge(e);
    const std::string& sn = a.node(pe.src).name;
    const std::string& dn = a.node(pe.dst).name;
    if (sn.empty() || dn.empty()) continue;
    edges_a.emplace(sn, dn, pe.label);
  }
  for (PatternEdgeId e = 0; e < b.num_edges(); ++e) {
    const PatternEdge& pe = b.edge(e);
    const std::string& sn = b.node(pe.src).name;
    const std::string& dn = b.node(pe.dst).name;
    if (sn.empty() || dn.empty()) continue;
    if (edges_a.count({sn, dn, pe.label}) != 0) return true;
  }
  return false;
}

}  // namespace qgp
