#ifndef QGP_CORE_EXPAND_H_
#define QGP_CORE_EXPAND_H_

#include "common/result.h"
#include "core/pattern.h"

namespace qgp {

/// The copy-expansion of Lemma 3's NP-membership proof: for each edge
/// e = (u,u') with numeric quantifier σ(e) >= p, make p copies of u' (and
/// of u''s downstream subtree), all with existential quantifiers.
///
/// LIMITATIONS (provided for study, not used by the matchers):
///  * only defined here for positive patterns with `>=` numeric
///    quantifiers whose stratified form is an out-tree rooted at the
///    focus (returns Unimplemented otherwise);
///  * NOT equivalent to the §2.2 semantics in general — the expansion
///    demands p node-disjoint witnesses, while §2.2 counts children that
///    may share descendants (DESIGN.md deviation 2; a regression test
///    exhibits a graph where the two differ).
Result<Pattern> ExpandNumericCopies(const Pattern& pattern);

}  // namespace qgp

#endif  // QGP_CORE_EXPAND_H_
