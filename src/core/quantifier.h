#ifndef QGP_CORE_QUANTIFIER_H_
#define QGP_CORE_QUANTIFIER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace qgp {

/// Comparison operator of a counting quantifier. `>` is normalized to
/// `>= p+1` by the matchers (§4.1), but is preserved syntactically.
enum class QuantOp { kGe, kEq, kGt };

/// The three syntactic forms of f(e) (§2.2): numeric `σ(e) ⊙ p`, ratio
/// `σ(e) ⊙ p%`, and the negated edge `σ(e) = 0`.
enum class QuantKind { kNumeric, kRatio, kNegation };

/// A counting quantifier attached to one pattern edge.
///
/// Semantics at a match h0 with focus image vx, edge e = (u,u'), v = h0(u):
///  - numeric:  |Me(vx, v, Q)| ⊙ p
///  - ratio:    |Me(vx, v, Q)| / |Me(v)| ⊙ p%
///  - negation: |Me(vx, v, Q)| = 0  (handled via Π(Q) / Q⁺ᵉ set difference)
///
/// The default-constructed quantifier is existential (`>= 1`), matching the
/// paper's convention that unannotated edges mean σ(e) ≥ 1.
class Quantifier {
 public:
  /// Existential quantification: σ(e) >= 1.
  Quantifier() : kind_(QuantKind::kNumeric), op_(QuantOp::kGe), count_(1) {}

  /// σ(e) ⊙ p for a positive integer p.
  static Quantifier Numeric(QuantOp op, uint32_t p) {
    Quantifier q;
    q.kind_ = QuantKind::kNumeric;
    q.op_ = op;
    q.count_ = p;
    return q;
  }

  /// σ(e) ⊙ p% for p in (0, 100].
  static Quantifier Ratio(QuantOp op, double percent) {
    Quantifier q;
    q.kind_ = QuantKind::kRatio;
    q.op_ = op;
    q.percent_ = percent;
    return q;
  }

  /// Negated edge: σ(e) = 0.
  static Quantifier Negation() {
    Quantifier q;
    q.kind_ = QuantKind::kNegation;
    q.op_ = QuantOp::kEq;
    q.count_ = 0;
    return q;
  }

  /// Universal quantification sugar: σ(e) = 100%.
  static Quantifier Universal() { return Ratio(QuantOp::kEq, 100.0); }

  QuantKind kind() const { return kind_; }
  QuantOp op() const { return op_; }

  /// Numeric threshold p. Valid when kind() == kNumeric.
  uint32_t count() const { return count_; }

  /// Ratio threshold p (percent). Valid when kind() == kRatio.
  double percent() const { return percent_; }

  /// True for the default σ(e) >= 1.
  bool IsExistential() const {
    return kind_ == QuantKind::kNumeric && op_ == QuantOp::kGe && count_ == 1;
  }

  /// True for σ(e) = 0.
  bool IsNegation() const { return kind_ == QuantKind::kNegation; }

  /// Evaluates the quantifier given the realized child count and, for
  /// ratios, the denominator |Me(v)|. A ratio with total == 0 is false
  /// (it cannot arise at a real match: an isomorphism forces >= 1 child).
  bool Eval(uint64_t matched, uint64_t total) const;

  /// Smallest child count that could still satisfy the quantifier at a
  /// vertex whose |Me(v)| equals `total`; nullopt when unsatisfiable
  /// (e.g. `= 40%` of 3 children, or negation). Used by the upper-bound
  /// pruning rules (§4.1 / Appendix B). Note §4.1's ⌊·⌋ is corrected to a
  /// ceiling for `>=` — see DESIGN.md deviation 1.
  std::optional<uint64_t> MinCountNeeded(uint64_t total) const;

  /// For `>=`-style quantifiers, the count at which further counting can
  /// stop early (monotone satisfaction); nullopt when exact counting is
  /// required (`=` forms need the exact count).
  std::optional<uint64_t> EarlyStopCount(uint64_t total) const;

  /// Syntax used by the parser/printer: ">=3", "=0", ">=80%", "=100%".
  std::string ToString() const;

  /// Structural validity: ratio in (0,100], numeric p >= 1 (p = 0 only as
  /// negation), `>` not combined with negation.
  Status Validate() const;

  friend bool operator==(const Quantifier& a, const Quantifier& b) {
    if (a.kind_ != b.kind_ || a.op_ != b.op_) return false;
    if (a.kind_ == QuantKind::kRatio) return a.percent_ == b.percent_;
    return a.count_ == b.count_;
  }

 private:
  QuantKind kind_;
  QuantOp op_;
  uint32_t count_ = 0;    // numeric p (also 0 for negation)
  double percent_ = 0.0;  // ratio p
};

}  // namespace qgp

#endif  // QGP_CORE_QUANTIFIER_H_
