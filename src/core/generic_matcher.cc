#include "core/generic_matcher.h"

#include <algorithm>

namespace qgp {

GenericMatcher::GenericMatcher(
    const Pattern& pattern, const Graph& g,
    const std::vector<std::vector<VertexId>>& candidates)
    : q_(pattern), g_(g), scratch_(&own_scratch_) {
  candidates_.reserve(candidates.size());
  for (const std::vector<VertexId>& c : candidates) candidates_.emplace_back(c);
}

GenericMatcher::GenericMatcher(const Pattern& pattern, const Graph& g,
                               std::vector<std::span<const VertexId>> candidates,
                               Scratch* scratch)
    : q_(pattern),
      g_(g),
      candidates_(std::move(candidates)),
      scratch_(scratch != nullptr ? scratch : &own_scratch_) {}

std::vector<GenericMatcher::Step> GenericMatcher::PlanOrder(
    std::span<const std::pair<PatternNodeId, VertexId>> pins) const {
  const size_t nq = q_.num_nodes();
  std::vector<char> placed(nq, 0);
  std::vector<Step> plan;
  plan.reserve(nq);
  for (const auto& [u, v] : pins) {
    (void)v;
    if (!placed[u]) {
      plan.push_back(Step{u, kInvalidPatternId, false});
      placed[u] = 1;
    }
  }
  // Greedy: repeatedly take the unplaced node adjacent to a placed one
  // with the smallest candidate list (SelectNext); fall back to the
  // globally smallest when the pattern part is disconnected.
  while (plan.size() < nq) {
    PatternNodeId best = kInvalidPatternId;
    PatternEdgeId best_edge = kInvalidPatternId;
    bool best_out = false;
    size_t best_size = SIZE_MAX;
    for (PatternNodeId u = 0; u < nq; ++u) {
      if (placed[u]) continue;
      // Is u adjacent to a placed node?
      PatternEdgeId anchor = kInvalidPatternId;
      bool anchor_out = false;
      for (PatternEdgeId e : q_.InEdgeIds(u)) {
        if (placed[q_.edge(e).src]) {
          anchor = e;
          anchor_out = true;  // assigned --e--> u
          break;
        }
      }
      if (anchor == kInvalidPatternId) {
        for (PatternEdgeId e : q_.OutEdgeIds(u)) {
          if (placed[q_.edge(e).dst]) {
            anchor = e;
            anchor_out = false;  // u --e--> assigned
            break;
          }
        }
      }
      size_t size = candidates_[u].size();
      bool better;
      if (best == kInvalidPatternId) {
        better = true;
      } else if ((anchor != kInvalidPatternId) !=
                 (best_edge != kInvalidPatternId)) {
        better = anchor != kInvalidPatternId;  // connectivity first
      } else {
        better = size < best_size;
      }
      if (better) {
        best = u;
        best_edge = anchor;
        best_out = anchor_out;
        best_size = size;
      }
    }
    plan.push_back(Step{best, best_edge, best_out});
    placed[best] = 1;
  }
  return plan;
}

bool GenericMatcher::Consistent(PatternNodeId u, VertexId v) const {
  for (PatternEdgeId e : q_.OutEdgeIds(u)) {
    // Self-loops: the endpoint IS u, whose assignment is being decided.
    if (q_.edge(e).dst == u) {
      if (!g_.HasEdge(v, v, q_.edge(e).label)) return false;
      continue;
    }
    VertexId w = assignment_[q_.edge(e).dst];
    if (w != kInvalidVertex && !g_.HasEdge(v, w, q_.edge(e).label)) {
      return false;
    }
  }
  for (PatternEdgeId e : q_.InEdgeIds(u)) {
    if (q_.edge(e).src == u) continue;  // handled above
    VertexId w = assignment_[q_.edge(e).src];
    if (w != kInvalidVertex && !g_.HasEdge(w, v, q_.edge(e).label)) {
      return false;
    }
  }
  return true;
}

bool GenericMatcher::Extend(size_t depth, const SearchOptions& options,
                            const Callback& cb) {
  if (stopped_) return false;
  if (depth == plan_.size()) {
    ++found_;
    if (options.stats != nullptr) ++options.stats->isomorphisms_enumerated;
    if (!cb(assignment_)) stopped_ = true;
    if (options.max_isomorphisms != 0 && found_ >= options.max_isomorphisms) {
      stopped_ = true;
      overflow_ = true;
    }
    return !stopped_;
  }
  const Step& step = plan_[depth];
  const PatternNodeId u = step.u;
  const std::span<const VertexId> cand = candidates_[u];

  auto try_vertex = [&](VertexId v) {
    if (scratch_->used.Test(v)) return;
    if (options.stats != nullptr) ++options.stats->search_extensions;
    if (!Consistent(u, v)) return;
    if (options.accept != nullptr && !(*options.accept)(u, v)) return;
    assignment_[u] = v;
    scratch_->used.Set(v);
    Extend(depth + 1, options, cb);
    scratch_->used.Clear(v);
    assignment_[u] = kInvalidVertex;
  };

  // Collect this step's candidate vertices: via the anchor adjacency when
  // available (IsExtend over Me(v)), else the full candidate list. The
  // label slice is sorted by endpoint, so this is a sorted-run
  // intersection — galloping when one side dwarfs the other.
  std::vector<VertexId>& frontier = scratch_->frontier_bufs[depth];
  frontier.clear();
  if (step.anchor_edge != kInvalidPatternId) {
    const PatternEdge& ae = q_.edge(step.anchor_edge);
    VertexId anchor_v =
        step.anchor_outgoing ? assignment_[ae.src] : assignment_[ae.dst];
    std::span<const Neighbor> adj =
        step.anchor_outgoing ? g_.OutNeighborsWithLabel(anchor_v, ae.label)
                             : g_.InNeighborsWithLabel(anchor_v, ae.label);
    IntersectSortedInto(adj, [](const Neighbor& n) { return n.v; }, cand,
                        frontier);
  } else {
    frontier.assign(cand.begin(), cand.end());
  }

  if (options.score != nullptr && frontier.size() > 1) {
    std::stable_sort(frontier.begin(), frontier.end(),
                     [&](VertexId a, VertexId b) {
                       return (*options.score)(u, a) > (*options.score)(u, b);
                     });
  }
  for (VertexId v : frontier) {
    try_vertex(v);
    if (stopped_) break;
  }
  return !stopped_;
}

bool GenericMatcher::Enumerate(const SearchOptions& options,
                               const Callback& cb) {
  const size_t nq = q_.num_nodes();
  assignment_.assign(nq, kInvalidVertex);
  scratch_->used.EnsureUniverse(g_.num_vertices());
  scratch_->used.ResetTouched();
  if (scratch_->frontier_bufs.size() < nq) scratch_->frontier_bufs.resize(nq);
  found_ = 0;
  stopped_ = false;
  overflow_ = false;

  // Validate and apply pins.
  for (const auto& [u, v] : options.pins) {
    if (u >= nq || v >= g_.num_vertices()) return true;  // vacuous
    const std::span<const VertexId> cand = candidates_[u];
    if (!std::binary_search(cand.begin(), cand.end(), v)) {
      return true;  // pin outside candidates: no embeddings
    }
    if (assignment_[u] != kInvalidVertex && assignment_[u] != v) return true;
    if (assignment_[u] == kInvalidVertex && scratch_->used.Test(v)) return true;
    assignment_[u] = v;
    scratch_->used.Set(v);
  }
  // Mutual consistency of pins (edges among pinned nodes).
  for (const auto& [u, v] : options.pins) {
    if (!Consistent(u, v)) return true;
    if (options.accept != nullptr && !(*options.accept)(u, v)) return true;
  }

  plan_ = PlanOrder(options.pins);
  // Skip the pinned prefix during extension.
  size_t start = options.pins.size();
  // Deduplicate: pins may repeat a node; recompute actual prefix length.
  {
    size_t prefix = 0;
    for (const Step& s : plan_) {
      if (assignment_[s.u] != kInvalidVertex) {
        ++prefix;
      } else {
        break;
      }
    }
    start = prefix;
  }
  // Temporarily rebase the plan so Extend() starts at the right depth.
  plan_.erase(plan_.begin(), plan_.begin() + static_cast<ptrdiff_t>(start));
  Extend(0, options, cb);
  return !overflow_;
}

bool GenericMatcher::FindAny(const SearchOptions& options,
                             std::vector<VertexId>* found) {
  bool any = false;
  SearchOptions opts = options;
  Callback cb = [&](const std::vector<VertexId>& assignment) {
    any = true;
    if (found != nullptr) *found = assignment;
    return false;  // stop at first
  };
  Enumerate(opts, cb);
  return any;
}

}  // namespace qgp
