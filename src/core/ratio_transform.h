#ifndef QGP_CORE_RATIO_TRANSFORM_H_
#define QGP_CORE_RATIO_TRANSFORM_H_

#include <cstdint>
#include <optional>

#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

/// Result of rewriting a ratio quantifier to its numeric equivalent at a
/// concrete vertex (§4.1 "Ratio aggregates"): given |Me(v)| = total, the
/// check `count/total ⊙ p%` becomes a numeric condition on count.
struct NumericForm {
  /// False when no count can satisfy the quantifier at this vertex
  /// (e.g. `= 40%` of 3 children).
  bool satisfiable = false;
  /// Smallest satisfying count (the paper's p'; computed with a ceiling
  /// for `>=` — DESIGN.md deviation 1).
  uint64_t min_count = 0;
  /// For `=` forms the count must equal min_count exactly.
  bool exact = false;
};

/// Rewrites `q` (any kind) at a vertex with `total` label-children.
NumericForm ToNumericAt(const Quantifier& q, uint64_t total);

/// Normalizes `σ(e) > p` to `σ(e) >= p+1` on numeric quantifiers (§4.1's
/// extension rule); ratio and other forms pass through unchanged.
Pattern NormalizeGtQuantifiers(const Pattern& pattern);

}  // namespace qgp

#endif  // QGP_CORE_RATIO_TRANSFORM_H_
