#ifndef QGP_CORE_ENUM_MATCHER_H_
#define QGP_CORE_ENUM_MATCHER_H_

#include <span>

#include "common/result.h"
#include "core/candidate_cache.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

/// The Enum baseline of §7: a conventional subgraph-isomorphism engine
/// ([35]-style, built on the same Fig. 4 skeleton as QMatch) that first
/// enumerates ALL matches of the stratified pattern and only then
/// verifies counting quantifiers. Negated edges are handled by fully
/// re-enumerating each positified pattern Π(Q⁺ᵉ).
///
/// Enum deliberately skips QMatch's quantifier-aware machinery (upper
/// bound pruning, early-stopped counting, incremental negation), which is
/// exactly the contrast Figures 8(a), 8(h)–8(k) measure.
class EnumMatcher {
 public:
  /// Full QGP evaluation. `cache` (optional, constructed for `g`)
  /// interns the plain label/degree candidate sets across Π(Q), every
  /// positified Π(Q⁺ᵉ), and — when the QueryEngine shares one cache
  /// across calls — across whole queries; when null, an evaluation-local
  /// pool still shares them between the positified patterns.
  static Result<AnswerSet> Evaluate(const Pattern& pattern, const Graph& g,
                                    const MatchOptions& options = {},
                                    MatchStats* stats = nullptr,
                                    CandidateCache* cache = nullptr);

  /// Positive-pattern evaluation, optionally restricted to a focus subset
  /// (PEnum's per-fragment entry point). Empty span = all candidates.
  /// `cache` (optional, constructed for `g`) interns the plain
  /// label/degree candidate sets this baseline builds, sharing them
  /// across the positified patterns of Evaluate and across a PEnum
  /// worker's calls on one fragment.
  static Result<AnswerSet> EvaluatePositive(
      const Pattern& positive, const Graph& g, const MatchOptions& options,
      MatchStats* stats, std::span<const VertexId> focus_subset = {},
      CandidateCache* cache = nullptr);
};

}  // namespace qgp

#endif  // QGP_CORE_ENUM_MATCHER_H_
