#include "core/naive_matcher.h"

#include <map>
#include <set>
#include <utility>

namespace qgp {

namespace {

constexpr uint64_t kDefaultIsoCap = 5'000'000;

// Exhaustive enumeration of stratified-pattern isomorphisms. Pattern nodes
// are assigned in a BFS-from-focus order so each step is edge-checked
// against already-assigned neighbors.
class Enumerator {
 public:
  Enumerator(const Pattern& q, const Graph& g, uint64_t cap,
             const CancelToken* cancel)
      : q_(q), g_(g), cap_(cap), cancel_(cancel) {
    order_ = BfsOrder();
    assignment_.assign(q_.num_nodes(), kInvalidVertex);
    used_.assign(g_.num_vertices(), 0);
  }

  // Runs the enumeration; returns false if the cap was exceeded or the
  // cancel token fired (cancelled() tells the two apart).
  bool Run() {
    Extend(0);
    return !overflow_ && !cancelled_;
  }

  bool cancelled() const { return cancelled_; }

  // All complete isomorphisms found (pattern node -> graph vertex).
  const std::vector<std::vector<VertexId>>& isomorphisms() const {
    return isos_;
  }

 private:
  std::vector<PatternNodeId> BfsOrder() const {
    std::vector<PatternNodeId> order;
    std::vector<char> seen(q_.num_nodes(), 0);
    // Start from the focus, then append any unreached node (validated
    // patterns are connected; this is a fallback for test patterns).
    std::vector<PatternNodeId> queue{q_.focus()};
    seen[q_.focus()] = 1;
    size_t head = 0;
    while (head < queue.size()) {
      PatternNodeId u = queue[head++];
      order.push_back(u);
      auto visit = [&](PatternNodeId w) {
        if (!seen[w]) {
          seen[w] = 1;
          queue.push_back(w);
        }
      };
      for (PatternEdgeId e : q_.OutEdgeIds(u)) visit(q_.edge(e).dst);
      for (PatternEdgeId e : q_.InEdgeIds(u)) visit(q_.edge(e).src);
    }
    for (PatternNodeId u = 0; u < q_.num_nodes(); ++u) {
      if (!seen[u]) order.push_back(u);
    }
    return order;
  }

  bool EdgesConsistent(PatternNodeId u, VertexId v) const {
    for (PatternEdgeId e : q_.OutEdgeIds(u)) {
      // Self-loops: the other endpoint IS u, currently being assigned.
      if (q_.edge(e).dst == u) {
        if (!g_.HasEdge(v, v, q_.edge(e).label)) return false;
        continue;
      }
      VertexId w = assignment_[q_.edge(e).dst];
      if (w != kInvalidVertex && !g_.HasEdge(v, w, q_.edge(e).label)) {
        return false;
      }
    }
    for (PatternEdgeId e : q_.InEdgeIds(u)) {
      if (q_.edge(e).src == u) continue;  // handled above
      VertexId w = assignment_[q_.edge(e).src];
      if (w != kInvalidVertex && !g_.HasEdge(w, v, q_.edge(e).label)) {
        return false;
      }
    }
    return true;
  }

  void Extend(size_t depth) {
    if (overflow_ || cancelled_) return;
    // Cancellation point every ~1024 extension calls: the recursion has
    // no natural per-focus boundary, so a call counter keeps the poll
    // off the hot path while bounding the overshoot.
    if (cancel_ != nullptr && (++extend_calls_ & 1023) == 0 &&
        cancel_->ShouldStop()) {
      cancelled_ = true;
      return;
    }
    if (depth == order_.size()) {
      isos_.push_back(assignment_);
      if (isos_.size() > cap_) overflow_ = true;
      return;
    }
    PatternNodeId u = order_[depth];
    for (VertexId v : g_.VerticesWithLabel(q_.node(u).label)) {
      if (used_[v]) continue;
      if (!EdgesConsistent(u, v)) continue;
      assignment_[u] = v;
      used_[v] = 1;
      Extend(depth + 1);
      used_[v] = 0;
      assignment_[u] = kInvalidVertex;
      if (overflow_ || cancelled_) return;
    }
  }

  const Pattern& q_;
  const Graph& g_;
  uint64_t cap_;
  const CancelToken* cancel_;
  uint64_t extend_calls_ = 0;
  std::vector<PatternNodeId> order_;
  std::vector<VertexId> assignment_;
  std::vector<char> used_;
  std::vector<std::vector<VertexId>> isos_;
  bool overflow_ = false;
  bool cancelled_ = false;
};

}  // namespace

Result<AnswerSet> NaiveMatcher::EvaluatePositive(const Pattern& pattern,
                                                 const Graph& g,
                                                 uint64_t max_isomorphisms,
                                                 const CancelToken* cancel) {
  if (!pattern.IsPositive()) {
    return Status::InvalidArgument(
        "EvaluatePositive requires a positive pattern");
  }
  Pattern stratified = pattern.Stratified();
  Enumerator enumerator(stratified, g,
                        max_isomorphisms == 0 ? kDefaultIsoCap
                                              : max_isomorphisms,
                        cancel);
  if (!enumerator.Run()) {
    if (enumerator.cancelled()) return cancel->ToStatus();
    return Status::Internal("naive matcher exceeded the isomorphism cap");
  }

  // Me(vx, v, Q) materialized per (edge, vx, v).
  using Key = std::pair<VertexId, VertexId>;  // (vx, v)
  std::vector<std::map<Key, std::set<VertexId>>> me(pattern.num_edges());
  const PatternNodeId xo = pattern.focus();
  for (const std::vector<VertexId>& h : enumerator.isomorphisms()) {
    for (PatternEdgeId e = 0; e < pattern.num_edges(); ++e) {
      const PatternEdge& pe = pattern.edge(e);
      me[e][{h[xo], h[pe.src]}].insert(h[pe.dst]);
    }
  }

  AnswerSet answers;
  for (const std::vector<VertexId>& h0 : enumerator.isomorphisms()) {
    bool good = true;
    for (PatternEdgeId e = 0; e < pattern.num_edges() && good; ++e) {
      const PatternEdge& pe = pattern.edge(e);
      const Quantifier& f = pe.quantifier;
      if (f.IsExistential()) continue;  // implied by h0 itself
      uint64_t matched = me[e][{h0[xo], h0[pe.src]}].size();
      uint64_t total = g.OutDegreeWithLabel(h0[pe.src], pe.label);
      if (!f.Eval(matched, total)) good = false;
    }
    if (good) answers.push_back(h0[xo]);
  }
  Canonicalize(answers);
  return answers;
}

Result<AnswerSet> NaiveMatcher::Evaluate(const Pattern& pattern,
                                         const Graph& g,
                                         const MatchOptions& options) {
  QGP_RETURN_IF_ERROR(pattern.Validate(options.max_quantified_per_path));
  uint64_t cap =
      options.max_isomorphisms == 0 ? kDefaultIsoCap : options.max_isomorphisms;

  auto pi_result = pattern.Pi();
  if (!pi_result.ok()) return pi_result.status();
  const Pattern& pi = pi_result.value().first;

  QGP_ASSIGN_OR_RETURN(AnswerSet answers,
                       EvaluatePositive(pi, g, cap, options.cancel));

  for (PatternEdgeId e : pattern.NegatedEdgeIds()) {
    QGP_CHECK_CANCEL(options.cancel);
    QGP_ASSIGN_OR_RETURN(Pattern positified, pattern.Positify(e));
    auto pi_pos = positified.Pi();
    if (!pi_pos.ok()) return pi_pos.status();
    QGP_ASSIGN_OR_RETURN(
        AnswerSet negative,
        EvaluatePositive(pi_pos.value().first, g, cap, options.cancel));
    answers = SetDifference(answers, negative);
  }
  return answers;
}

}  // namespace qgp
