#ifndef QGP_CORE_PATTERN_PARSER_H_
#define QGP_CORE_PATTERN_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "core/pattern.h"
#include "graph/label_dict.h"

namespace qgp {

/// Line-oriented text syntax for QGPs:
///
///   # Q2 from the paper (Fig. 1)
///   node xo person
///   node z  person
///   node r  redmi_2a
///   edge xo z follow =100%
///   edge z  r recom
///   focus xo
///
/// Records:
///   node <name> <node-label>
///   edge <src-name> <dst-name> <edge-label> [<quantifier>]
///   focus <name>
///
/// Quantifiers: ">=N", "=N", ">N" (numeric), ">=P%", "=P%", ">P%" (ratio),
/// "=0" (negated edge). Omitted means existential (">=1").
///
/// Labels are interned into the caller's LabelDict — pass the dictionary
/// of the graph the pattern will be matched against so label ids agree.
class PatternParser {
 public:
  /// Parses the textual form. Fails with InvalidArgument/Corruption on
  /// malformed input (unknown record, duplicate node name, missing focus).
  static Result<Pattern> Parse(std::string_view text, LabelDict& dict);

  /// Parses a single quantifier token ("=0", ">=80%", ...).
  static Result<Quantifier> ParseQuantifier(std::string_view token);

  /// Inverse of Parse: renders a pattern in the same syntax. Node names
  /// fall back to "n<i>" when empty.
  static std::string Serialize(const Pattern& pattern,
                               const LabelDict& dict);
};

}  // namespace qgp

#endif  // QGP_CORE_PATTERN_PARSER_H_
