#include "core/inc_qmatch.h"

namespace qgp {

AnswerSet IncQMatchEvaluate(
    const PositiveEvaluator& evaluator, const AnswerSet& cached_answers,
    const std::unordered_map<VertexId, FocusCache>& caches,
    MatchStats* stats) {
  AnswerSet members;
  for (VertexId vx : cached_answers) {
    if (stats != nullptr) ++stats->inc_candidates_checked;
    auto it = caches.find(vx);
    const FocusCache* warm = it == caches.end() ? nullptr : &it->second;
    if (evaluator.VerifyFocus(vx, warm, nullptr, stats)) {
      members.push_back(vx);
    }
  }
  Canonicalize(members);
  return members;
}

}  // namespace qgp
