#include "core/dmatch.h"

#include <algorithm>
#include <optional>

#include "core/generic_matcher.h"
#include "graph/graph_algorithms.h"

namespace qgp {

namespace {

inline uint64_t PairKey(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Per-thread scratch arena for the per-focus verification loop. QMatch's
// parallel map verifies thousands of focus candidates per pool thread;
// everything |V|-sized or heap-backed that a verification needs lives
// here and is recycled, so steady-state verification allocates nothing
// proportional to the graph.
struct DMatchScratch {
  BallScratch ball;
  std::vector<std::vector<VertexId>> local;  // Lπ(u) element storage
  std::vector<std::unordered_set<uint64_t>> witnessed;       // per edge
  std::vector<std::unordered_set<uint64_t>> failed;          // per edge
  std::vector<std::unordered_map<VertexId, int8_t>> good_memo;  // per edge
  std::unordered_map<uint64_t, double> score_memo;
  GenericMatcher::Scratch answer_search;
  GenericMatcher::Scratch witness_search;
};

DMatchScratch& ThreadScratch() {
  static thread_local DMatchScratch scratch;
  return scratch;
}

// Clears the first n containers, keeping their allocations (buckets,
// capacity) for the next focus candidate.
template <typename C>
void ResizeAndClear(std::vector<C>& v, size_t n) {
  if (v.size() < n) v.resize(n);
  for (size_t i = 0; i < n; ++i) v[i].clear();
}

// Per-focus verification state: local candidate sets, witness memos and
// quantifier goodness, evaluated lazily during the answer search. Buffers
// are borrowed from the thread's DMatchScratch.
class FocusVerifier {
 public:
  FocusVerifier(const Pattern& pattern, const Pattern& stratified,
                const Graph& g, const CandidateSpace& cs,
                const MatchOptions& options,
                const std::vector<PatternEdgeId>& edge_to_original,
                size_t num_original_edges,
                const std::vector<std::vector<PatternEdgeId>>& quantified_out,
                const DynamicBitset& pattern_edge_labels, size_t ball_limit,
                MatchStats* stats, DMatchScratch& scratch)
      : q_(pattern),
        strat_(stratified),
        g_(g),
        cs_(cs),
        options_(options),
        edge_to_original_(edge_to_original),
        num_original_edges_(num_original_edges),
        quantified_out_(quantified_out),
        pattern_edge_labels_(pattern_edge_labels),
        ball_limit_(ball_limit),
        stats_(stats),
        s_(scratch) {}

  bool Verify(VertexId vx, int radius, const FocusCache* warm,
              FocusCache* cache_out) {
    vx_ = vx;
    // (1) Neighborhood ball: everything an embedding pinned at vx can
    // touch lies within `radius` undirected hops of pattern-labeled
    // edges (§5.1). Hubs can make the ball cover most of G; past the
    // limit the verifier falls back to global candidate sets, which is
    // equally sound (the ball only narrows the search).
    std::span<const uint64_t> ball_words;
    if (warm != nullptr && warm->ball_complete && warm->radius >= radius &&
        warm->ball_filter_fingerprint == pattern_edge_labels_.Fingerprint() &&
        !warm->ball.empty()) {
      ball_ = warm->ball;
      ball_complete_ = true;
    } else {
      ball_ = KHopBallFilteredScratch(g_, vx, radius, pattern_edge_labels_,
                                      ball_limit_, &s_.ball, &ball_complete_);
      // The extraction's visited set holds exactly the ball members and
      // doubles as the membership bitset for the restriction kernels.
      if (ball_complete_) ball_words = s_.ball.visited.words();
      if (stats_ != nullptr) ++stats_->balls_built;
    }
    // (2) Seed memos (before any early return: Finish reads them).
    ResizeAndClear(s_.witnessed, q_.num_edges());
    ResizeAndClear(s_.failed, q_.num_edges());
    if (warm != nullptr && !warm->failed_by_original_edge.empty()) {
      for (PatternEdgeId e = 0; e < q_.num_edges(); ++e) {
        PatternEdgeId orig = edge_to_original_[e];
        if (orig < warm->failed_by_original_edge.size()) {
          s_.failed[e] = warm->failed_by_original_edge[orig];
        }
      }
    }
    ResizeAndClear(s_.good_memo, q_.num_edges());
    s_.score_memo.clear();
    // (3) Local stratified candidate sets Lπ(u), as views: restricted
    // sets point into the scratch arena, the global fallback points at
    // the candidate space itself (no copy either way).
    local_views_.assign(q_.num_nodes(), {});
    if (ball_complete_) {
      cs_.RestrictStratifiedToBall(ball_, ball_words, &s_.local);
      for (PatternNodeId u = 0; u < q_.num_nodes(); ++u) {
        local_views_[u] = s_.local[u];
      }
    } else {
      for (PatternNodeId u = 0; u < q_.num_nodes(); ++u) {
        local_views_[u] = cs_.stratified(u);
      }
    }
    focus_pin_ = vx;
    local_views_[q_.focus()] = std::span<const VertexId>(&focus_pin_, 1);
    for (std::span<const VertexId> l : local_views_) {
      if (l.empty()) return Finish(false, radius, cache_out);
    }

    // (4) Answer search: an embedding of Qπ pinned at vx whose every node
    // is quantifier-good. Witness searches run NESTED inside this
    // search's accept callback, so they need their own matcher (and
    // scratch); witness searches themselves never nest.
    answer_matcher_.emplace(strat_, g_, local_views_, &s_.answer_search);
    witness_matcher_.emplace(strat_, g_, local_views_, &s_.witness_search);
    std::pair<PatternNodeId, VertexId> pin{q_.focus(), vx};
    GenericMatcher::Accept accept = [this](PatternNodeId u, VertexId v) {
      return IsGood(u, v);
    };
    GenericMatcher::Score score = [this](PatternNodeId u, VertexId v) {
      return Potential(u, v);
    };
    GenericMatcher::SearchOptions sopts;
    sopts.pins = {&pin, 1};
    sopts.accept = &accept;
    if (options_.use_potential_ordering) sopts.score = &score;
    sopts.stats = stats_;
    bool found = answer_matcher_->FindAny(sopts, &witness_);
    return Finish(found, radius, cache_out);
  }

 private:
  bool Finish(bool found, int radius, FocusCache* cache_out) {
    if (cache_out != nullptr) {
      cache_out->radius = radius;
      cache_out->ball_complete = ball_complete_;
      cache_out->ball_filter_fingerprint =
          pattern_edge_labels_.Fingerprint();
      if (ball_complete_) cache_out->ball.assign(ball_.begin(), ball_.end());
      cache_out->failed_by_original_edge.assign(num_original_edges_, {});
      for (PatternEdgeId e = 0; e < q_.num_edges(); ++e) {
        PatternEdgeId orig = edge_to_original_[e];
        if (orig < num_original_edges_) {
          auto& dst = cache_out->failed_by_original_edge[orig];
          for (uint64_t k : s_.failed[e]) dst.insert(k);
        }
      }
      cache_out->witness = found ? witness_ : std::vector<VertexId>{};
    }
    return found;
  }

  bool InLocal(PatternNodeId u, VertexId v) const {
    const std::span<const VertexId> l = local_views_[u];
    return std::binary_search(l.begin(), l.end(), v);
  }

  // Is there an embedding of Qπ with h(xo)=vx, h(u)=v, h(u')=v'? Complete
  // within the ball because any embedding pinned at vx stays inside it.
  // A found embedding witnesses a pair for EVERY edge, which the memo
  // exploits across checks.
  bool WitnessPair(PatternEdgeId e, VertexId v, VertexId v2) {
    const uint64_t key = PairKey(v, v2);
    if (s_.witnessed[e].count(key) != 0) return true;
    if (s_.failed[e].count(key) != 0) return false;
    if (stats_ != nullptr) ++stats_->witness_searches;
    const PatternEdge& pe = q_.edge(e);
    std::pair<PatternNodeId, VertexId> pins[3] = {
        {q_.focus(), vx_}, {pe.src, v}, {pe.dst, v2}};
    GenericMatcher::SearchOptions sopts;
    sopts.pins = pins;
    sopts.stats = stats_;
    if (witness_matcher_->FindAny(sopts, &witness_buf_)) {
      for (PatternEdgeId e2 = 0; e2 < q_.num_edges(); ++e2) {
        const PatternEdge& pe2 = q_.edge(e2);
        s_.witnessed[e2].insert(
            PairKey(witness_buf_[pe2.src], witness_buf_[pe2.dst]));
      }
      return true;
    }
    s_.failed[e].insert(key);
    return false;
  }

  // Does v satisfy the counting quantifier of edge e = (u, u') given the
  // focus pin? Counts distinct witnessed children (the §2.2 Me set) with
  // early stop on monotone thresholds.
  bool CountSatisfies(PatternEdgeId e, VertexId v) {
    const PatternEdge& pe = q_.edge(e);
    const Quantifier& f = pe.quantifier;
    const uint64_t total = g_.OutDegreeWithLabel(v, pe.label);
    std::optional<uint64_t> needed = f.MinCountNeeded(total);
    if (!needed.has_value()) return false;  // unsatisfiable at v
    std::optional<uint64_t> early;
    if (options_.early_stop_counting) early = f.EarlyStopCount(total);
    uint64_t count = 0;
    for (const Neighbor& n : g_.OutNeighborsWithLabel(v, pe.label)) {
      if (!InLocal(pe.dst, n.v)) continue;
      if (WitnessPair(e, v, n.v)) {
        ++count;
        if (early.has_value() && count >= *early) return true;
      }
    }
    return f.Eval(count, total);
  }

  // Quantifier goodness of (u, v), memoized per edge.
  bool IsGood(PatternNodeId u, VertexId v) {
    for (PatternEdgeId e : quantified_out_[u]) {
      auto [it, inserted] = s_.good_memo[e].try_emplace(v, 0);
      if (inserted) it->second = CountSatisfies(e, v) ? 1 : -1;
      if (it->second < 0) return false;
    }
    return true;
  }

  // Appendix-B potential: candidates whose quantifier upper bounds sit
  // well above their thresholds are tried first.
  double Potential(PatternNodeId u, VertexId v) {
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    auto it = s_.score_memo.find(key);
    if (it != s_.score_memo.end()) return it->second;
    double score = 0.0;
    for (PatternEdgeId e : quantified_out_[u]) {
      const PatternEdge& pe = q_.edge(e);
      uint64_t total = g_.OutDegreeWithLabel(v, pe.label);
      std::optional<uint64_t> needed = pe.quantifier.MinCountNeeded(total);
      if (!needed.has_value() || *needed == 0) continue;
      uint64_t ub = 0;
      for (const Neighbor& n : g_.OutNeighborsWithLabel(v, pe.label)) {
        if (InLocal(pe.dst, n.v)) ++ub;
      }
      score += static_cast<double>(ub) / static_cast<double>(*needed);
    }
    s_.score_memo.emplace(key, score);
    return score;
  }

  const Pattern& q_;
  const Pattern& strat_;
  const Graph& g_;
  const CandidateSpace& cs_;
  const MatchOptions& options_;
  const std::vector<PatternEdgeId>& edge_to_original_;
  const size_t num_original_edges_;
  const std::vector<std::vector<PatternEdgeId>>& quantified_out_;
  const DynamicBitset& pattern_edge_labels_;
  const size_t ball_limit_;
  MatchStats* stats_;
  DMatchScratch& s_;

  VertexId vx_ = kInvalidVertex;
  VertexId focus_pin_ = kInvalidVertex;  // storage behind the focus view
  std::span<const VertexId> ball_;       // into scratch or the warm cache
  bool ball_complete_ = true;
  std::vector<std::span<const VertexId>> local_views_;
  std::optional<GenericMatcher> answer_matcher_;
  std::optional<GenericMatcher> witness_matcher_;
  std::vector<VertexId> witness_;      // the all-good answer embedding
  std::vector<VertexId> witness_buf_;  // pinned-pair search result
};

}  // namespace

Result<PositiveEvaluator> PositiveEvaluator::Create(
    Pattern positive, const Graph& g, MatchOptions options,
    const std::vector<PatternEdgeId>* edge_to_original,
    size_t num_original_edges, const DynamicBitset* ball_label_filter,
    ThreadPool* pool, CandidateCache* cache, const SpaceRepairHint* repair) {
  if (!positive.IsPositive()) {
    return Status::InvalidArgument(
        "PositiveEvaluator requires a positive pattern");
  }
  QGP_RETURN_IF_ERROR(positive.Validate(options.max_quantified_per_path));
  PositiveEvaluator ev;
  ev.pattern_ = std::move(positive);
  ev.stratified_ = ev.pattern_.Stratified();
  ev.g_ = &g;
  ev.options_ = options;
  ev.radius_ = ev.pattern_.Radius();
  if (edge_to_original != nullptr) {
    ev.edge_to_original_ = *edge_to_original;
  } else {
    ev.edge_to_original_.resize(ev.pattern_.num_edges());
    for (PatternEdgeId e = 0; e < ev.pattern_.num_edges(); ++e) {
      ev.edge_to_original_[e] = e;
    }
  }
  ev.num_original_edges_ =
      num_original_edges == 0 ? ev.pattern_.num_edges() : num_original_edges;
  ev.quantified_out_.resize(ev.pattern_.num_nodes());
  for (PatternNodeId u = 0; u < ev.pattern_.num_nodes(); ++u) {
    for (PatternEdgeId e : ev.pattern_.OutEdgeIds(u)) {
      if (!ev.pattern_.edge(e).quantifier.IsExistential()) {
        ev.quantified_out_[u].push_back(e);
      }
    }
  }
  if (ball_label_filter != nullptr) {
    ev.pattern_edge_labels_ = *ball_label_filter;
  } else {
    ev.pattern_edge_labels_.Resize(g.dict().size());
    for (PatternEdgeId e = 0; e < ev.pattern_.num_edges(); ++e) {
      Label l = ev.pattern_.edge(e).label;
      if (l < ev.pattern_edge_labels_.size()) ev.pattern_edge_labels_.Set(l);
    }
  }
  ev.ball_limit_ = options.ball_limit != 0
                       ? options.ball_limit
                       : std::max<size_t>(4096, g.num_vertices() / 8);
  if (repair != nullptr && repair->previous != nullptr &&
      repair->delta != nullptr) {
    QGP_ASSIGN_OR_RETURN(
        ev.cs_,
        CandidateSpace::Repair(*repair->previous, ev.pattern_, g,
                               *repair->delta, options, nullptr, pool, cache,
                               repair->info));
  } else {
    QGP_ASSIGN_OR_RETURN(
        ev.cs_,
        CandidateSpace::Build(ev.pattern_, g, options, nullptr, pool, cache));
  }
  return ev;
}

uint64_t PositiveEvaluator::FocusCostHint(VertexId vx) const {
  return static_cast<uint64_t>(g_->OutDegree(vx)) + g_->InDegree(vx);
}

bool PositiveEvaluator::VerifyFocus(VertexId vx, const FocusCache* warm,
                                    FocusCache* cache_out,
                                    MatchStats* stats) const {
  if (!cs_.InGood(pattern_.focus(), vx)) return false;
  FocusVerifier verifier(pattern_, stratified_, *g_, cs_, options_,
                         edge_to_original_, num_original_edges_,
                         quantified_out_, pattern_edge_labels_, ball_limit_,
                         stats, ThreadScratch());
  if (stats != nullptr) ++stats->focus_candidates_checked;
  return verifier.Verify(vx, radius_, warm, cache_out);
}

AnswerSet PositiveEvaluator::EvaluateAll(
    MatchStats* stats,
    std::unordered_map<VertexId, FocusCache>* caches) const {
  return EvaluateSubset(FocusCandidates(), stats, caches);
}

AnswerSet PositiveEvaluator::EvaluateSubset(
    std::span<const VertexId> focus_subset, MatchStats* stats,
    std::unordered_map<VertexId, FocusCache>* caches) const {
  AnswerSet answers;
  for (VertexId vx : focus_subset) {
    FocusCache cache;
    bool is_match =
        VerifyFocus(vx, nullptr, caches != nullptr ? &cache : nullptr, stats);
    if (is_match) {
      answers.push_back(vx);
      if (caches != nullptr) caches->emplace(vx, std::move(cache));
    }
  }
  Canonicalize(answers);
  return answers;
}

Result<AnswerSet> DMatchEvaluate(const Pattern& positive, const Graph& g,
                                 const MatchOptions& options,
                                 MatchStats* stats) {
  QGP_ASSIGN_OR_RETURN(PositiveEvaluator ev,
                       PositiveEvaluator::Create(positive, g, options));
  return ev.EvaluateAll(stats, nullptr);
}

}  // namespace qgp
