#include "core/match_types.h"

#include <algorithm>
#include <sstream>

namespace qgp {

void MatchStats::Add(const MatchStats& other) {
  isomorphisms_enumerated += other.isomorphisms_enumerated;
  witness_searches += other.witness_searches;
  search_extensions += other.search_extensions;
  candidates_initial += other.candidates_initial;
  candidates_pruned += other.candidates_pruned;
  focus_candidates_checked += other.focus_candidates_checked;
  inc_candidates_checked += other.inc_candidates_checked;
  balls_built += other.balls_built;
  scheduler_tasks += other.scheduler_tasks;
  scheduler_steals += other.scheduler_steals;
}

std::string MatchStats::ToString() const {
  std::ostringstream out;
  out << "isos=" << isomorphisms_enumerated
      << " witness=" << witness_searches << " ext=" << search_extensions
      << " cand0=" << candidates_initial << " pruned=" << candidates_pruned
      << " focus=" << focus_candidates_checked
      << " inc=" << inc_candidates_checked << " balls=" << balls_built
      << " sched_tasks=" << scheduler_tasks
      << " sched_steals=" << scheduler_steals;
  return out.str();
}

void Canonicalize(AnswerSet& answers) {
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
}

AnswerSet SetUnion(const AnswerSet& a, const AnswerSet& b) {
  AnswerSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

AnswerSet SetIntersection(const AnswerSet& a, const AnswerSet& b) {
  AnswerSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

AnswerSet SetDifference(const AnswerSet& a, const AnswerSet& b) {
  AnswerSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace qgp
