#ifndef QGP_CORE_CANDIDATE_SPACE_H_
#define QGP_CORE_CANDIDATE_SPACE_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "core/candidate_cache.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

class ThreadPool;
struct GraphDeltaSummary;

/// Metadata a CandidateSpace::Repair call reports back to the engine.
struct CandidateRepairInfo {
  /// The gain region outgrew the budget and Repair degenerated to a full
  /// Build (result still exact).
  bool fell_back = false;
  /// Vertices explored by the gain-region sweep.
  size_t gain_region = 0;
  /// Vertices whose stratified candidacy changed for at least one pattern
  /// node (sorted, unique). Together with the delta's touched vertices
  /// this seeds the engine's affected-region re-verification.
  std::vector<VertexId> changed;
};

/// Global candidate sets for one positive pattern against one graph,
/// maintaining the distinction the §2.2 semantics forces (DESIGN.md §2):
///
///  * `stratified` sets Cπ(u): vertices that may participate in ANY
///    isomorphism of Qπ — label filter plus (optionally) dual simulation.
///    Counting |Me(vx, v, Q)| must use these, because a counted child
///    need not satisfy its own quantifiers.
///
///  * `good` sets C(u) ⊆ Cπ(u): vertices that may additionally appear as
///    h0(u) in an ANSWER isomorphism — those whose quantifier upper bound
///    U(v,e) = |Me(v) ∩ Cπ(u')| can still reach the threshold of every
///    quantified out-edge e of u (the §4.1 / Appendix-B pruning rule,
///    with the ratio threshold evaluated per vertex). Goodness is a
///    one-shot filter over fixed Cπ — it must NOT cascade, or counts
///    would be under-estimated and answers lost.
///
/// Sets are stored as shared, immutable CandidateSet handles rather than
/// owned vectors: pattern nodes whose label/degree filters coincide share
/// one allocation (via the CandidateCache intern pool), a node's good set
/// aliases its stratified set whenever no quantifier pruning applies, and
/// handing sets to matchers or across threads is a refcount bump. The
/// accessors below are the stable API — callers see sorted spans and O(1)
/// membership tests regardless of which build path produced the set.
class CandidateSpace {
 public:
  /// Builds both set families. `pattern` must be positive.
  ///
  /// `pool` (optional) parallelizes construction: the dual-simulation
  /// rounds, the per-key label/degree filters, the membership bitsets and
  /// the good-set upper-bound checks all fan out across its workers. The
  /// result is bit-identical to the serial build at any thread count —
  /// parallel phases write disjoint slots against frozen inputs, and all
  /// cross-phase reductions (stats, compaction) stay sequential.
  ///
  /// `cache` (optional) interns label/degree sets across builds on the
  /// same graph; it must have been constructed for `g`.
  static Result<CandidateSpace> Build(const Pattern& pattern, const Graph& g,
                                      const MatchOptions& options,
                                      MatchStats* stats,
                                      ThreadPool* pool = nullptr,
                                      CandidateCache* cache = nullptr);

  /// Incrementally repairs `previous` — the space Build produced for the
  /// SAME pattern and options against the pre-delta graph — after `delta`
  /// was applied to `g`. Produces sets identical to a fresh Build (both
  /// converge to the same unique dual-simulation fixpoint, and the good
  /// filter is a pure function of the stratified sets), so `stats`
  /// contributions match a rebuild exactly; only the work differs:
  ///
  ///  * Deletions only shrink candidacy, so the old sets themselves are
  ///    valid over-approximations and re-seed the fixpoint directly
  ///    (filtered to still-label-valid members, which also drops
  ///    tombstones).
  ///  * Insertions can cascade candidacy gains, but any gain is connected
  ///    to an inserted edge/vertex through pattern-relevant-labeled edges
  ///    (else the greatest fixpoint of the old graph would already have
  ///    contained it), so a BFS over those labels from the delta's gain
  ///    sites bounds the gain region. If that region outgrows a budget
  ///    (~|V|/4), repair degenerates to a full Build — exact either way;
  ///    `info->fell_back` reports it.
  ///
  /// Patterns with no relevant overlap with the delta reuse every set of
  /// `previous` unchanged (shared handles, zero recompute).
  static Result<CandidateSpace> Repair(const CandidateSpace& previous,
                                       const Pattern& pattern, const Graph& g,
                                       const GraphDeltaSummary& delta,
                                       const MatchOptions& options,
                                       MatchStats* stats,
                                       ThreadPool* pool = nullptr,
                                       CandidateCache* cache = nullptr,
                                       CandidateRepairInfo* info = nullptr);

  /// Cπ(u), sorted ascending.
  std::span<const VertexId> stratified(PatternNodeId u) const {
    return stratified_[u]->members;
  }

  /// Good candidates for u, sorted ascending.
  std::span<const VertexId> good(PatternNodeId u) const {
    return good_[u]->members;
  }

  /// Shared handles, for callers that want to hold a set beyond this
  /// CandidateSpace's lifetime or assert interning (tests, caches).
  const CandidateSetRef& stratified_set(PatternNodeId u) const {
    return stratified_[u];
  }
  const CandidateSetRef& good_set(PatternNodeId u) const { return good_[u]; }

  /// O(1) membership tests.
  bool InStratified(PatternNodeId u, VertexId v) const {
    return stratified_[u]->bits.Test(v);
  }
  bool InGood(PatternNodeId u, VertexId v) const {
    return good_[u]->bits.Test(v);
  }

  /// Intersects every stratified set with a sorted vertex ball, producing
  /// the per-focus local sets Lπ(u) used by DMatch.
  std::vector<std::vector<VertexId>> RestrictStratifiedToBall(
      std::span<const VertexId> sorted_ball) const;

  /// Scratch-arena variant: writes each Lπ(u) into `(*out)[u]` (reusing
  /// its capacity) instead of allocating a fresh nest. `ball_words`, when
  /// non-empty, is the ball's membership bitset as raw words (e.g. from
  /// BallScratch::visited) and enables the dense word-AND path; pass an
  /// empty span when no bitset is at hand. Kernel choice per pattern node
  /// is a size-ratio heuristic: word-parallel AND when both sets are
  /// dense fractions of |V|, bitset probing of the smaller side when the
  /// sizes are skewed, galloping/linear merge otherwise.
  void RestrictStratifiedToBall(std::span<const VertexId> sorted_ball,
                                std::span<const uint64_t> ball_words,
                                std::vector<std::vector<VertexId>>* out) const;

  size_t num_pattern_nodes() const { return stratified_.size(); }

 private:
  std::vector<CandidateSetRef> stratified_;
  std::vector<CandidateSetRef> good_;  // good_[u] may alias stratified_[u]
};

}  // namespace qgp

#endif  // QGP_CORE_CANDIDATE_SPACE_H_
