#include "shard/sharded_engine.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <thread>
#include <tuple>
#include <utility>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "core/pattern_parser.h"
#include "graph/graph_algorithms.h"
#include "parallel/dpar.h"

namespace qgp::shard {

namespace {

/// The gather seam: hit once per shard while its slice is merged, so
/// tests can drop or delay a slice mid-gather deterministically.
Status GatherSeam() {
  QGP_FAILPOINT("shard.gather");
  return Status::Ok();
}

/// True iff the directed labeled edge exists in the (post-delta) graph.
bool EdgeExists(const Graph& g, VertexId src, VertexId dst, Label label) {
  if (src >= g.num_vertices() || dst >= g.num_vertices()) return false;
  for (const Neighbor& nb : g.OutNeighborsWithLabel(src, label)) {
    if (nb.v == dst) return true;
  }
  return false;
}

}  // namespace

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    Graph graph, const ShardedOptions& options) {
  DParConfig config;
  config.num_fragments = options.num_shards;
  config.d = options.d;
  config.balance_factor = options.balance_factor;
  QGP_ASSIGN_OR_RETURN(Partition partition, DPar(graph, config));
  return Create(std::move(graph), std::move(partition), options);
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    Graph graph, Partition partition, const ShardedOptions& options) {
  if (options.d <= 0) {
    return Status::InvalidArgument("ShardedOptions::d must be positive");
  }
  if (partition.d < options.d) {
    return Status::InvalidArgument(
        "partition preserves d = " + std::to_string(partition.d) +
        " hops, less than the requested serving depth " +
        std::to_string(options.d));
  }
  QGP_RETURN_IF_ERROR(partition.Validate(graph));
  const bool remote = !options.remote_ports.empty();
  if (remote && options.remote_ports.size() != partition.fragments.size()) {
    return Status::InvalidArgument(
        "remote_ports lists " + std::to_string(options.remote_ports.size()) +
        " ports for " + std::to_string(partition.fragments.size()) +
        " fragments");
  }
  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(std::move(graph), options));
  engine->shards_.reserve(partition.fragments.size());
  for (size_t i = 0; i < partition.fragments.size(); ++i) {
    Fragment& f = partition.fragments[i];
    ShardState state;
    state.local_to_global = f.sub.local_to_global;
    state.global_to_local = f.sub.global_to_local;
    state.owned_global = f.owned_global;
    if (remote) {
      service::ClientOptions copts;
      copts.read_timeout_ms = options.remote_read_timeout_ms;
      QGP_ASSIGN_OR_RETURN(
          service::ServiceClient client,
          service::ServiceClient::Connect(options.remote_ports[i],
                                          options.remote_host, copts));
      state.shard = std::make_unique<RemoteShard>(std::move(client));
    } else {
      state.shard = std::make_unique<InProcessShard>(
          MakeShardEngine(std::move(f.sub.graph), std::move(f.owned_local),
                          options.d, options.engine));
    }
    engine->shards_.push_back(std::move(state));
  }
  return engine;
}

Result<ShardedOutcome> ShardedEngine::Submit(const QuerySpec& spec) {
  std::lock_guard<std::mutex> admission(admission_mu_);
  if (degraded()) {
    return Status::Internal(
        "sharded engine is degraded (a shard rejected a routed delta); "
        "answers could be served from diverged fragments — rebuild the "
        "sharded engine");
  }
  QGP_RETURN_IF_ERROR(
      spec.pattern.Validate(spec.options.max_quantified_per_path));
  if (spec.pattern.Radius() > d_) {
    return Status::InvalidArgument(
        "pattern radius " + std::to_string(spec.pattern.Radius()) +
        " exceeds the partition's hop preservation d = " + std::to_string(d_) +
        "; rebuild the sharded engine with a larger d");
  }
  WallTimer timer;
  // One serialization against the master dict; every shard re-parses
  // against its own (the dicts may have diverged after routed deltas).
  const std::string pattern_text =
      PatternParser::Serialize(spec.pattern, graph_.dict());

  // Deadline plumbing. The query-level token bounds the whole
  // scatter-gather; per-shard tokens additionally bound each shard so
  // one stuck shard becomes a policy-visible failure, not a stuck
  // query.
  const CancelToken* caller = spec.options.cancel;
  std::optional<CancelToken> query_token;
  if (spec.timeout_ms > 0) {
    query_token.emplace(
        CancelToken::Clock::now() + std::chrono::milliseconds(spec.timeout_ms),
        caller);
  }
  const CancelToken* base = query_token.has_value() ? &*query_token : caller;
  std::deque<CancelToken> shard_tokens;  // deque: stable addresses
  const size_t n = shards_.size();
  std::vector<const CancelToken*> tokens(n, base);
  if (options_.shard_timeout_ms > 0) {
    const auto deadline = CancelToken::Clock::now() +
                          std::chrono::milliseconds(options_.shard_timeout_ms);
    for (size_t i = 0; i < n; ++i) {
      tokens[i] = &shard_tokens.emplace_back(deadline, base);
    }
  }

  auto run_one = [&](size_t i) -> Result<QueryOutcome> {
    QGP_FAILPOINT("shard.scatter");
    ShardQuery query;
    query.pattern_text = pattern_text;
    query.algo = spec.algo;
    query.options = spec.options;
    query.options.cancel = tokens[i];
    query.share_cache = spec.share_cache;
    query.timeout_ms = options_.shard_timeout_ms > 0 ? options_.shard_timeout_ms
                                                     : spec.timeout_ms;
    query.tag = spec.tag;
    return shards_[i].shard->Submit(query);
  };

  std::vector<std::optional<Result<QueryOutcome>>> results(n);
  {
    std::vector<std::thread> scatter;
    scatter.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      scatter.emplace_back([&, i] { results[i].emplace(run_one(i)); });
    }
    for (std::thread& t : scatter) t.join();
  }

  // The whole-query deadline / an explicit cancel beats any per-shard
  // policy: a cancelled coordinator reports kCancelled (or
  // kDeadlineExceeded), never a partial answer.
  if (base != nullptr && base->ShouldStopExact()) return base->ToStatus();

  ShardedOutcome out;
  out.tag = spec.tag;
  out.shards.resize(n);
  std::optional<Status> first_error;
  size_t failures = 0;
  for (size_t i = 0; i < n; ++i) {
    ShardSlice& slice = out.shards[i];
    slice.shard = i;
    Status failed = GatherSeam();
    Result<QueryOutcome>& r = *results[i];
    if (failed.ok() && !r.ok()) failed = r.status();
    if (failed.ok()) {
      const std::vector<VertexId>& l2g = shards_[i].local_to_global;
      QueryOutcome& q = r.value();
      slice.answers.reserve(q.answers.size());
      for (VertexId lv : q.answers) {
        if (lv >= l2g.size()) {
          // Not a policy matter: a shard answering outside its own id
          // space is corruption, whatever the failure policy says.
          return Status::Internal(
              "shard " + std::to_string(i) + " returned local id " +
              std::to_string(lv) + " outside its fragment (" +
              std::to_string(l2g.size()) + " vertices)");
        }
        slice.answers.push_back(l2g[lv]);
      }
      slice.ok = true;
      slice.stats = q.stats;
      slice.wall_ms = q.wall_ms;
      slice.algo = q.algo;
      out.stats.Add(q.stats);
      out.answers.insert(out.answers.end(), slice.answers.begin(),
                         slice.answers.end());
      continue;
    }
    if (failed.code() == StatusCode::kCancelled) return failed;
    slice.ok = false;
    slice.error_code = std::string(StatusCodeName(failed.code()));
    slice.error_message = failed.message();
    if (!first_error.has_value()) first_error = failed;
    ++failures;
  }
  if (failures > 0) {
    if (options_.failure_policy == FailurePolicy::kFailQuery ||
        failures == n) {
      return *first_error;
    }
    out.partial = true;
  }
  // Owned sets are disjoint across shards, so this is pure
  // presentation-order canonicalization — never a dedup of a
  // double-counted answer.
  Canonicalize(out.answers);
  out.wall_ms = timer.ElapsedSeconds() * 1000.0;
  return out;
}

Result<ShardedDeltaOutcome> ShardedEngine::ApplyDelta(
    const NamedGraphDelta& delta) {
  std::lock_guard<std::mutex> admission(admission_mu_);
  return ApplyDeltaAdmitted(delta);
}

Result<ShardedDeltaOutcome> ShardedEngine::ApplyDeltaAdmitted(
    const NamedGraphDelta& delta) {
  if (degraded()) {
    return Status::Internal(
        "sharded engine is degraded (a shard rejected a routed delta); "
        "refusing further mutations — rebuild the sharded engine");
  }
  WallTimer timer;
  // Master first: it is the authority the routed sub-deltas are cut
  // from. A master rejection leaves every shard untouched.
  GraphDelta resolved = ResolveDelta(delta, &graph_.mutable_dict());
  QGP_ASSIGN_OR_RETURN(GraphDeltaSummary summary, graph_.ApplyDelta(resolved));

  ShardedDeltaOutcome out;
  out.graph_version = graph_.version();
  out.vertices_added = summary.vertices_added.size();
  out.vertices_removed = summary.vertices_removed.size();
  out.edges_added = summary.edges_added.size();
  out.edges_removed = summary.edges_removed.size();

  // Ownership bookkeeping: new vertices go to the least-owning shard
  // (ties to the lowest index — deterministic), removed vertices leave
  // their owner's set. Ownership never migrates otherwise.
  std::vector<std::vector<VertexId>> newly_owned(shards_.size());
  for (const auto& [v, label] : summary.vertices_added) {
    (void)label;
    size_t target = 0;
    for (size_t i = 1; i < shards_.size(); ++i) {
      if (shards_[i].owned_global.size() + newly_owned[i].size() <
          shards_[target].owned_global.size() + newly_owned[target].size()) {
        target = i;
      }
    }
    newly_owned[target].push_back(v);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::vector<VertexId>& owned = shards_[i].owned_global;
    if (!newly_owned[i].empty()) {
      owned.insert(owned.end(), newly_owned[i].begin(), newly_owned[i].end());
      std::sort(owned.begin(), owned.end());
    }
    for (const auto& [v, label] : summary.vertices_removed) {
      (void)label;
      auto it = std::lower_bound(owned.begin(), owned.end(), v);
      if (it != owned.end() && *it == v) owned.erase(it);
    }
  }

  // The perturbed region: every vertex within d hops of a touched
  // vertex can see its candidacy change. Only shards owning part of
  // that region need a routed hop; the rest keep their warm caches.
  const std::vector<VertexId> touched =
      TouchedVertices(summary, nullptr, nullptr, /*additions_only=*/false);
  std::vector<VertexId> region_d;
  for (VertexId t : touched) {
    std::vector<VertexId> ball = KHopBall(graph_, t, d_);
    region_d.insert(region_d.end(), ball.begin(), ball.end());
  }
  std::sort(region_d.begin(), region_d.end());
  region_d.erase(std::unique(region_d.begin(), region_d.end()),
                 region_d.end());

  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardState& state = shards_[i];
    // affected = owned_i ∩ region_d (both sorted).
    std::vector<VertexId> affected;
    std::set_intersection(state.owned_global.begin(), state.owned_global.end(),
                          region_d.begin(), region_d.end(),
                          std::back_inserter(affected));
    // The fragment must keep covering N_d(v) for every affected owned
    // vertex: anything in those balls the shard has never replicated
    // becomes an import.
    std::vector<VertexId> need;
    for (VertexId a : affected) {
      std::vector<VertexId> ball = KHopBall(graph_, a, d_);
      need.insert(need.end(), ball.begin(), ball.end());
    }
    std::sort(need.begin(), need.end());
    need.erase(std::unique(need.begin(), need.end()), need.end());
    std::vector<VertexId> imports;
    for (VertexId g : need) {
      if (state.global_to_local.find(g) == state.global_to_local.end()) {
        imports.push_back(g);
      }
    }

    const size_t old_local = state.local_to_global.size();
    std::unordered_map<VertexId, VertexId> import_local;
    import_local.reserve(imports.size());
    for (size_t k = 0; k < imports.size(); ++k) {
      import_local[imports[k]] =
          static_cast<VertexId>(old_local + k);
    }
    auto now_local = [&](VertexId g) -> std::optional<VertexId> {
      auto it = state.global_to_local.find(g);
      if (it != state.global_to_local.end()) return it->second;
      auto imp = import_local.find(g);
      if (imp != import_local.end()) return imp->second;
      return std::nullopt;
    };

    NamedGraphDelta local;
    for (VertexId g : imports) {
      local.add_vertices.push_back(graph_.dict().Name(graph_.vertex_label(g)));
    }
    for (const auto& [v, label] : summary.vertices_removed) {
      (void)label;
      auto it = state.global_to_local.find(v);
      if (it != state.global_to_local.end()) {
        local.remove_vertices.push_back(it->second);
      }
    }
    for (const EdgeTriple& e : summary.edges_removed) {
      auto src = state.global_to_local.find(e.src);
      auto dst = state.global_to_local.find(e.dst);
      if (src != state.global_to_local.end() &&
          dst != state.global_to_local.end()) {
        local.remove_edges.push_back(
            {src->second, dst->second, graph_.dict().Name(e.label)});
      }
    }
    // Edges entering the fragment: delta-added edges between now-local
    // endpoints, plus every master edge incident to an import whose
    // other endpoint is now-local (the import arrives with its full
    // local adjacency). Both sources can name the same edge; a set
    // dedups, and only edges alive in the post-delta master travel.
    std::set<std::tuple<VertexId, VertexId, Label>> add_edges;
    for (const EdgeTriple& e : summary.edges_added) {
      auto src = now_local(e.src);
      auto dst = now_local(e.dst);
      if (src.has_value() && dst.has_value() &&
          EdgeExists(graph_, e.src, e.dst, e.label)) {
        add_edges.insert({*src, *dst, e.label});
      }
    }
    for (VertexId g : imports) {
      for (const Neighbor& nb : graph_.OutNeighbors(g)) {
        auto dst = now_local(nb.v);
        if (dst.has_value()) {
          add_edges.insert({import_local[g], *dst, nb.label});
        }
      }
      for (const Neighbor& nb : graph_.InNeighbors(g)) {
        auto src = now_local(nb.v);
        if (src.has_value()) {
          add_edges.insert({*src, import_local[g], nb.label});
        }
      }
    }
    for (const auto& [src, dst, label] : add_edges) {
      local.add_edges.push_back({src, dst, graph_.dict().Name(label)});
    }

    std::vector<VertexId> own_local;
    for (VertexId g : newly_owned[i]) {
      // A fresh master vertex is never in the old fragment, so it is
      // always an import here (g ∈ ball(g) ⊆ need).
      own_local.push_back(import_local.at(g));
    }
    std::sort(own_local.begin(), own_local.end());

    if (local.Empty() && own_local.empty()) continue;
    ++out.shards_touched;
    out.vertices_imported += imports.size();
    Status applied = state.shard->ApplyDelta(local, own_local);
    if (!applied.ok()) {
      // The master and any earlier shards already moved; this shard is
      // now behind. Sticky-degrade rather than serve diverged answers.
      degraded_.store(true, std::memory_order_release);
      return Status::Internal(
          "shard " + std::to_string(i) + " failed to apply routed delta (" +
          applied.ToString() + "); sharded engine is now degraded");
    }
    for (VertexId g : imports) {
      state.global_to_local[g] = static_cast<VertexId>(
          state.local_to_global.size());
      state.local_to_global.push_back(g);
    }
  }
  out.wall_ms = timer.ElapsedSeconds() * 1000.0;
  return out;
}

std::vector<size_t> ShardedEngine::OwnedCounts() const {
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const ShardState& s : shards_) counts.push_back(s.owned_global.size());
  return counts;
}

}  // namespace qgp::shard
