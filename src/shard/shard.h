#ifndef QGP_SHARD_SHARD_H_
#define QGP_SHARD_SHARD_H_

/// \file
/// One shard of a sharded engine: a QueryEngine serving a single DPar
/// fragment (base region + replicated border balls) whose focus subset
/// is the fragment's OWNED vertices, so per-shard answer sets are
/// disjoint by construction and the coordinator's merge is a plain
/// union (sharded_engine.h).
///
/// Two transports implement the same interface:
///
///  * InProcessShard — wraps a QueryEngine directly. The pattern still
///    travels as DSL TEXT and is re-parsed against the shard's own dict
///    snapshot, exactly like the remote path: after routed deltas the
///    per-shard dicts may intern labels in different orders than the
///    coordinator's, so a parsed Pattern's label ids are only
///    meaningful against the dict that parsed them.
///  * RemoteShard — speaks the qgp_service newline-JSON protocol over
///    a ServiceClient to a `qgp_cli shard-serve` process. The existing
///    wire codec IS the shard serialization boundary (patterns as DSL
///    text, MatchOptions/answers/MatchStats/deltas as their service
///    encodings), plus the delta-only "own" field for ownership
///    handoff.
///
/// Answers come back in the shard's LOCAL vertex ids; the coordinator
/// maps them through its local→global table.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query_engine.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "service/client.h"

namespace qgp::shard {

/// One scattered query as a shard sees it: the pattern in parser DSL
/// text (serialized once by the coordinator against its master dict)
/// plus evaluation knobs.
struct ShardQuery {
  std::string pattern_text;
  std::optional<EngineAlgo> algo;
  /// options.cancel (when set) is the coordinator's per-shard token —
  /// honored by in-process shards; remote shards rely on the wire
  /// `timeout_ms` plus the client read timeout instead (a pointer does
  /// not serialize).
  MatchOptions options;
  bool share_cache = true;
  /// Wire deadline for remote shards, milliseconds, 0 = none.
  int64_t timeout_ms = 0;
  std::string tag;
};

/// Transport-neutral shard handle. Implementations are NOT thread-safe
/// per instance; the coordinator drives each shard from one thread at a
/// time (its admission lock serializes operations, and a scatter uses
/// one thread per shard).
class Shard {
 public:
  virtual ~Shard() = default;

  /// Evaluates `query` over the fragment's owned foci. Answers are
  /// LOCAL vertex ids, sorted (the engine canonicalizes).
  virtual Result<QueryOutcome> Submit(const ShardQuery& query) = 0;

  /// Applies a routed delta expressed in the shard's LOCAL id space and
  /// extends the owned-focus set with `own_local` (post-apply local
  /// ids; may reference vertices the delta itself appends).
  virtual Status ApplyDelta(const NamedGraphDelta& delta,
                            const std::vector<VertexId>& own_local) = 0;
};

/// Builds the QueryEngine for one fragment: `base` plus the shard-mode
/// overrides (focus_subset = `owned_local`, partition_d = `d` so a
/// nested pqmatch/penum partition preserves the same radius bound).
/// Shared by InProcessShard, `qgp_cli shard-serve`, and tests so every
/// transport serves an identically configured engine.
std::unique_ptr<QueryEngine> MakeShardEngine(Graph fragment_graph,
                                             std::vector<VertexId> owned_local,
                                             int d, EngineOptions base);

/// Shard in the coordinator's process.
class InProcessShard : public Shard {
 public:
  explicit InProcessShard(std::unique_ptr<QueryEngine> engine)
      : engine_(std::move(engine)) {}

  Result<QueryOutcome> Submit(const ShardQuery& query) override;
  Status ApplyDelta(const NamedGraphDelta& delta,
                    const std::vector<VertexId>& own_local) override;

  QueryEngine& engine() { return *engine_; }

 private:
  std::unique_ptr<QueryEngine> engine_;
};

/// Shard behind a qgp_service endpoint (process-per-shard mode).
class RemoteShard : public Shard {
 public:
  explicit RemoteShard(service::ServiceClient client)
      : client_(std::move(client)) {}

  Result<QueryOutcome> Submit(const ShardQuery& query) override;
  Status ApplyDelta(const NamedGraphDelta& delta,
                    const std::vector<VertexId>& own_local) override;

 private:
  service::ServiceClient client_;
};

/// Reconstructs a Status from the wire (error_code name as printed by
/// StatusCodeName + message). Unknown names map to Internal — a shard
/// speaking an unknown dialect is a deployment bug, not client error.
Status StatusFromWire(const std::string& code_name, const std::string& message);

}  // namespace qgp::shard

#endif  // QGP_SHARD_SHARD_H_
