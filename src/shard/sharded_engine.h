#ifndef QGP_SHARD_SHARDED_ENGINE_H_
#define QGP_SHARD_SHARDED_ENGINE_H_

/// \file
/// ShardedEngine: scatter-gather serving over DPar fragments.
///
/// Create() partitions the master graph with DPar (d-hop preserving,
/// Lemma 8/9 of the paper) and loads every fragment — base region plus
/// replicated border balls — as an independent QueryEngine shard whose
/// focus subset is the fragment's OWNED vertices. Ownership partitions
/// V, and a fragment preserves the full d-hop neighborhood of each
/// owned vertex, so for any pattern with radius ≤ d:
///
///  * per-shard answer sets are DISJOINT (dedup by construction —
///    answers found in border-ball overlap are reported only by the
///    owner, so the merge is concat + Canonicalize, never a count
///    merge: a counting quantifier evaluated across a cut is counted
///    once, by the owner, over its complete d-hop ball);
///  * their union over all shards equals the single-engine answer set
///    exactly, with identical summed non-scheduler MatchStats.
///
/// Queries scatter to all shards concurrently (one thread per shard,
/// cooperative per-shard CancelToken deadlines); answers gather through
/// local→global id mapping into one canonical AnswerSet. A failed or
/// timed-out shard degrades per ShardedOptions::failure_policy:
/// fail-query (default: first shard error fails the whole query) or
/// best-effort (answers from live shards, ShardedOutcome::partial set).
/// An explicit cancellation (kCancelled) always fails the whole query —
/// a drained coordinator must not masquerade as a partial answer.
///
/// ApplyDelta keeps the system one logical graph: the delta applies to
/// the coordinator's master copy first, then routes to each shard as a
/// LOCAL-id sub-delta covering the owned d-hop neighborhoods it
/// perturbs, importing replicas the shard has never seen (with their
/// incident now-local edges) and handing new vertices to the
/// least-loaded shard via the wire-level `own` extension. Per-shard
/// admission locks make each hop atomic; a shard that rejects its
/// routed delta flips the engine into a sticky degraded state (every
/// subsequent Submit/ApplyDelta fails with Internal) rather than
/// serving answers from diverged fragments. Replicas that a delta makes
/// stale-but-unreferenced are left in place: owned neighborhoods stay
/// exact (invariant L_i ⊇ ∪_{v owned} N_d(v)), only fragment sizes
/// drift vs a fresh partition.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/query_engine.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "parallel/partition.h"
#include "shard/shard.h"

namespace qgp::shard {

/// What a shard failure (error or per-shard deadline) does to the
/// in-flight query.
enum class FailurePolicy {
  kFailQuery,   ///< first shard error fails the whole query
  kBestEffort,  ///< merge live shards, mark the outcome partial
};

struct ShardedOptions {
  /// DPar fan-out (== number of shards).
  size_t num_shards = 2;
  /// Hop-preservation depth: patterns with Radius() > d are rejected.
  int d = 2;
  double balance_factor = 1.6;
  FailurePolicy failure_policy = FailurePolicy::kFailQuery;
  /// Per-shard evaluation deadline, ms, 0 = none. In-process shards
  /// get a CancelToken; remote shards get it as the wire timeout_ms.
  int64_t shard_timeout_ms = 0;
  /// Process-per-shard mode: one qgp_service port per fragment (size
  /// must equal num_shards), each already serving the matching
  /// exported fragment bundle (`qgp_cli shard-export` + `shard-serve`).
  /// Empty = in-process shards.
  std::vector<int> remote_ports;
  std::string remote_host = "127.0.0.1";
  /// Socket read timeout for remote shards, ms, 0 = block. Set this in
  /// remote deployments: it is what turns a hung shard into a
  /// policy-visible failure instead of a stuck coordinator.
  int64_t remote_read_timeout_ms = 0;
  /// Base options for in-process shard engines (focus_subset and
  /// partition_d are overridden per fragment).
  EngineOptions engine;
};

/// One shard's contribution to a gathered query.
struct ShardSlice {
  size_t shard = 0;
  bool ok = false;
  /// GLOBAL vertex ids (already mapped), sorted.
  AnswerSet answers;
  MatchStats stats;
  double wall_ms = 0;
  EngineAlgo algo = EngineAlgo::kQMatch;
  /// StatusCodeName of the failure when !ok.
  std::string error_code;
  std::string error_message;
};

struct ShardedOutcome {
  /// Union of the per-shard owned answers, global ids, canonical.
  AnswerSet answers;
  /// Sum over contributing shards. Non-scheduler counters equal the
  /// single-engine kPQMatch counters for the same partition config.
  MatchStats stats;
  double wall_ms = 0;
  /// Best-effort only: true when at least one shard failed and its
  /// slice is missing from `answers`.
  bool partial = false;
  std::vector<ShardSlice> shards;
  std::string tag;
};

struct ShardedDeltaOutcome {
  uint64_t graph_version = 0;
  size_t vertices_added = 0;
  size_t vertices_removed = 0;
  size_t edges_added = 0;
  size_t edges_removed = 0;
  /// Shards that received a routed sub-delta (others kept their warm
  /// caches untouched).
  size_t shards_touched = 0;
  /// Replicas newly imported across all shards.
  size_t vertices_imported = 0;
  double wall_ms = 0;
};

class ShardedEngine {
 public:
  /// Partitions `graph` with DPar(num_shards, d, balance_factor) and
  /// loads every fragment as a shard (in-process, or remote when
  /// remote_ports is set).
  static Result<std::unique_ptr<ShardedEngine>> Create(
      Graph graph, const ShardedOptions& options);

  /// Same, over a caller-supplied partition of `graph` (pinned-topology
  /// tests). The partition must validate against `graph` with
  /// options.d.
  static Result<std::unique_ptr<ShardedEngine>> Create(
      Graph graph, Partition partition, const ShardedOptions& options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Scatter-gather evaluation. spec.pattern must be parsed against
  /// graph().dict() (the coordinator re-serializes it to DSL text for
  /// the shards). spec.timeout_ms bounds the whole query;
  /// options.cancel (if set) must outlive the call.
  Result<ShardedOutcome> Submit(const QuerySpec& spec);

  /// Applies `delta` to the master graph and routes the perturbed
  /// owned neighborhoods to each shard. Serialized against Submit by
  /// the coordinator admission lock; per-shard hops take each shard's
  /// own admission lock.
  Result<ShardedDeltaOutcome> ApplyDelta(const NamedGraphDelta& delta);

  const Graph& graph() const { return graph_; }
  size_t num_shards() const { return shards_.size(); }
  int d() const { return d_; }
  uint64_t graph_version() const { return graph_.version(); }
  /// Sticky: a shard rejected a routed delta; fragments may have
  /// diverged from the master, so everything fails until rebuilt.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  /// Owned-vertex count per shard (ownership partitions V).
  std::vector<size_t> OwnedCounts() const;

 private:
  struct ShardState {
    std::unique_ptr<Shard> shard;
    std::vector<VertexId> local_to_global;
    std::unordered_map<VertexId, VertexId> global_to_local;
    std::vector<VertexId> owned_global;  // sorted
  };

  ShardedEngine(Graph graph, const ShardedOptions& options)
      : graph_(std::move(graph)), options_(options), d_(options.d) {}

  Result<ShardedDeltaOutcome> ApplyDeltaAdmitted(const NamedGraphDelta& delta);

  Graph graph_;  ///< the coordinator's master copy (authoritative)
  ShardedOptions options_;
  int d_;
  std::vector<ShardState> shards_;
  /// Serializes Submit against ApplyDelta (same discipline as
  /// QueryEngine::admission_mu_): every query sees entirely the pre- or
  /// post-delta system.
  std::mutex admission_mu_;
  std::atomic<bool> degraded_{false};
};

}  // namespace qgp::shard

#endif  // QGP_SHARD_SHARDED_ENGINE_H_
