#include "shard/shard.h"

#include <utility>

#include "core/pattern_parser.h"
#include "service/protocol.h"

namespace qgp::shard {

std::unique_ptr<QueryEngine> MakeShardEngine(Graph fragment_graph,
                                             std::vector<VertexId> owned_local,
                                             int d, EngineOptions base) {
  base.focus_subset = std::move(owned_local);
  base.partition_d = d;
  return std::make_unique<QueryEngine>(std::move(fragment_graph), base);
}

Result<QueryOutcome> InProcessShard::Submit(const ShardQuery& query) {
  // Re-parse against THIS shard's dict: after routed deltas the
  // per-shard dicts can intern labels in different orders, so the
  // coordinator's parsed Pattern (label ids against the master dict)
  // must never be handed over directly. A label this shard has never
  // seen interns a fresh id here that matches no vertex — correct.
  LabelDict dict = engine_->DictSnapshot();
  QGP_ASSIGN_OR_RETURN(Pattern pattern,
                       PatternParser::Parse(query.pattern_text, dict));
  QuerySpec spec;
  spec.pattern = std::move(pattern);
  spec.algo = query.algo;
  spec.options = query.options;
  spec.share_cache = query.share_cache;
  spec.tag = query.tag;
  // No spec.timeout_ms: the coordinator's per-shard CancelToken (in
  // query.options.cancel) already carries the deadline.
  return engine_->Submit(spec);
}

Status InProcessShard::ApplyDelta(const NamedGraphDelta& delta,
                                  const std::vector<VertexId>& own_local) {
  Result<DeltaOutcome> outcome = engine_->ApplyDelta(delta, own_local);
  if (!outcome.ok()) return outcome.status();
  return Status::Ok();
}

Result<QueryOutcome> RemoteShard::Submit(const ShardQuery& query) {
  service::ServiceRequest request;
  request.op = service::ServiceRequest::Op::kQuery;
  request.pattern_text = query.pattern_text;
  request.algo = query.algo;
  request.options = query.options;
  request.options.cancel = nullptr;  // pointers do not serialize
  request.share_cache = query.share_cache;
  request.timeout_ms = query.timeout_ms;
  request.tag = query.tag;
  QGP_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       client_.Call(request));
  if (!response.ok) {
    return StatusFromWire(response.error_code, response.error_message);
  }
  QueryOutcome outcome;
  outcome.answers = std::move(response.answers);
  outcome.stats = response.stats;
  outcome.wall_ms = response.wall_ms;
  outcome.cache_hits = response.cache_hits;
  outcome.cache_misses = response.cache_misses;
  outcome.result_cache_hit = response.result_cache_hit;
  outcome.delta_repaired = response.delta_repaired;
  outcome.plan_cache_hit = response.plan_cache_hit;
  if (std::optional<EngineAlgo> algo = ParseEngineAlgo(response.algo);
      algo.has_value()) {
    outcome.algo = *algo;
  }
  outcome.tag = response.tag;
  return outcome;
}

Status RemoteShard::ApplyDelta(const NamedGraphDelta& delta,
                               const std::vector<VertexId>& own_local) {
  service::ServiceRequest request;
  request.op = service::ServiceRequest::Op::kDelta;
  request.delta = delta;
  request.own = own_local;
  QGP_ASSIGN_OR_RETURN(service::ServiceResponse response,
                       client_.Call(request));
  if (!response.ok) {
    return StatusFromWire(response.error_code, response.error_message);
  }
  return Status::Ok();
}

Status StatusFromWire(const std::string& code_name,
                      const std::string& message) {
  if (code_name == "InvalidArgument") return Status::InvalidArgument(message);
  if (code_name == "NotFound") return Status::NotFound(message);
  if (code_name == "AlreadyExists") return Status::AlreadyExists(message);
  if (code_name == "OutOfRange") return Status::OutOfRange(message);
  if (code_name == "Unimplemented") return Status::Unimplemented(message);
  if (code_name == "Internal") return Status::Internal(message);
  if (code_name == "IoError") return Status::IoError(message);
  if (code_name == "Corruption") return Status::Corruption(message);
  if (code_name == "Unavailable") return Status::Unavailable(message);
  if (code_name == "DeadlineExceeded") {
    return Status::DeadlineExceeded(message);
  }
  if (code_name == "Cancelled") return Status::Cancelled(message);
  return Status::Internal("shard returned unknown status code '" + code_name +
                          "': " + message);
}

}  // namespace qgp::shard
