#ifndef QGP_SERVICE_CLIENT_H_
#define QGP_SERVICE_CLIENT_H_

/// \file
/// Minimal synchronous client for the query service: one TCP
/// connection, blocking request/response. Used by the example program,
/// the loopback differential tests and the load generator; it is a
/// convenience wrapper, not the protocol — any client that writes
/// newline-delimited JSON (service/protocol.h) interoperates.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "service/protocol.h"

namespace qgp::service {

/// Opt-in retry policy for CallWithRetry: exponential backoff with
/// deterministic jitter, applied ONLY to idempotent ops (query, stats)
/// and ONLY on kUnavailable — the "back off and retry" signal of the
/// wire spec (admission rejection, draining server, dropped
/// connection). Deltas are never retried: an apply whose response was
/// lost may have landed, and re-sending it would double-apply.
struct RetryPolicy {
  /// Total attempts including the first; 1 = no retry (the default).
  int max_attempts = 1;
  int64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 500;
  /// Seed of the deterministic jitter sequence (up to +25% per sleep).
  /// Fixed seed = reproducible schedules in tests.
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
};

/// Connection-level knobs. The defaults keep historical behavior
/// (block forever) except for connect, which gets a sane bound.
struct ClientOptions {
  /// Bound on establishing the TCP connection; 0 = block forever.
  int64_t connect_timeout_ms = 5000;
  /// Bound on waiting for each response chunk (poll before recv);
  /// 0 = block forever. On expiry ReadLine fails with kDeadlineExceeded
  /// and the connection is still usable — but the stream position is
  /// ambiguous (the response may arrive later), so request/response
  /// callers should Close() and reconnect rather than resync.
  int64_t read_timeout_ms = 0;
  RetryPolicy retry;
};

/// A connected client. Movable, not copyable; closes on destruction.
///
///   QGP_ASSIGN_OR_RETURN(ServiceClient client, ServiceClient::Connect(port));
///   ServiceRequest request;
///   request.pattern_text = ...;
///   QGP_ASSIGN_OR_RETURN(ServiceResponse response, client.Call(request));
///
/// Call() is strictly serial (send, then read). To pipeline, issue
/// several Send()s before draining with ReadResponse() — responses come
/// back in request order.
class ServiceClient {
 public:
  /// Connects to host:port (loopback by default), honoring
  /// options.connect_timeout_ms. The endpoint and options are retained
  /// so CallWithRetry can reconnect.
  static Result<ServiceClient> Connect(int port,
                                       const std::string& host = "127.0.0.1",
                                       const ClientOptions& options = {});

  ServiceClient() = default;
  ~ServiceClient() { Close(); }
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Encodes and sends one request line.
  Status Send(const ServiceRequest& request);
  /// Sends a raw line verbatim, appending '\n' (malformed-input tests).
  Status SendLine(std::string_view line);
  /// Reads one response line (without the terminator). Fails with
  /// kUnavailable on a clean server-side close, kDeadlineExceeded when
  /// options.read_timeout_ms expires first.
  Result<std::string> ReadLine();
  /// Reads and decodes one response.
  Result<ServiceResponse> ReadResponse();
  /// Send + ReadResponse.
  Result<ServiceResponse> Call(const ServiceRequest& request);
  /// Call with the configured RetryPolicy: on kUnavailable — transport
  /// failure, dropped connection, or a server error response with that
  /// code — reconnects and retries idempotent ops (kQuery, kStats)
  /// after exponential backoff with deterministic jitter. Non-idempotent
  /// ops and every other status pass through unchanged on the first
  /// attempt.
  Result<ServiceResponse> CallWithRetry(const ServiceRequest& request);

  /// Closes the connection (idempotent; destructor calls it).
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  Status Reconnect();

  int fd_ = -1;
  std::string buffer_;
  /// Endpoint + knobs, retained from Connect for reconnects.
  std::string host_;
  int port_ = 0;
  ClientOptions options_;
};

}  // namespace qgp::service

#endif  // QGP_SERVICE_CLIENT_H_
