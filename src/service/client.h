#ifndef QGP_SERVICE_CLIENT_H_
#define QGP_SERVICE_CLIENT_H_

/// \file
/// Minimal synchronous client for the query service: one TCP
/// connection, blocking request/response. Used by the example program,
/// the loopback differential tests and the load generator; it is a
/// convenience wrapper, not the protocol — any client that writes
/// newline-delimited JSON (service/protocol.h) interoperates.

#include <string>
#include <string_view>

#include "common/result.h"
#include "service/protocol.h"

namespace qgp::service {

/// A connected client. Movable, not copyable; closes on destruction.
///
///   QGP_ASSIGN_OR_RETURN(ServiceClient client, ServiceClient::Connect(port));
///   ServiceRequest request;
///   request.pattern_text = ...;
///   QGP_ASSIGN_OR_RETURN(ServiceResponse response, client.Call(request));
///
/// Call() is strictly serial (send, then read). To pipeline, issue
/// several Send()s before draining with ReadResponse() — responses come
/// back in request order.
class ServiceClient {
 public:
  /// Connects to host:port (loopback by default).
  static Result<ServiceClient> Connect(int port,
                                       const std::string& host = "127.0.0.1");

  ServiceClient() = default;
  ~ServiceClient() { Close(); }
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Encodes and sends one request line.
  Status Send(const ServiceRequest& request);
  /// Sends a raw line verbatim, appending '\n' (malformed-input tests).
  Status SendLine(std::string_view line);
  /// Reads one response line (without the terminator). Fails with
  /// kUnavailable on a clean server-side close.
  Result<std::string> ReadLine();
  /// Reads and decodes one response.
  Result<ServiceResponse> ReadResponse();
  /// Send + ReadResponse.
  Result<ServiceResponse> Call(const ServiceRequest& request);

  /// Closes the connection (idempotent; destructor calls it).
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace qgp::service

#endif  // QGP_SERVICE_CLIENT_H_
