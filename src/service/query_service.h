#ifndef QGP_SERVICE_QUERY_SERVICE_H_
#define QGP_SERVICE_QUERY_SERVICE_H_

/// \file
/// The network front end: a TCP query service multiplexing many client
/// connections onto one QueryEngine. Protocol: newline-delimited JSON
/// (service/protocol.h). Architecture (docs/ARCHITECTURE.md has the
/// diagram):
///
///   accept thread ── one reader thread per connection
///        │                 │  decode, admission control
///        │                 ▼
///        │          bounded admission queue   ← backpressure: a reader
///        │                 │                    blocks (stops reading
///        │                 ▼                    its socket) while the
///        │          dispatch workers            global in-flight bound
///        │                 │  engine->Submit    is reached
///        │                 ▼
///        └──────── per-session reorder buffer → socket (responses in
///                                               request order)
///
/// Monitoring: the "stats" op is answered inline by the reader thread —
/// it never enters the admission queue, and QueryEngine::stats() no
/// longer blocks behind evaluations, so a monitoring connection gets
/// telemetry in microseconds while multi-second queries are mid-flight.
/// (Responses on ONE connection stay in request order, so pipeline
/// monitoring on its own connection, not behind a slow query.)
///
/// Mutation: the "delta" op goes through the SAME admission queue and
/// dispatch workers as queries, with the same per-connection seq slot in
/// the reorder buffer — the reader thread never blocks on the engine's
/// admission lock, so requests pipelined behind a delta keep being read
/// and dispatched while QueryEngine::ApplyDelta waits out the running
/// evaluation on a worker. A request/response client still sees its own
/// delta applied before its next query (the engine sequences both, and
/// the response cannot arrive before the apply lands); a client that
/// PIPELINES queries behind a delta on one connection may have them
/// evaluate against the pre-delta graph — every evaluation still sees
/// entirely the pre- or post-delta graph, never a blend. On success the
/// dispatching worker re-snapshots the engine's dict so pattern text may
/// use labels the delta introduced.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "engine/query_engine.h"
#include "graph/label_dict.h"
#include "service/admission.h"
#include "service/protocol.h"

namespace qgp::service {

struct ServiceOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() after Start()).
  int port = 0;
  /// Threads draining the admission queue into QueryEngine::Submit.
  /// The engine admits one evaluation at a time (each fans out over the
  /// whole worker pool), so this is queue-drain concurrency, not
  /// evaluation concurrency.
  size_t dispatch_threads = 2;
  /// Global in-flight bound (queued + executing). Readers block when
  /// it is reached — backpressure to every client. 0 = unbounded.
  size_t max_inflight = 64;
  /// Per-connection in-flight/queue-depth limit; excess requests get an
  /// immediate "Unavailable" rejection. 0 = unbounded.
  size_t max_inflight_per_client = 8;
  /// Honor {"op":"shutdown"} from clients (loopback tooling / CI). Off
  /// by default: a stray client must not stop a shared server.
  bool allow_shutdown = false;
  /// Reject request lines longer than this (hostile-input guard).
  size_t max_line_bytes = 1 << 20;
  /// Graceful-drain budget of Stop(): after the readers are down, the
  /// already-admitted work gets this long to finish naturally; past it,
  /// the drain token fires — in-flight evaluations unwind with
  /// kCancelled (still answered, as structured errors) and queued
  /// requests are shed at dispatch. 0 = cancel immediately.
  int64_t drain_timeout_ms = 2000;
};

/// A running TCP query service bound to one engine. Lifecycle:
///   QueryService service(&engine, options);
///   QGP_RETURN_IF_ERROR(service.Start());
///   ... service.port() ...
///   service.Wait();   // until Stop() elsewhere or a shutdown op
///   service.Stop();   // graceful: admitted queries are answered
class QueryService {
 public:
  /// `engine` must outlive the service.
  QueryService(QueryEngine* engine, const ServiceOptions& options);
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Binds 127.0.0.1:port, starts the accept/dispatch threads.
  Status Start();

  /// The bound port (valid after a successful Start()).
  int port() const { return port_; }

  /// Blocks until Stop() is entered from another thread or a client
  /// shutdown op arrives (options.allow_shutdown). Returns immediately
  /// if either already happened.
  void Wait();

  /// Graceful stop: stops accepting, wakes blocked readers, then drains
  /// — already-admitted work may finish naturally for up to
  /// options.drain_timeout_ms, after which the drain token cancels
  /// every in-flight evaluation (answered with kCancelled) and queued
  /// requests are shed. Every admitted request gets SOME response
  /// before its socket closes; reorder buffers flush fully because the
  /// dispatch workers only exit once every seq slot is answered.
  /// Idempotent; must not be called from a reader/dispatch thread (the
  /// shutdown op signals Wait() instead for exactly that reason).
  void Stop();

  /// Service-level counters (the stats op reports the same numbers).
  ServiceStats stats() const;

 private:
  /// One client connection: socket, reader thread, and the reorder
  /// buffer that keeps responses in request order.
  struct Session {
    int fd = -1;
    uint64_t id = 0;
    std::thread reader;
    std::atomic<bool> reader_done{false};
    /// Reorder buffer state, guarded by write_mu: completions may
    /// arrive from any dispatch worker; only the contiguous prefix is
    /// written to the socket.
    std::mutex write_mu;
    uint64_t next_write = 0;
    std::deque<std::pair<uint64_t, std::string>> pending;
    ~Session();
  };

  /// One admitted unit of work: a query spec or a graph delta. Both
  /// occupy an admission slot and a seq position in the session's
  /// response order; dispatch workers tell them apart via is_delta.
  struct QueuedQuery {
    std::shared_ptr<Session> session;
    uint64_t seq = 0;
    QuerySpec spec;  // meaningful when !is_delta
    bool is_delta = false;
    NamedGraphDelta delta;  // meaningful when is_delta
    /// Shard transport: owned-focus extension riding the delta (see
    /// ServiceRequest::own). Empty for plain clients.
    std::vector<VertexId> own;
    /// Request tag for delta responses (queries carry theirs in spec).
    std::string tag;
    /// Cancellation token of this request (queries only): deadline from
    /// the request's timeout_ms measured at receipt, parent =
    /// drain_token_. Heap-allocated so the pointer threaded into
    /// MatchOptions stays stable while the item moves through the
    /// queue. Checked at dispatch dequeue for queue-age shedding.
    std::shared_ptr<CancelToken> cancel;
  };

  void AcceptLoop();
  void DispatchLoop();
  void ReaderLoop(std::shared_ptr<Session> session);
  /// Decodes and routes one request line; `seq` is its slot in the
  /// session's response order.
  void HandleLine(const std::shared_ptr<Session>& session, uint64_t seq,
                  std::string_view line);
  /// Posts `line` as the response for slot `seq` and flushes the
  /// contiguous prefix of the reorder buffer to the socket.
  static void Complete(const std::shared_ptr<Session>& session, uint64_t seq,
                       std::string line);
  void ReapFinishedSessions();
  void RequestStop();

  QueryEngine* const engine_;
  const ServiceOptions options_;
  AdmissionController admission_;

  /// Copy of the graph's dictionary: incoming pattern text is parsed
  /// against it (label ids of known labels match the graph; unknown
  /// labels interne fresh ids that no vertex carries, so they match
  /// nothing — consistent with an unlabeled-miss query). Guarded by
  /// dict_mu_: sessions parse concurrently.
  std::mutex dict_mu_;
  LabelDict dict_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex sessions_mu_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::atomic<uint64_t> next_session_id_{1};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedQuery> queue_;
  bool queue_stopping_ = false;
  /// Requests popped but not yet answered — Stop()'s natural-drain wait
  /// is over (queue_ empty && active_dispatch_ == 0). Guarded by
  /// queue_mu_; workers notify queue_cv_ when it drops to zero.
  size_t active_dispatch_ = 0;
  std::vector<std::thread> dispatch_threads_;

  /// Fires when Stop()'s natural-drain budget expires: parent of every
  /// request token, so one RequestCancel() reaches each queued and
  /// in-flight query. Never reset — a service is not restartable.
  CancelToken drain_token_;

  std::mutex state_mu_;
  std::condition_variable stop_cv_;
  bool started_ = false;
  bool stop_requested_ = false;
  bool stopped_ = false;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> malformed_{0};
  std::atomic<uint64_t> stats_requests_{0};
  std::atomic<uint64_t> deltas_ok_{0};
  std::atomic<uint64_t> deltas_failed_{0};
  std::atomic<uint64_t> shed_{0};
};

}  // namespace qgp::service

#endif  // QGP_SERVICE_QUERY_SERVICE_H_
