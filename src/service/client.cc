#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace qgp::service {

namespace {

/// Polls `fd` for `events` with a bound; 0 or negative bound = forever.
/// Returns OK when ready, kDeadlineExceeded on expiry, kUnavailable on
/// a poll error.
Status PollFor(int fd, short events, int64_t timeout_ms,
               const char* what) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms > 0
                                     ? static_cast<int>(timeout_ms)
                                     : -1);
    if (rc > 0) return Status::Ok();
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string(what) + " poll: " +
                               std::strerror(errno));
  }
}

}  // namespace

Result<ServiceClient> ServiceClient::Connect(int port, const std::string& host,
                                             const ClientOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  // Non-blocking connect + poll: a dead or unreachable server fails
  // within connect_timeout_ms instead of the kernel's (much longer)
  // SYN-retry budget. The socket is restored to blocking afterwards;
  // read timeouts are enforced by polling before each recv instead.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      int err = errno;
      ::close(fd);
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err));
    }
    const Status ready =
        PollFor(fd, POLLOUT, options.connect_timeout_ms, "connect");
    if (!ready.ok()) {
      ::close(fd);
      // A timed-out connect is still "server not reachable" to callers;
      // keep the retryable kUnavailable contract of the old blocking
      // connect rather than leaking kDeadlineExceeded here.
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + ": " +
                                 ready.message());
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ServiceClient client;
  client.fd_ = fd;
  client.host_ = host;
  client.port_ = port;
  client.options_ = options;
  return client;
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    other.fd_ = -1;
  }
  return *this;
}

Status ServiceClient::Send(const ServiceRequest& request) {
  return SendLine(EncodeRequest(request));
}

Status ServiceClient::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::string framed(line);
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ServiceClient::ReadLine() {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  for (;;) {
    size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (options_.read_timeout_ms > 0) {
      QGP_RETURN_IF_ERROR(
          PollFor(fd_, POLLIN, options_.read_timeout_ms, "read"));
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<ServiceResponse> ServiceClient::ReadResponse() {
  QGP_ASSIGN_OR_RETURN(std::string line, ReadLine());
  return DecodeResponse(line);
}

Result<ServiceResponse> ServiceClient::Call(const ServiceRequest& request) {
  QGP_RETURN_IF_ERROR(Send(request));
  return ReadResponse();
}

Status ServiceClient::Reconnect() {
  Close();
  QGP_ASSIGN_OR_RETURN(ServiceClient fresh,
                       Connect(port_, host_, options_));
  *this = std::move(fresh);
  return Status::Ok();
}

Result<ServiceResponse> ServiceClient::CallWithRetry(
    const ServiceRequest& request) {
  // Retry only what is safe to replay: queries and stats are read-only;
  // a delta (or shutdown) whose response was lost may have landed, so
  // re-sending could double-apply.
  const bool idempotent = request.op == ServiceRequest::Op::kQuery ||
                          request.op == ServiceRequest::Op::kStats;
  const RetryPolicy& policy = options_.retry;
  const int attempts = policy.max_attempts > 1 && idempotent
                           ? policy.max_attempts
                           : 1;
  uint64_t jitter_state = policy.jitter_seed;
  double backoff_ms = static_cast<double>(policy.initial_backoff_ms);
  Result<ServiceResponse> last = Status::Internal("CallWithRetry: no attempt");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with deterministic jitter (splitmix64 step,
      // up to +25%): retries from many clients decorrelate without
      // making test schedules irreproducible.
      jitter_state += 0x9e3779b97f4a7c15ULL;
      uint64_t z = jitter_state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      const double jitter =
          static_cast<double>(z % 1000) / 1000.0 * 0.25 * backoff_ms;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms + jitter));
      backoff_ms = std::min(backoff_ms * policy.backoff_multiplier,
                            static_cast<double>(policy.max_backoff_ms));
      if (!connected()) {
        Status reconnected = Reconnect();
        if (!reconnected.ok()) {
          last = reconnected;
          continue;
        }
      }
    }
    last = Call(request);
    if (last.ok()) {
      // A structured kUnavailable error response (admission rejection,
      // draining server) is the wire spec's back-off-and-retry signal.
      if (!last.value().ok && last.value().error_code == "Unavailable" &&
          attempt + 1 < attempts) {
        continue;
      }
      return last;
    }
    if (last.status().code() != StatusCode::kUnavailable) return last;
    // Transport-level kUnavailable (send failed, connection closed):
    // the stream is dead or ambiguous — drop it and reconnect on the
    // next attempt.
    Close();
  }
  return last;
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace qgp::service
