#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qgp::service {

Result<ServiceClient> ServiceClient::Connect(int port,
                                             const std::string& host) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int err = errno;
    ::close(fd);
    return Status::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ServiceClient client;
  client.fd_ = fd;
  return client;
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Status ServiceClient::Send(const ServiceRequest& request) {
  return SendLine(EncodeRequest(request));
}

Status ServiceClient::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::string framed(line);
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ServiceClient::ReadLine() {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  for (;;) {
    size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<ServiceResponse> ServiceClient::ReadResponse() {
  QGP_ASSIGN_OR_RETURN(std::string line, ReadLine());
  return DecodeResponse(line);
}

Result<ServiceResponse> ServiceClient::Call(const ServiceRequest& request) {
  QGP_RETURN_IF_ERROR(Send(request));
  return ReadResponse();
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace qgp::service
