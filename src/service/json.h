#ifndef QGP_SERVICE_JSON_H_
#define QGP_SERVICE_JSON_H_

/// \file
/// Minimal self-contained JSON value type, parser and writer for the
/// network query service (service/protocol.h). One message is one JSON
/// object on one line: the writer never emits raw newlines (they are
/// escaped inside strings), which is what makes newline-delimited
/// framing safe. No external dependencies — the repo builds offline.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace qgp::service {

/// A parsed JSON value. Numbers are stored as double (every id this
/// protocol ships — vertex ids, counters — fits a double's 53-bit
/// integer range; graphs are dense-indexed uint32).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// std::map keeps object keys sorted, so encoding is deterministic —
  /// the codec round-trip tests rely on that.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  JsonValue(bool b) : value_(b) {}                        // NOLINT
  JsonValue(double d) : value_(d) {}                      // NOLINT
  JsonValue(int i) : value_(static_cast<double>(i)) {}    // NOLINT
  JsonValue(uint64_t u) : value_(static_cast<double>(u)) {}  // NOLINT
  JsonValue(int64_t i) : value_(static_cast<double>(i)) {}   // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}      // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}    // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}            // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; preconditions match the is_*() probes.
  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when this is not an object or the key
  /// is absent.
  const JsonValue* Find(std::string_view key) const;

  /// Serializes to compact single-line JSON (strings escaped, keys in
  /// sorted order, integral numbers without a trailing ".0").
  std::string Dump() const;

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Parses one JSON document. Fails with InvalidArgument on malformed
/// input (including trailing garbage after the document).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace qgp::service

#endif  // QGP_SERVICE_JSON_H_
