#include "service/query_service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "core/pattern_parser.h"

namespace qgp::service {

namespace {

/// Writes the whole buffer; MSG_NOSIGNAL turns a dead peer into EPIPE
/// instead of a process-killing SIGPIPE. Returns false on any error
/// (the session is then effectively write-dead; responses are dropped).
bool WriteAll(int fd, std::string_view data) {
  // Fault seam: an armed "service.socket_write" failpoint maps onto
  // this writer's failure convention — the response is dropped and the
  // session becomes write-dead, exactly like a vanished peer.
  if (!QGP_FAILPOINT_STATUS("service.socket_write").ok()) return false;
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

QueryService::Session::~Session() {
  if (fd >= 0) ::close(fd);
}

QueryService::QueryService(QueryEngine* engine, const ServiceOptions& options)
    : engine_(engine),
      options_(options),
      admission_(AdmissionController::Options{
          options.max_inflight, options.max_inflight_per_client}),
      dict_(engine->graph().dict()) {}

QueryService::~QueryService() { Stop(); }

Status QueryService::Start() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (started_) return Status::Internal("service already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const Status status = Status::IoError(
        "bind 127.0.0.1:" + std::to_string(options_.port) + ": " +
        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  const size_t workers = options_.dispatch_threads > 0
                             ? options_.dispatch_threads
                             : 1;
  dispatch_threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    dispatch_threads_.emplace_back([this] { DispatchLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QueryService::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ++connections_;
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->id = next_session_id_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
    }
    session->reader =
        std::thread([this, session] { ReaderLoop(session); });
    ReapFinishedSessions();
  }
}

void QueryService::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->reader_done.load()) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      // Dispatch workers may still hold the shared_ptr to deliver a
      // late response; the socket closes when the last reference drops.
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryService::ReaderLoop(std::shared_ptr<Session> session) {
  std::string buffer;
  uint64_t next_seq = 0;
  char chunk[4096];
  bool overlong = false;
  while (true) {
    const ssize_t n = ::recv(session->fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (including Stop()'s shutdown())
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (overlong) {
        overlong = false;  // tail of a discarded oversized line
      } else if (!line.empty()) {
        HandleLine(session, next_seq++, line);
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      if (overlong) {
        buffer.clear();  // keep discarding the same runaway line
      } else {
        // Hostile input guard: answer the line-in-progress with a
        // structured error now and skip its tail once the terminator
        // finally arrives.
        ++malformed_;
        ++requests_;
        Complete(session, next_seq++,
                 EncodeErrorResponse(
                     ServiceRequest::Op::kQuery,
                     Status::InvalidArgument(
                         "request line exceeds " +
                         std::to_string(options_.max_line_bytes) + " bytes"),
                     ""));
        buffer.clear();
        overlong = true;
      }
    }
  }
  session->reader_done.store(true);
}

void QueryService::HandleLine(const std::shared_ptr<Session>& session,
                              uint64_t seq, std::string_view line) {
  ++requests_;
  Result<ServiceRequest> decoded = DecodeRequest(line);
  if (!decoded.ok()) {
    ++malformed_;
    Complete(session, seq,
             EncodeErrorResponse(ServiceRequest::Op::kQuery, decoded.status(),
                                 ""));
    return;
  }
  ServiceRequest& request = decoded.value();
  switch (request.op) {
    case ServiceRequest::Op::kStats:
      // Answered inline on the reader thread: never queued, and the
      // engine's telemetry lock is independent of its admission lock,
      // so this cannot stall behind a running query.
      ++stats_requests_;
      Complete(session, seq, EncodeStatsResponse(engine_->stats(), stats()));
      return;
    case ServiceRequest::Op::kShutdown:
      if (!options_.allow_shutdown) {
        Complete(session, seq,
                 EncodeErrorResponse(
                     request.op,
                     Status::Unimplemented(
                         "shutdown op disabled (start with allow_shutdown)"),
                     request.tag));
        return;
      }
      Complete(session, seq, EncodeShutdownResponse());
      RequestStop();
      return;
    case ServiceRequest::Op::kDelta: {
      // Routed through the dispatch queue like a query: ApplyDelta
      // blocks behind the running evaluation (engine admission lock) on
      // a dispatch worker, NOT on this reader thread — requests
      // pipelined behind the delta keep being read, and an unrelated
      // connection's multi-second delta can never wedge this one's
      // reader. The delta occupies an admission slot, so mutators feel
      // the same backpressure queries do. Borrowed engines reject
      // deltas; the error passes through from the worker.
      switch (admission_.Enter(session->id)) {
        case AdmissionController::Admit::kAdmitted:
          break;
        case AdmissionController::Admit::kRejected:
          ++rejected_;
          Complete(session, seq,
                   EncodeErrorResponse(
                       request.op,
                       Status::Unavailable("per-client in-flight limit "
                                           "reached; back off and retry"),
                       request.tag));
          return;
        case AdmissionController::Admit::kClosed:
          Complete(session, seq,
                   EncodeErrorResponse(
                       request.op,
                       Status::Unavailable("service shutting down"),
                       request.tag));
          return;
      }
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        QueuedQuery item;
        item.session = session;
        item.seq = seq;
        item.is_delta = true;
        item.delta = std::move(request.delta);
        item.own = std::move(request.own);
        item.tag = std::move(request.tag);
        queue_.push_back(std::move(item));
      }
      queue_cv_.notify_one();
      return;
    }
    case ServiceRequest::Op::kQuery:
      break;
  }

  QuerySpec spec;
  {
    std::lock_guard<std::mutex> lock(dict_mu_);
    Result<Pattern> pattern =
        PatternParser::Parse(request.pattern_text, dict_);
    if (!pattern.ok()) {
      // Unparseable pattern text is a malformed request, not an engine
      // failure: queries_failed counts evaluations the engine rejected.
      ++malformed_;
      Complete(session, seq,
               EncodeErrorResponse(request.op, pattern.status(), request.tag));
      return;
    }
    spec.pattern = std::move(pattern).value();
  }
  spec.algo = request.algo;
  spec.options = request.options;
  spec.share_cache = request.share_cache;
  spec.tag = request.tag;

  // Per-request cancellation token, parented to the drain token so one
  // shutdown-time RequestCancel() reaches every request. The deadline —
  // when the client sent timeout_ms — starts NOW, at receipt: time
  // blocked on admission and queued counts against the budget, which is
  // what lets dispatch shed a request that aged out before it ever
  // reached the engine. The engine-side QuerySpec::timeout_ms is
  // deliberately NOT set: that clock would restart at admission and
  // double-arm the deadline.
  auto token =
      request.timeout_ms > 0
          ? std::make_shared<CancelToken>(
                CancelToken::Clock::now() +
                    std::chrono::milliseconds(request.timeout_ms),
                &drain_token_)
          : std::make_shared<CancelToken>(&drain_token_);

  switch (admission_.Enter(session->id)) {
    case AdmissionController::Admit::kAdmitted:
      break;
    case AdmissionController::Admit::kRejected:
      ++rejected_;
      Complete(session, seq,
               EncodeErrorResponse(
                   request.op,
                   Status::Unavailable("per-client in-flight limit reached; "
                                       "back off and retry"),
                   request.tag));
      return;
    case AdmissionController::Admit::kClosed:
      Complete(session, seq,
               EncodeErrorResponse(request.op,
                                   Status::Unavailable("service shutting down"),
                                   request.tag));
      return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    QueuedQuery item;
    item.session = session;
    item.seq = seq;
    item.spec = std::move(spec);
    item.cancel = std::move(token);
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
}

void QueryService::DispatchLoop() {
  while (true) {
    QueuedQuery next;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return queue_stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      next = std::move(queue_.front());
      queue_.pop_front();
      ++active_dispatch_;
    }
    // Fault seam: tests arm "service.dispatch_dequeue" to pin a worker
    // right here (delay — stuck-worker simulation) or to fail the
    // request before it reaches the engine (error).
    const Status seam = QGP_FAILPOINT_STATUS("service.dispatch_dequeue");
    std::string line;
    if (!seam.ok()) {
      if (next.is_delta) {
        ++deltas_failed_;
        line = EncodeErrorResponse(ServiceRequest::Op::kDelta, seam, next.tag);
      } else {
        ++queries_failed_;
        line = EncodeErrorResponse(ServiceRequest::Op::kQuery, seam,
                                   next.spec.tag);
      }
    } else if (!next.is_delta && next.cancel != nullptr &&
               next.cancel->ShouldStopExact()) {
      // Queue-age shedding: the request's deadline (or the drain token)
      // fired while it waited — answer it without touching the engine,
      // so a backlog of expired requests cannot occupy the evaluation
      // pipeline. ShouldStopExact reads the clock unconditionally; the
      // strided fast path is for evaluation-hot-path polls only.
      ++shed_;
      line = EncodeErrorResponse(ServiceRequest::Op::kQuery,
                                 next.cancel->ToStatus(), next.spec.tag);
    } else if (next.is_delta) {
      Result<DeltaOutcome> outcome =
          next.own.empty() ? engine_->ApplyDelta(next.delta)
                           : engine_->ApplyDelta(next.delta, next.own);
      if (outcome.ok()) {
        ++deltas_ok_;
        {
          // Re-snapshot the dict: labels the delta interned become
          // usable in subsequent pattern text on every connection.
          std::lock_guard<std::mutex> lock(dict_mu_);
          dict_ = engine_->DictSnapshot();
        }
        line = EncodeDeltaResponse(*outcome, next.tag);
      } else {
        ++deltas_failed_;
        line = EncodeErrorResponse(ServiceRequest::Op::kDelta,
                                   outcome.status(), next.tag);
      }
    } else {
      // Thread the request token into the evaluation; the shared_ptr in
      // `next` keeps it alive until the response is posted.
      next.spec.options.cancel = next.cancel.get();
      Result<QueryOutcome> outcome = engine_->Submit(next.spec);
      if (outcome.ok()) {
        ++queries_ok_;
        line = EncodeQueryResponse(*outcome);
      } else {
        ++queries_failed_;
        line = EncodeErrorResponse(ServiceRequest::Op::kQuery,
                                   outcome.status(), next.spec.tag);
      }
    }
    // Release the slot before writing the response: by the time the
    // client can react to the response, its slot is already free, so a
    // request/response client never sees a stale in-flight count.
    admission_.Exit(next.session->id);
    Complete(next.session, next.seq, std::move(line));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --active_dispatch_;
    }
    // Wakes Stop()'s natural-drain wait (and, harmlessly, idle workers).
    queue_cv_.notify_all();
  }
}

void QueryService::Complete(const std::shared_ptr<Session>& session,
                            uint64_t seq, std::string line) {
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(session->write_mu);
  // Insert into the reorder buffer (kept sorted by seq; completions
  // arrive nearly in order, so this is a short scan from the back).
  auto it = session->pending.end();
  while (it != session->pending.begin() && std::prev(it)->first > seq) --it;
  session->pending.emplace(it, seq, std::move(line));
  // Flush the contiguous prefix: responses leave in request order.
  while (!session->pending.empty() &&
         session->pending.front().first == session->next_write) {
    (void)WriteAll(session->fd, session->pending.front().second);
    session->pending.pop_front();
    ++session->next_write;
  }
}

void QueryService::RequestStop() {
  std::lock_guard<std::mutex> lock(state_mu_);
  stop_requested_ = true;
  stop_cv_.notify_all();
}

void QueryService::Wait() {
  std::unique_lock<std::mutex> lock(state_mu_);
  stop_cv_.wait(lock, [&] { return stop_requested_ || stopped_; });
}

void QueryService::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
    stop_cv_.notify_all();
  }
  // 1. Stop accepting connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  // 2. Wake any reader blocked on admission, then stop the read side of
  // every session: readers drain to EOF and exit. Write sides stay open
  // so already-admitted queries still get their responses.
  admission_.Close();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      ::shutdown(session->fd, SHUT_RD);
    }
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (session->reader.joinable()) session->reader.join();
    }
  }
  // 3. Graceful drain: the already-admitted work gets drain_timeout_ms
  // to finish naturally. Past the budget, the drain token fires — the
  // in-flight evaluation unwinds cooperatively with kCancelled (still
  // answered, as a structured error) and queued requests are shed at
  // dispatch; the engine's delta admission turns bounded meanwhile so
  // a mutator cannot park forever either.
  bool drained_naturally;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    const auto budget = std::chrono::milliseconds(
        options_.drain_timeout_ms > 0 ? options_.drain_timeout_ms : 0);
    drained_naturally = queue_cv_.wait_for(lock, budget, [&] {
      return queue_.empty() && active_dispatch_ == 0;
    });
  }
  if (!drained_naturally) {
    engine_->SetDraining(true);
    drain_token_.RequestCancel();
  }
  // 4. Drain the admission queue: every admitted request is answered
  // (evaluated, cancelled or shed), then the dispatch workers exit —
  // which also means every reorder buffer flushed completely, since
  // each pending seq slot got its response.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatch_threads_) {
    if (t.joinable()) t.join();
  }
  dispatch_threads_.clear();
  // The engine outlives the service; leave it usable.
  engine_->SetDraining(false);
  // 5. Release sessions (sockets close as the last references drop).
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.clear();
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.connections = connections_.load();
  s.requests = requests_.load();
  s.queries_ok = queries_ok_.load();
  s.queries_failed = queries_failed_.load();
  s.rejected = rejected_.load();
  s.malformed = malformed_.load();
  s.stats_requests = stats_requests_.load();
  s.deltas_ok = deltas_ok_.load();
  s.deltas_failed = deltas_failed_.load();
  s.shed = shed_.load();
  return s;
}

}  // namespace qgp::service
