#ifndef QGP_SERVICE_PROTOCOL_H_
#define QGP_SERVICE_PROTOCOL_H_

/// \file
/// Wire protocol of the network query service: newline-delimited JSON.
/// Each request is one JSON object on one line; each response is one
/// JSON object on one line, streamed back in request order per
/// connection. Pattern text travels inside a JSON string (newlines
/// escaped), so the framing never splits a message.
///
/// Requests:
///   {"op":"query","pattern":"node xo person\n...","algo":"qmatch",
///    "options":{"max_isomorphisms":1000000},"share_cache":true,
///    "timeout_ms":250,"tag":"req-17"}
///                                  — "algo" accepts any EngineAlgoName
///                                    including "auto" (planner picks);
///                                    omitted = the engine's default.
///                                    "timeout_ms" (query only; omitted
///                                    or 0 = none) is an end-to-end
///                                    deadline measured from the moment
///                                    the server reads the request:
///                                    queue wait counts, and a request
///                                    that ages out before dispatch is
///                                    shed without touching the engine
///   {"op":"stats"}                 — engine + service telemetry; never
///                                    queues behind running queries
///   {"op":"delta","add_vertices":["person"],"remove_vertices":[3],
///    "add_edges":[{"src":0,"dst":7,"label":"follows"}],
///    "remove_edges":[{"src":2,"dst":3,"label":"likes"}],
///    "own":[7],"tag":"d-1"}
///                                  — batched graph mutation (owning
///                                    engines only); sequences behind
///                                    the running query, bumps the
///                                    graph version. "own" is the shard
///                                    transport extension: extend the
///                                    serving engine's owned-focus set
///                                    with these (post-apply, local)
///                                    vertex ids; see ServiceRequest::own
///   {"op":"shutdown"}              — clean stop (only when the server
///                                    was started with allow_shutdown)
///
/// `op` defaults to "query" when omitted. Unknown top-level keys,
/// unknown option keys and type mismatches are rejected with a
/// structured error — a typo never evaluates silently-wrong.
///
/// Responses:
///   {"ok":true,"op":"query","tag":"req-17","answers":[3,17],
///    "wall_ms":1.9,"cache_hits":4,"cache_misses":0,
///    "result_cache_hit":false,"stats":{"search_extensions":211,...}}
///   {"ok":false,"op":"query","tag":"req-17",
///    "error":{"code":"InvalidArgument","message":"..."}}
///   {"ok":true,"op":"stats","engine":{...},"service":{...}}
///
/// Error codes are StatusCodeName strings; "Unavailable" marks an
/// admission rejection (per-client in-flight limit) or a draining
/// server — back off and retry. "DeadlineExceeded" means the request's
/// timeout_ms expired (in the queue or mid-evaluation); the evaluation
/// unwound cleanly and admitted nothing into any cache, so retrying
/// with a larger budget is safe. "Cancelled" means the server cancelled
/// the evaluation itself (graceful drain at shutdown).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/match_types.h"
#include "engine/query_engine.h"
#include "graph/graph_delta.h"
#include "service/json.h"

namespace qgp::service {

/// One decoded client request.
struct ServiceRequest {
  enum class Op { kQuery, kStats, kDelta, kShutdown };
  Op op = Op::kQuery;
  /// PatternParser DSL text (kQuery only).
  std::string pattern_text;
  /// Matcher selection: any EngineAlgoName, including "auto" (the
  /// cost-based planner picks). Omitted on the wire = unset here = the
  /// engine's configured default.
  std::optional<EngineAlgo> algo;
  MatchOptions options;
  bool share_cache = true;
  /// End-to-end deadline in milliseconds, 0 = none (kQuery only). The
  /// server arms a CancelToken from the moment it reads the request;
  /// see the wire-spec comment above for the semantics.
  int64_t timeout_ms = 0;
  /// Mutation batch in string labels (kDelta only); resolved against
  /// the engine's dict at apply time.
  NamedGraphDelta delta;
  /// Shard transport extension (kDelta only, optional): LOCAL vertex
  /// ids, valid against the post-apply graph, that the coordinator
  /// newly assigns to this shard's owned-focus set. Ignored by engines
  /// without an engaged EngineOptions::focus_subset (the server rejects
  /// it with InvalidArgument in that case, keeping the plain service
  /// strict).
  std::vector<VertexId> own;
  /// Echoed back verbatim in the response.
  std::string tag;
};

/// Service-level counters exposed by the stats endpoint (the engine's
/// EngineStats ride alongside them in the same response).
struct ServiceStats {
  uint64_t connections = 0;     ///< accepted client connections
  uint64_t requests = 0;        ///< request lines received
  uint64_t queries_ok = 0;      ///< queries answered successfully
  uint64_t queries_failed = 0;  ///< queries that returned an error
  uint64_t rejected = 0;        ///< admission rejections (client limit)
  uint64_t malformed = 0;       ///< undecodable request lines
  uint64_t stats_requests = 0;  ///< stats endpoint hits
  uint64_t deltas_ok = 0;       ///< graph deltas applied successfully
  uint64_t deltas_failed = 0;   ///< graph deltas the engine rejected
  /// Requests answered at dispatch without touching the engine because
  /// their deadline had already passed while queued (DeadlineExceeded)
  /// or the server began draining (Cancelled). Disjoint from
  /// queries_failed, which counts evaluations the engine started.
  uint64_t shed = 0;
};

/// One decoded server response (client side). Query-payload fields are
/// meaningful when ok && op == "query"; error fields when !ok; `body`
/// always holds the full document (the stats op's engine/service
/// objects are read through it).
struct ServiceResponse {
  bool ok = false;
  std::string op;
  std::string tag;
  AnswerSet answers;
  MatchStats stats;
  double wall_ms = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  bool result_cache_hit = false;
  bool delta_repaired = false;
  /// The matcher that produced the answer (EngineAlgoName string) — the
  /// planner's choice when the request ran with algo "auto".
  std::string algo;
  /// True when an auto query's pattern family hit the plan cache.
  bool plan_cache_hit = false;
  /// Graph version after a delta op (ok && op == "delta"); the rest of
  /// the DeltaOutcome (net counts, invalidation tallies) is in `body`.
  uint64_t graph_version = 0;
  std::string error_code;
  std::string error_message;
  JsonValue body;
};

/// Parses one request line. Fails with InvalidArgument on anything
/// malformed: bad JSON, unknown op/algo/option keys, wrong value types,
/// a query without a pattern.
Result<ServiceRequest> DecodeRequest(std::string_view line);

/// Renders a request as one line (no trailing newline). Inverse of
/// DecodeRequest; the codec round-trip tests assert both directions.
std::string EncodeRequest(const ServiceRequest& request);

/// Response encoders, each returning one line (no trailing newline).
std::string EncodeQueryResponse(const QueryOutcome& outcome);
std::string EncodeDeltaResponse(const DeltaOutcome& outcome,
                                std::string_view tag);
std::string EncodeErrorResponse(ServiceRequest::Op op, const Status& error,
                                std::string_view tag);
std::string EncodeStatsResponse(const EngineStats& engine,
                                const ServiceStats& service);
std::string EncodeShutdownResponse();

/// Parses one response line (client side).
Result<ServiceResponse> DecodeResponse(std::string_view line);

/// MatchStats <-> JSON object, field by field (scheduler telemetry
/// included — the differential tests decide what to compare).
JsonValue MatchStatsToJson(const MatchStats& stats);
Result<MatchStats> MatchStatsFromJson(const JsonValue& value);

/// EngineStats -> JSON object (the stats endpoint payload).
JsonValue EngineStatsToJson(const EngineStats& stats);

}  // namespace qgp::service

#endif  // QGP_SERVICE_PROTOCOL_H_
