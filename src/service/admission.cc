#include "service/admission.h"

namespace qgp::service {

AdmissionController::Admit AdmissionController::Enter(uint64_t client) {
  std::unique_lock<std::mutex> lock(mu_);
  // Per-client check first, and without waiting: a client over its own
  // budget gets an immediate structured rejection instead of consuming
  // the shared backpressure budget.
  if (closed_) return Admit::kClosed;
  if (options_.max_inflight_per_client > 0 &&
      per_client_[client] >= options_.max_inflight_per_client) {
    ++rejected_;
    return Admit::kRejected;
  }
  can_enter_.wait(lock, [&] {
    return closed_ || options_.max_inflight == 0 ||
           inflight_ < options_.max_inflight;
  });
  if (closed_) return Admit::kClosed;
  // Re-check after the wait: a sibling request of the same client may
  // have been admitted while this one was parked on the global bound.
  if (options_.max_inflight_per_client > 0 &&
      per_client_[client] >= options_.max_inflight_per_client) {
    ++rejected_;
    return Admit::kRejected;
  }
  ++inflight_;
  ++per_client_[client];
  ++admitted_;
  return Admit::kAdmitted;
}

void AdmissionController::Exit(uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_client_.find(client);
  if (it != per_client_.end() && --it->second == 0) per_client_.erase(it);
  if (inflight_ > 0) --inflight_;
  can_enter_.notify_one();
}

void AdmissionController::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  can_enter_.notify_all();
}

size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t AdmissionController::client_inflight(uint64_t client) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_client_.find(client);
  return it == per_client_.end() ? 0 : it->second;
}

uint64_t AdmissionController::total_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::total_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace qgp::service
