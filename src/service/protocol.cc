#include "service/protocol.h"

#include <cmath>
#include <utility>

namespace qgp::service {

namespace {

const char* OpName(ServiceRequest::Op op) {
  switch (op) {
    case ServiceRequest::Op::kQuery:
      return "query";
    case ServiceRequest::Op::kStats:
      return "stats";
    case ServiceRequest::Op::kDelta:
      return "delta";
    case ServiceRequest::Op::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

/// A JSON number is accepted as an unsigned counter only when it is a
/// non-negative integer (no silent truncation of "3.7" or "-1").
Result<uint64_t> AsUint(const JsonValue& v, const std::string& field) {
  if (!v.is_number() || v.as_number() < 0 ||
      v.as_number() != std::floor(v.as_number())) {
    return Status::InvalidArgument("field '" + field +
                                   "' must be a non-negative integer");
  }
  return static_cast<uint64_t>(v.as_number());
}

Result<bool> AsBool(const JsonValue& v, const std::string& field) {
  if (!v.is_bool()) {
    return Status::InvalidArgument("field '" + field + "' must be a boolean");
  }
  return v.as_bool();
}

Result<MatchOptions> DecodeOptions(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("'options' must be an object");
  }
  MatchOptions o;
  for (const auto& [key, v] : value.as_object()) {
    if (key == "use_simulation") {
      QGP_ASSIGN_OR_RETURN(o.use_simulation, AsBool(v, key));
    } else if (key == "use_quantifier_pruning") {
      QGP_ASSIGN_OR_RETURN(o.use_quantifier_pruning, AsBool(v, key));
    } else if (key == "use_potential_ordering") {
      QGP_ASSIGN_OR_RETURN(o.use_potential_ordering, AsBool(v, key));
    } else if (key == "early_stop_counting") {
      QGP_ASSIGN_OR_RETURN(o.early_stop_counting, AsBool(v, key));
    } else if (key == "use_incremental_negation") {
      QGP_ASSIGN_OR_RETURN(o.use_incremental_negation, AsBool(v, key));
    } else if (key == "max_quantified_per_path") {
      QGP_ASSIGN_OR_RETURN(uint64_t n, AsUint(v, key));
      o.max_quantified_per_path = static_cast<int>(n);
    } else if (key == "max_isomorphisms") {
      QGP_ASSIGN_OR_RETURN(o.max_isomorphisms, AsUint(v, key));
    } else if (key == "ball_limit") {
      QGP_ASSIGN_OR_RETURN(uint64_t n, AsUint(v, key));
      o.ball_limit = static_cast<size_t>(n);
    } else if (key == "scheduler_grain") {
      QGP_ASSIGN_OR_RETURN(uint64_t n, AsUint(v, key));
      o.scheduler_grain = static_cast<size_t>(n);
    } else {
      return Status::InvalidArgument("unknown option '" + key + "'");
    }
  }
  return o;
}

JsonValue EncodeOptions(const MatchOptions& o) {
  JsonValue::Object out;
  MatchOptions defaults;
  // Only non-default knobs travel — requests stay short and a decoded
  // request compares equal to the original field by field.
  if (o.use_simulation != defaults.use_simulation) {
    out["use_simulation"] = o.use_simulation;
  }
  if (o.use_quantifier_pruning != defaults.use_quantifier_pruning) {
    out["use_quantifier_pruning"] = o.use_quantifier_pruning;
  }
  if (o.use_potential_ordering != defaults.use_potential_ordering) {
    out["use_potential_ordering"] = o.use_potential_ordering;
  }
  if (o.early_stop_counting != defaults.early_stop_counting) {
    out["early_stop_counting"] = o.early_stop_counting;
  }
  if (o.use_incremental_negation != defaults.use_incremental_negation) {
    out["use_incremental_negation"] = o.use_incremental_negation;
  }
  if (o.max_quantified_per_path != defaults.max_quantified_per_path) {
    out["max_quantified_per_path"] = int64_t{o.max_quantified_per_path};
  }
  if (o.max_isomorphisms != defaults.max_isomorphisms) {
    out["max_isomorphisms"] = o.max_isomorphisms;
  }
  if (o.ball_limit != defaults.ball_limit) {
    out["ball_limit"] = uint64_t{o.ball_limit};
  }
  if (o.scheduler_grain != defaults.scheduler_grain) {
    out["scheduler_grain"] = uint64_t{o.scheduler_grain};
  }
  return JsonValue(std::move(out));
}

Result<uint64_t> ReadUint(const JsonValue& object, const std::string& field) {
  const JsonValue* v = object.Find(field);
  if (v == nullptr) {
    return Status::InvalidArgument("missing field '" + field + "'");
  }
  return AsUint(*v, field);
}

Result<std::vector<std::string>> DecodeLabelArray(const JsonValue& v,
                                                  const std::string& field) {
  if (!v.is_array()) {
    return Status::InvalidArgument("'" + field + "' must be an array");
  }
  std::vector<std::string> out;
  out.reserve(v.as_array().size());
  for (const JsonValue& item : v.as_array()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("'" + field +
                                     "' entries must be label strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

Result<std::vector<VertexId>> DecodeVertexArray(const JsonValue& v,
                                                const std::string& field) {
  if (!v.is_array()) {
    return Status::InvalidArgument("'" + field + "' must be an array");
  }
  std::vector<VertexId> out;
  out.reserve(v.as_array().size());
  for (const JsonValue& item : v.as_array()) {
    QGP_ASSIGN_OR_RETURN(uint64_t id, AsUint(item, field + "[]"));
    out.push_back(static_cast<VertexId>(id));
  }
  return out;
}

/// One wire edge is {"src":u,"dst":v,"label":"..."} — all three keys
/// required, nothing else allowed.
Result<std::vector<NamedGraphDelta::NamedEdge>> DecodeEdgeArray(
    const JsonValue& v, const std::string& field) {
  if (!v.is_array()) {
    return Status::InvalidArgument("'" + field + "' must be an array");
  }
  std::vector<NamedGraphDelta::NamedEdge> out;
  out.reserve(v.as_array().size());
  for (const JsonValue& item : v.as_array()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("'" + field +
                                     "' entries must be edge objects");
    }
    NamedGraphDelta::NamedEdge edge;
    bool have_src = false, have_dst = false, have_label = false;
    for (const auto& [key, value] : item.as_object()) {
      if (key == "src") {
        QGP_ASSIGN_OR_RETURN(uint64_t id, AsUint(value, field + ".src"));
        edge.src = static_cast<VertexId>(id);
        have_src = true;
      } else if (key == "dst") {
        QGP_ASSIGN_OR_RETURN(uint64_t id, AsUint(value, field + ".dst"));
        edge.dst = static_cast<VertexId>(id);
        have_dst = true;
      } else if (key == "label") {
        if (!value.is_string()) {
          return Status::InvalidArgument("'" + field +
                                         ".label' must be a string");
        }
        edge.label = value.as_string();
        have_label = true;
      } else {
        return Status::InvalidArgument("unknown edge field '" + key +
                                       "' in '" + field + "'");
      }
    }
    if (!have_src || !have_dst || !have_label) {
      return Status::InvalidArgument("'" + field +
                                     "' entries need src, dst and label");
    }
    out.push_back(std::move(edge));
  }
  return out;
}

JsonValue EncodeEdgeArray(const std::vector<NamedGraphDelta::NamedEdge>& edges) {
  JsonValue::Array out;
  out.reserve(edges.size());
  for (const NamedGraphDelta::NamedEdge& edge : edges) {
    JsonValue::Object e;
    e["src"] = uint64_t{edge.src};
    e["dst"] = uint64_t{edge.dst};
    e["label"] = edge.label;
    out.emplace_back(std::move(e));
  }
  return JsonValue(std::move(out));
}

}  // namespace

Result<ServiceRequest> DecodeRequest(std::string_view line) {
  QGP_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  ServiceRequest request;
  bool have_pattern = false;
  bool have_delta = false;
  for (const auto& [key, v] : doc.as_object()) {
    if (key == "op") {
      if (!v.is_string()) {
        return Status::InvalidArgument("'op' must be a string");
      }
      const std::string& op = v.as_string();
      if (op == "query") {
        request.op = ServiceRequest::Op::kQuery;
      } else if (op == "stats") {
        request.op = ServiceRequest::Op::kStats;
      } else if (op == "delta") {
        request.op = ServiceRequest::Op::kDelta;
      } else if (op == "shutdown") {
        request.op = ServiceRequest::Op::kShutdown;
      } else {
        return Status::InvalidArgument("unknown op '" + op + "'");
      }
    } else if (key == "pattern") {
      if (!v.is_string()) {
        return Status::InvalidArgument("'pattern' must be a string");
      }
      request.pattern_text = v.as_string();
      have_pattern = true;
    } else if (key == "algo") {
      if (!v.is_string()) {
        return Status::InvalidArgument("'algo' must be a string");
      }
      std::optional<EngineAlgo> algo = ParseEngineAlgo(v.as_string());
      if (!algo.has_value()) {
        return Status::InvalidArgument("unknown algo '" + v.as_string() + "'");
      }
      request.algo = algo;
    } else if (key == "options") {
      QGP_ASSIGN_OR_RETURN(request.options, DecodeOptions(v));
    } else if (key == "share_cache") {
      QGP_ASSIGN_OR_RETURN(request.share_cache, AsBool(v, key));
    } else if (key == "timeout_ms") {
      QGP_ASSIGN_OR_RETURN(uint64_t ms, AsUint(v, key));
      request.timeout_ms = static_cast<int64_t>(ms);
    } else if (key == "add_vertices") {
      QGP_ASSIGN_OR_RETURN(request.delta.add_vertices,
                           DecodeLabelArray(v, key));
      have_delta = true;
    } else if (key == "remove_vertices") {
      QGP_ASSIGN_OR_RETURN(request.delta.remove_vertices,
                           DecodeVertexArray(v, key));
      have_delta = true;
    } else if (key == "add_edges") {
      QGP_ASSIGN_OR_RETURN(request.delta.add_edges, DecodeEdgeArray(v, key));
      have_delta = true;
    } else if (key == "remove_edges") {
      QGP_ASSIGN_OR_RETURN(request.delta.remove_edges,
                           DecodeEdgeArray(v, key));
      have_delta = true;
    } else if (key == "own") {
      QGP_ASSIGN_OR_RETURN(request.own, DecodeVertexArray(v, key));
      have_delta = true;
    } else if (key == "tag") {
      if (!v.is_string()) {
        return Status::InvalidArgument("'tag' must be a string");
      }
      request.tag = v.as_string();
    } else {
      return Status::InvalidArgument("unknown request field '" + key + "'");
    }
  }
  if (request.op == ServiceRequest::Op::kQuery) {
    if (!have_pattern || request.pattern_text.empty()) {
      return Status::InvalidArgument("query request needs a 'pattern'");
    }
  } else if (have_pattern) {
    return Status::InvalidArgument(
        std::string("'pattern' is only valid for op \"query\", not \"") +
        OpName(request.op) + "\"");
  }
  if (request.timeout_ms > 0 && request.op != ServiceRequest::Op::kQuery) {
    return Status::InvalidArgument(
        std::string("'timeout_ms' is only valid for op \"query\", not \"") +
        OpName(request.op) + "\"");
  }
  // An empty delta op is legal (a no-op batch still bumps the graph
  // version), but delta fields on any other op are a client bug.
  if (have_delta && request.op != ServiceRequest::Op::kDelta) {
    return Status::InvalidArgument(
        std::string("delta fields are only valid for op \"delta\", not \"") +
        OpName(request.op) + "\"");
  }
  return request;
}

std::string EncodeRequest(const ServiceRequest& request) {
  JsonValue::Object out;
  out["op"] = OpName(request.op);
  if (!request.tag.empty()) out["tag"] = request.tag;
  if (request.op == ServiceRequest::Op::kQuery) {
    out["pattern"] = request.pattern_text;
    if (request.algo.has_value()) out["algo"] = EngineAlgoName(*request.algo);
    if (!request.share_cache) out["share_cache"] = false;
    if (request.timeout_ms > 0) {
      out["timeout_ms"] = static_cast<uint64_t>(request.timeout_ms);
    }
    JsonValue options = EncodeOptions(request.options);
    if (!options.as_object().empty()) out["options"] = std::move(options);
  } else if (request.op == ServiceRequest::Op::kDelta) {
    // Only non-empty stages travel; DecodeRequest defaults the rest to
    // empty, so the round trip stays field-exact.
    if (!request.delta.add_vertices.empty()) {
      JsonValue::Array labels;
      labels.reserve(request.delta.add_vertices.size());
      for (const std::string& l : request.delta.add_vertices) {
        labels.emplace_back(l);
      }
      out["add_vertices"] = std::move(labels);
    }
    if (!request.delta.remove_vertices.empty()) {
      JsonValue::Array ids;
      ids.reserve(request.delta.remove_vertices.size());
      for (VertexId v : request.delta.remove_vertices) {
        ids.emplace_back(uint64_t{v});
      }
      out["remove_vertices"] = std::move(ids);
    }
    if (!request.delta.add_edges.empty()) {
      out["add_edges"] = EncodeEdgeArray(request.delta.add_edges);
    }
    if (!request.delta.remove_edges.empty()) {
      out["remove_edges"] = EncodeEdgeArray(request.delta.remove_edges);
    }
    if (!request.own.empty()) {
      JsonValue::Array ids;
      ids.reserve(request.own.size());
      for (VertexId v : request.own) {
        ids.emplace_back(uint64_t{v});
      }
      out["own"] = std::move(ids);
    }
  }
  return JsonValue(std::move(out)).Dump();
}

JsonValue MatchStatsToJson(const MatchStats& s) {
  JsonValue::Object out;
  out["isomorphisms_enumerated"] = s.isomorphisms_enumerated;
  out["witness_searches"] = s.witness_searches;
  out["search_extensions"] = s.search_extensions;
  out["candidates_initial"] = s.candidates_initial;
  out["candidates_pruned"] = s.candidates_pruned;
  out["focus_candidates_checked"] = s.focus_candidates_checked;
  out["inc_candidates_checked"] = s.inc_candidates_checked;
  out["balls_built"] = s.balls_built;
  out["scheduler_tasks"] = s.scheduler_tasks;
  out["scheduler_steals"] = s.scheduler_steals;
  return JsonValue(std::move(out));
}

Result<MatchStats> MatchStatsFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("'stats' must be an object");
  }
  MatchStats s;
  QGP_ASSIGN_OR_RETURN(s.isomorphisms_enumerated,
                       ReadUint(value, "isomorphisms_enumerated"));
  QGP_ASSIGN_OR_RETURN(s.witness_searches, ReadUint(value, "witness_searches"));
  QGP_ASSIGN_OR_RETURN(s.search_extensions,
                       ReadUint(value, "search_extensions"));
  QGP_ASSIGN_OR_RETURN(s.candidates_initial,
                       ReadUint(value, "candidates_initial"));
  QGP_ASSIGN_OR_RETURN(s.candidates_pruned,
                       ReadUint(value, "candidates_pruned"));
  QGP_ASSIGN_OR_RETURN(s.focus_candidates_checked,
                       ReadUint(value, "focus_candidates_checked"));
  QGP_ASSIGN_OR_RETURN(s.inc_candidates_checked,
                       ReadUint(value, "inc_candidates_checked"));
  QGP_ASSIGN_OR_RETURN(s.balls_built, ReadUint(value, "balls_built"));
  QGP_ASSIGN_OR_RETURN(s.scheduler_tasks, ReadUint(value, "scheduler_tasks"));
  QGP_ASSIGN_OR_RETURN(s.scheduler_steals,
                       ReadUint(value, "scheduler_steals"));
  return s;
}

JsonValue EngineStatsToJson(const EngineStats& s) {
  JsonValue::Object out;
  out["queries"] = s.queries;
  out["failed"] = s.failed;
  out["timeouts"] = s.timeouts;
  out["cancellations"] = s.cancellations;
  out["wall_ms"] = s.wall_ms;
  out["cache_hits"] = s.cache_hits;
  out["cache_misses"] = s.cache_misses;
  out["cache_evicted"] = s.cache_evicted;
  out["cache_hit_ratio"] = s.HitRatio();
  out["result_hits"] = s.result_hits;
  out["result_misses"] = s.result_misses;
  out["deltas"] = s.deltas;
  out["delta_wall_ms"] = s.delta_wall_ms;
  out["results_invalidated"] = s.results_invalidated;
  out["repair_hits"] = s.repair_hits;
  out["repair_fallbacks"] = s.repair_fallbacks;
  out["plans_built"] = s.plans_built;
  out["plan_hits"] = s.plan_hits;
  out["plans_invalidated"] = s.plans_invalidated;
  out["match"] = MatchStatsToJson(s.match);
  return JsonValue(std::move(out));
}

std::string EncodeQueryResponse(const QueryOutcome& outcome) {
  JsonValue::Object out;
  out["ok"] = true;
  out["op"] = "query";
  out["tag"] = outcome.tag;
  JsonValue::Array answers;
  answers.reserve(outcome.answers.size());
  for (VertexId v : outcome.answers) answers.emplace_back(uint64_t{v});
  out["answers"] = std::move(answers);
  out["wall_ms"] = outcome.wall_ms;
  out["cache_hits"] = outcome.cache_hits;
  out["cache_misses"] = outcome.cache_misses;
  out["result_cache_hit"] = outcome.result_cache_hit;
  out["delta_repaired"] = outcome.delta_repaired;
  out["algo"] = EngineAlgoName(outcome.algo);
  out["plan_cache_hit"] = outcome.plan_cache_hit;
  out["stats"] = MatchStatsToJson(outcome.stats);
  return JsonValue(std::move(out)).Dump();
}

std::string EncodeDeltaResponse(const DeltaOutcome& outcome,
                                std::string_view tag) {
  JsonValue::Object out;
  out["ok"] = true;
  out["op"] = "delta";
  out["tag"] = std::string(tag);
  out["graph_version"] = outcome.graph_version;
  out["vertices_added"] = uint64_t{outcome.vertices_added};
  out["vertices_removed"] = uint64_t{outcome.vertices_removed};
  out["edges_added"] = uint64_t{outcome.edges_added};
  out["edges_removed"] = uint64_t{outcome.edges_removed};
  out["candidate_sets_evicted"] = uint64_t{outcome.candidate_sets_evicted};
  out["results_invalidated"] = uint64_t{outcome.results_invalidated};
  out["plans_invalidated"] = uint64_t{outcome.plans_invalidated};
  out["partition_invalidated"] = outcome.partition_invalidated;
  out["wall_ms"] = outcome.wall_ms;
  return JsonValue(std::move(out)).Dump();
}

std::string EncodeErrorResponse(ServiceRequest::Op op, const Status& error,
                                std::string_view tag) {
  JsonValue::Object detail;
  detail["code"] = std::string(StatusCodeName(error.code()));
  detail["message"] = error.message();
  JsonValue::Object out;
  out["ok"] = false;
  out["op"] = OpName(op);
  out["tag"] = std::string(tag);
  out["error"] = std::move(detail);
  return JsonValue(std::move(out)).Dump();
}

std::string EncodeStatsResponse(const EngineStats& engine,
                                const ServiceStats& service) {
  JsonValue::Object svc;
  svc["connections"] = service.connections;
  svc["requests"] = service.requests;
  svc["queries_ok"] = service.queries_ok;
  svc["queries_failed"] = service.queries_failed;
  svc["rejected"] = service.rejected;
  svc["malformed"] = service.malformed;
  svc["stats_requests"] = service.stats_requests;
  svc["deltas_ok"] = service.deltas_ok;
  svc["deltas_failed"] = service.deltas_failed;
  svc["shed"] = service.shed;
  JsonValue::Object out;
  out["ok"] = true;
  out["op"] = "stats";
  out["tag"] = "";
  out["engine"] = EngineStatsToJson(engine);
  out["service"] = std::move(svc);
  return JsonValue(std::move(out)).Dump();
}

std::string EncodeShutdownResponse() {
  JsonValue::Object out;
  out["ok"] = true;
  out["op"] = "shutdown";
  out["tag"] = "";
  return JsonValue(std::move(out)).Dump();
}

Result<ServiceResponse> DecodeResponse(std::string_view line) {
  QGP_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  ServiceResponse response;
  const JsonValue* ok = doc.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::InvalidArgument("response needs a boolean 'ok'");
  }
  response.ok = ok->as_bool();
  if (const JsonValue* op = doc.Find("op"); op != nullptr && op->is_string()) {
    response.op = op->as_string();
  }
  if (const JsonValue* tag = doc.Find("tag");
      tag != nullptr && tag->is_string()) {
    response.tag = tag->as_string();
  }
  if (!response.ok) {
    const JsonValue* error = doc.Find("error");
    if (error == nullptr || !error->is_object()) {
      return Status::InvalidArgument("error response needs an 'error' object");
    }
    if (const JsonValue* code = error->Find("code");
        code != nullptr && code->is_string()) {
      response.error_code = code->as_string();
    }
    if (const JsonValue* message = error->Find("message");
        message != nullptr && message->is_string()) {
      response.error_message = message->as_string();
    }
  } else if (response.op == "query") {
    const JsonValue* answers = doc.Find("answers");
    if (answers == nullptr || !answers->is_array()) {
      return Status::InvalidArgument("query response needs 'answers'");
    }
    response.answers.reserve(answers->as_array().size());
    for (const JsonValue& v : answers->as_array()) {
      QGP_ASSIGN_OR_RETURN(uint64_t id, AsUint(v, "answers[]"));
      response.answers.push_back(static_cast<VertexId>(id));
    }
    const JsonValue* stats = doc.Find("stats");
    if (stats == nullptr) {
      return Status::InvalidArgument("query response needs 'stats'");
    }
    QGP_ASSIGN_OR_RETURN(response.stats, MatchStatsFromJson(*stats));
    if (const JsonValue* wall = doc.Find("wall_ms");
        wall != nullptr && wall->is_number()) {
      response.wall_ms = wall->as_number();
    }
    QGP_ASSIGN_OR_RETURN(response.cache_hits, ReadUint(doc, "cache_hits"));
    QGP_ASSIGN_OR_RETURN(response.cache_misses, ReadUint(doc, "cache_misses"));
    if (const JsonValue* hit = doc.Find("result_cache_hit");
        hit != nullptr && hit->is_bool()) {
      response.result_cache_hit = hit->as_bool();
    }
    if (const JsonValue* repaired = doc.Find("delta_repaired");
        repaired != nullptr && repaired->is_bool()) {
      response.delta_repaired = repaired->as_bool();
    }
    if (const JsonValue* algo = doc.Find("algo");
        algo != nullptr && algo->is_string()) {
      response.algo = algo->as_string();
    }
    if (const JsonValue* plan_hit = doc.Find("plan_cache_hit");
        plan_hit != nullptr && plan_hit->is_bool()) {
      response.plan_cache_hit = plan_hit->as_bool();
    }
  } else if (response.op == "delta") {
    QGP_ASSIGN_OR_RETURN(response.graph_version,
                         ReadUint(doc, "graph_version"));
  }
  response.body = std::move(doc);
  return response;
}

}  // namespace qgp::service
