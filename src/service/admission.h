#ifndef QGP_SERVICE_ADMISSION_H_
#define QGP_SERVICE_ADMISSION_H_

/// \file
/// Admission control for the network query service: a global in-flight
/// bound that exerts backpressure (callers block until load drains) and
/// a per-client in-flight/queue-depth limit that rejects outright (one
/// greedy client cannot starve the rest — it gets structured
/// "Unavailable" errors while other clients keep flowing).
///
/// "In-flight" counts a request from admission until completion, i.e.
/// queued plus executing: the per-client limit therefore bounds both a
/// client's queue depth and its concurrency with one knob.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace qgp::service {

class AdmissionController {
 public:
  struct Options {
    /// Global in-flight bound: Enter() blocks (backpressure) while this
    /// many requests are admitted and incomplete. 0 = unbounded.
    size_t max_inflight = 64;
    /// Per-client bound: Enter() returns kRejected immediately once a
    /// client has this many requests in flight. 0 = unbounded.
    size_t max_inflight_per_client = 8;
  };

  enum class Admit {
    kAdmitted,  ///< slot held; pair with Exit()
    kRejected,  ///< per-client limit hit; tell the client to back off
    kClosed,    ///< controller shut down; drop the request
  };

  explicit AdmissionController(const Options& options) : options_(options) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admits one request from `client`. Blocks while the global bound is
  /// reached (the caller is a connection reader — blocking it stalls
  /// the socket, which is exactly the backpressure we want); rejects
  /// without blocking when the client's own limit is reached.
  Admit Enter(uint64_t client);

  /// Releases a slot admitted by Enter() (request completed or dropped).
  void Exit(uint64_t client);

  /// Wakes every blocked Enter() with kClosed and fails all future
  /// admissions. Idempotent.
  void Close();

  /// Requests currently admitted and incomplete (all clients).
  size_t inflight() const;
  /// In-flight count of one client.
  size_t client_inflight(uint64_t client) const;
  /// Lifetime counters.
  uint64_t total_admitted() const;
  uint64_t total_rejected() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable can_enter_;
  std::unordered_map<uint64_t, size_t> per_client_;
  size_t inflight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  bool closed_ = false;
};

}  // namespace qgp::service

#endif  // QGP_SERVICE_ADMISSION_H_
