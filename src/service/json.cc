#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

// GCC 12's -Wmaybe-uninitialized misfires inside the inlined
// std::variant machinery when a parsed JsonValue is moved out through
// Result (middle-end false positive, same family as the PR105329 note
// in CMakeLists.txt). File-scope because the reported location moves
// between <variant> internals from build to build.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace qgp::service {

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  // Integral values (the common case: ids, counters) print exactly;
  // everything else gets enough digits to round-trip a double.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  *out += buf;
}

void DumpTo(const JsonValue& v, std::string* out);

void DumpArray(const JsonValue::Array& a, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < a.size(); ++i) {
    if (i > 0) out->push_back(',');
    DumpTo(a[i], out);
  }
  out->push_back(']');
}

void DumpObject(const JsonValue::Object& o, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : o) {
    if (!first) out->push_back(',');
    first = false;
    AppendEscaped(key, out);
    out->push_back(':');
    DumpTo(value, out);
  }
  out->push_back('}');
}

void DumpTo(const JsonValue& v, std::string* out) {
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_bool()) {
    *out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    AppendNumber(v.as_number(), out);
  } else if (v.is_string()) {
    AppendEscaped(v.as_string(), out);
  } else if (v.is_array()) {
    DumpArray(v.as_array(), out);
  } else {
    DumpObject(v.as_object(), out);
  }
}

/// Recursive-descent parser over one in-memory document.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    QGP_ASSIGN_OR_RETURN(JsonValue v, ParseValue(/*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;  // hostile-input nesting guard

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      QGP_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    if (ConsumeWord("null")) return JsonValue(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      QGP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      QGP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(object));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(array));
    while (true) {
      QGP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(array));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          QGP_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate pair half
            if (!ConsumeWord("\\u")) return Error("unpaired surrogate");
            QGP_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    // JSON forbids leading zeros: the integer part is "0" or starts 1-9.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("number has a leading zero");
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty() ||
        !std::isfinite(value)) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& o = as_object();
  auto it = o.find(std::string(key));
  return it == o.end() ? nullptr : &it->second;
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace qgp::service
