#include "parallel/penum.h"

#include "common/timer.h"
#include "core/enum_matcher.h"

namespace qgp {

namespace {

// Enum over one fragment: Π(Q) on owned foci, minus each Π(Q⁺ᵉ)
// re-enumerated over the full owned set (no incremental reuse — that is
// the point of the baseline).
Result<AnswerSet> EnumFragment(const Pattern& pattern, const Graph& g,
                               std::span<const VertexId> owned,
                               const MatchOptions& options,
                               MatchStats* stats) {
  auto pi = pattern.Pi();
  if (!pi.ok()) return pi.status();
  // Per-fragment intern pool: the Π(Q) and Π(Q⁺ᵉ) enumerations share
  // their plain label/degree candidate sets instead of rebuilding them.
  CandidateCache cache(g);
  QGP_ASSIGN_OR_RETURN(
      AnswerSet answers,
      EnumMatcher::EvaluatePositive(pi.value().first, g, options, stats,
                                    owned, &cache));
  for (PatternEdgeId e : pattern.NegatedEdgeIds()) {
    QGP_ASSIGN_OR_RETURN(Pattern positified, pattern.Positify(e));
    auto pi_pos = positified.Pi();
    if (!pi_pos.ok()) return pi_pos.status();
    QGP_ASSIGN_OR_RETURN(
        AnswerSet negative,
        EnumMatcher::EvaluatePositive(pi_pos.value().first, g, options,
                                      stats, owned, &cache));
    answers = SetDifference(answers, negative);
  }
  return answers;
}

}  // namespace

Result<ParallelRunResult> PEnum::Evaluate(const Pattern& pattern,
                                          const Partition& partition,
                                          const ParallelConfig& config) {
  QGP_RETURN_IF_ERROR(
      pattern.Validate(config.match.max_quantified_per_path));
  if (pattern.Radius() > partition.d) {
    return Status::InvalidArgument(
        "pattern radius exceeds the partition's hop preservation depth");
  }
  const size_t n = partition.fragments.size();
  ParallelRunResult result;
  std::vector<AnswerSet> local_answers(n);
  std::vector<MatchStats> local_stats(n);
  std::vector<Status> local_status(n, Status::Ok());

  // Same size-ordered stealable schedule as PQMatch: heaviest fragment
  // first, idle workers steal the rest.
  std::vector<uint64_t> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = partition.fragments[i].SizeCost();
  }

  WorkerSet workers(n, config.mode);
  WorkerSet::Report report = workers.Run([&](size_t i) {
    const Fragment& f = partition.fragments[i];
    if (f.owned_local.empty()) return;
    Result<AnswerSet> local = EnumFragment(
        pattern, f.sub.graph, f.owned_local, config.match, &local_stats[i]);
    if (!local.ok()) {
      local_status[i] = local.status();
      return;
    }
    for (VertexId lv : local.value()) {
      local_answers[i].push_back(f.sub.local_to_global[lv]);
    }
  }, weights);
  for (size_t i = 0; i < n; ++i) {
    QGP_RETURN_IF_ERROR(local_status[i]);
  }

  WallTimer assemble;
  for (size_t i = 0; i < n; ++i) {
    result.answers.insert(result.answers.end(), local_answers[i].begin(),
                          local_answers[i].end());
    result.stats.Add(local_stats[i]);
  }
  result.stats.scheduler_tasks += report.tasks_executed;
  result.stats.scheduler_steals += report.tasks_stolen;
  Canonicalize(result.answers);
  result.coordinator_seconds = assemble.ElapsedSeconds();
  result.fragment_seconds = report.worker_seconds;
  result.total_work_seconds = report.total_work_seconds;
  double base = config.mode == ExecutionMode::kSimulated
                    ? report.makespan_seconds
                    : report.wall_seconds;
  result.parallel_seconds = base + result.coordinator_seconds;
  return result;
}

}  // namespace qgp
