#include "parallel/partition.h"

#include <algorithm>

#include "common/bitset.h"

namespace qgp {

double Partition::Skew() const {
  if (fragments.empty()) return 1.0;
  size_t min_size = SIZE_MAX, max_size = 0;
  for (const Fragment& f : fragments) {
    min_size = std::min(min_size, f.SizeCost());
    max_size = std::max(max_size, f.SizeCost());
  }
  if (max_size == 0) return 1.0;
  return static_cast<double>(min_size) / static_cast<double>(max_size);
}

double Partition::ReplicationFactor(const Graph& g) const {
  size_t total = 0;
  for (const Fragment& f : fragments) total += f.SizeCost();
  size_t base = g.num_vertices() + g.num_edges();
  return base == 0 ? 0.0
                   : static_cast<double>(total) / static_cast<double>(base);
}

Status Partition::Validate(const Graph& g) const {
  // (1) Unique ownership covering all of V.
  std::vector<uint32_t> owner(g.num_vertices(), UINT32_MAX);
  for (size_t i = 0; i < fragments.size(); ++i) {
    for (VertexId v : fragments[i].owned_global) {
      if (v >= g.num_vertices()) {
        return Status::Corruption("owned vertex out of range");
      }
      if (owner[v] != UINT32_MAX) {
        return Status::Corruption("vertex " + std::to_string(v) +
                                  " owned by two fragments");
      }
      owner[v] = static_cast<uint32_t>(i);
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (owner[v] == UINT32_MAX) {
      return Status::Corruption("vertex " + std::to_string(v) +
                                " owned by no fragment");
    }
  }
  // (2) d-hop preservation per owned vertex.
  for (const Fragment& f : fragments) {
    for (VertexId v : f.owned_global) {
      std::vector<VertexId> ball = KHopBall(g, v, d);
      for (VertexId w : ball) {
        if (f.sub.global_to_local.count(w) == 0) {
          return Status::Corruption(
              "ball of owned vertex " + std::to_string(v) +
              " misses vertex " + std::to_string(w));
        }
      }
      // Induced edges among ball members must exist locally.
      for (VertexId w : ball) {
        VertexId lw = f.sub.global_to_local.at(w);
        for (const Neighbor& n : g.OutNeighbors(w)) {
          auto it = f.sub.global_to_local.find(n.v);
          if (it == f.sub.global_to_local.end()) continue;
          if (!std::binary_search(ball.begin(), ball.end(), n.v)) continue;
          if (!f.sub.graph.HasEdge(lw, it->second, n.label)) {
            return Status::Corruption("ball edge missing in fragment");
          }
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace qgp
