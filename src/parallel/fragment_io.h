#ifndef QGP_PARALLEL_FRAGMENT_IO_H_
#define QGP_PARALLEL_FRAGMENT_IO_H_

/// \file
/// Fragment export/import: persists one DPar fragment — its induced
/// subgraph (base region + replicated border balls), the owned-vertex
/// list, and the local→global id map — as a two-file bundle so a
/// process-per-shard server (`qgp_cli shard-serve`) can load exactly the
/// fragment a coordinator partitioned, without re-running DPar or
/// shipping the whole graph.
///
/// A bundle with prefix P is:
///   P.graph — the fragment's induced subgraph in GraphIo binary form
///             (labels travel by name inside, so the shard's dict starts
///             value-equal to the master's restriction);
///   P.meta  — strict line-based text:
///               QGPFRAG1
///               d <hop-preservation depth>
///               fragment <index> <num_fragments>
///               owned <n> <local id>*
///               l2g <n> <global id>*
///             Any deviation (bad magic, missing field, count mismatch,
///             trailing junk, owned/l2g ids out of range) decodes to
///             InvalidArgument — a truncated bundle never half-loads.
///
/// The meta file carries LOCAL owned ids (what a shard engine's focus
/// subset wants) plus the full local→global map (what the coordinator
/// needs to merge answers); the global owned list is recoverable as
/// l2g[owned[i]].

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "parallel/partition.h"

namespace qgp {

/// One loaded fragment bundle.
struct FragmentBundle {
  Graph graph;                          ///< induced subgraph of the master
  int d = 0;                            ///< hop-preservation depth
  size_t index = 0;                     ///< this fragment's position
  size_t num_fragments = 0;             ///< total fragments in the partition
  std::vector<VertexId> owned_local;    ///< owned foci, local ids, sorted
  std::vector<VertexId> local_to_global;  ///< local id -> master id
};

/// Writes `fragment` (from a Partition with hop depth `d`, position
/// `index` of `num_fragments`) as `<prefix>.graph` + `<prefix>.meta`.
Status WriteFragmentBundle(const Fragment& fragment, int d, size_t index,
                           size_t num_fragments, const std::string& prefix);

/// Loads a bundle written by WriteFragmentBundle.
Result<FragmentBundle> ReadFragmentBundle(const std::string& prefix);

}  // namespace qgp

#endif  // QGP_PARALLEL_FRAGMENT_IO_H_
