#include "parallel/worker_set.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace qgp {

WorkerSet::Report WorkerSet::Run(const std::function<void(size_t)>& fn) const {
  Report report;
  report.worker_seconds.assign(num_workers_, 0.0);
  WallTimer wall;
  if (mode_ == ExecutionMode::kSimulated) {
    for (size_t i = 0; i < num_workers_; ++i) {
      WallTimer t;
      fn(i);
      report.worker_seconds[i] = t.ElapsedSeconds();
    }
  } else {
    ThreadPool pool(num_workers_);
    for (size_t i = 0; i < num_workers_; ++i) {
      pool.Submit([&, i] {
        WallTimer t;
        fn(i);
        report.worker_seconds[i] = t.ElapsedSeconds();
      });
    }
    pool.Wait();
  }
  report.wall_seconds = wall.ElapsedSeconds();
  for (double s : report.worker_seconds) {
    report.makespan_seconds = std::max(report.makespan_seconds, s);
    report.total_work_seconds += s;
  }
  return report;
}

}  // namespace qgp
