#include "parallel/worker_set.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace qgp {

WorkerSet::Report WorkerSet::Run(const std::function<void(size_t)>& fn,
                                 std::span<const uint64_t> weights) const {
  Report report;
  report.worker_seconds.assign(num_workers_, 0.0);
  WallTimer wall;
  if (mode_ == ExecutionMode::kSimulated) {
    for (size_t i = 0; i < num_workers_; ++i) {
      WallTimer t;
      fn(i);
      report.worker_seconds[i] = t.ElapsedSeconds();
    }
  } else {
    // Size-ordered work-stealing schedule: heaviest logical worker
    // first (ties by index, so the order is a pure function of the
    // weights), dealt round-robin onto the pool's deques. Each task
    // writes only its own report slot, so the report is deterministic
    // even though the schedule is not.
    std::vector<size_t> order(num_workers_);
    for (size_t i = 0; i < num_workers_; ++i) order[i] = i;
    if (weights.size() == num_workers_) {
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (weights[a] != weights[b]) return weights[a] > weights[b];
        return a < b;
      });
    }
    ThreadPool pool(num_workers_);
    for (size_t pos = 0; pos < num_workers_; ++pos) {
      const size_t i = order[pos];
      pool.SubmitStealable(pos, [&, i] {
        WallTimer t;
        fn(i);
        report.worker_seconds[i] = t.ElapsedSeconds();
      });
    }
    pool.Wait();
    const ThreadPool::SchedulerStats sched = pool.scheduler_stats();
    report.tasks_executed = sched.total_executed();
    report.tasks_stolen = sched.total_stolen();
  }
  report.wall_seconds = wall.ElapsedSeconds();
  for (double s : report.worker_seconds) {
    report.makespan_seconds = std::max(report.makespan_seconds, s);
    report.total_work_seconds += s;
  }
  return report;
}

}  // namespace qgp
