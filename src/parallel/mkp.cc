#include "parallel/mkp.h"

#include <algorithm>

namespace qgp {

MkpAssignment SolveMkpGreedy(const std::vector<MkpItem>& items,
                             const std::vector<uint64_t>& capacities) {
  MkpAssignment out;
  out.item_to_bin.assign(items.size(), -1);
  if (capacities.empty()) return out;

  // Lightest items first: with unit values this maximizes the count.
  std::vector<size_t> order(items.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return items[a].weight < items[b].weight;
  });

  // Worst-fit placement (bin with the most remaining capacity) keeps the
  // bins level, which doubles as DPar's balance heuristic. Bin counts are
  // small (the processor count), so a linear scan per item is fine.
  std::vector<uint64_t> remaining = capacities;
  for (size_t idx : order) {
    size_t best = 0;
    for (size_t bin = 1; bin < remaining.size(); ++bin) {
      if (remaining[bin] > remaining[best]) best = bin;
    }
    if (remaining[best] < items[idx].weight) continue;  // nothing fits
    remaining[best] -= items[idx].weight;
    out.item_to_bin[idx] = static_cast<int32_t>(best);
    ++out.assigned_count;
  }
  return out;
}

}  // namespace qgp
