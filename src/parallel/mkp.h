#ifndef QGP_PARALLEL_MKP_H_
#define QGP_PARALLEL_MKP_H_

#include <cstdint>
#include <vector>

namespace qgp {

/// One Multiple-Knapsack item (a border node's d-hop ball): unit value,
/// weight |Nd(v)|.
struct MkpItem {
  uint64_t weight = 0;
  uint64_t id = 0;  // caller payload (border-node index)
};

/// Assignment result: for each item (input order), the chosen bin or -1.
struct MkpAssignment {
  std::vector<int32_t> item_to_bin;
  uint64_t assigned_count = 0;
};

/// Greedy MKP with unit values: items are packed lightest-first (unit
/// values make small items strictly better for count maximization) into
/// the bin with the most remaining capacity that fits. This is the ε = 1
/// regime of [13]'s PTAS that the proof of Lemma 8 instantiates; it runs
/// in O(items · log bins) and achieves the 1+ε count guarantee DPar
/// needs for its balance bound.
MkpAssignment SolveMkpGreedy(const std::vector<MkpItem>& items,
                             const std::vector<uint64_t>& capacities);

}  // namespace qgp

#endif  // QGP_PARALLEL_MKP_H_
