#ifndef QGP_PARALLEL_PENUM_H_
#define QGP_PARALLEL_PENUM_H_

#include "common/result.h"
#include "core/pattern.h"
#include "parallel/pqmatch.h"

namespace qgp {

/// PEnum (§7): the parallel enumerate-then-verify baseline ([37]-style).
/// Each worker runs the Enum matcher on its fragment over owned focus
/// candidates; negated edges re-enumerate each positified pattern from
/// scratch. Same answers as PQMatch, no quantifier-aware optimizations.
class PEnum {
 public:
  static Result<ParallelRunResult> Evaluate(const Pattern& pattern,
                                            const Partition& partition,
                                            const ParallelConfig& config);
};

}  // namespace qgp

#endif  // QGP_PARALLEL_PENUM_H_
