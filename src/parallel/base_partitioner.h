#ifndef QGP_PARALLEL_BASE_PARTITIONER_H_
#define QGP_PARALLEL_BASE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace qgp {

/// Balanced base partition of V into n regions (the seed DPar extends;
/// the paper uses METIS [23] here — DESIGN.md §3 documents the
/// substitution). BFS region growing: fragments are grown one at a time
/// from unassigned seeds up to a per-fragment cap of ceil(|V|/n), so
/// regions are connected where the graph permits and exactly balanced in
/// vertex count.
///
/// Returns the fragment id per vertex, each in [0, n).
Result<std::vector<uint32_t>> BasePartition(const Graph& g, size_t n);

}  // namespace qgp

#endif  // QGP_PARALLEL_BASE_PARTITIONER_H_
