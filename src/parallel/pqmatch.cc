#include "parallel/pqmatch.h"

#include <memory>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/qmatch.h"

namespace qgp {

Result<ParallelRunResult> PQMatch::Evaluate(const Pattern& pattern,
                                            const Partition& partition,
                                            const ParallelConfig& config) {
  QGP_RETURN_IF_ERROR(
      pattern.Validate(config.match.max_quantified_per_path));
  if (pattern.Radius() > partition.d) {
    return Status::InvalidArgument(
        "pattern radius " + std::to_string(pattern.Radius()) +
        " exceeds the partition's hop preservation d = " +
        std::to_string(partition.d) +
        "; re-partition with DParExtend first");
  }
  const size_t n = partition.fragments.size();
  ParallelRunResult result;
  std::vector<AnswerSet> local_answers(n);
  std::vector<MatchStats> local_stats(n);
  std::vector<Status> local_status(n, Status::Ok());

  // Fragment cost estimates for the work-stealing schedule: |Fi| (local
  // nodes + edges), the same size the MKP balance bound speaks about.
  // A skewed fragment starts first; idle workers steal the rest.
  std::vector<uint64_t> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = partition.fragments[i].SizeCost();
  }

  WorkerSet workers(n, config.mode);
  WorkerSet::Report report = workers.Run([&](size_t i) {
    const Fragment& f = partition.fragments[i];
    if (f.owned_local.empty()) return;
    // mQMatch intra-fragment threads. In simulated mode workers run one
    // at a time, so each worker's pool has the whole machine and its
    // wall time honestly reflects b-way intra parallelism.
    std::unique_ptr<ThreadPool> pool;
    if (config.threads_per_worker > 1) {
      pool = std::make_unique<ThreadPool>(config.threads_per_worker);
    }
    // Per-fragment intern pool: Π(Q) and every positified Π(Q⁺ᵉ) of this
    // fragment share label/degree candidate sets instead of rebuilding.
    CandidateCache cache(f.sub.graph);
    Result<AnswerSet> local = QMatch::EvaluateSubset(
        pattern, f.sub.graph, f.owned_local, config.match, &local_stats[i],
        pool.get(), &cache);
    if (!local.ok()) {
      local_status[i] = local.status();
      return;
    }
    // Map local answers back to global ids.
    for (VertexId lv : local.value()) {
      local_answers[i].push_back(f.sub.local_to_global[lv]);
    }
  }, weights);

  for (size_t i = 0; i < n; ++i) {
    QGP_RETURN_IF_ERROR(local_status[i]);
  }

  // Coordinator: union of per-fragment answers (owned sets are disjoint,
  // so this is concatenation + sort).
  WallTimer assemble;
  for (size_t i = 0; i < n; ++i) {
    result.answers.insert(result.answers.end(), local_answers[i].begin(),
                          local_answers[i].end());
    result.stats.Add(local_stats[i]);
  }
  result.stats.scheduler_tasks += report.tasks_executed;
  result.stats.scheduler_steals += report.tasks_stolen;
  Canonicalize(result.answers);
  result.coordinator_seconds = assemble.ElapsedSeconds();

  result.fragment_seconds = report.worker_seconds;
  result.total_work_seconds = report.total_work_seconds;
  double base = config.mode == ExecutionMode::kSimulated
                    ? report.makespan_seconds
                    : report.wall_seconds;
  result.parallel_seconds = base + result.coordinator_seconds;
  return result;
}

}  // namespace qgp
