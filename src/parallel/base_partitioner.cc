#include "parallel/base_partitioner.h"

#include <deque>

namespace qgp {

Result<std::vector<uint32_t>> BasePartition(const Graph& g, size_t n) {
  if (n == 0) return Status::InvalidArgument("need >= 1 fragment");
  const size_t nv = g.num_vertices();
  std::vector<uint32_t> frag(nv, UINT32_MAX);
  if (nv == 0) return frag;
  const size_t cap = (nv + n - 1) / n;

  uint32_t current = 0;
  size_t filled = 0;
  std::deque<VertexId> queue;
  VertexId scan = 0;
  auto next_seed = [&]() -> VertexId {
    while (scan < nv && frag[scan] != UINT32_MAX) ++scan;
    return scan < nv ? scan : kInvalidVertex;
  };
  while (true) {
    if (queue.empty()) {
      VertexId seed = next_seed();
      if (seed == kInvalidVertex) break;
      queue.push_back(seed);
    }
    VertexId v = queue.front();
    queue.pop_front();
    if (frag[v] != UINT32_MAX) continue;
    if (filled >= cap && current + 1 < n) {
      ++current;
      filled = 0;
      // The BFS frontier carries over: the next region continues from
      // the same growth boundary, keeping regions contiguous.
    }
    frag[v] = current;
    ++filled;
    auto visit = [&](VertexId w) {
      if (frag[w] == UINT32_MAX) queue.push_back(w);
    };
    for (const Neighbor& nb : g.OutNeighbors(v)) visit(nb.v);
    for (const Neighbor& nb : g.InNeighbors(v)) visit(nb.v);
  }
  return frag;
}

}  // namespace qgp
