#ifndef QGP_PARALLEL_WORKER_SET_H_
#define QGP_PARALLEL_WORKER_SET_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace qgp {

/// How the n logical workers of PQMatch/PEnum execute (DESIGN.md §3).
enum class ExecutionMode {
  /// Workers run sequentially; each fragment's work is timed and the
  /// reported parallel time is the makespan (max worker time plus the
  /// coordinator's assembly cost). This reproduces the paper's n-machine
  /// scaling curves faithfully on hosts with fewer cores, and is the
  /// default for the vary-n benches.
  kSimulated,
  /// Workers run on real threads; parallel time is wall-clock.
  kThreads,
};

/// Runs one task per logical worker and reports per-worker timings.
class WorkerSet {
 public:
  WorkerSet(size_t num_workers, ExecutionMode mode)
      : num_workers_(num_workers), mode_(mode) {}

  struct Report {
    std::vector<double> worker_seconds;  // per worker
    double makespan_seconds = 0;         // max worker time (simulated
                                         // parallel time)
    double wall_seconds = 0;             // actual elapsed time
    double total_work_seconds = 0;       // sum of worker times
    uint64_t tasks_executed = 0;         // scheduler telemetry (kThreads)
    uint64_t tasks_stolen = 0;
  };

  /// Executes fn(i) for i in [0, num_workers). In kThreads mode `fn`
  /// must be thread-safe across distinct i, and the logical workers run
  /// as stealable tasks on a work-stealing pool instead of one pinned
  /// thread each: tasks are submitted heaviest-first when `weights`
  /// (one cost estimate per logical worker, e.g. fragment |Fi|) is
  /// given, so a skewed fragment starts immediately and lighter
  /// fragments pack around it. `weights` never affects results — fn(i)
  /// runs exactly once per i either way — only the schedule.
  Report Run(const std::function<void(size_t)>& fn,
             std::span<const uint64_t> weights = {}) const;

  size_t num_workers() const { return num_workers_; }
  ExecutionMode mode() const { return mode_; }

 private:
  size_t num_workers_;
  ExecutionMode mode_;
};

}  // namespace qgp

#endif  // QGP_PARALLEL_WORKER_SET_H_
