#include "parallel/dpar.h"

#include <algorithm>
#include <deque>

#include "common/bitset.h"
#include "common/timer.h"
#include "parallel/base_partitioner.h"
#include "parallel/mkp.h"

namespace qgp {

namespace {

// Builds the d-hop preserving partition on top of an existing base
// region assignment (shared by DPar and DParExtend).
Result<Partition> BuildFromBase(const Graph& g,
                                std::vector<uint32_t> base_region, int d,
                                size_t n, double balance_factor,
                                DParTimings* timings) {
  WallTimer phase_timer;
  if (n == 0) return Status::InvalidArgument("need >= 1 fragment");
  if (d < 0) return Status::InvalidArgument("d must be >= 0");
  if (balance_factor < 1.0) {
    return Status::InvalidArgument("balance factor must be >= 1");
  }
  const size_t nv = g.num_vertices();

  // --- Border detection: border(v) <=> some vertex of another region is
  // within d undirected hops <=> dist(v, boundary vertices) <= d-1, where
  // boundary vertices have a direct foreign neighbor. One multi-source
  // BFS truncated at depth d-1.
  std::vector<char> border(nv, 0);
  if (d >= 1) {
    std::deque<VertexId> queue;
    std::vector<uint32_t> dist(nv, UINT32_MAX);
    for (VertexId v = 0; v < nv; ++v) {
      bool boundary = false;
      for (const Neighbor& nb : g.OutNeighbors(v)) {
        if (base_region[nb.v] != base_region[v]) {
          boundary = true;
          break;
        }
      }
      if (!boundary) {
        for (const Neighbor& nb : g.InNeighbors(v)) {
          if (base_region[nb.v] != base_region[v]) {
            boundary = true;
            break;
          }
        }
      }
      if (boundary) {
        dist[v] = 0;
        border[v] = 1;
        queue.push_back(v);
      }
    }
    const uint32_t limit = static_cast<uint32_t>(d - 1);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      if (dist[v] >= limit) continue;
      auto visit = [&](VertexId w) {
        if (dist[w] == UINT32_MAX) {
          dist[w] = dist[v] + 1;
          border[w] = 1;
          queue.push_back(w);
        }
      };
      for (const Neighbor& nb : g.OutNeighbors(v)) visit(nb.v);
      for (const Neighbor& nb : g.InNeighbors(v)) visit(nb.v);
    }
  }

  if (timings != nullptr) {
    timings->border_detect_seconds = phase_timer.ElapsedSeconds();
    timings->ball_seconds.assign(n, 0.0);
    timings->materialize_seconds.assign(n, 0.0);
  }

  // --- Base fragment sizes (vertices + induced edges).
  std::vector<uint64_t> est_size(n, 0);
  for (VertexId v = 0; v < nv; ++v) est_size[base_region[v]] += 1;
  for (VertexId v = 0; v < nv; ++v) {
    for (const Neighbor& nb : g.OutNeighbors(v)) {
      if (base_region[nb.v] == base_region[v]) ++est_size[base_region[v]];
    }
  }

  // --- Balls for border nodes.
  std::vector<VertexId> border_nodes;
  for (VertexId v = 0; v < nv; ++v) {
    if (border[v]) border_nodes.push_back(v);
  }
  std::vector<std::vector<VertexId>> balls(border_nodes.size());
  std::vector<MkpItem> items(border_nodes.size());
  DynamicBitset member(nv);
  for (size_t i = 0; i < border_nodes.size(); ++i) {
    phase_timer.Restart();
    balls[i] = KHopBall(g, border_nodes[i], d);
    uint64_t edges = 0;
    for (VertexId v : balls[i]) member.Set(v);
    for (VertexId v : balls[i]) {
      for (const Neighbor& nb : g.OutNeighbors(v)) {
        if (member.Test(nb.v)) ++edges;
      }
    }
    for (VertexId v : balls[i]) member.Clear(v);
    items[i] = MkpItem{balls[i].size() + edges, i};
    if (timings != nullptr) {
      // Ball work is done by the border node's home worker.
      timings->ball_seconds[base_region[border_nodes[i]]] +=
          phase_timer.ElapsedSeconds();
    }
  }
  phase_timer.Restart();

  // --- MKP assignment of balls to fragments.
  const uint64_t graph_size = nv + g.num_edges();
  const uint64_t cap = static_cast<uint64_t>(
      balance_factor * static_cast<double>(graph_size) /
      static_cast<double>(n));
  std::vector<uint64_t> capacities(n);
  for (size_t i = 0; i < n; ++i) {
    capacities[i] = cap > est_size[i] ? cap - est_size[i] : 0;
  }
  MkpAssignment assignment = SolveMkpGreedy(items, capacities);

  std::vector<int32_t> owner_of_border(border_nodes.size(), -1);
  for (size_t i = 0; i < border_nodes.size(); ++i) {
    int32_t bin = assignment.item_to_bin[i];
    if (bin >= 0) {
      owner_of_border[i] = bin;
      est_size[bin] += items[i].weight;
    }
  }
  // Completion step: unassigned balls go to the fragment minimizing the
  // resulting max-min spread.
  for (size_t i = 0; i < border_nodes.size(); ++i) {
    if (owner_of_border[i] >= 0) continue;
    size_t best = 0;
    uint64_t best_spread = UINT64_MAX;
    for (size_t bin = 0; bin < n; ++bin) {
      uint64_t trial = est_size[bin] + items[i].weight;
      uint64_t mx = trial, mn = trial;
      for (size_t k = 0; k < n; ++k) {
        uint64_t s = k == bin ? trial : est_size[k];
        mx = std::max(mx, s);
        mn = std::min(mn, s);
      }
      if (mx - mn < best_spread) {
        best_spread = mx - mn;
        best = bin;
      }
    }
    owner_of_border[i] = static_cast<int32_t>(best);
    est_size[best] += items[i].weight;
  }

  if (timings != nullptr) {
    timings->mkp_seconds = phase_timer.ElapsedSeconds();
  }

  // --- Materialize fragments.
  std::vector<std::vector<VertexId>> node_sets(n);
  std::vector<std::vector<VertexId>> owned(n);
  for (VertexId v = 0; v < nv; ++v) {
    node_sets[base_region[v]].push_back(v);
    if (!border[v]) owned[base_region[v]].push_back(v);
  }
  for (size_t i = 0; i < border_nodes.size(); ++i) {
    const size_t bin = static_cast<size_t>(owner_of_border[i]);
    owned[bin].push_back(border_nodes[i]);
    node_sets[bin].insert(node_sets[bin].end(), balls[i].begin(),
                          balls[i].end());
  }

  Partition partition;
  partition.d = d;
  partition.num_border_nodes = border_nodes.size();
  partition.base_region = std::move(base_region);
  partition.fragments.resize(n);
  for (size_t i = 0; i < n; ++i) {
    phase_timer.Restart();
    std::sort(node_sets[i].begin(), node_sets[i].end());
    node_sets[i].erase(std::unique(node_sets[i].begin(), node_sets[i].end()),
                       node_sets[i].end());
    QGP_ASSIGN_OR_RETURN(partition.fragments[i].sub,
                         ExtractInducedSubgraph(g, node_sets[i]));
    if (timings != nullptr) {
      timings->materialize_seconds[i] = phase_timer.ElapsedSeconds();
    }
    std::sort(owned[i].begin(), owned[i].end());
    partition.fragments[i].owned_global = owned[i];
    partition.fragments[i].owned_local.reserve(owned[i].size());
    for (VertexId v : owned[i]) {
      partition.fragments[i].owned_local.push_back(
          partition.fragments[i].sub.global_to_local.at(v));
    }
  }
  return partition;
}

}  // namespace

double DParTimings::ParallelSeconds() const {
  auto vec_max = [](const std::vector<double>& v) {
    double m = 0;
    for (double x : v) m = std::max(m, x);
    return m;
  };
  return base_partition_seconds + border_detect_seconds + mkp_seconds +
         vec_max(ball_seconds) + vec_max(materialize_seconds);
}

double DParTimings::SequentialSeconds() const {
  auto vec_sum = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s;
  };
  return base_partition_seconds + border_detect_seconds + mkp_seconds +
         vec_sum(ball_seconds) + vec_sum(materialize_seconds);
}

Result<Partition> DPar(const Graph& g, const DParConfig& config,
                       DParTimings* timings) {
  WallTimer base_timer;
  QGP_ASSIGN_OR_RETURN(std::vector<uint32_t> base,
                       BasePartition(g, config.num_fragments));
  if (timings != nullptr) {
    timings->base_partition_seconds = base_timer.ElapsedSeconds();
  }
  return BuildFromBase(g, std::move(base), config.d, config.num_fragments,
                       config.balance_factor, timings);
}

Result<Partition> DParExtend(const Graph& g, const Partition& partition,
                             int new_d, double balance_factor) {
  if (new_d <= partition.d) {
    return Status::InvalidArgument("DParExtend requires new_d > current d");
  }
  if (partition.base_region.size() != g.num_vertices()) {
    return Status::InvalidArgument(
        "partition lacks a base region assignment for this graph");
  }
  return BuildFromBase(g, partition.base_region, new_d,
                       partition.fragments.size(), balance_factor, nullptr);
}

}  // namespace qgp
