#include "parallel/dpar.h"

#include <algorithm>
#include <utility>

#include "common/bitset.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/vertex_set.h"
#include "parallel/base_partitioner.h"
#include "parallel/mkp.h"

namespace qgp {

namespace {

// The partitioning phases below fan out as chunked tasks but must yield
// the exact same Partition at any thread count (the serial schedule is
// the spec). The discipline is the usual flag-then-compact: a parallel
// phase writes only chunk-owned slots against inputs frozen for the
// phase, and the merges are chunk-order-insensitive (integer sums, or a
// sort to a canonical order) — so even the chunk COUNT, which depends on
// the pool width, cannot leak into the result.

// DPar keeps a small local dispatcher instead of ParallelForDynamic for
// two reasons the pool API does not cover: the pool is OPTIONAL here
// (nullptr is the common serial entry point), and the phases need the
// chunk INDEX to address per-chunk output buffers whose count must be
// known before dispatch.

// Worker width usable for fan-out from the calling thread. 1 means "run
// inline": no pool, a single-thread pool, or a nested call from inside
// one of the pool's own workers (whose Wait() would deadlock).
size_t UsableThreads(ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() == 1 || pool->IsWorkerThread()) {
    return 1;
  }
  return pool->num_threads();
}

// Deterministic decomposition of [0, n) into at most `max_chunks`
// contiguous near-equal ranges.
std::vector<std::pair<size_t, size_t>> MakeChunks(size_t n,
                                                  size_t max_chunks) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (n == 0) return chunks;
  max_chunks = std::max<size_t>(1, max_chunks);
  const size_t per = (n + max_chunks - 1) / max_chunks;
  for (size_t begin = 0; begin < n; begin += per) {
    chunks.emplace_back(begin, std::min(n, begin + per));
  }
  return chunks;
}

// Applies fn(chunk, begin, end) to every chunk: as stealable tasks dealt
// round-robin across the pool when it is usable, inline otherwise.
void RunChunks(ThreadPool* pool,
               const std::vector<std::pair<size_t, size_t>>& chunks,
               const std::function<void(size_t, size_t, size_t)>& fn) {
  if (chunks.empty()) return;
  if (chunks.size() == 1 || UsableThreads(pool) == 1) {
    for (size_t c = 0; c < chunks.size(); ++c) {
      fn(c, chunks[c].first, chunks[c].second);
    }
    return;
  }
  for (size_t c = 0; c < chunks.size(); ++c) {
    pool->SubmitStealable(
        c, [c, &chunks, &fn] { fn(c, chunks[c].first, chunks[c].second); });
  }
  pool->Wait();
}

// Builds the d-hop preserving partition on top of an existing base
// region assignment (shared by DPar and DParExtend).
Result<Partition> BuildFromBase(const Graph& g,
                                std::vector<uint32_t> base_region, int d,
                                size_t n, double balance_factor,
                                DParTimings* timings, ThreadPool* pool) {
  WallTimer phase_timer;
  if (n == 0) return Status::InvalidArgument("need >= 1 fragment");
  if (d < 0) return Status::InvalidArgument("d must be >= 0");
  if (balance_factor < 1.0) {
    return Status::InvalidArgument("balance factor must be >= 1");
  }
  const size_t nv = g.num_vertices();
  const size_t width = UsableThreads(pool);

  // --- Border detection: border(v) <=> some vertex of another region is
  // within d undirected hops <=> dist(v, boundary vertices) <= d-1, where
  // boundary vertices have a direct foreign neighbor. The boundary scan
  // fans out per-vertex; the truncated multi-source BFS runs in
  // level-synchronous rounds (expand in parallel against a frozen dist
  // array, claim sequentially, sort the next frontier canonical).
  std::vector<char> border(nv, 0);
  if (d >= 1) {
    std::vector<char> boundary(nv, 0);
    RunChunks(pool, MakeChunks(nv, width * 4),
              [&](size_t, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  const VertexId v = static_cast<VertexId>(i);
                  bool is_boundary = false;
                  for (const Neighbor& nb : g.OutNeighbors(v)) {
                    if (base_region[nb.v] != base_region[v]) {
                      is_boundary = true;
                      break;
                    }
                  }
                  if (!is_boundary) {
                    for (const Neighbor& nb : g.InNeighbors(v)) {
                      if (base_region[nb.v] != base_region[v]) {
                        is_boundary = true;
                        break;
                      }
                    }
                  }
                  boundary[i] = is_boundary ? 1 : 0;
                }
              });
    std::vector<uint32_t> dist(nv, UINT32_MAX);
    std::vector<VertexId> frontier;
    for (VertexId v = 0; v < nv; ++v) {
      if (boundary[v]) {
        dist[v] = 0;
        border[v] = 1;
        frontier.push_back(v);
      }
    }
    const uint32_t limit = static_cast<uint32_t>(d - 1);
    for (uint32_t level = 0; level < limit && !frontier.empty(); ++level) {
      // Expand: dist is frozen this round, so concurrent reads are safe;
      // each chunk appends discoveries (possibly duplicated across
      // chunks) to its own buffer.
      const auto chunks = MakeChunks(frontier.size(), width * 4);
      std::vector<std::vector<VertexId>> found(chunks.size());
      RunChunks(pool, chunks, [&](size_t c, size_t begin, size_t end) {
        std::vector<VertexId>& out = found[c];
        for (size_t i = begin; i < end; ++i) {
          const VertexId v = frontier[i];
          auto visit = [&](VertexId w) {
            if (dist[w] == UINT32_MAX) out.push_back(w);
          };
          for (const Neighbor& nb : g.OutNeighbors(v)) visit(nb.v);
          for (const Neighbor& nb : g.InNeighbors(v)) visit(nb.v);
        }
      });
      // Claim: sequential dedup; every claim gets the same level value,
      // and the sort makes the next frontier canonical, so neither the
      // chunking nor the schedule can affect dist or border.
      std::vector<VertexId> next;
      for (const std::vector<VertexId>& f : found) {
        for (VertexId w : f) {
          if (dist[w] == UINT32_MAX) {
            dist[w] = level + 1;
            border[w] = 1;
            next.push_back(w);
          }
        }
      }
      std::sort(next.begin(), next.end());
      frontier = std::move(next);
    }
  }

  if (timings != nullptr) {
    timings->border_detect_seconds = phase_timer.ElapsedSeconds();
    timings->ball_seconds.assign(n, 0.0);
    timings->materialize_seconds.assign(n, 0.0);
  }

  // --- Base fragment sizes (vertices + induced edges), merged from
  // per-chunk partial counts (integer sums: merge order irrelevant).
  std::vector<uint64_t> est_size(n, 0);
  {
    const auto chunks = MakeChunks(nv, width * 4);
    std::vector<std::vector<uint64_t>> partial(
        chunks.size(), std::vector<uint64_t>(n, 0));
    RunChunks(pool, chunks, [&](size_t c, size_t begin, size_t end) {
      std::vector<uint64_t>& p = partial[c];
      for (size_t i = begin; i < end; ++i) {
        const VertexId v = static_cast<VertexId>(i);
        p[base_region[v]] += 1;
        for (const Neighbor& nb : g.OutNeighbors(v)) {
          if (base_region[nb.v] == base_region[v]) ++p[base_region[v]];
        }
      }
    });
    for (const std::vector<uint64_t>& p : partial) {
      for (size_t k = 0; k < n; ++k) est_size[k] += p[k];
    }
  }

  // --- Balls for border nodes: extraction and size estimation fan out
  // per border node (each task writes only balls[i] / items[i]); the
  // reusable membership bitset is per-chunk scratch.
  std::vector<VertexId> border_nodes;
  for (VertexId v = 0; v < nv; ++v) {
    if (border[v]) border_nodes.push_back(v);
  }
  std::vector<std::vector<VertexId>> balls(border_nodes.size());
  std::vector<MkpItem> items(border_nodes.size());
  std::vector<double> ball_secs(border_nodes.size(), 0.0);
  RunChunks(pool, MakeChunks(border_nodes.size(), width * 8),
            [&](size_t, size_t begin, size_t end) {
              SparseBitset member;
              member.EnsureUniverse(nv);
              for (size_t i = begin; i < end; ++i) {
                WallTimer ball_timer;
                balls[i] = KHopBall(g, border_nodes[i], d);
                uint64_t edges = 0;
                for (VertexId v : balls[i]) member.Set(v);
                for (VertexId v : balls[i]) {
                  for (const Neighbor& nb : g.OutNeighbors(v)) {
                    if (member.Test(nb.v)) ++edges;
                  }
                }
                member.ResetTouched();
                items[i] = MkpItem{balls[i].size() + edges, i};
                ball_secs[i] = ball_timer.ElapsedSeconds();
              }
            });
  if (timings != nullptr) {
    // Ball work is done by the border node's home worker.
    for (size_t i = 0; i < border_nodes.size(); ++i) {
      timings->ball_seconds[base_region[border_nodes[i]]] += ball_secs[i];
    }
  }
  phase_timer.Restart();

  // --- MKP assignment of balls to fragments. Kept sequential over items
  // in border-node index order — the greedy solve and the completion
  // step are order-sensitive, and a fixed order regardless of which
  // thread produced each item is what keeps the partition deterministic.
  const uint64_t graph_size = nv + g.num_edges();
  const uint64_t cap = static_cast<uint64_t>(
      balance_factor * static_cast<double>(graph_size) /
      static_cast<double>(n));
  std::vector<uint64_t> capacities(n);
  for (size_t i = 0; i < n; ++i) {
    capacities[i] = cap > est_size[i] ? cap - est_size[i] : 0;
  }
  MkpAssignment assignment = SolveMkpGreedy(items, capacities);

  std::vector<int32_t> owner_of_border(border_nodes.size(), -1);
  for (size_t i = 0; i < border_nodes.size(); ++i) {
    int32_t bin = assignment.item_to_bin[i];
    if (bin >= 0) {
      owner_of_border[i] = bin;
      est_size[bin] += items[i].weight;
    }
  }
  // Completion step: unassigned balls go to the fragment minimizing the
  // resulting max-min spread.
  for (size_t i = 0; i < border_nodes.size(); ++i) {
    if (owner_of_border[i] >= 0) continue;
    size_t best = 0;
    uint64_t best_spread = UINT64_MAX;
    for (size_t bin = 0; bin < n; ++bin) {
      uint64_t trial = est_size[bin] + items[i].weight;
      uint64_t mx = trial, mn = trial;
      for (size_t k = 0; k < n; ++k) {
        uint64_t s = k == bin ? trial : est_size[k];
        mx = std::max(mx, s);
        mn = std::min(mn, s);
      }
      if (mx - mn < best_spread) {
        best_spread = mx - mn;
        best = bin;
      }
    }
    owner_of_border[i] = static_cast<int32_t>(best);
    est_size[best] += items[i].weight;
  }

  if (timings != nullptr) {
    timings->mkp_seconds = phase_timer.ElapsedSeconds();
  }

  // --- Materialize fragments: the scatter stays sequential (cheap), the
  // per-fragment sort + induced-subgraph extraction fans out one
  // fragment per task.
  std::vector<std::vector<VertexId>> node_sets(n);
  std::vector<std::vector<VertexId>> owned(n);
  for (VertexId v = 0; v < nv; ++v) {
    node_sets[base_region[v]].push_back(v);
    if (!border[v]) owned[base_region[v]].push_back(v);
  }
  for (size_t i = 0; i < border_nodes.size(); ++i) {
    const size_t bin = static_cast<size_t>(owner_of_border[i]);
    owned[bin].push_back(border_nodes[i]);
    node_sets[bin].insert(node_sets[bin].end(), balls[i].begin(),
                          balls[i].end());
  }

  Partition partition;
  partition.d = d;
  partition.num_border_nodes = border_nodes.size();
  partition.base_region = std::move(base_region);
  partition.fragments.resize(n);
  std::vector<Status> frag_status(n, Status::Ok());
  std::vector<double> mat_secs(n, 0.0);
  RunChunks(pool, MakeChunks(n, n), [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      WallTimer mat_timer;
      std::sort(node_sets[i].begin(), node_sets[i].end());
      node_sets[i].erase(
          std::unique(node_sets[i].begin(), node_sets[i].end()),
          node_sets[i].end());
      Result<InducedSubgraph> sub = ExtractInducedSubgraph(g, node_sets[i]);
      if (!sub.ok()) {
        frag_status[i] = sub.status();
        continue;
      }
      Fragment& frag = partition.fragments[i];
      frag.sub = std::move(sub).value();
      mat_secs[i] = mat_timer.ElapsedSeconds();
      std::sort(owned[i].begin(), owned[i].end());
      frag.owned_global = owned[i];
      frag.owned_local.reserve(owned[i].size());
      for (VertexId v : owned[i]) {
        frag.owned_local.push_back(frag.sub.global_to_local.at(v));
      }
    }
  });
  for (size_t i = 0; i < n; ++i) {
    QGP_RETURN_IF_ERROR(frag_status[i]);
    if (timings != nullptr) timings->materialize_seconds[i] = mat_secs[i];
  }
  return partition;
}

}  // namespace

double DParTimings::ParallelSeconds() const {
  auto vec_max = [](const std::vector<double>& v) {
    double m = 0;
    for (double x : v) m = std::max(m, x);
    return m;
  };
  return base_partition_seconds + border_detect_seconds + mkp_seconds +
         vec_max(ball_seconds) + vec_max(materialize_seconds);
}

double DParTimings::SequentialSeconds() const {
  auto vec_sum = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s;
  };
  return base_partition_seconds + border_detect_seconds + mkp_seconds +
         vec_sum(ball_seconds) + vec_sum(materialize_seconds);
}

Result<Partition> DPar(const Graph& g, const DParConfig& config,
                       DParTimings* timings, ThreadPool* pool) {
  WallTimer base_timer;
  QGP_ASSIGN_OR_RETURN(std::vector<uint32_t> base,
                       BasePartition(g, config.num_fragments));
  if (timings != nullptr) {
    timings->base_partition_seconds = base_timer.ElapsedSeconds();
  }
  return BuildFromBase(g, std::move(base), config.d, config.num_fragments,
                       config.balance_factor, timings, pool);
}

Result<Partition> DParExtend(const Graph& g, const Partition& partition,
                             int new_d, double balance_factor,
                             ThreadPool* pool) {
  if (new_d <= partition.d) {
    return Status::InvalidArgument("DParExtend requires new_d > current d");
  }
  if (partition.base_region.size() != g.num_vertices()) {
    return Status::InvalidArgument(
        "partition lacks a base region assignment for this graph");
  }
  return BuildFromBase(g, partition.base_region, new_d,
                       partition.fragments.size(), balance_factor, nullptr,
                       pool);
}

}  // namespace qgp
