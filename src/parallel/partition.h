#ifndef QGP_PARALLEL_PARTITION_H_
#define QGP_PARALLEL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph_algorithms.h"

namespace qgp {

/// One worker's fragment Fi: a local subgraph of G (induced on the base
/// region plus replicated d-hop balls) and the set of global vertices
/// this fragment OWNS, i.e. answers for. Ownership is a partition of V:
/// every vertex is owned by exactly one fragment, and the owner's local
/// graph contains the whole Nd(v) of each owned vertex, which is what
/// makes local evaluation exact (Lemma 9(1)).
struct Fragment {
  InducedSubgraph sub;
  std::vector<VertexId> owned_global;  // sorted global ids
  std::vector<VertexId> owned_local;   // same vertices, local ids

  /// |Fi| as the paper measures it: local nodes + edges.
  size_t SizeCost() const {
    return sub.graph.num_vertices() + sub.graph.num_edges();
  }
};

/// A d-hop preserving partition P_d of a graph (§5.2).
struct Partition {
  int d = 0;
  std::vector<Fragment> fragments;
  size_t num_border_nodes = 0;  // diagnostic: balls replicated by DPar
  /// Base region per global vertex (kept so DParExtend can widen d
  /// without re-partitioning).
  std::vector<uint32_t> base_region;

  /// Balance skew: min fragment size / max fragment size (the paper
  /// reports >= 0.8 at n = 8). 1.0 when empty.
  double Skew() const;

  /// Total replicated size Σ|Fi| versus |G|.
  double ReplicationFactor(const Graph& g) const;

  /// Checks the two §5.2 invariants against `g`:
  ///  (1) covering & unique ownership: every vertex owned exactly once;
  ///  (2) d-hop preservation: for every owned v, Nd(v) (vertices AND
  ///      induced edges) is present in the owner's local graph.
  Status Validate(const Graph& g) const;
};

}  // namespace qgp

#endif  // QGP_PARALLEL_PARTITION_H_
