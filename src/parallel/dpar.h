#ifndef QGP_PARALLEL_DPAR_H_
#define QGP_PARALLEL_DPAR_H_

#include <cstdint>

#include "common/result.h"
#include "parallel/partition.h"

namespace qgp {

class ThreadPool;

/// DPar configuration (§5.2).
struct DParConfig {
  /// Number of fragments / workers n.
  size_t num_fragments = 4;
  /// Hop-preservation depth d. All QGPs with radius <= d can then be
  /// evaluated with zero inter-fragment communication.
  int d = 2;
  /// The balance constant c: fragment capacity is c * |G| / n
  /// (|G| = nodes + edges). Must satisfy c >= 1 for feasibility.
  double balance_factor = 1.6;
};

/// Phase timing decomposition of one DPar run, used to report the
/// simulated parallel partition time of Figures 8(d)/8(e): ball
/// extraction and fragment materialization are per-fragment
/// parallelizable (their makespans count), the base partition, border
/// BFS and MKP assignment are coordinator work (their sums count).
struct DParTimings {
  double base_partition_seconds = 0;
  double border_detect_seconds = 0;
  double mkp_seconds = 0;
  std::vector<double> ball_seconds;         // per base region
  std::vector<double> materialize_seconds;  // per fragment

  /// Coordinator time + the two parallel-phase makespans.
  double ParallelSeconds() const;
  /// Everything summed (the 1-worker time).
  double SequentialSeconds() const;
};

/// DPar (Lemma 8): builds a complete, balanced, d-hop preserving
/// partition.
///
///   1. Base partition: BFS region growing (METIS stand-in).
///   2. Border detection: a vertex is a border node iff some vertex of a
///      different base region lies within d undirected hops — computed
///      with a boundary scan plus a multi-source BFS from all
///      region-boundary vertices, truncated at depth d-1.
///   3. Ball assignment: each border node's Nd(v) becomes a unit-value
///      MKP item with weight |Nd(v)|; bins are fragments with remaining
///      capacity c|G|/n − |Fi|. Greedy worst-fit packing (the ε = 1 PTAS
///      regime) assigns most balls; leftovers go to the fragment that
///      minimizes the resulting |Fmax| − |Fmin| (the completion step), so
///      the partition is always complete.
///   4. Fragment materialization: induced subgraph over base region ∪
///      assigned balls; ownership = internal nodes of the region plus
///      assigned border nodes.
///
/// `pool` (optional) parallelizes the partitioning itself: the boundary
/// scan, the truncated border BFS (level-synchronous rounds), base
/// fragment size estimation, per-border K-hop ball extraction +
/// ball-size estimation, and per-fragment materialization all fan out
/// over the pool as stealable chunk tasks. The greedy MKP solve stays
/// sequential over items in border-node index order, so the resulting
/// partition is IDENTICAL to the serial one at any thread count.
Result<Partition> DPar(const Graph& g, const DParConfig& config,
                       DParTimings* timings = nullptr,
                       ThreadPool* pool = nullptr);

/// Incremental radius extension (§5.2 Remark): widens an existing
/// partition from its current d to `new_d` > d by recomputing border
/// balls at the larger radius, reusing the base regions. Equivalent to
/// DPar at new_d; cheaper because the base partition is not rebuilt.
Result<Partition> DParExtend(const Graph& g, const Partition& partition,
                             int new_d, double balance_factor = 1.6,
                             ThreadPool* pool = nullptr);

}  // namespace qgp

#endif  // QGP_PARALLEL_DPAR_H_
