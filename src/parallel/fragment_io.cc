#include "parallel/fragment_io.h"

#include <fstream>
#include <sstream>

#include "graph/graph_io.h"

namespace qgp {

namespace {

constexpr char kMagic[] = "QGPFRAG1";

Status ReadIdList(std::istringstream& line, const char* what, size_t limit,
                  std::vector<VertexId>* out) {
  size_t n = 0;
  if (!(line >> n)) {
    return Status::InvalidArgument(std::string("fragment meta: '") + what +
                                   "' line needs a count");
  }
  out->clear();
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!(line >> id)) {
      return Status::InvalidArgument(
          std::string("fragment meta: '") + what + "' line promises " +
          std::to_string(n) + " ids but holds " + std::to_string(i));
    }
    if (id >= limit) {
      return Status::InvalidArgument(
          std::string("fragment meta: '") + what + "' id " +
          std::to_string(id) + " out of range (limit " +
          std::to_string(limit) + ")");
    }
    out->push_back(static_cast<VertexId>(id));
  }
  std::string junk;
  if (line >> junk) {
    return Status::InvalidArgument(std::string("fragment meta: '") + what +
                                   "' line has trailing content '" + junk +
                                   "'");
  }
  return Status::Ok();
}

}  // namespace

Status WriteFragmentBundle(const Fragment& fragment, int d, size_t index,
                           size_t num_fragments, const std::string& prefix) {
  if (num_fragments == 0 || index >= num_fragments) {
    return Status::InvalidArgument(
        "fragment index " + std::to_string(index) +
        " out of range for a partition of " + std::to_string(num_fragments) +
        " fragments");
  }
  QGP_RETURN_IF_ERROR(
      GraphIo::WriteBinaryFile(fragment.sub.graph, prefix + ".graph"));
  std::ostringstream meta;
  meta << kMagic << "\n";
  meta << "d " << d << "\n";
  meta << "fragment " << index << " " << num_fragments << "\n";
  meta << "owned " << fragment.owned_local.size();
  for (VertexId v : fragment.owned_local) meta << " " << v;
  meta << "\n";
  meta << "l2g " << fragment.sub.local_to_global.size();
  for (VertexId v : fragment.sub.local_to_global) meta << " " << v;
  meta << "\n";
  const std::string meta_path = prefix + ".meta";
  std::ofstream out(meta_path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + meta_path + " for writing");
  }
  out << meta.str();
  out.flush();
  if (!out) return Status::IoError("failed writing " + meta_path);
  return Status::Ok();
}

Result<FragmentBundle> ReadFragmentBundle(const std::string& prefix) {
  FragmentBundle bundle;
  QGP_ASSIGN_OR_RETURN(bundle.graph,
                       GraphIo::ReadBinaryFile(prefix + ".graph"));
  const std::string meta_path = prefix + ".meta";
  std::ifstream in(meta_path);
  if (!in) return Status::IoError("cannot open " + meta_path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::InvalidArgument("fragment meta: bad magic in " + meta_path);
  }
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("fragment meta: missing 'd' line");
  }
  {
    std::istringstream s(line);
    std::string key;
    if (!(s >> key >> bundle.d) || key != "d" || bundle.d < 0) {
      return Status::InvalidArgument("fragment meta: malformed 'd' line '" +
                                     line + "'");
    }
  }
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("fragment meta: missing 'fragment' line");
  }
  {
    std::istringstream s(line);
    std::string key;
    if (!(s >> key >> bundle.index >> bundle.num_fragments) ||
        key != "fragment" || bundle.num_fragments == 0 ||
        bundle.index >= bundle.num_fragments) {
      return Status::InvalidArgument(
          "fragment meta: malformed 'fragment' line '" + line + "'");
    }
  }
  const size_t local_vertices = bundle.graph.num_vertices();
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("fragment meta: missing 'owned' line");
  }
  {
    std::istringstream s(line);
    std::string key;
    if (!(s >> key) || key != "owned") {
      return Status::InvalidArgument("fragment meta: malformed 'owned' line '" +
                                     line + "'");
    }
    QGP_RETURN_IF_ERROR(
        ReadIdList(s, "owned", local_vertices, &bundle.owned_local));
  }
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("fragment meta: missing 'l2g' line");
  }
  {
    std::istringstream s(line);
    std::string key;
    if (!(s >> key) || key != "l2g") {
      return Status::InvalidArgument("fragment meta: malformed 'l2g' line '" +
                                     line + "'");
    }
    // Global ids are unconstrained here (the master graph is not at
    // hand); the coordinator validates them against its own graph.
    QGP_RETURN_IF_ERROR(ReadIdList(s, "l2g", UINT32_MAX, &bundle.local_to_global));
  }
  if (bundle.local_to_global.size() != local_vertices) {
    return Status::InvalidArgument(
        "fragment meta: l2g maps " +
        std::to_string(bundle.local_to_global.size()) + " vertices but " +
        prefix + ".graph holds " + std::to_string(local_vertices));
  }
  std::string junk;
  while (std::getline(in, junk)) {
    if (!junk.empty()) {
      return Status::InvalidArgument(
          "fragment meta: trailing content after 'l2g' line");
    }
  }
  return bundle;
}

}  // namespace qgp
