#ifndef QGP_PARALLEL_PQMATCH_H_
#define QGP_PARALLEL_PQMATCH_H_

#include "common/result.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "parallel/partition.h"
#include "parallel/worker_set.h"

namespace qgp {

/// Parallel execution knobs shared by PQMatch and PEnum.
struct ParallelConfig {
  ExecutionMode mode = ExecutionMode::kSimulated;
  /// Intra-fragment threads b (mQMatch). Works in both modes: in
  /// simulated mode workers run sequentially, so each worker's pool has
  /// the machine to itself and per-worker times reflect b honestly.
  size_t threads_per_worker = 1;
  MatchOptions match;
};

/// Outcome of a parallel run, with the timing decomposition Theorem 7
/// speaks about: per-fragment work, the makespan (the parallel time), and
/// the coordinator's O(n) assembly cost.
struct ParallelRunResult {
  AnswerSet answers;  // global vertex ids
  std::vector<double> fragment_seconds;
  double parallel_seconds = 0;     // makespan + coordinator
  double total_work_seconds = 0;   // Σ fragment time
  double coordinator_seconds = 0;  // union / assembly
  MatchStats stats;                // aggregated over fragments
};

/// PQMatch (Fig. 6): evaluates a QGP over a d-hop preserving partition.
/// Each worker runs QMatch on its fragment restricted to owned focus
/// candidates (zero communication, Lemma 9); the coordinator unions the
/// per-fragment answers. Requires pattern.Radius() <= partition.d.
class PQMatch {
 public:
  static Result<ParallelRunResult> Evaluate(const Pattern& pattern,
                                            const Partition& partition,
                                            const ParallelConfig& config);
};

}  // namespace qgp

#endif  // QGP_PARALLEL_PQMATCH_H_
