#ifndef QGP_GRAPH_LABEL_DICT_H_
#define QGP_GRAPH_LABEL_DICT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace qgp {

/// Bidirectional interning of label strings ("follow", "prof", ...) to
/// dense Label ids. Shared by a Graph and the Patterns queried against it
/// so label comparison is integer equality.
class LabelDict {
 public:
  LabelDict() = default;

  /// Interns `name`, returning its id (existing or freshly assigned).
  Label Intern(std::string_view name);

  /// Looks up an existing label; returns kInvalidLabel when absent.
  Label Find(std::string_view name) const;

  /// True iff `name` has been interned.
  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidLabel;
  }

  /// The string for `label`; "<invalid>" for out-of-range ids.
  const std::string& Name(Label label) const;

  /// Number of interned labels.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Label> ids_;
};

}  // namespace qgp

#endif  // QGP_GRAPH_LABEL_DICT_H_
