#ifndef QGP_GRAPH_GRAPH_H_
#define QGP_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/label_dict.h"
#include "graph/types.h"

namespace qgp {

struct GraphDelta;
struct GraphDeltaSummary;

/// Labeled directed graph G = (V, E, L) (paper §2.1), stored as CSR with
/// both out- and in-adjacency, each sorted by (label, endpoint). Every
/// vertex carries exactly one node label; every edge one edge label.
/// Parallel edges with distinct labels are allowed; exact duplicates are
/// removed at build time.
///
/// Construction goes through GraphBuilder. Afterwards the only mutation
/// entry point is ApplyDelta (graph_delta.h), which applies a whole batch
/// under external synchronization and bumps version(); between deltas the
/// graph is immutable, which is what makes the matchers and the
/// partitioner trivially shareable across threads.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Number of vertices / directed edges.
  size_t num_vertices() const { return vertex_labels_.size(); }
  size_t num_edges() const { return out_nbrs_.size(); }

  /// Node label of `v`. Precondition: v < num_vertices().
  Label vertex_label(VertexId v) const { return vertex_labels_[v]; }

  /// All out-neighbors of `v`, sorted by (label, dst).
  std::span<const Neighbor> OutNeighbors(VertexId v) const {
    return {out_nbrs_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// All in-neighbors of `v`, sorted by (label, src).
  std::span<const Neighbor> InNeighbors(VertexId v) const {
    return {in_nbrs_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Out-neighbors of `v` reached via an edge labeled `label`; this is the
  /// paper's Me(v) for a pattern edge e with LQ(e) = label.
  std::span<const Neighbor> OutNeighborsWithLabel(VertexId v,
                                                  Label label) const;

  /// In-neighbors of `v` via edges labeled `label`.
  std::span<const Neighbor> InNeighborsWithLabel(VertexId v,
                                                 Label label) const;

  /// Degree helpers.
  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }
  size_t OutDegreeWithLabel(VertexId v, Label label) const {
    return OutNeighborsWithLabel(v, label).size();
  }
  size_t InDegreeWithLabel(VertexId v, Label label) const {
    return InNeighborsWithLabel(v, label).size();
  }

  /// True iff edge (src, dst) with `label` exists. O(log deg).
  bool HasEdge(VertexId src, VertexId dst, Label label) const;

  /// Vertices carrying node label `label`, ascending. Empty span for
  /// labels that no vertex carries.
  std::span<const VertexId> VerticesWithLabel(Label label) const;

  /// Number of vertices with node label `label`.
  size_t NumVerticesWithLabel(Label label) const {
    return VerticesWithLabel(label).size();
  }

  /// Label dictionary shared by node and edge labels.
  const LabelDict& dict() const { return dict_; }
  LabelDict& mutable_dict() { return dict_; }

  /// Applies one mutation batch (see graph_delta.h for semantics) and
  /// returns the net changes. Monotonically bumps version() on success;
  /// leaves the graph untouched on error. Not thread-safe: callers
  /// (QueryEngine::ApplyDelta) must exclude concurrent readers.
  Result<GraphDeltaSummary> ApplyDelta(const GraphDelta& delta);

  /// Number of successfully applied deltas since construction. Caches
  /// keyed on graph content stamp entries with this and treat a mismatch
  /// as stale.
  uint64_t version() const { return version_; }

  /// Checks the CSR invariants the matchers rely on: offsets monotone and
  /// consistent with array sizes, adjacency sorted by (label, endpoint),
  /// out/in mirrors of each other, label index consistent with vertex
  /// labels, and tombstoned vertices edge-free. O(V + E); tests re-assert
  /// this after every delta.
  Status ValidateInvariants() const;

  /// Approximate resident bytes (CSR arrays only), for partition sizing.
  size_t MemoryBytes() const;

 private:
  friend class GraphBuilder;

  LabelDict dict_;
  std::vector<Label> vertex_labels_;

  std::vector<uint64_t> out_offsets_;  // size V+1
  std::vector<Neighbor> out_nbrs_;     // sorted by (label, v) per vertex
  std::vector<uint64_t> in_offsets_;   // size V+1
  std::vector<Neighbor> in_nbrs_;      // sorted by (label, v) per vertex

  // Vertices grouped by node label: label_offsets_ indexes label_sorted_.
  std::vector<uint64_t> label_offsets_;  // size num_labels+1
  std::vector<VertexId> label_sorted_;

  // Bumped by ApplyDelta; 0 for a freshly built graph.
  uint64_t version_ = 0;
};

}  // namespace qgp

#endif  // QGP_GRAPH_GRAPH_H_
