#ifndef QGP_GRAPH_GRAPH_DELTA_H_
#define QGP_GRAPH_GRAPH_DELTA_H_

/// \file
/// Batched graph mutation. A GraphDelta describes edge/vertex inserts and
/// deletes against one Graph; Graph::ApplyDelta applies the whole batch
/// atomically (validate first, then mutate), rebuilding only the CSR
/// slices of touched vertices and bumping graph version().
///
/// Semantics (documented here once, asserted by tests/graph/graph_delta_test):
///  - Operations apply in a fixed order regardless of how the delta was
///    assembled: (1) add_vertices append new ids old_n, old_n+1, ...;
///    (2) remove_edges; (3) add_edges; (4) remove_vertices.
///  - Vertex removal is a *tombstone*: the id stays allocated (so ids are
///    stable across deltas and apply-then-query stays comparable with a
///    rebuild oracle), the node label becomes kInvalidLabel (which the
///    label index drops), and every incident edge is removed.
///  - Set semantics: adding a present edge, removing an absent edge, or
///    removing an already-tombstoned vertex are no-ops, not errors.
///  - Errors (the graph is untouched on failure): endpoints out of range,
///    edges touching an already-tombstoned vertex, kInvalidLabel edge
///    labels.
///
/// Every successful ApplyDelta — including a pure no-op batch — bumps
/// version(), so "version changed" is exactly "an ApplyDelta intervened"
/// and cache stamps stay trivially conservative.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace qgp {

/// One mutation batch in interned Label ids (see NamedGraphDelta for the
/// string-label form used at API edges).
struct GraphDelta {
  /// Node labels of vertices to append; ids are assigned sequentially
  /// from num_vertices() at apply time.
  std::vector<Label> add_vertices;
  /// Ids to tombstone (drops all their incident edges).
  std::vector<VertexId> remove_vertices;
  std::vector<EdgeTriple> add_edges;
  std::vector<EdgeTriple> remove_edges;

  bool Empty() const {
    return add_vertices.empty() && remove_vertices.empty() &&
           add_edges.empty() && remove_edges.empty();
  }
};

/// GraphDelta with string labels, as decoded from the wire or the CLI.
/// Resolve against the target graph's dict (interning new labels) before
/// applying.
struct NamedGraphDelta {
  struct NamedEdge {
    VertexId src = kInvalidVertex;
    VertexId dst = kInvalidVertex;
    std::string label;
  };
  std::vector<std::string> add_vertices;  // node labels
  std::vector<VertexId> remove_vertices;
  std::vector<NamedEdge> add_edges;
  std::vector<NamedEdge> remove_edges;

  bool Empty() const {
    return add_vertices.empty() && remove_vertices.empty() &&
           add_edges.empty() && remove_edges.empty();
  }
};

/// Interns every label of `named` into `dict` and returns the id form.
/// remove_edges labels are looked up, not interned: removing an edge with
/// a label the graph has never seen is a guaranteed no-op, and interning
/// it would grow the dict as a side effect of a no-op.
GraphDelta ResolveDelta(const NamedGraphDelta& named, LabelDict* dict);

/// Net effect of one applied delta (or several, via MergeFrom): what
/// actually changed, after no-op filtering and tombstone expansion.
/// edges_removed includes edges dropped implicitly by vertex removal;
/// vertices hold (id, label) pairs — for vertices_removed, the label the
/// vertex carried before the tombstone.
struct GraphDeltaSummary {
  /// graph version() after this delta was applied.
  uint64_t version = 0;
  std::vector<std::pair<VertexId, Label>> vertices_added;
  std::vector<std::pair<VertexId, Label>> vertices_removed;
  std::vector<EdgeTriple> edges_added;
  std::vector<EdgeTriple> edges_removed;

  bool Empty() const {
    return vertices_added.empty() && vertices_removed.empty() &&
           edges_added.empty() && edges_removed.empty();
  }

  /// Folds a later summary into this one (concatenation). The result's
  /// touched-vertex set is the union, which is what incremental repair
  /// needs; it does not cancel add/remove pairs across deltas.
  void MergeFrom(const GraphDeltaSummary& later);
};

/// Vertices whose candidacy a repair pass must reconsider: endpoints of
/// summary edges and added/removed vertices. `edge_labels` / `node_labels`
/// filter to pattern-relevant labels (labels outside a bitset's range are
/// irrelevant by construction); pass nullptr for "all labels relevant".
/// With `additions_only`, only gain sites (added edges/vertices) count —
/// deletions can only shrink candidate sets, so downward refinement from
/// the old sets already covers them. Sorted, deduplicated.
std::vector<VertexId> TouchedVertices(const GraphDeltaSummary& summary,
                                      const DynamicBitset* edge_labels,
                                      const DynamicBitset* node_labels,
                                      bool additions_only);

/// Deep content equality: dict, vertex labels, both adjacency directions,
/// and the label index. The delta differential harness compares an
/// ApplyDelta'd graph against a from-scratch rebuild with this.
bool ContentEquals(const Graph& a, const Graph& b);

}  // namespace qgp

#endif  // QGP_GRAPH_GRAPH_DELTA_H_
