#include "graph/label_dict.h"

namespace qgp {

namespace {
const std::string kInvalidName = "<invalid>";
}  // namespace

Label LabelDict::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  Label id = static_cast<Label>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Label LabelDict::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidLabel : it->second;
}

const std::string& LabelDict::Name(Label label) const {
  if (label >= names_.size()) return kInvalidName;
  return names_[label];
}

}  // namespace qgp
