#ifndef QGP_GRAPH_GRAPH_BUILDER_H_
#define QGP_GRAPH_GRAPH_BUILDER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace qgp {

/// Mutable staging area for constructing a Graph. Vertices are appended
/// (dense ids in insertion order); edges may arrive in any order and are
/// sorted/deduplicated by Build().
///
///   GraphBuilder b;
///   VertexId alice = b.AddVertex("person");
///   VertexId bob = b.AddVertex("person");
///   b.AddEdge(alice, bob, "follow");
///   Graph g = std::move(b).Build().value();
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Creates a builder that shares label ids with an existing dictionary
  /// (e.g. to build a fragment of a partitioned graph).
  explicit GraphBuilder(LabelDict dict) : dict_(std::move(dict)) {}

  /// Appends a vertex with an interned label name; returns its id.
  VertexId AddVertex(std::string_view label_name);

  /// Appends a vertex with an already-interned label id.
  VertexId AddVertexWithLabel(Label label);

  /// Records a directed edge; endpoints must already exist.
  Status AddEdge(VertexId src, VertexId dst, std::string_view label_name);

  /// Records a directed edge with an interned edge label.
  Status AddEdgeWithLabel(VertexId src, VertexId dst, Label label);

  /// Interns a label without creating a vertex (for edge labels known
  /// ahead of time).
  Label InternLabel(std::string_view name) { return dict_.Intern(name); }

  /// Number of staged vertices / edges (pre-dedup).
  size_t num_vertices() const { return vertex_labels_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Finalizes into an immutable Graph: builds CSR out/in adjacency sorted
  /// by (label, endpoint), the label→vertices index, and drops exact
  /// duplicate edges. The builder is consumed.
  Result<Graph> Build() &&;

 private:
  LabelDict dict_;
  std::vector<Label> vertex_labels_;
  std::vector<EdgeTriple> edges_;
};

}  // namespace qgp

#endif  // QGP_GRAPH_GRAPH_BUILDER_H_
