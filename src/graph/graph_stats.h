#ifndef QGP_GRAPH_GRAPH_STATS_H_
#define QGP_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace qgp {

/// Summary statistics used by the workload generators, the QGAR miner's
/// frequency thresholds, and the bench reports.
struct GraphStats {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  size_t num_node_labels = 0;  // distinct labels carried by >=1 vertex
  size_t num_edge_labels = 0;  // distinct labels carried by >=1 edge
  double avg_out_degree = 0.0;
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  /// vertex count per node label id.
  std::map<Label, size_t> node_label_counts;
  /// edge count per edge label id.
  std::map<Label, size_t> edge_label_counts;
};

/// Computes summary statistics in one pass over the CSR.
GraphStats ComputeGraphStats(const Graph& g);

/// Renders stats as a short human-readable block (label names resolved
/// through g.dict()).
std::string FormatGraphStats(const Graph& g, const GraphStats& stats);

}  // namespace qgp

#endif  // QGP_GRAPH_GRAPH_STATS_H_
