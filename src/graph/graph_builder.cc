#include "graph/graph_builder.h"

#include <algorithm>

#include "common/string_util.h"

namespace qgp {

VertexId GraphBuilder::AddVertex(std::string_view label_name) {
  return AddVertexWithLabel(dict_.Intern(label_name));
}

VertexId GraphBuilder::AddVertexWithLabel(Label label) {
  VertexId id = static_cast<VertexId>(vertex_labels_.size());
  vertex_labels_.push_back(label);
  return id;
}

Status GraphBuilder::AddEdge(VertexId src, VertexId dst,
                             std::string_view label_name) {
  return AddEdgeWithLabel(src, dst, dict_.Intern(label_name));
}

Status GraphBuilder::AddEdgeWithLabel(VertexId src, VertexId dst,
                                      Label label) {
  if (src >= vertex_labels_.size() || dst >= vertex_labels_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (label == kInvalidLabel) {
    return Status::InvalidArgument("edge label is invalid");
  }
  edges_.push_back(EdgeTriple{src, dst, label});
  return Status::Ok();
}

Result<Graph> GraphBuilder::Build() && {
  Graph g;
  g.dict_ = std::move(dict_);
  g.vertex_labels_ = std::move(vertex_labels_);
  const size_t n = g.vertex_labels_.size();

  // Deduplicate exact (src, dst, label) triples.
  std::sort(edges_.begin(), edges_.end(),
            [](const EdgeTriple& a, const EdgeTriple& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.label != b.label) return a.label < b.label;
              return a.dst < b.dst;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  const size_t m = edges_.size();

  // Out-CSR: edges_ is already grouped by src and sorted by (label, dst).
  g.out_offsets_.assign(n + 1, 0);
  for (const EdgeTriple& e : edges_) ++g.out_offsets_[e.src + 1];
  for (size_t i = 0; i < n; ++i) g.out_offsets_[i + 1] += g.out_offsets_[i];
  g.out_nbrs_.resize(m);
  {
    size_t i = 0;
    for (const EdgeTriple& e : edges_) {
      g.out_nbrs_[i++] = Neighbor{e.dst, e.label};
    }
  }

  // In-CSR: counting sort by dst, then sort each in-list by (label, src).
  g.in_offsets_.assign(n + 1, 0);
  for (const EdgeTriple& e : edges_) ++g.in_offsets_[e.dst + 1];
  for (size_t i = 0; i < n; ++i) g.in_offsets_[i + 1] += g.in_offsets_[i];
  g.in_nbrs_.resize(m);
  {
    std::vector<uint64_t> cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
    for (const EdgeTriple& e : edges_) {
      g.in_nbrs_[cursor[e.dst]++] = Neighbor{e.src, e.label};
    }
  }
  for (size_t v = 0; v < n; ++v) {
    std::sort(g.in_nbrs_.begin() + static_cast<ptrdiff_t>(g.in_offsets_[v]),
              g.in_nbrs_.begin() + static_cast<ptrdiff_t>(g.in_offsets_[v + 1]),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.label != b.label) return a.label < b.label;
                return a.v < b.v;
              });
  }

  // Label→vertices index.
  const size_t num_labels = g.dict_.size();
  g.label_offsets_.assign(num_labels + 1, 0);
  for (Label l : g.vertex_labels_) {
    if (l < num_labels) ++g.label_offsets_[l + 1];
  }
  for (size_t i = 0; i < num_labels; ++i) {
    g.label_offsets_[i + 1] += g.label_offsets_[i];
  }
  g.label_sorted_.resize(n);
  {
    std::vector<uint64_t> cursor(g.label_offsets_.begin(),
                                 g.label_offsets_.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      Label l = g.vertex_labels_[v];
      if (l < num_labels) g.label_sorted_[cursor[l]++] = v;
    }
  }

  edges_.clear();
  return g;
}

}  // namespace qgp
