#include "graph/graph_algorithms.h"

#include <algorithm>
#include <deque>

#include "common/bitset.h"
#include "graph/graph_builder.h"

namespace qgp {

std::vector<VertexId> KHopBall(const Graph& g, VertexId src, int depth) {
  std::vector<VertexId> ball;
  if (src >= g.num_vertices()) return ball;
  DynamicBitset visited(g.num_vertices());
  visited.Set(src);
  ball.push_back(src);
  std::vector<VertexId> frontier{src};
  for (int hop = 0; hop < depth && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (const Neighbor& n : g.OutNeighbors(v)) {
        if (visited.TestAndSet(n.v)) {
          ball.push_back(n.v);
          next.push_back(n.v);
        }
      }
      for (const Neighbor& n : g.InNeighbors(v)) {
        if (visited.TestAndSet(n.v)) {
          ball.push_back(n.v);
          next.push_back(n.v);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(ball.begin(), ball.end());
  return ball;
}

std::vector<VertexId> KHopBallFiltered(const Graph& g, VertexId src,
                                       int depth,
                                       const DynamicBitset& edge_labels,
                                       size_t max_size, bool* complete) {
  BallScratch scratch;
  std::span<const VertexId> ball = KHopBallFilteredScratch(
      g, src, depth, edge_labels, max_size, &scratch, complete);
  return {ball.begin(), ball.end()};
}

std::span<const VertexId> KHopBallFilteredScratch(
    const Graph& g, VertexId src, int depth, const DynamicBitset& edge_labels,
    size_t max_size, BallScratch* scratch, bool* complete) {
  *complete = true;
  SparseBitset& visited = scratch->visited;
  std::vector<VertexId>& ball = scratch->ball;
  std::vector<VertexId>& frontier = scratch->frontier;
  std::vector<VertexId>& next = scratch->next;
  visited.EnsureUniverse(g.num_vertices());
  visited.ResetTouched();
  ball.clear();
  frontier.clear();
  next.clear();
  if (src >= g.num_vertices()) return ball;
  visited.Set(src);
  ball.push_back(src);
  frontier.push_back(src);
  bool overflow = false;
  for (int hop = 0; hop < depth && !frontier.empty(); ++hop) {
    next.clear();
    for (VertexId v : frontier) {
      auto expand = [&](std::span<const Neighbor> nbrs) {
        for (const Neighbor& n : nbrs) {
          if (n.label < edge_labels.size() && !edge_labels.Test(n.label)) {
            continue;
          }
          if (visited.TestAndSet(n.v)) {
            ball.push_back(n.v);
            next.push_back(n.v);
            if (ball.size() > max_size) {
              overflow = true;
              return;
            }
          }
        }
      };
      expand(g.OutNeighbors(v));
      if (!overflow) expand(g.InNeighbors(v));
      if (overflow) {
        *complete = false;
        return ball;  // partial; caller falls back to global sets
      }
    }
    std::swap(frontier, next);
  }
  std::sort(ball.begin(), ball.end());
  return ball;
}

BallSize KHopBallSize(const Graph& g, VertexId src, int depth) {
  std::vector<VertexId> ball = KHopBall(g, src, depth);
  BallSize size;
  size.num_vertices = ball.size();
  DynamicBitset member(g.num_vertices());
  for (VertexId v : ball) member.Set(v);
  for (VertexId v : ball) {
    for (const Neighbor& n : g.OutNeighbors(v)) {
      if (member.Test(n.v)) ++size.num_edges;
    }
  }
  return size;
}

std::vector<uint32_t> BfsDistances(const Graph& g, VertexId src,
                                   bool undirected) {
  std::vector<uint32_t> dist(g.num_vertices(), UINT32_MAX);
  if (src >= g.num_vertices()) return dist;
  dist[src] = 0;
  std::deque<VertexId> queue{src};
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    uint32_t d = dist[v] + 1;
    for (const Neighbor& n : g.OutNeighbors(v)) {
      if (dist[n.v] == UINT32_MAX) {
        dist[n.v] = d;
        queue.push_back(n.v);
      }
    }
    if (undirected) {
      for (const Neighbor& n : g.InNeighbors(v)) {
        if (dist[n.v] == UINT32_MAX) {
          dist[n.v] = d;
          queue.push_back(n.v);
        }
      }
    }
  }
  return dist;
}

Components ConnectedComponents(const Graph& g) {
  Components result;
  result.component_of.assign(g.num_vertices(), UINT32_MAX);
  uint32_t next_id = 0;
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < g.num_vertices(); ++root) {
    if (result.component_of[root] != UINT32_MAX) continue;
    result.component_of[root] = next_id;
    stack.push_back(root);
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      auto visit = [&](VertexId w) {
        if (result.component_of[w] == UINT32_MAX) {
          result.component_of[w] = next_id;
          stack.push_back(w);
        }
      };
      for (const Neighbor& n : g.OutNeighbors(v)) visit(n.v);
      for (const Neighbor& n : g.InNeighbors(v)) visit(n.v);
    }
    ++next_id;
  }
  result.count = next_id;
  return result;
}

Result<InducedSubgraph> ExtractInducedSubgraph(
    const Graph& g, std::span<const VertexId> vertices) {
  InducedSubgraph out;
  GraphBuilder builder(g.dict());
  out.global_to_local.reserve(vertices.size());
  for (VertexId v : vertices) {
    if (v >= g.num_vertices()) {
      return Status::InvalidArgument("induced subgraph vertex out of range");
    }
    if (out.global_to_local.count(v) != 0) continue;
    VertexId local = builder.AddVertexWithLabel(g.vertex_label(v));
    out.global_to_local.emplace(v, local);
    out.local_to_global.push_back(v);
  }
  for (VertexId v : out.local_to_global) {
    VertexId local_src = out.global_to_local[v];
    for (const Neighbor& n : g.OutNeighbors(v)) {
      auto it = out.global_to_local.find(n.v);
      if (it == out.global_to_local.end()) continue;
      QGP_RETURN_IF_ERROR(
          builder.AddEdgeWithLabel(local_src, it->second, n.label));
    }
  }
  QGP_ASSIGN_OR_RETURN(out.graph, std::move(builder).Build());
  return out;
}

}  // namespace qgp
