#ifndef QGP_GRAPH_TYPES_H_
#define QGP_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace qgp {

/// Dense vertex identifier within one Graph (0-based).
using VertexId = uint32_t;

/// Interned label identifier (node or edge label), see LabelDict.
using Label = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel for "no label".
inline constexpr Label kInvalidLabel = std::numeric_limits<Label>::max();

/// One directed labeled edge, as fed to GraphBuilder.
struct EdgeTriple {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  Label label = kInvalidLabel;

  friend bool operator==(const EdgeTriple&, const EdgeTriple&) = default;
};

/// Adjacency entry: the endpoint reached plus the edge label. Out-lists
/// store (dst, label); in-lists store (src, label). Lists are sorted by
/// (label, v) so per-label slices are binary-search ranges.
struct Neighbor {
  VertexId v = kInvalidVertex;
  Label label = kInvalidLabel;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

}  // namespace qgp

#endif  // QGP_GRAPH_TYPES_H_
