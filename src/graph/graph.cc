#include "graph/graph.h"

#include <algorithm>

namespace qgp {

namespace {

// Binary-search the [lo, hi) slice of a (label, v)-sorted neighbor array
// for the sub-range with the given label.
std::span<const Neighbor> LabelSlice(const std::vector<Neighbor>& nbrs,
                                     uint64_t lo, uint64_t hi, Label label) {
  const Neighbor* begin = nbrs.data() + lo;
  const Neighbor* end = nbrs.data() + hi;
  auto cmp_lo = [](const Neighbor& n, Label l) { return n.label < l; };
  const Neighbor* first = std::lower_bound(begin, end, label, cmp_lo);
  const Neighbor* last = first;
  while (last != end && last->label == label) ++last;
  return {first, static_cast<size_t>(last - first)};
}

}  // namespace

std::span<const Neighbor> Graph::OutNeighborsWithLabel(VertexId v,
                                                       Label label) const {
  return LabelSlice(out_nbrs_, out_offsets_[v], out_offsets_[v + 1], label);
}

std::span<const Neighbor> Graph::InNeighborsWithLabel(VertexId v,
                                                      Label label) const {
  return LabelSlice(in_nbrs_, in_offsets_[v], in_offsets_[v + 1], label);
}

bool Graph::HasEdge(VertexId src, VertexId dst, Label label) const {
  std::span<const Neighbor> slice = OutNeighborsWithLabel(src, label);
  return std::binary_search(
      slice.begin(), slice.end(), Neighbor{dst, label},
      [](const Neighbor& a, const Neighbor& b) { return a.v < b.v; });
}

std::span<const VertexId> Graph::VerticesWithLabel(Label label) const {
  if (label_offsets_.empty() ||
      static_cast<size_t>(label) >= label_offsets_.size() - 1) {
    return {};
  }
  return {label_sorted_.data() + label_offsets_[label],
          label_offsets_[label + 1] - label_offsets_[label]};
}

size_t Graph::MemoryBytes() const {
  return vertex_labels_.size() * sizeof(Label) +
         (out_nbrs_.size() + in_nbrs_.size()) * sizeof(Neighbor) +
         (out_offsets_.size() + in_offsets_.size()) * sizeof(uint64_t) +
         label_sorted_.size() * sizeof(VertexId);
}

}  // namespace qgp
