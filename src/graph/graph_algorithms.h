#ifndef QGP_GRAPH_GRAPH_ALGORITHMS_H_
#define QGP_GRAPH_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "common/vertex_set.h"
#include "graph/graph.h"

namespace qgp {

/// Vertices within `depth` hops of `src`, treating edges as undirected
/// (the paper's Nd(v); §5.2 — verification of a focus candidate may walk
/// pattern edges in either direction, hence undirected). The result is
/// sorted ascending and includes `src`.
std::vector<VertexId> KHopBall(const Graph& g, VertexId src, int depth);

/// Ball variant used by DMatch's per-focus locality: only edges whose
/// label is set in `edge_labels` are traversed (an embedding can only
/// walk pattern edge labels), and expansion aborts once more than
/// `max_size` vertices are visited (hub explosion guard). On abort,
/// *complete is set to false and the caller must fall back to global
/// candidate sets — the ball is an optimization, not a semantic need.
std::vector<VertexId> KHopBallFiltered(const Graph& g, VertexId src,
                                       int depth,
                                       const DynamicBitset& edge_labels,
                                       size_t max_size, bool* complete);

/// Reusable buffers for repeated ball extractions (one arena per thread in
/// DMatch's per-focus loop). The visited set resets in O(|previous ball|),
/// so per-focus cost no longer carries an O(|V|) allocate-and-zero term.
struct BallScratch {
  SparseBitset visited;
  std::vector<VertexId> frontier;
  std::vector<VertexId> next;
  std::vector<VertexId> ball;
};

/// Scratch-arena variant of KHopBallFiltered. Fills `scratch->ball`
/// (sorted ascending) and returns a span over it. After the call — and
/// until `scratch` is next used — `scratch->visited` holds exactly the
/// ball members, usable as an O(1) membership filter or as a word array
/// for dense intersection.
std::span<const VertexId> KHopBallFilteredScratch(
    const Graph& g, VertexId src, int depth, const DynamicBitset& edge_labels,
    size_t max_size, BallScratch* scratch, bool* complete);

/// |KHopBall| plus the number of edges among ball members — the paper's
/// |Nd(v)| counts the induced subgraph size (nodes + edges).
struct BallSize {
  size_t num_vertices = 0;
  size_t num_edges = 0;
  size_t total() const { return num_vertices + num_edges; }
};
BallSize KHopBallSize(const Graph& g, VertexId src, int depth);

/// BFS hop distance from `src` to every vertex (UINT32_MAX when
/// unreachable), optionally treating edges as undirected.
std::vector<uint32_t> BfsDistances(const Graph& g, VertexId src,
                                   bool undirected);

/// Undirected connected components; returns component id per vertex and
/// the component count.
struct Components {
  std::vector<uint32_t> component_of;
  size_t count = 0;
};
Components ConnectedComponents(const Graph& g);

/// Subgraph of `g` induced by `vertices` (global ids, need not be sorted;
/// duplicates ignored): keeps every edge of `g` whose endpoints are both
/// selected. `local_to_global[i]` maps the new id i back to `g`.
struct InducedSubgraph {
  Graph graph;
  std::vector<VertexId> local_to_global;
  std::unordered_map<VertexId, VertexId> global_to_local;
};
Result<InducedSubgraph> ExtractInducedSubgraph(
    const Graph& g, std::span<const VertexId> vertices);

}  // namespace qgp

#endif  // QGP_GRAPH_GRAPH_ALGORITHMS_H_
