#include "graph/graph_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace qgp {

Result<Graph> GraphIo::Read(std::istream& in) {
  GraphBuilder builder;
  std::unordered_map<int64_t, VertexId> id_map;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> tok = SplitWhitespace(sv);
    auto err = [&](const std::string& what) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (tok[0] == "v") {
      if (tok.size() != 3) return err("expected 'v <id> <label>'");
      int64_t file_id = 0;
      if (!ParseInt64(tok[1], &file_id) || file_id < 0) {
        return err("bad vertex id '" + tok[1] + "'");
      }
      if (id_map.count(file_id) != 0) {
        return err("duplicate vertex id " + tok[1]);
      }
      id_map.emplace(file_id, builder.AddVertex(tok[2]));
    } else if (tok[0] == "e") {
      if (tok.size() != 4) return err("expected 'e <src> <dst> <label>'");
      int64_t s = 0, d = 0;
      if (!ParseInt64(tok[1], &s) || !ParseInt64(tok[2], &d)) {
        return err("bad edge endpoint");
      }
      auto si = id_map.find(s), di = id_map.find(d);
      if (si == id_map.end() || di == id_map.end()) {
        return err("edge references undeclared vertex");
      }
      QGP_RETURN_IF_ERROR(builder.AddEdge(si->second, di->second, tok[3]));
    } else {
      return err("unknown record type '" + tok[0] + "'");
    }
  }
  return std::move(builder).Build();
}

Result<Graph> GraphIo::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  return Read(in);
}

Status GraphIo::Write(const Graph& g, std::ostream& out) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << "v " << v << ' ' << g.dict().Name(g.vertex_label(v)) << '\n';
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& n : g.OutNeighbors(v)) {
      out << "e " << v << ' ' << n.v << ' ' << g.dict().Name(n.label)
          << '\n';
    }
  }
  if (!out) return Status::IoError("stream write failure");
  return Status::Ok();
}

Status GraphIo::WriteFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  return Write(g, out);
}

namespace {

constexpr char kBinaryMagic[6] = {'Q', 'G', 'P', 'B', '1', '\n'};

void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 8);
}

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

bool GetU64(std::istream& in, uint64_t* v) {
  unsigned char buf[8];
  if (!in.read(reinterpret_cast<char*>(buf), 8)) return false;
  *v = 0;
  for (int i = 7; i >= 0; --i) *v = (*v << 8) | buf[i];
  return true;
}

bool GetU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = 0;
  for (int i = 3; i >= 0; --i) *v = (*v << 8) | buf[i];
  return true;
}

}  // namespace

Status GraphIo::WriteBinary(const Graph& g, std::ostream& out) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  // Label dictionary.
  PutU64(out, g.dict().size());
  for (Label l = 0; l < g.dict().size(); ++l) {
    const std::string& name = g.dict().Name(l);
    PutU64(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  // Vertices.
  PutU64(out, g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    PutU32(out, g.vertex_label(v));
  }
  // Edges.
  PutU64(out, g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& n : g.OutNeighbors(v)) {
      PutU32(out, v);
      PutU32(out, n.v);
      PutU32(out, n.label);
    }
  }
  if (!out) return Status::IoError("binary stream write failure");
  return Status::Ok();
}

Result<Graph> GraphIo::ReadBinary(std::istream& in) {
  char magic[sizeof(kBinaryMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::Corruption("bad binary graph magic");
  }
  uint64_t num_labels = 0;
  if (!GetU64(in, &num_labels) || num_labels > (1ULL << 32)) {
    return Status::Corruption("bad label count");
  }
  LabelDict dict;
  for (uint64_t i = 0; i < num_labels; ++i) {
    uint64_t len = 0;
    if (!GetU64(in, &len) || len > (1ULL << 24)) {
      return Status::Corruption("bad label length");
    }
    std::string name(len, '\0');
    if (!in.read(name.data(), static_cast<std::streamsize>(len))) {
      return Status::Corruption("truncated label string");
    }
    if (dict.Intern(name) != i) {
      return Status::Corruption("duplicate label string in dictionary");
    }
  }
  GraphBuilder builder(std::move(dict));
  uint64_t num_vertices = 0;
  if (!GetU64(in, &num_vertices) || num_vertices > (1ULL << 32)) {
    return Status::Corruption("bad vertex count");
  }
  for (uint64_t i = 0; i < num_vertices; ++i) {
    uint32_t label = 0;
    if (!GetU32(in, &label)) return Status::Corruption("truncated vertices");
    if (label >= num_labels) return Status::Corruption("vertex label oob");
    builder.AddVertexWithLabel(label);
  }
  uint64_t num_edges = 0;
  if (!GetU64(in, &num_edges)) return Status::Corruption("bad edge count");
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t src = 0, dst = 0, label = 0;
    if (!GetU32(in, &src) || !GetU32(in, &dst) || !GetU32(in, &label)) {
      return Status::Corruption("truncated edges");
    }
    if (label >= num_labels) return Status::Corruption("edge label oob");
    QGP_RETURN_IF_ERROR(builder.AddEdgeWithLabel(src, dst, label));
  }
  return std::move(builder).Build();
}

Status GraphIo::WriteBinaryFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  return WriteBinary(g, out);
}

Result<Graph> GraphIo::ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  return ReadBinary(in);
}

}  // namespace qgp
