#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace qgp {

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ++s.node_label_counts[g.vertex_label(v)];
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(v));
    s.max_in_degree = std::max(s.max_in_degree, g.InDegree(v));
    for (const Neighbor& n : g.OutNeighbors(v)) {
      ++s.edge_label_counts[n.label];
    }
  }
  s.num_node_labels = s.node_label_counts.size();
  s.num_edge_labels = s.edge_label_counts.size();
  s.avg_out_degree =
      s.num_vertices == 0
          ? 0.0
          : static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  return s;
}

std::string FormatGraphStats(const Graph& g, const GraphStats& stats) {
  std::ostringstream out;
  out << "|V|=" << stats.num_vertices << " |E|=" << stats.num_edges
      << " node-labels=" << stats.num_node_labels
      << " edge-labels=" << stats.num_edge_labels
      << " avg-deg=" << stats.avg_out_degree
      << " max-out=" << stats.max_out_degree
      << " max-in=" << stats.max_in_degree << "\n";
  out << "top node labels:";
  std::vector<std::pair<size_t, Label>> by_count;
  for (const auto& [label, count] : stats.node_label_counts) {
    by_count.emplace_back(count, label);
  }
  std::sort(by_count.rbegin(), by_count.rend());
  for (size_t i = 0; i < by_count.size() && i < 8; ++i) {
    out << ' ' << g.dict().Name(by_count[i].second) << '='
        << by_count[i].first;
  }
  return out.str();
}

}  // namespace qgp
