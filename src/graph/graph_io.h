#ifndef QGP_GRAPH_GRAPH_IO_H_
#define QGP_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace qgp {

/// Text serialization of graphs. The format is line-oriented:
///
///   # comment / blank lines ignored
///   v <id> <node-label>
///   e <src-id> <dst-id> <edge-label>
///
/// Vertex ids in a file may be arbitrary non-negative integers; they are
/// remapped to dense ids in file order of first appearance of their `v`
/// line. Every edge endpoint must have a preceding `v` line.
class GraphIo {
 public:
  /// Parses a graph from a stream.
  static Result<Graph> Read(std::istream& in);

  /// Parses a graph from a file path.
  static Result<Graph> ReadFile(const std::string& path);

  /// Writes `g` in the text format (dense ids).
  static Status Write(const Graph& g, std::ostream& out);

  /// Writes `g` to a file path.
  static Status WriteFile(const Graph& g, const std::string& path);

  /// Binary format (magic "QGPB1"): label dictionary + vertex labels +
  /// edge triples, little-endian u32/u64. Orders of magnitude faster
  /// than the text path for bench-scale graphs.
  static Status WriteBinary(const Graph& g, std::ostream& out);
  static Result<Graph> ReadBinary(std::istream& in);
  static Status WriteBinaryFile(const Graph& g, const std::string& path);
  static Result<Graph> ReadBinaryFile(const std::string& path);
};

}  // namespace qgp

#endif  // QGP_GRAPH_GRAPH_IO_H_
