#include "graph/graph_delta.h"

#include <algorithm>
#include <cstddef>
#include <string>

namespace qgp {

namespace {

// GraphBuilder's edge order: by (src, label, dst) — grouped by source with
// each group already in adjacency order.
bool OutOrder(const EdgeTriple& a, const EdgeTriple& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.label != b.label) return a.label < b.label;
  return a.dst < b.dst;
}

// In-adjacency order: by (dst, label, src).
bool InOrder(const EdgeTriple& a, const EdgeTriple& b) {
  if (a.dst != b.dst) return a.dst < b.dst;
  if (a.label != b.label) return a.label < b.label;
  return a.src < b.src;
}

void SortUniqueOut(std::vector<EdgeTriple>* edges) {
  std::sort(edges->begin(), edges->end(), OutOrder);
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
}

bool NbrOrder(const Neighbor& a, const Neighbor& b) {
  if (a.label != b.label) return a.label < b.label;
  return a.v < b.v;
}

}  // namespace

GraphDelta ResolveDelta(const NamedGraphDelta& named, LabelDict* dict) {
  GraphDelta delta;
  delta.add_vertices.reserve(named.add_vertices.size());
  for (const std::string& l : named.add_vertices) {
    delta.add_vertices.push_back(dict->Intern(l));
  }
  delta.remove_vertices = named.remove_vertices;
  delta.add_edges.reserve(named.add_edges.size());
  for (const NamedGraphDelta::NamedEdge& e : named.add_edges) {
    delta.add_edges.push_back(EdgeTriple{e.src, e.dst, dict->Intern(e.label)});
  }
  delta.remove_edges.reserve(named.remove_edges.size());
  for (const NamedGraphDelta::NamedEdge& e : named.remove_edges) {
    // Find, don't intern: an unknown label means the edge cannot exist,
    // and kInvalidLabel removals are filtered as absent below.
    delta.remove_edges.push_back(EdgeTriple{e.src, e.dst, dict->Find(e.label)});
  }
  return delta;
}

void GraphDeltaSummary::MergeFrom(const GraphDeltaSummary& later) {
  version = later.version;
  vertices_added.insert(vertices_added.end(), later.vertices_added.begin(),
                        later.vertices_added.end());
  vertices_removed.insert(vertices_removed.end(),
                          later.vertices_removed.begin(),
                          later.vertices_removed.end());
  edges_added.insert(edges_added.end(), later.edges_added.begin(),
                     later.edges_added.end());
  edges_removed.insert(edges_removed.end(), later.edges_removed.begin(),
                       later.edges_removed.end());
}

std::vector<VertexId> TouchedVertices(const GraphDeltaSummary& summary,
                                      const DynamicBitset* edge_labels,
                                      const DynamicBitset* node_labels,
                                      bool additions_only) {
  auto edge_relevant = [&](Label l) {
    return edge_labels == nullptr ||
           (l < edge_labels->size() && edge_labels->Test(l));
  };
  auto node_relevant = [&](Label l) {
    return node_labels == nullptr ||
           (l < node_labels->size() && node_labels->Test(l));
  };
  std::vector<VertexId> touched;
  for (const EdgeTriple& e : summary.edges_added) {
    if (!edge_relevant(e.label)) continue;
    touched.push_back(e.src);
    touched.push_back(e.dst);
  }
  for (const auto& [v, l] : summary.vertices_added) {
    if (node_relevant(l)) touched.push_back(v);
  }
  if (!additions_only) {
    for (const EdgeTriple& e : summary.edges_removed) {
      if (!edge_relevant(e.label)) continue;
      touched.push_back(e.src);
      touched.push_back(e.dst);
    }
    for (const auto& [v, l] : summary.vertices_removed) {
      if (node_relevant(l)) touched.push_back(v);
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

Result<GraphDeltaSummary> Graph::ApplyDelta(const GraphDelta& delta) {
  const size_t old_n = vertex_labels_.size();
  const size_t new_n = old_n + delta.add_vertices.size();

  // ---- Validate everything up front; no mutation on any error path. ----
  auto dead_before = [&](VertexId v) {
    return v < old_n && vertex_labels_[v] == kInvalidLabel;
  };
  for (VertexId v : delta.remove_vertices) {
    if (v >= new_n) {
      return Status::InvalidArgument("remove_vertices id " +
                                     std::to_string(v) + " out of range");
    }
  }
  for (const EdgeTriple& e : delta.add_edges) {
    if (e.src >= new_n || e.dst >= new_n) {
      return Status::InvalidArgument("add_edges endpoint out of range");
    }
    if (e.label == kInvalidLabel) {
      return Status::InvalidArgument("add_edges label is invalid");
    }
    if (dead_before(e.src) || dead_before(e.dst)) {
      return Status::InvalidArgument(
          "add_edges endpoint is a removed vertex");
    }
  }
  for (const EdgeTriple& e : delta.remove_edges) {
    if (e.src >= new_n || e.dst >= new_n) {
      return Status::InvalidArgument("remove_edges endpoint out of range");
    }
  }

  GraphDeltaSummary summary;

  // ---- Stage 1: append vertices. ----
  vertex_labels_.reserve(new_n);
  for (Label l : delta.add_vertices) {
    summary.vertices_added.emplace_back(
        static_cast<VertexId>(vertex_labels_.size()), l);
    vertex_labels_.push_back(l);
  }

  // ---- Stages 2+3: net edge changes against the old adjacency. ----
  // Effective removals are edges actually present; effective additions are
  // edges absent or being removed in stage 2 (re-add). An edge in both
  // lists is a net no-op and cancels.
  std::vector<EdgeTriple> removes;
  for (const EdgeTriple& e : delta.remove_edges) {
    if (e.src < old_n && e.dst < old_n && HasEdge(e.src, e.dst, e.label)) {
      removes.push_back(e);
    }
  }
  SortUniqueOut(&removes);
  std::vector<EdgeTriple> adds;
  for (const EdgeTriple& e : delta.add_edges) {
    const bool present =
        e.src < old_n && e.dst < old_n && HasEdge(e.src, e.dst, e.label);
    const bool removed =
        std::binary_search(removes.begin(), removes.end(), e, OutOrder);
    if (!present || removed) adds.push_back(e);
  }
  SortUniqueOut(&adds);
  {
    std::vector<EdgeTriple> net_removes, net_adds;
    std::set_difference(removes.begin(), removes.end(), adds.begin(),
                        adds.end(), std::back_inserter(net_removes), OutOrder);
    std::set_difference(adds.begin(), adds.end(), removes.begin(),
                        removes.end(), std::back_inserter(net_adds), OutOrder);
    removes = std::move(net_removes);
    adds = std::move(net_adds);
  }

  // ---- Stage 4: tombstones drop their incident edges. ----
  std::vector<VertexId> dead;
  for (VertexId v : delta.remove_vertices) {
    if (vertex_labels_[v] != kInvalidLabel) dead.push_back(v);
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  if (!dead.empty()) {
    DynamicBitset dead_bits(new_n);
    for (VertexId v : dead) dead_bits.Set(v);
    // Additions into a tombstoned vertex never materialize.
    adds.erase(std::remove_if(adds.begin(), adds.end(),
                              [&](const EdgeTriple& e) {
                                return dead_bits.Test(e.src) ||
                                       dead_bits.Test(e.dst);
                              }),
               adds.end());
    for (VertexId v : dead) {
      summary.vertices_removed.emplace_back(v, vertex_labels_[v]);
      vertex_labels_[v] = kInvalidLabel;
      if (v >= old_n) continue;  // added this batch: no old edges
      for (const Neighbor& nbr : OutNeighbors(v)) {
        removes.push_back(EdgeTriple{v, nbr.v, nbr.label});
      }
      for (const Neighbor& nbr : InNeighbors(v)) {
        removes.push_back(EdgeTriple{nbr.v, v, nbr.label});
      }
    }
    SortUniqueOut(&removes);
  }
  summary.edges_added = adds;
  summary.edges_removed = removes;

  // ---- Rebuild only the touched CSR slices. ----
  const size_t new_m = out_nbrs_.size() + adds.size() - removes.size();
  auto rebuild_side = [&](std::vector<uint64_t>* offsets,
                          std::vector<Neighbor>* nbrs, bool out_side) {
    // Removals/additions per vertex, in this side's order.
    std::vector<EdgeTriple> side_adds = adds, side_removes = removes;
    if (!out_side) {
      std::sort(side_adds.begin(), side_adds.end(), InOrder);
      std::sort(side_removes.begin(), side_removes.end(), InOrder);
    }
    auto key = [out_side](const EdgeTriple& e) {
      return out_side ? e.src : e.dst;
    };
    auto other = [out_side](const EdgeTriple& e) {
      return out_side ? e.dst : e.src;
    };
    std::vector<uint64_t> new_offsets(new_n + 1, 0);
    std::vector<Neighbor> new_nbrs(new_m);
    size_t add_cur = 0, rem_cur = 0, write = 0;
    for (VertexId v = 0; v < new_n; ++v) {
      new_offsets[v] = write;
      const size_t add_begin = add_cur;
      while (add_cur < side_adds.size() && key(side_adds[add_cur]) == v) {
        ++add_cur;
      }
      const size_t rem_begin = rem_cur;
      while (rem_cur < side_removes.size() && key(side_removes[rem_cur]) == v) {
        ++rem_cur;
      }
      std::span<const Neighbor> old_slice;
      if (v < old_n) {
        old_slice = {nbrs->data() + (*offsets)[v],
                     (*offsets)[v + 1] - (*offsets)[v]};
      }
      if (add_begin == add_cur && rem_begin == rem_cur) {
        // Untouched: copy the old slice verbatim.
        std::copy(old_slice.begin(), old_slice.end(), new_nbrs.begin() + write);
        write += old_slice.size();
        continue;
      }
      // Merge: old entries minus removals, interleaved with additions.
      // All three sequences are in (label, endpoint) order.
      size_t rem_it = rem_begin, add_it = add_begin;
      for (const Neighbor& nbr : old_slice) {
        if (rem_it < rem_cur && side_removes[rem_it].label == nbr.label &&
            other(side_removes[rem_it]) == nbr.v) {
          ++rem_it;
          continue;
        }
        while (add_it < add_cur &&
               NbrOrder(Neighbor{other(side_adds[add_it]),
                                 side_adds[add_it].label},
                        nbr)) {
          new_nbrs[write++] =
              Neighbor{other(side_adds[add_it]), side_adds[add_it].label};
          ++add_it;
        }
        new_nbrs[write++] = nbr;
      }
      for (; add_it < add_cur; ++add_it) {
        new_nbrs[write++] =
            Neighbor{other(side_adds[add_it]), side_adds[add_it].label};
      }
    }
    new_offsets[new_n] = write;
    *offsets = std::move(new_offsets);
    *nbrs = std::move(new_nbrs);
  };
  rebuild_side(&out_offsets_, &out_nbrs_, /*out_side=*/true);
  rebuild_side(&in_offsets_, &in_nbrs_, /*out_side=*/false);

  // ---- Label index: rebuild when vertex membership or the label universe
  // changed; edge-only deltas leave it untouched. ----
  const size_t num_labels = dict_.size();
  if (!delta.add_vertices.empty() || !dead.empty() ||
      label_offsets_.size() != num_labels + 1) {
    label_offsets_.assign(num_labels + 1, 0);
    for (Label l : vertex_labels_) {
      if (l < num_labels) ++label_offsets_[l + 1];
    }
    for (size_t i = 0; i < num_labels; ++i) {
      label_offsets_[i + 1] += label_offsets_[i];
    }
    label_sorted_.resize(new_n);
    std::vector<uint64_t> cursor(label_offsets_.begin(),
                                 label_offsets_.end() - 1);
    size_t indexed = 0;
    for (VertexId v = 0; v < new_n; ++v) {
      Label l = vertex_labels_[v];
      if (l < num_labels) {
        label_sorted_[cursor[l]++] = v;
        ++indexed;
      }
    }
    label_sorted_.resize(indexed);
  }

  summary.version = ++version_;
  return summary;
}

Status Graph::ValidateInvariants() const {
  const size_t n = vertex_labels_.size();
  const size_t m = out_nbrs_.size();
  auto check_side = [&](const std::vector<uint64_t>& offsets,
                        const std::vector<Neighbor>& nbrs,
                        const char* side) -> Status {
    if (offsets.size() != n + 1 || offsets[0] != 0 || offsets[n] != m ||
        nbrs.size() != m) {
      return Status::Corruption(std::string(side) + " offsets inconsistent");
    }
    for (size_t v = 0; v < n; ++v) {
      if (offsets[v] > offsets[v + 1]) {
        return Status::Corruption(std::string(side) + " offsets not monotone");
      }
      for (size_t i = offsets[v]; i + 1 < offsets[v + 1]; ++i) {
        if (!NbrOrder(nbrs[i], nbrs[i + 1]) && !(nbrs[i] == nbrs[i + 1])) {
          return Status::Corruption(std::string(side) +
                                    " slice not sorted by (label, id)");
        }
        if (nbrs[i] == nbrs[i + 1]) {
          return Status::Corruption(std::string(side) +
                                    " slice has duplicate entry");
        }
      }
      for (size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        if (nbrs[i].v >= n) {
          return Status::Corruption(std::string(side) +
                                    " endpoint out of range");
        }
      }
    }
    return Status::Ok();
  };
  if (Status s = check_side(out_offsets_, out_nbrs_, "out"); !s.ok()) return s;
  if (Status s = check_side(in_offsets_, in_nbrs_, "in"); !s.ok()) return s;

  // Out/in mirror: every out-edge appears exactly once in the in-list of
  // its destination (sizes match, so one direction suffices).
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nbr : OutNeighbors(v)) {
      std::span<const Neighbor> in = InNeighbors(nbr.v);
      if (!std::binary_search(in.begin(), in.end(),
                              Neighbor{v, nbr.label}, NbrOrder)) {
        return Status::Corruption("out-edge missing from in-adjacency");
      }
    }
  }

  // Tombstones carry no edges.
  for (VertexId v = 0; v < n; ++v) {
    if (vertex_labels_[v] == kInvalidLabel &&
        (OutDegree(v) != 0 || InDegree(v) != 0)) {
      return Status::Corruption("tombstoned vertex has incident edges");
    }
  }

  // Label index: sized to the dict, rows sorted, and membership exactly
  // the vertices carrying each label.
  const size_t num_labels = dict_.size();
  if (label_offsets_.size() != num_labels + 1) {
    return Status::Corruption("label index not sized to dict");
  }
  std::vector<size_t> expected(num_labels, 0);
  for (Label l : vertex_labels_) {
    if (l < num_labels) ++expected[l];
  }
  for (size_t l = 0; l < num_labels; ++l) {
    std::span<const VertexId> row = VerticesWithLabel(static_cast<Label>(l));
    if (row.size() != expected[l]) {
      return Status::Corruption("label index row size mismatch");
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i + 1 < row.size() && row[i] >= row[i + 1]) {
        return Status::Corruption("label index row not ascending");
      }
      if (row[i] >= n || vertex_labels_[row[i]] != l) {
        return Status::Corruption("label index row has wrong member");
      }
    }
  }
  return Status::Ok();
}

bool ContentEquals(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges()) {
    return false;
  }
  if (a.dict().size() != b.dict().size()) return false;
  for (Label l = 0; l < a.dict().size(); ++l) {
    if (a.dict().Name(l) != b.dict().Name(l)) return false;
  }
  const size_t n = a.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (a.vertex_label(v) != b.vertex_label(v)) return false;
    std::span<const Neighbor> ao = a.OutNeighbors(v), bo = b.OutNeighbors(v);
    if (!std::equal(ao.begin(), ao.end(), bo.begin(), bo.end())) return false;
    std::span<const Neighbor> ai = a.InNeighbors(v), bi = b.InNeighbors(v);
    if (!std::equal(ai.begin(), ai.end(), bi.begin(), bi.end())) return false;
  }
  for (Label l = 0; l < a.dict().size(); ++l) {
    std::span<const VertexId> al = a.VerticesWithLabel(l),
                              bl = b.VerticesWithLabel(l);
    if (!std::equal(al.begin(), al.end(), bl.begin(), bl.end())) return false;
  }
  return true;
}

}  // namespace qgp
