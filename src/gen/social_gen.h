#ifndef QGP_GEN_SOCIAL_GEN_H_
#define QGP_GEN_SOCIAL_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace qgp {

/// Pokec-substitute social graph generator (DESIGN.md §3).
///
/// Node labels: person, product, album, club, hobby, city.
/// Edge labels: follow, like, recom, bad_rating, in, lives_in, has_hobby,
/// buy, post.
///
/// Users belong to communities; follows are mostly intra-community with
/// Zipf-skewed popularity, and each community has favourite products /
/// albums / hobbies that most members recommend or like. Those
/// correlations are what give counting quantifiers ("≥ 80% of followees
/// like album y") non-trivial answer sets, mirroring the homophily that
/// the paper's social-marketing rules exploit in Pokec.
struct SocialConfig {
  size_t num_users = 20000;
  size_t num_products = 200;
  size_t num_albums = 100;
  size_t num_clubs = 50;
  size_t num_hobbies = 30;
  size_t num_cities = 40;
  size_t community_size = 500;

  double avg_follows = 8.0;       // mean follow out-degree (Zipf skewed)
  double intra_community = 0.8;   // fraction of follows inside community
  double recom_favorite = 0.6;    // P(member recommends community product)
  double like_favorite = 0.7;     // P(member likes community album)
  double buy_if_recom = 0.7;      // P(buy | recommended favourite)
  double bad_rating_prob = 0.05;  // P(bad rating on a random product)
  double random_recom = 0.1;      // P(extra recom of a random product)
  double club_member = 0.6;       // P(member joins the community club)
  double post_prob = 0.3;         // P(member posts about the favourite)

  uint64_t seed = 7;
};

/// Generates the social graph. Vertices [0, num_users) are persons.
Result<Graph> GenerateSocialGraph(const SocialConfig& config);

}  // namespace qgp

#endif  // QGP_GEN_SOCIAL_GEN_H_
