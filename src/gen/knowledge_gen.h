#ifndef QGP_GEN_KNOWLEDGE_GEN_H_
#define QGP_GEN_KNOWLEDGE_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace qgp {

/// YAGO2-substitute knowledge graph generator (DESIGN.md §3): a sparse,
/// label-selective entity graph of scientists, universities, prizes and
/// countries, supporting the paper's Q4/Q5/R7-style queries (professors,
/// PhD degrees, advisor lineages, prize winners, citizenship).
///
/// Node labels: scientist, university, prize, prof_title, phd_degree and
/// one label per country ("country0".."country<k-1>"; country0 plays the
/// role of the paper's UK).
/// Edge labels: advisor (advisor -> student), is_a (scientist ->
/// prof_title), has_degree (scientist -> phd_degree), citizen_of, won,
/// graduated_from, works_at, located_in.
struct KnowledgeConfig {
  size_t num_scientists = 20000;
  size_t num_universities = 200;
  size_t num_prizes = 40;
  size_t num_countries = 10;

  double professor_frac = 0.35;   // P(scientist is a professor)
  double phd_frac_prof = 0.85;    // P(PhD | professor)
  double phd_frac_other = 0.30;   // P(PhD | not professor)
  double avg_students = 3.0;      // advisees per professor (Zipf skewed)
  double prize_winner_frac = 0.05;
  double second_prize_frac = 0.5; // P(second prize | already won one)

  uint64_t seed = 11;
};

/// Generates the knowledge graph. Vertices [0, num_scientists) are
/// scientists.
Result<Graph> GenerateKnowledgeGraph(const KnowledgeConfig& config);

}  // namespace qgp

#endif  // QGP_GEN_KNOWLEDGE_GEN_H_
