#include "gen/knowledge_gen.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace qgp {

Result<Graph> GenerateKnowledgeGraph(const KnowledgeConfig& config) {
  if (config.num_scientists == 0) {
    return Status::InvalidArgument("knowledge graph needs >= 1 scientist");
  }
  if (config.num_universities == 0 || config.num_prizes == 0 ||
      config.num_countries == 0) {
    return Status::InvalidArgument("entity pools must be non-empty");
  }
  Rng rng(config.seed);
  GraphBuilder b;
  const Label scientist = b.InternLabel("scientist");
  const Label university = b.InternLabel("university");
  const Label prize = b.InternLabel("prize");
  const Label prof_title = b.InternLabel("prof_title");
  const Label phd_degree = b.InternLabel("phd_degree");
  const Label advisor = b.InternLabel("advisor");
  const Label is_a = b.InternLabel("is_a");
  const Label has_degree = b.InternLabel("has_degree");
  const Label citizen_of = b.InternLabel("citizen_of");
  const Label won = b.InternLabel("won");
  const Label graduated_from = b.InternLabel("graduated_from");
  const Label works_at = b.InternLabel("works_at");
  const Label located_in = b.InternLabel("located_in");

  const size_t n = config.num_scientists;
  std::vector<VertexId> people(n);
  for (size_t i = 0; i < n; ++i) people[i] = b.AddVertexWithLabel(scientist);
  std::vector<VertexId> universities(config.num_universities);
  for (auto& v : universities) v = b.AddVertexWithLabel(university);
  std::vector<VertexId> prizes(config.num_prizes);
  for (auto& v : prizes) v = b.AddVertexWithLabel(prize);
  const VertexId the_prof = b.AddVertexWithLabel(prof_title);
  const VertexId the_phd = b.AddVertexWithLabel(phd_degree);
  std::vector<VertexId> countries(config.num_countries);
  for (size_t c = 0; c < config.num_countries; ++c) {
    countries[c] =
        b.AddVertexWithLabel(b.InternLabel("country" + std::to_string(c)));
  }

  // Universities live in countries (Zipf: a few countries host most).
  for (VertexId u : universities) {
    QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
        u, countries[rng.NextZipf(countries.size(), 1.0)], located_in));
  }

  std::vector<char> is_prof(n, 0), has_phd(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const VertexId p = people[i];
    is_prof[i] = rng.NextBool(config.professor_frac);
    has_phd[i] =
        rng.NextBool(is_prof[i] ? config.phd_frac_prof : config.phd_frac_other);
    if (is_prof[i]) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(p, the_prof, is_a));
    }
    if (has_phd[i]) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(p, the_phd, has_degree));
    }
    QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
        p, countries[rng.NextZipf(countries.size(), 1.0)], citizen_of));
    QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
        p, universities[rng.NextZipf(universities.size(), 1.1)],
        graduated_from));
    if (is_prof[i]) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
          p, universities[rng.NextZipf(universities.size(), 1.1)], works_at));
    }
    if (rng.NextBool(config.prize_winner_frac)) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
          p, prizes[rng.NextZipf(prizes.size(), 1.0)], won));
      if (rng.NextBool(config.second_prize_frac)) {
        QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
            p, prizes[rng.NextUint64(prizes.size())], won));
      }
    }
  }

  // Advisor lineages: professors advise later-generation scientists.
  // advisor(x, z) reads "x advised z" (the paper's Q4 orientation).
  for (size_t i = 0; i < n; ++i) {
    if (!is_prof[i]) continue;
    size_t students = rng.NextZipf(
        static_cast<uint64_t>(std::max(1.0, 2 * config.avg_students)), 1.2);
    for (size_t s = 0; s < students; ++s) {
      // Students come from the "younger" half relative to the advisor
      // where possible, keeping lineages roughly acyclic.
      size_t lo = std::min(i + 1, n - 1);
      size_t target = lo + rng.NextUint64(n - lo);
      if (target == i) continue;
      QGP_RETURN_IF_ERROR(
          b.AddEdgeWithLabel(people[i], people[target], advisor));
    }
  }
  return std::move(b).Build();
}

}  // namespace qgp
