#include "gen/pattern_gen.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace qgp {

namespace {

// One sampled instance edge (graph vertices + edge label).
struct InstanceEdge {
  VertexId src;
  VertexId dst;
  Label label;
};

// Grows a connected instance subgraph of `want_nodes` vertices around a
// random seed by repeatedly following a random incident edge (either
// direction) from a random chosen vertex, then adds induced extra edges
// up to `want_edges`. Returns false when the region is too small.
bool SampleInstance(const Graph& g, size_t want_nodes, size_t want_edges,
                    Rng& rng, std::vector<VertexId>* nodes,
                    std::vector<InstanceEdge>* edges) {
  if (g.num_vertices() == 0) return false;
  // Prefer a well-connected seed: best of a few random probes.
  VertexId seed = static_cast<VertexId>(rng.NextUint64(g.num_vertices()));
  for (int probe = 0; probe < 4; ++probe) {
    VertexId v = static_cast<VertexId>(rng.NextUint64(g.num_vertices()));
    if (g.OutDegree(v) + g.InDegree(v) >
        g.OutDegree(seed) + g.InDegree(seed)) {
      seed = v;
    }
  }
  nodes->clear();
  edges->clear();
  nodes->push_back(seed);
  std::set<VertexId> chosen{seed};
  std::set<std::tuple<VertexId, VertexId, Label>> edge_set;

  size_t stall = 0;
  while (chosen.size() < want_nodes && stall < 64) {
    VertexId v = (*nodes)[rng.NextUint64(nodes->size())];
    std::span<const Neighbor> out = g.OutNeighbors(v);
    std::span<const Neighbor> in = g.InNeighbors(v);
    size_t total = out.size() + in.size();
    if (total == 0) {
      ++stall;
      continue;
    }
    size_t pick = rng.NextUint64(total);
    bool outgoing = pick < out.size();
    const Neighbor& n = outgoing ? out[pick] : in[pick - out.size()];
    if (chosen.count(n.v) != 0) {
      ++stall;
      continue;
    }
    chosen.insert(n.v);
    nodes->push_back(n.v);
    InstanceEdge e = outgoing ? InstanceEdge{v, n.v, n.label}
                              : InstanceEdge{n.v, v, n.label};
    if (edge_set.insert({e.src, e.dst, e.label}).second) edges->push_back(e);
    stall = 0;
  }
  if (chosen.size() < want_nodes) return false;

  // Extra edges: any induced edges among chosen vertices.
  std::vector<InstanceEdge> extras;
  for (VertexId v : *nodes) {
    for (const Neighbor& n : g.OutNeighbors(v)) {
      if (chosen.count(n.v) == 0) continue;
      if (edge_set.count({v, n.v, n.label}) != 0) continue;
      extras.push_back(InstanceEdge{v, n.v, n.label});
    }
  }
  rng.Shuffle(extras);
  for (const InstanceEdge& e : extras) {
    if (edges->size() >= want_edges) break;
    if (edge_set.insert({e.src, e.dst, e.label}).second) edges->push_back(e);
  }
  return edges->size() >= std::min(want_edges, want_nodes - 1);
}

}  // namespace

Result<Pattern> GeneratePattern(const Graph& g,
                                const std::vector<EdgeFeature>& features,
                                const PatternGenConfig& config, Rng& rng) {
  if (config.num_nodes < 2) {
    return Status::InvalidArgument("pattern generator needs >= 2 nodes");
  }
  Status last_error = Status::Internal("pattern generation failed");
  for (size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
    std::vector<VertexId> inst_nodes;
    std::vector<InstanceEdge> inst_edges;
    if (!SampleInstance(g, config.num_nodes, config.num_edges, rng,
                        &inst_nodes, &inst_edges)) {
      continue;
    }
    Pattern q;
    std::map<VertexId, PatternNodeId> to_pattern;
    for (size_t i = 0; i < inst_nodes.size(); ++i) {
      to_pattern[inst_nodes[i]] =
          q.AddNode(g.vertex_label(inst_nodes[i]), "n" + std::to_string(i));
    }
    (void)q.set_focus(to_pattern[inst_nodes[0]]);
    for (const InstanceEdge& e : inst_edges) {
      QGP_RETURN_IF_ERROR(
          q.AddEdge(to_pattern[e.src], to_pattern[e.dst], e.label));
    }

    // Quantifiers: prefer edges leaving the focus (star-like workloads,
    // §7), then any other positive edge; never exceed the path budget.
    Quantifier quant =
        config.kind == QuantKind::kRatio
            ? Quantifier::Ratio(config.op, config.percent)
            : Quantifier::Numeric(config.op, config.count);
    std::vector<PatternEdgeId> order;
    for (PatternEdgeId e : q.OutEdgeIds(q.focus())) order.push_back(e);
    for (PatternEdgeId e = 0; e < q.num_edges(); ++e) {
      if (q.edge(e).src != q.focus()) order.push_back(e);
    }
    size_t placed = 0;
    for (PatternEdgeId e : order) {
      if (placed >= config.num_quantified) break;
      Pattern trial = q;
      // Rebuild with the quantifier on edge e.
      Pattern next;
      for (PatternNodeId u = 0; u < q.num_nodes(); ++u) {
        next.AddNode(q.node(u).label, q.node(u).name);
      }
      for (PatternEdgeId e2 = 0; e2 < q.num_edges(); ++e2) {
        const PatternEdge& pe = q.edge(e2);
        QGP_RETURN_IF_ERROR(next.AddEdge(pe.src, pe.dst, pe.label,
                                         e2 == e ? quant : pe.quantifier));
      }
      (void)next.set_focus(q.focus());
      if (next.Validate(config.max_quantified_per_path).ok()) {
        q = std::move(next);
        ++placed;
      }
    }
    if (placed < std::min(config.num_quantified, q.num_edges())) continue;

    // Negated edges.
    size_t negated = 0;
    for (size_t k = 0; k < config.num_negated * 4 && negated < config.num_negated;
         ++k) {
      Pattern trial = q;
      bool fresh_node = rng.NextBool(0.6) && !features.empty();
      if (fresh_node) {
        // Attach a new node to the focus via a frequent feature whose
        // source label matches the focus (Q3-style negation).
        std::vector<const EdgeFeature*> applicable;
        for (const EdgeFeature& f : features) {
          if (f.src_label == q.node(q.focus()).label) {
            applicable.push_back(&f);
          }
        }
        if (applicable.empty()) continue;
        const EdgeFeature& f =
            *applicable[rng.NextUint64(applicable.size())];
        PatternNodeId w = trial.AddNode(
            f.dst_label, "neg" + std::to_string(negated));
        QGP_RETURN_IF_ERROR(trial.AddEdge(trial.focus(), w, f.edge_label,
                                          Quantifier::Negation()));
      } else {
        // Negate a random existing existential edge.
        std::vector<PatternEdgeId> candidates;
        for (PatternEdgeId e = 0; e < q.num_edges(); ++e) {
          if (q.edge(e).quantifier.IsExistential()) candidates.push_back(e);
        }
        if (candidates.empty()) continue;
        PatternEdgeId e = candidates[rng.NextUint64(candidates.size())];
        Pattern next;
        for (PatternNodeId u = 0; u < q.num_nodes(); ++u) {
          next.AddNode(q.node(u).label, q.node(u).name);
        }
        for (PatternEdgeId e2 = 0; e2 < q.num_edges(); ++e2) {
          const PatternEdge& pe = q.edge(e2);
          QGP_RETURN_IF_ERROR(next.AddEdge(
              pe.src, pe.dst, pe.label,
              e2 == e ? Quantifier::Negation() : pe.quantifier));
        }
        (void)next.set_focus(q.focus());
        trial = std::move(next);
      }
      Status vs = trial.Validate(config.max_quantified_per_path);
      if (!vs.ok()) {
        last_error = vs;
        continue;
      }
      // Π(Q) must keep at least two nodes to stay a meaningful pattern.
      auto pi = trial.Pi();
      if (!pi.ok() || pi.value().first.num_nodes() < 2) continue;
      q = std::move(trial);
      ++negated;
    }
    if (negated < config.num_negated) continue;

    Status vs = q.Validate(config.max_quantified_per_path);
    if (!vs.ok()) {
      last_error = vs;
      continue;
    }
    return q;
  }
  return last_error;
}

std::vector<Pattern> GeneratePatternSuite(const Graph& g, size_t count,
                                          const PatternGenConfig& config,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeFeature> features = MineEdgeFeatures(g, 24);
  std::vector<Pattern> suite;
  for (size_t i = 0; i < count * 4 && suite.size() < count; ++i) {
    Result<Pattern> p = GeneratePattern(g, features, config, rng);
    if (p.ok()) suite.push_back(std::move(p).value());
  }
  return suite;
}

}  // namespace qgp
