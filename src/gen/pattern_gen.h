#ifndef QGP_GEN_PATTERN_GEN_H_
#define QGP_GEN_PATTERN_GEN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/pattern.h"
#include "gen/frequent_features.h"
#include "graph/graph.h"

namespace qgp {

/// Workload generator replicating §7's methodology: stratified patterns
/// are grown from actual graph instances (so Π(Q) has witnesses), sized
/// by (|VQ|, |EQ|); positive quantifiers σ(e) >= p% are placed on edges
/// near the focus; |E−Q| negated edges are then attached.
struct PatternGenConfig {
  size_t num_nodes = 5;
  size_t num_edges = 7;

  /// Quantifier placement.
  size_t num_quantified = 2;
  QuantKind kind = QuantKind::kRatio;  // kRatio (p%) or kNumeric (p)
  QuantOp op = QuantOp::kGe;
  double percent = 30.0;  // pa for ratio quantifiers
  uint32_t count = 2;     // p for numeric quantifiers

  /// Negated edges. Each either attaches a fresh node to the focus via a
  /// frequent edge feature (Q3-style, exercising IncQMatch's ΔE with new
  /// nodes) or negates an existing edge, chosen at random.
  size_t num_negated = 1;

  int max_quantified_per_path = 2;
  size_t max_attempts = 64;
};

/// Generates one pattern. `features` should come from MineEdgeFeatures on
/// the same graph (used for negated-edge labels); may be empty, in which
/// case negated edges reuse labels present in the sampled instance.
Result<Pattern> GeneratePattern(const Graph& g,
                                const std::vector<EdgeFeature>& features,
                                const PatternGenConfig& config, Rng& rng);

/// Generates up to `count` patterns (best effort: graphs with tiny label
/// diversity may yield fewer). Deterministic under `seed`.
std::vector<Pattern> GeneratePatternSuite(const Graph& g, size_t count,
                                          const PatternGenConfig& config,
                                          uint64_t seed);

}  // namespace qgp

#endif  // QGP_GEN_PATTERN_GEN_H_
