#include "gen/social_gen.h"

#include <algorithm>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace qgp {

Result<Graph> GenerateSocialGraph(const SocialConfig& config) {
  if (config.num_users == 0) {
    return Status::InvalidArgument("social graph needs >= 1 user");
  }
  if (config.num_products == 0 || config.num_albums == 0 ||
      config.num_clubs == 0 || config.num_hobbies == 0 ||
      config.num_cities == 0) {
    return Status::InvalidArgument("entity pools must be non-empty");
  }
  Rng rng(config.seed);
  GraphBuilder b;
  const Label person = b.InternLabel("person");
  const Label product = b.InternLabel("product");
  const Label album = b.InternLabel("album");
  const Label club = b.InternLabel("club");
  const Label hobby = b.InternLabel("hobby");
  const Label city = b.InternLabel("city");
  const Label follow = b.InternLabel("follow");
  const Label like = b.InternLabel("like");
  const Label recom = b.InternLabel("recom");
  const Label bad_rating = b.InternLabel("bad_rating");
  const Label in_club = b.InternLabel("in");
  const Label lives_in = b.InternLabel("lives_in");
  const Label has_hobby = b.InternLabel("has_hobby");
  const Label buy = b.InternLabel("buy");
  const Label post = b.InternLabel("post");

  const size_t n = config.num_users;
  std::vector<VertexId> users(n);
  for (size_t i = 0; i < n; ++i) users[i] = b.AddVertexWithLabel(person);
  std::vector<VertexId> products(config.num_products);
  for (auto& v : products) v = b.AddVertexWithLabel(product);
  std::vector<VertexId> albums(config.num_albums);
  for (auto& v : albums) v = b.AddVertexWithLabel(album);
  std::vector<VertexId> clubs(config.num_clubs);
  for (auto& v : clubs) v = b.AddVertexWithLabel(club);
  std::vector<VertexId> hobbies(config.num_hobbies);
  for (auto& v : hobbies) v = b.AddVertexWithLabel(hobby);
  std::vector<VertexId> cities(config.num_cities);
  for (auto& v : cities) v = b.AddVertexWithLabel(city);

  const size_t csize = std::max<size_t>(2, config.community_size);
  const size_t num_comm = (n + csize - 1) / csize;
  auto community_of = [&](size_t user) { return user / csize; };
  auto community_begin = [&](size_t c) { return c * csize; };
  auto community_end = [&](size_t c) { return std::min(n, (c + 1) * csize); };

  // Community favourites.
  std::vector<VertexId> fav_product(num_comm), fav_album(num_comm),
      fav_hobby(num_comm), home_city(num_comm), home_club(num_comm);
  for (size_t c = 0; c < num_comm; ++c) {
    fav_product[c] = products[rng.NextUint64(products.size())];
    fav_album[c] = albums[rng.NextUint64(albums.size())];
    fav_hobby[c] = hobbies[rng.NextUint64(hobbies.size())];
    home_city[c] = cities[rng.NextUint64(cities.size())];
    home_club[c] = clubs[rng.NextUint64(clubs.size())];
  }

  for (size_t i = 0; i < n; ++i) {
    const size_t c = community_of(i);
    const size_t cb = community_begin(c), ce = community_end(c);
    const VertexId u = users[i];

    // Follows: Zipf out-degree, mostly intra-community, popularity-skewed
    // targets (low ranks inside the community are "influencers").
    size_t degree = 1 + rng.NextZipf(static_cast<uint64_t>(
                                         std::max(1.0, 2 * config.avg_follows)),
                                     1.3);
    for (size_t k = 0; k < degree; ++k) {
      size_t target;
      if (rng.NextBool(config.intra_community) && ce - cb > 1) {
        target = cb + rng.NextZipf(ce - cb, 1.1);
      } else {
        target = rng.NextZipf(n, 1.05);
      }
      if (target == i) target = (target + 1) % n;
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(u, users[target], follow));
    }

    // Community-correlated behaviour.
    bool recommends = rng.NextBool(config.recom_favorite);
    if (recommends) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(u, fav_product[c], recom));
      if (rng.NextBool(config.buy_if_recom)) {
        QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(u, fav_product[c], buy));
      }
    }
    if (rng.NextBool(config.like_favorite)) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(u, fav_album[c], like));
    }
    if (rng.NextBool(config.random_recom)) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
          u, products[rng.NextUint64(products.size())], recom));
    }
    if (rng.NextBool(config.bad_rating_prob)) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
          u, products[rng.NextUint64(products.size())], bad_rating));
    }
    if (rng.NextBool(config.club_member)) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(u, home_club[c], in_club));
    } else if (rng.NextBool(0.3)) {
      QGP_RETURN_IF_ERROR(
          b.AddEdgeWithLabel(u, clubs[rng.NextUint64(clubs.size())], in_club));
    }
    QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
        u,
        rng.NextBool(0.85) ? home_city[c]
                           : cities[rng.NextUint64(cities.size())],
        lives_in));
    QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(
        u,
        rng.NextBool(0.6) ? fav_hobby[c]
                          : hobbies[rng.NextUint64(hobbies.size())],
        has_hobby));
    if (rng.NextBool(config.post_prob)) {
      QGP_RETURN_IF_ERROR(b.AddEdgeWithLabel(u, fav_product[c], post));
    }
  }
  return std::move(b).Build();
}

}  // namespace qgp
