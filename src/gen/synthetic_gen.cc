#include "gen/synthetic_gen.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace qgp {

Result<Graph> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_vertices == 0) {
    return Status::InvalidArgument("synthetic graph needs >= 1 vertex");
  }
  if (config.num_node_labels == 0 || config.num_edge_labels == 0) {
    return Status::InvalidArgument("label alphabets must be non-empty");
  }
  Rng rng(config.seed);
  GraphBuilder builder;

  std::vector<Label> node_labels(config.num_node_labels);
  for (size_t i = 0; i < config.num_node_labels; ++i) {
    node_labels[i] = builder.InternLabel("nl" + std::to_string(i));
  }
  std::vector<Label> edge_labels(config.num_edge_labels);
  for (size_t i = 0; i < config.num_edge_labels; ++i) {
    edge_labels[i] = builder.InternLabel("el" + std::to_string(i));
  }
  auto pick_node_label = [&]() {
    if (config.label_zipf <= 0) {
      return node_labels[rng.NextUint64(node_labels.size())];
    }
    return node_labels[rng.NextZipf(node_labels.size(), config.label_zipf)];
  };
  auto pick_edge_label = [&]() {
    if (config.label_zipf <= 0) {
      return edge_labels[rng.NextUint64(edge_labels.size())];
    }
    return edge_labels[rng.NextZipf(edge_labels.size(), config.label_zipf)];
  };

  const size_t n = config.num_vertices;
  for (size_t i = 0; i < n; ++i) builder.AddVertexWithLabel(pick_node_label());

  const size_t m = config.num_edges;
  if (config.model == SyntheticConfig::Model::kSmallWorld) {
    // Ring lattice: each vertex points at its k clockwise successors,
    // each edge rewired to a uniform target with probability rewire_prob.
    size_t k = std::max<size_t>(1, m / n);
    size_t emitted = 0;
    for (size_t i = 0; i < n && emitted < m; ++i) {
      for (size_t j = 1; j <= k && emitted < m; ++j) {
        VertexId src = static_cast<VertexId>(i);
        VertexId dst = static_cast<VertexId>((i + j) % n);
        if (rng.NextBool(config.rewire_prob)) {
          dst = static_cast<VertexId>(rng.NextUint64(n));
        }
        if (dst == src) dst = static_cast<VertexId>((dst + 1) % n);
        QGP_RETURN_IF_ERROR(
            builder.AddEdgeWithLabel(src, dst, pick_edge_label()));
        ++emitted;
      }
    }
    // Top up (rounding may have left a remainder).
    while (emitted < m) {
      VertexId src = static_cast<VertexId>(rng.NextUint64(n));
      VertexId dst = static_cast<VertexId>(rng.NextUint64(n));
      if (src == dst) continue;
      QGP_RETURN_IF_ERROR(
          builder.AddEdgeWithLabel(src, dst, pick_edge_label()));
      ++emitted;
    }
  } else {
    // Preferential attachment flavored with Zipf target sampling: low
    // vertex ids accumulate high in-degree, yielding scale-free skew.
    for (size_t i = 0; i < m; ++i) {
      VertexId src = static_cast<VertexId>(rng.NextUint64(n));
      VertexId dst =
          static_cast<VertexId>(rng.NextZipf(n, config.zipf_exponent));
      if (src == dst) dst = static_cast<VertexId>((dst + 1) % n);
      QGP_RETURN_IF_ERROR(
          builder.AddEdgeWithLabel(src, dst, pick_edge_label()));
    }
  }
  return std::move(builder).Build();
}

}  // namespace qgp
