#ifndef QGP_GEN_FREQUENT_FEATURES_H_
#define QGP_GEN_FREQUENT_FEATURES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace qgp {

/// A frequent single-edge feature: a (source label, edge label, target
/// label) triple with its occurrence count. The §7 pattern generator
/// seeds stratified patterns from the top features, and the QGAR miner
/// uses them as candidate consequent edges.
struct EdgeFeature {
  Label src_label = kInvalidLabel;
  Label edge_label = kInvalidLabel;
  Label dst_label = kInvalidLabel;
  uint64_t count = 0;
};

/// A frequent labeled path of up to 3 edges (node label sequence plus
/// edge label sequence), estimated by random-walk sampling.
struct PathFeature {
  std::vector<Label> node_labels;  // length k+1
  std::vector<Label> edge_labels;  // length k
  uint64_t count = 0;
};

/// Exact edge-feature counts via one CSR scan, descending by count.
std::vector<EdgeFeature> MineEdgeFeatures(const Graph& g, size_t top_k);

/// Path features of `length` in {1,2,3}, estimated from `samples` random
/// walks (deterministic under `seed`), descending by sampled count.
std::vector<PathFeature> MinePathFeatures(const Graph& g, size_t length,
                                          size_t top_k, size_t samples,
                                          uint64_t seed);

}  // namespace qgp

#endif  // QGP_GEN_FREQUENT_FEATURES_H_
