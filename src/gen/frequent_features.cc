#include "gen/frequent_features.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/rng.h"

namespace qgp {

std::vector<EdgeFeature> MineEdgeFeatures(const Graph& g, size_t top_k) {
  std::map<std::tuple<Label, Label, Label>, uint64_t> counts;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Label sl = g.vertex_label(v);
    for (const Neighbor& n : g.OutNeighbors(v)) {
      ++counts[{sl, n.label, g.vertex_label(n.v)}];
    }
  }
  std::vector<EdgeFeature> features;
  features.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    features.push_back(EdgeFeature{std::get<0>(key), std::get<1>(key),
                                   std::get<2>(key), count});
  }
  std::sort(features.begin(), features.end(),
            [](const EdgeFeature& a, const EdgeFeature& b) {
              return a.count > b.count;
            });
  if (features.size() > top_k) features.resize(top_k);
  return features;
}

std::vector<PathFeature> MinePathFeatures(const Graph& g, size_t length,
                                          size_t top_k, size_t samples,
                                          uint64_t seed) {
  std::vector<PathFeature> out;
  if (g.num_vertices() == 0 || length == 0 || length > 3) return out;
  Rng rng(seed);
  std::map<std::pair<std::vector<Label>, std::vector<Label>>, uint64_t>
      counts;
  for (size_t s = 0; s < samples; ++s) {
    VertexId v = static_cast<VertexId>(rng.NextUint64(g.num_vertices()));
    std::vector<Label> nodes{g.vertex_label(v)};
    std::vector<Label> edges;
    for (size_t step = 0; step < length; ++step) {
      std::span<const Neighbor> adj = g.OutNeighbors(v);
      if (adj.empty()) break;
      const Neighbor& n = adj[rng.NextUint64(adj.size())];
      edges.push_back(n.label);
      nodes.push_back(g.vertex_label(n.v));
      v = n.v;
    }
    if (edges.size() == length) ++counts[{nodes, edges}];
  }
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    out.push_back(PathFeature{key.first, key.second, count});
  }
  std::sort(out.begin(), out.end(),
            [](const PathFeature& a, const PathFeature& b) {
              return a.count > b.count;
            });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

}  // namespace qgp
