#ifndef QGP_GEN_SYNTHETIC_GEN_H_
#define QGP_GEN_SYNTHETIC_GEN_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace qgp {

/// GTgraph-style synthetic generator (§7: "based on GTgraph following the
/// small-world model"), with labels drawn from an alphabet of
/// `num_node_labels` / `num_edge_labels` (the paper uses |L| = 30).
struct SyntheticConfig {
  size_t num_vertices = 10000;
  size_t num_edges = 20000;
  size_t num_node_labels = 30;
  size_t num_edge_labels = 10;

  enum class Model {
    kSmallWorld,  // Watts–Strogatz ring lattice with rewiring
    kPowerLaw,    // preferential attachment (scale-free degrees)
  };
  Model model = Model::kSmallWorld;

  /// Small-world rewiring probability.
  double rewire_prob = 0.1;
  /// Power-law skew for preferential attachment target sampling.
  double zipf_exponent = 1.2;
  /// Zipf skew of label frequencies (0 = uniform labels).
  double label_zipf = 0.8;

  uint64_t seed = 42;
};

/// Generates a labeled directed graph per `config`. Node labels are
/// "nl<i>", edge labels "el<i>".
Result<Graph> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace qgp

#endif  // QGP_GEN_SYNTHETIC_GEN_H_
