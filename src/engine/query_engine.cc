#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/timer.h"
#include "core/enum_matcher.h"
#include "core/qmatch.h"
#include "parallel/dpar.h"
#include "parallel/penum.h"
#include "parallel/pqmatch.h"

namespace qgp {

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::shared_ptr<const Graph> BorrowGraph(const Graph* graph) {
  // Aliasing handle with a no-op deleter: the engine machinery uniformly
  // holds a shared_ptr, the caller keeps ownership and must outlive us.
  return std::shared_ptr<const Graph>(graph, [](const Graph*) {});
}

// Canonical result-cache key. Deliberately NOT PatternParser::Serialize:
// that renders node names, and two distinct patterns can share names.
// Numeric node ids + label ids + quantifier text identify the structure
// exactly; the algorithm and every answer/work-relevant MatchOptions
// field are folded in because a stored outcome replays the original
// run's MatchStats, which the option toggles change (answers never
// depend on them, stats do). scheduler_grain is deliberately NOT keyed:
// it moves only the scheduler telemetry, which the determinism contract
// already excludes — and the planner's grain fill must not unshare an
// auto query from the manual submission it resolved to.
// Keyed on the EFFECTIVE algo/options — post-planner, never the
// submitted spec — so two auto specs whose plans diverge (e.g. before
// and after a delta shifts statistics) land on distinct entries, and an
// auto query shares its entry with the manual submission it resolved to.
std::string ResultKey(EngineAlgo algo, const MatchOptions& o,
                      const Pattern& q) {
  std::ostringstream key;
  key << EngineAlgoName(algo) << '|' << o.use_simulation
      << o.use_quantifier_pruning << o.use_potential_ordering
      << o.early_stop_counting << o.use_incremental_negation << '|'
      << o.max_quantified_per_path << '|' << o.max_isomorphisms << '|'
      << o.ball_limit << '|';
  for (PatternNodeId u = 0; u < q.num_nodes(); ++u) {
    key << 'n' << q.node(u).label << ';';
  }
  for (PatternEdgeId e = 0; e < q.num_edges(); ++e) {
    const PatternEdge& pe = q.edge(e);
    key << 'e' << pe.src << ',' << pe.dst << ',' << pe.label << ','
        << pe.quantifier.ToString() << ';';
  }
  key << 'f' << q.focus();
  return std::move(key).str();
}

/// Normalizes EngineOptions::focus_subset: sorted, deduplicated, ids
/// outside the graph dropped (they could never be answers). Engaged vs
/// disengaged is preserved — an engaged set that ends up empty still
/// means "owns nothing", not "all foci".
void NormalizeFocusSubset(std::optional<std::vector<VertexId>>& subset,
                          size_t num_vertices) {
  if (!subset.has_value()) return;
  std::sort(subset->begin(), subset->end());
  subset->erase(std::unique(subset->begin(), subset->end()), subset->end());
  while (!subset->empty() && subset->back() >= num_vertices) {
    subset->pop_back();
  }
}

/// Enum over a focus subset: Π(Q) restricted to the subset, minus each
/// Π(Q⁺ᵉ) re-enumerated over the same subset — the PEnum per-fragment
/// recipe (parallel/penum.cc), here running against the engine's shared
/// intern pool instead of a fresh per-fragment one (warm sets are equal
/// by value, so answers and work counters match either way).
Result<AnswerSet> EnumSubset(const Pattern& pattern, const Graph& g,
                             std::span<const VertexId> subset,
                             const MatchOptions& options, MatchStats* stats,
                             CandidateCache* shared_cache) {
  QGP_RETURN_IF_ERROR(pattern.Validate(options.max_quantified_per_path));
  auto pi = pattern.Pi();
  if (!pi.ok()) return pi.status();
  std::optional<CandidateCache> local;
  CandidateCache* cache =
      shared_cache != nullptr ? shared_cache : &local.emplace(g);
  QGP_ASSIGN_OR_RETURN(
      AnswerSet answers,
      EnumMatcher::EvaluatePositive(pi.value().first, g, options, stats,
                                    subset, cache));
  for (PatternEdgeId e : pattern.NegatedEdgeIds()) {
    QGP_ASSIGN_OR_RETURN(Pattern positified, pattern.Positify(e));
    auto pi_pos = positified.Pi();
    if (!pi_pos.ok()) return pi_pos.status();
    QGP_ASSIGN_OR_RETURN(
        AnswerSet negative,
        EnumMatcher::EvaluatePositive(pi_pos.value().first, g, options,
                                      stats, subset, cache));
    answers = SetDifference(answers, negative);
  }
  return answers;
}

}  // namespace

const char* EngineAlgoName(EngineAlgo algo) {
  switch (algo) {
    case EngineAlgo::kQMatch:
      return "qmatch";
    case EngineAlgo::kQMatchn:
      return "qmatchn";
    case EngineAlgo::kEnum:
      return "enum";
    case EngineAlgo::kPQMatch:
      return "pqmatch";
    case EngineAlgo::kPEnum:
      return "penum";
    case EngineAlgo::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<EngineAlgo> ParseEngineAlgo(std::string_view name) {
  if (name == "qmatch") return EngineAlgo::kQMatch;
  if (name == "qmatchn") return EngineAlgo::kQMatchn;
  if (name == "enum") return EngineAlgo::kEnum;
  if (name == "pqmatch") return EngineAlgo::kPQMatch;
  if (name == "penum") return EngineAlgo::kPEnum;
  if (name == "auto") return EngineAlgo::kAuto;
  return std::nullopt;
}

QueryEngine::QueryEngine(Graph graph, const EngineOptions& options)
    : owned_graph_(std::make_shared<Graph>(std::move(graph))),
      graph_(owned_graph_),
      options_(options),
      pool_(std::make_unique<ThreadPool>(ResolveThreads(options.num_threads))),
      cache_(*graph_) {
  NormalizeFocusSubset(options_.focus_subset, graph_->num_vertices());
  version_.store(graph_->version(), std::memory_order_release);
}

QueryEngine::QueryEngine(const Graph* graph, const EngineOptions& options)
    : graph_(BorrowGraph(graph)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(ResolveThreads(options.num_threads))),
      cache_(*graph_) {
  NormalizeFocusSubset(options_.focus_subset, graph_->num_vertices());
  version_.store(graph_->version(), std::memory_order_release);
}

Result<QueryOutcome> QueryEngine::Submit(const QuerySpec& spec) {
  QGP_FAILPOINT("engine.submit");
  std::lock_guard<std::timed_mutex> lock(admission_mu_);
  return SubmitAdmitted(spec);
}

Result<std::vector<QueryOutcome>> QueryEngine::RunBatch(
    std::span<const QuerySpec> specs) {
  QGP_FAILPOINT("engine.submit");
  std::lock_guard<std::timed_mutex> lock(admission_mu_);
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(specs.size());
  for (const QuerySpec& spec : specs) {
    QGP_ASSIGN_OR_RETURN(QueryOutcome outcome, SubmitAdmitted(spec));
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

Result<QueryOutcome> QueryEngine::SubmitAdmitted(const QuerySpec& spec) {
  QueryOutcome outcome;
  outcome.tag = spec.tag;
  const uint64_t current_version = graph_->version();
  // Deadline enforcement: arm a token over the evaluation, chained to
  // any caller-provided one (whichever fires first wins). The clock
  // starts here — at admission — so timeout_ms budgets the evaluation
  // itself, not the admission queue (see QuerySpec::timeout_ms).
  std::optional<CancelToken> deadline_token;
  if (spec.timeout_ms > 0) {
    deadline_token.emplace(
        CancelToken::Clock::now() +
            std::chrono::milliseconds(spec.timeout_ms),
        spec.options.cancel);
  }
  const CancelToken* cancel_armed =
      deadline_token.has_value() ? &*deadline_token : spec.options.cancel;
  // No-cache-poisoning bracket: remember the candidate-cache admission
  // epoch before any of this run's work (the planner's cardinality probe
  // included) so a cancelled unwind can roll its insertions back.
  const uint64_t cache_mark = (cancel_armed != nullptr && spec.share_cache)
                                  ? cache_.MarkEpoch()
                                  : 0;
  // Resolve the matcher FIRST: everything downstream — result-cache key,
  // repair key, dispatch — speaks the effective algorithm and options,
  // never the submitted spec. An unset spec algo falls back to the
  // engine default; auto (from either) hands the choice to the planner.
  const CandidateCache::Stats cache_before = cache_.stats();
  const EngineAlgo requested = spec.algo.value_or(options_.default_algo);
  EngineAlgo effective = requested;
  MatchOptions effective_options = spec.options;
  if (requested == EngineAlgo::kAuto) {
    Planner::Context ctx;
    ctx.graph = graph_.get();
    ctx.cache = spec.share_cache ? &cache_ : nullptr;
    ctx.graph_version = current_version;
    ctx.num_threads = pool_->num_threads();
    ctx.partition_fragments = options_.partition_fragments;
    ctx.partition_d = options_.partition_d;
    const PlanDecision plan = planner_.Plan(spec.pattern, spec.options, ctx);
    effective = plan.algo;
    effective_options = plan.options;
    outcome.plan_cache_hit = plan.cache_hit;
    std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
    if (plan.cache_hit) {
      ++stats_.plan_hits;
    } else {
      ++stats_.plans_built;
    }
  }
  outcome.algo = effective;
  // The deadline token rides the effective options into every matcher
  // and cache build; a caller-provided token was already there (and is
  // now this token's parent).
  if (deadline_token.has_value()) effective_options.cancel = &*deadline_token;
  // Shard mode, engaged-but-empty subset: this engine owns no foci, so
  // every (valid) query answers with the empty set. Short-circuited
  // HERE because the lower-level subset entry points read an empty span
  // as "all candidates" (EnumMatcher::EvaluatePositive) — the opposite
  // meaning. Mirrors the parallel workers' empty-fragment skip: zero
  // work counters, nothing admitted into any cache.
  if (options_.focus_subset.has_value() && options_.focus_subset->empty()) {
    const Status valid =
        spec.pattern.Validate(effective_options.max_quantified_per_path);
    if (!valid.ok()) {
      AccountAndShedPressure(outcome, /*failed=*/true, valid.code());
      return valid;
    }
    AccountAndShedPressure(outcome, /*failed=*/false);
    return outcome;
  }
  // Result-cache probe: a repeat of an answered query is served from
  // memory, replaying the original answers and work counters. Queries
  // that bypass the shared state (share_cache = false) neither probe
  // nor populate.
  const bool use_results = options_.enable_result_cache && spec.share_cache;
  std::string result_key;
  if (use_results) {
    result_key = ResultKey(effective, effective_options, spec.pattern);
    WallTimer hit_timer;
    {
      std::lock_guard<std::mutex> results_lock(results_mu_);
      auto it = results_.find(result_key);
      if (it != results_.end() && it->second.version == current_version) {
        lru_.splice(lru_.begin(), lru_, it->second.lru);  // refresh LRU
        outcome.answers = it->second.answers;
        outcome.stats = it->second.stats;
        outcome.result_cache_hit = true;
      } else if (it != results_.end()) {
        // Stale stamp: ApplyDelta's sweep already removes these; the
        // probe guard makes staleness impossible to serve regardless.
        lru_.erase(it->second.lru);
        results_.erase(it);
      }
    }
    if (outcome.result_cache_hit) {
      outcome.wall_ms = hit_timer.ElapsedSeconds() * 1000.0;
      std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
      ++stats_.queries;
      ++stats_.result_hits;
      stats_.match.Add(outcome.stats);
      stats_.wall_ms += outcome.wall_ms;
      return outcome;
    }
    // The miss is counted at the store point below: failed evaluations
    // are never cacheable, so they should not drag ResultHitRatio down.
  }
  CandidateCache* cache = spec.share_cache ? &cache_ : nullptr;
  WallTimer timer;
  Result<AnswerSet> answers = Status::Ok();
  // Delta-repair fast path: a positive qmatch/qmatchn query whose
  // artifacts we stored at an earlier graph version is re-answered by
  // repairing its candidate space and re-verifying only affected foci.
  // Negated patterns are ineligible (every positified subtrahend would
  // need re-evaluation anyway), as are cache-bypassing specs.
  // Under a shard focus subset the repair path is disabled too: the
  // subset entry points carry no repair artifacts, and a stored
  // full-graph seed would repair to the UNRESTRICTED answer set.
  const bool repair_eligible =
      options_.enable_delta_repair && spec.share_cache &&
      (effective == EngineAlgo::kQMatch ||
       effective == EngineAlgo::kQMatchn) &&
      spec.pattern.IsPositive() && !options_.focus_subset.has_value();
  QMatchArtifacts artifacts;
  QMatchArtifacts* artifacts_out = repair_eligible ? &artifacts : nullptr;
  std::string repair_key;
  bool repaired_now = false;
  if (repair_eligible) {
    repair_key = use_results
                     ? result_key
                     : ResultKey(effective, effective_options, spec.pattern);
    auto rit = repair_.find(repair_key);
    if (rit != repair_.end()) {
      std::optional<GraphDeltaSummary> composed =
          ComposeDeltasSince(rit->second.version);
      if (composed.has_value()) {
        MatchOptions opts = effective_options;
        if (effective == EngineAlgo::kQMatchn) {
          opts.use_incremental_negation = false;
        }
        bool fell_back = false;
        Result<AnswerSet> repaired = QMatch::EvaluateRepaired(
            spec.pattern, *graph_, opts, rit->second.space,
            rit->second.answers, *composed, &outcome.stats, pool_.get(),
            cache, artifacts_out, &fell_back);
        if (repaired.ok()) {
          answers = std::move(repaired);
          repaired_now = true;
          outcome.delta_repaired = true;
          std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
          if (fell_back) {
            ++stats_.repair_fallbacks;
          } else {
            ++stats_.repair_hits;
          }
        }
        // A repair error falls through to the full evaluation below.
      } else {
        // The delta log no longer reaches back to the stored version.
        std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
        ++stats_.repair_fallbacks;
      }
    }
  }
  if (!repaired_now) {
    // Shard mode: every sequential family evaluates only the owned foci
    // via the subset entry points (the empty-subset case short-circuited
    // above, so the span passed down here is always non-empty).
    const bool subset = options_.focus_subset.has_value();
    switch (effective) {
      case EngineAlgo::kQMatch:
        answers = subset
                      ? QMatch::EvaluateSubset(spec.pattern, *graph_,
                                               *options_.focus_subset,
                                               effective_options,
                                               &outcome.stats, pool_.get(),
                                               cache)
                      : QMatch::Evaluate(spec.pattern, *graph_,
                                         effective_options, &outcome.stats,
                                         pool_.get(), cache, artifacts_out);
        break;
      case EngineAlgo::kQMatchn: {
        MatchOptions naive = effective_options;
        naive.use_incremental_negation = false;
        answers = subset
                      ? QMatch::EvaluateSubset(spec.pattern, *graph_,
                                               *options_.focus_subset, naive,
                                               &outcome.stats, pool_.get(),
                                               cache)
                      : QMatch::Evaluate(spec.pattern, *graph_, naive,
                                         &outcome.stats, pool_.get(), cache,
                                         artifacts_out);
        break;
      }
      case EngineAlgo::kEnum:
        answers = subset ? EnumSubset(spec.pattern, *graph_,
                                      *options_.focus_subset,
                                      effective_options, &outcome.stats,
                                      cache)
                         : EnumMatcher::Evaluate(spec.pattern, *graph_,
                                                 effective_options,
                                                 &outcome.stats, cache);
        break;
      case EngineAlgo::kPQMatch:
      case EngineAlgo::kPEnum: {
        auto part = PartitionAdmitted();
        if (!part.ok()) {
          answers = part.status();
          break;
        }
        ParallelConfig config;
        config.mode = options_.partition_mode;
        config.threads_per_worker = options_.threads_per_worker;
        config.match = effective_options;
        Result<ParallelRunResult> run =
            effective == EngineAlgo::kPQMatch
                ? PQMatch::Evaluate(spec.pattern, **part, config)
                : PEnum::Evaluate(spec.pattern, **part, config);
        if (!run.ok()) {
          answers = run.status();
          break;
        }
        outcome.stats.Add(run->stats);
        answers = std::move(run->answers);
        if (subset) {
          // The nested partition evaluated ALL of this shard's vertices
          // as foci; only the owned ones are exact here (border
          // replicas' neighborhoods are incomplete in a fragment
          // graph), and only they belong to this shard's slice.
          answers = SetIntersection(answers.value(), *options_.focus_subset);
        }
        break;
      }
      case EngineAlgo::kAuto:
        // The planner never returns kAuto; reaching here is a logic bug.
        answers = Status::Internal("algo=auto was not resolved to a matcher");
        break;
    }
  }
  outcome.wall_ms = timer.ElapsedSeconds() * 1000.0;
  const CandidateCache::Stats cache_after = cache_.stats();
  outcome.cache_hits = cache_after.hits - cache_before.hits;
  outcome.cache_misses = cache_after.misses - cache_before.misses;
  if (!answers.ok()) {
    const StatusCode code = answers.status().code();
    if (code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled) {
      // No cache poisoning: a cancelled run admits nothing. Candidate
      // sets it interned are rolled back (they are complete by value,
      // but the invariant is "zero entries admitted by a timed-out
      // run", which makes cancellation perturbation-free and testable);
      // a plan it freshly built is forgotten so the family re-plans.
      // The result cache and repair store only ever store on success,
      // so they need no rollback.
      if (spec.share_cache) cache_.EvictInsertedSince(cache_mark);
      if (requested == EngineAlgo::kAuto && !outcome.plan_cache_hit) {
        planner_.Forget(spec.pattern);
      }
    }
    // Failures are load too: their wall time and cache traffic feed the
    // cumulative stats, and the pressure valve below still runs — an
    // error-heavy workload must neither under-report itself nor grow
    // the candidate cache past its bound.
    AccountAndShedPressure(outcome, /*failed=*/true, code);
    return answers.status();
  }
  outcome.answers = std::move(answers).value();
  AccountAndShedPressure(outcome, /*failed=*/false);
  if (repair_eligible) {
    // Store (or refresh) the repair seed at the current version. The
    // bound sheds an arbitrary entry — the store is a seed cache, not a
    // correctness structure, so any victim is acceptable.
    if (options_.repair_store_max_entries > 0 &&
        repair_.find(repair_key) == repair_.end() &&
        repair_.size() >= options_.repair_store_max_entries) {
      repair_.erase(repair_.begin());
    }
    repair_[std::move(repair_key)] = RepairEntry{
        std::move(artifacts.pi_space), outcome.answers, current_version};
  }
  if (use_results) {
    {
      std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
      ++stats_.result_misses;
    }
    std::lock_guard<std::mutex> results_lock(results_mu_);
    lru_.push_front(result_key);
    results_[std::move(result_key)] = ResultEntry{
        outcome.answers, outcome.stats, lru_.begin(), current_version};
    if (options_.result_cache_max_entries > 0 &&
        results_.size() > options_.result_cache_max_entries) {
      results_.erase(lru_.back());  // least recently used
      lru_.pop_back();
    }
  }
  return outcome;
}

Result<DeltaOutcome> QueryEngine::ApplyDelta(const GraphDelta& delta) {
  QGP_ASSIGN_OR_RETURN(std::unique_lock<std::timed_mutex> lock, AdmitDelta());
  return ApplyDeltaAdmitted(delta);
}

Result<DeltaOutcome> QueryEngine::ApplyDelta(const NamedGraphDelta& delta) {
  QGP_ASSIGN_OR_RETURN(std::unique_lock<std::timed_mutex> lock, AdmitDelta());
  if (owned_graph_ == nullptr) {
    return Status::InvalidArgument(
        "ApplyDelta requires an owning engine (this engine borrows its "
        "graph)");
  }
  return ApplyDeltaAdmitted(
      ResolveDelta(delta, &owned_graph_->mutable_dict()));
}

Result<DeltaOutcome> QueryEngine::ApplyDelta(
    const NamedGraphDelta& delta, std::span<const VertexId> own_after_apply) {
  QGP_ASSIGN_OR_RETURN(std::unique_lock<std::timed_mutex> lock, AdmitDelta());
  if (owned_graph_ == nullptr) {
    return Status::InvalidArgument(
        "ApplyDelta requires an owning engine (this engine borrows its "
        "graph)");
  }
  if (!options_.focus_subset.has_value()) {
    return Status::InvalidArgument(
        "own_after_apply requires an engine with an engaged focus subset "
        "(EngineOptions::focus_subset)");
  }
  // Validate the ownership extension against the post-apply vertex
  // count BEFORE applying anything, so a bad own list leaves both the
  // graph and the subset untouched (a routed delta's freshly appended
  // vertices get ids num_vertices()..num_vertices()+adds-1).
  const size_t post_vertices =
      graph_->num_vertices() + delta.add_vertices.size();
  for (VertexId v : own_after_apply) {
    if (v >= post_vertices) {
      return Status::InvalidArgument(
          "own_after_apply id " + std::to_string(v) +
          " out of range for the post-delta graph (" +
          std::to_string(post_vertices) + " vertices)");
    }
  }
  QGP_ASSIGN_OR_RETURN(
      DeltaOutcome out,
      ApplyDeltaAdmitted(ResolveDelta(delta, &owned_graph_->mutable_dict())));
  std::vector<VertexId>& subset = *options_.focus_subset;
  subset.insert(subset.end(), own_after_apply.begin(), own_after_apply.end());
  std::sort(subset.begin(), subset.end());
  subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
  return out;
}

Result<std::unique_lock<std::timed_mutex>> QueryEngine::AdmitDelta() {
  std::unique_lock<std::timed_mutex> lock(admission_mu_, std::defer_lock);
  if (!draining_.load(std::memory_order_acquire)) {
    // Normal operation: block exactly as before — every query sees
    // entirely the pre- or post-delta graph.
    lock.lock();
    return lock;
  }
  // Draining: the in-flight query is about to be cancelled, but a delta
  // must not park forever behind it (a delta is non-cancellable once
  // admitted). Bounded wait, then tell the caller to retry later.
  const auto wait = std::chrono::milliseconds(
      options_.delta_drain_wait_ms > 0 ? options_.delta_drain_wait_ms : 0);
  if (!lock.try_lock_for(wait)) {
    return Status::Unavailable(
        "engine is draining; delta admission timed out");
  }
  return lock;
}

Result<DeltaOutcome> QueryEngine::ApplyDeltaAdmitted(const GraphDelta& delta) {
  QGP_FAILPOINT("engine.apply_delta");
  if (owned_graph_ == nullptr) {
    return Status::InvalidArgument(
        "ApplyDelta requires an owning engine (this engine borrows its "
        "graph)");
  }
  WallTimer timer;
  QGP_ASSIGN_OR_RETURN(GraphDeltaSummary summary,
                       owned_graph_->ApplyDelta(delta));
  version_.store(summary.version, std::memory_order_release);
  DeltaOutcome out;
  out.graph_version = summary.version;
  out.vertices_added = summary.vertices_added.size();
  out.vertices_removed = summary.vertices_removed.size();
  out.edges_added = summary.edges_added.size();
  out.edges_removed = summary.edges_removed.size();
  delta_log_.push_back(std::move(summary));
  while (options_.delta_log_max_entries > 0 &&
         delta_log_.size() > options_.delta_log_max_entries) {
    delta_log_.pop_front();
  }
  // Version-keyed invalidation: exactly the stale entries go. The
  // candidate cache compares stamps internally; the result cache is
  // swept here (every pre-delta entry is stale by construction), and so
  // is the plan cache — a plan chosen from pre-delta cardinalities is
  // stale. The repair store is deliberately NOT swept — stale spaces
  // are the repair seeds.
  out.candidate_sets_evicted = cache_.EvictStale();
  out.plans_invalidated = planner_.EvictStale(out.graph_version);
  {
    std::lock_guard<std::mutex> results_lock(results_mu_);
    for (auto it = results_.begin(); it != results_.end();) {
      if (it->second.version != out.graph_version) {
        lru_.erase(it->second.lru);
        it = results_.erase(it);
        ++out.results_invalidated;
      } else {
        ++it;
      }
    }
  }
  out.partition_invalidated = partition_.has_value();
  partition_.reset();
  out.wall_ms = timer.ElapsedSeconds() * 1000.0;
  {
    std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
    ++stats_.deltas;
    stats_.delta_wall_ms += out.wall_ms;
    stats_.results_invalidated += out.results_invalidated;
    stats_.cache_evicted += out.candidate_sets_evicted;
    stats_.plans_invalidated += out.plans_invalidated;
  }
  return out;
}

std::optional<GraphDeltaSummary> QueryEngine::ComposeDeltasSince(
    uint64_t from_version) const {
  const uint64_t current = graph_->version();
  if (from_version == current) {
    // No delta since the artifacts were stored: an empty summary at the
    // current version repairs to shared-handle reuse.
    GraphDeltaSummary none;
    none.version = current;
    return none;
  }
  if (from_version > current) return std::nullopt;
  GraphDeltaSummary composed;
  bool started = false;
  for (const GraphDeltaSummary& s : delta_log_) {
    if (s.version <= from_version) continue;
    if (!started) {
      composed = s;
      started = true;
    } else {
      composed.MergeFrom(s);
    }
  }
  // The log must cover every version in (from, current] contiguously;
  // a trimmed log forces the caller back to full evaluation.
  if (!started || composed.version != current) return std::nullopt;
  size_t covered = 0;
  for (const GraphDeltaSummary& s : delta_log_) {
    if (s.version > from_version) ++covered;
  }
  if (covered != current - from_version) return std::nullopt;
  return composed;
}

LabelDict QueryEngine::DictSnapshot() const {
  std::lock_guard<std::timed_mutex> lock(admission_mu_);
  return graph_->dict();
}

void QueryEngine::AccountAndShedPressure(const QueryOutcome& outcome,
                                         bool failed,
                                         StatusCode failure_code) {
  {
    std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
    if (failed) {
      ++stats_.failed;
      if (failure_code == StatusCode::kDeadlineExceeded) {
        ++stats_.timeouts;
      } else if (failure_code == StatusCode::kCancelled) {
        ++stats_.cancellations;
      }
    } else {
      ++stats_.queries;
      stats_.match.Add(outcome.stats);
    }
    stats_.wall_ms += outcome.wall_ms;
    stats_.cache_hits += outcome.cache_hits;
    stats_.cache_misses += outcome.cache_misses;
  }
  // Pressure policy: shed sets no live evaluation references once the
  // pool outgrows the configured bound. Interned sets are equal by value
  // to freshly computed ones, so eviction can only cost recomputation,
  // never answers. Runs on the failure path too — a failed evaluation
  // still interned whatever filters it touched before erroring out.
  if (options_.cache_max_entries > 0 &&
      cache_.size() > options_.cache_max_entries) {
    const size_t evicted = cache_.EvictUnused();
    std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
    stats_.cache_evicted += evicted;
  }
}

size_t QueryEngine::ClearResultCache() {
  std::lock_guard<std::mutex> lock(results_mu_);
  const size_t cleared = results_.size();
  results_.clear();
  lru_.clear();
  return cleared;
}

size_t QueryEngine::EvictUnused() {
  // No admission lock: the intern pool is internally synchronized and
  // refcounted, so shedding unused sets is safe even while a query is
  // mid-flight — monitoring and memory-pressure valves stay responsive.
  const size_t evicted = cache_.EvictUnused();
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  stats_.cache_evicted += evicted;
  return evicted;
}

Result<const Partition*> QueryEngine::partition() {
  std::lock_guard<std::timed_mutex> lock(admission_mu_);
  return PartitionAdmitted();
}

Result<const Partition*> QueryEngine::PartitionAdmitted() {
  if (!partition_.has_value()) {
    DParConfig config;
    config.num_fragments = options_.partition_fragments;
    config.d = options_.partition_d;
    // The pool-parallel DPar build is identical to the serial one
    // (scheduler_determinism_test locks partition identity down).
    QGP_ASSIGN_OR_RETURN(Partition built,
                         DPar(*graph_, config, nullptr, pool_.get()));
    partition_ = std::move(built);
  }
  return &partition_.value();
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  return stats_;
}

}  // namespace qgp
