#include "engine/query_engine.h"

#include <sstream>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "core/enum_matcher.h"
#include "core/qmatch.h"
#include "parallel/dpar.h"
#include "parallel/penum.h"
#include "parallel/pqmatch.h"

namespace qgp {

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::shared_ptr<const Graph> OwnGraph(Graph graph) {
  return std::make_shared<const Graph>(std::move(graph));
}

std::shared_ptr<const Graph> BorrowGraph(const Graph* graph) {
  // Aliasing handle with a no-op deleter: the engine machinery uniformly
  // holds a shared_ptr, the caller keeps ownership and must outlive us.
  return std::shared_ptr<const Graph>(graph, [](const Graph*) {});
}

// Canonical result-cache key. Deliberately NOT PatternParser::Serialize:
// that renders node names, and two distinct patterns can share names.
// Numeric node ids + label ids + quantifier text identify the structure
// exactly; the algorithm and every MatchOptions field are folded in
// because a stored outcome replays the original run's MatchStats, which
// the option toggles change (answers never depend on them, stats do).
std::string ResultKey(const QuerySpec& spec) {
  std::ostringstream key;
  const MatchOptions& o = spec.options;
  key << EngineAlgoName(spec.algo) << '|' << o.use_simulation
      << o.use_quantifier_pruning << o.use_potential_ordering
      << o.early_stop_counting << o.use_incremental_negation << '|'
      << o.max_quantified_per_path << '|' << o.max_isomorphisms << '|'
      << o.ball_limit << '|' << o.scheduler_grain << '|';
  const Pattern& q = spec.pattern;
  for (PatternNodeId u = 0; u < q.num_nodes(); ++u) {
    key << 'n' << q.node(u).label << ';';
  }
  for (PatternEdgeId e = 0; e < q.num_edges(); ++e) {
    const PatternEdge& pe = q.edge(e);
    key << 'e' << pe.src << ',' << pe.dst << ',' << pe.label << ','
        << pe.quantifier.ToString() << ';';
  }
  key << 'f' << q.focus();
  return std::move(key).str();
}

}  // namespace

const char* EngineAlgoName(EngineAlgo algo) {
  switch (algo) {
    case EngineAlgo::kQMatch:
      return "qmatch";
    case EngineAlgo::kQMatchn:
      return "qmatchn";
    case EngineAlgo::kEnum:
      return "enum";
    case EngineAlgo::kPQMatch:
      return "pqmatch";
    case EngineAlgo::kPEnum:
      return "penum";
  }
  return "unknown";
}

std::optional<EngineAlgo> ParseEngineAlgo(std::string_view name) {
  if (name == "qmatch") return EngineAlgo::kQMatch;
  if (name == "qmatchn") return EngineAlgo::kQMatchn;
  if (name == "enum") return EngineAlgo::kEnum;
  if (name == "pqmatch") return EngineAlgo::kPQMatch;
  if (name == "penum") return EngineAlgo::kPEnum;
  return std::nullopt;
}

QueryEngine::QueryEngine(Graph graph, const EngineOptions& options)
    : graph_(OwnGraph(std::move(graph))),
      options_(options),
      pool_(std::make_unique<ThreadPool>(ResolveThreads(options.num_threads))),
      cache_(*graph_) {}

QueryEngine::QueryEngine(const Graph* graph, const EngineOptions& options)
    : graph_(BorrowGraph(graph)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(ResolveThreads(options.num_threads))),
      cache_(*graph_) {}

Result<QueryOutcome> QueryEngine::Submit(const QuerySpec& spec) {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return SubmitAdmitted(spec);
}

Result<std::vector<QueryOutcome>> QueryEngine::RunBatch(
    std::span<const QuerySpec> specs) {
  std::lock_guard<std::mutex> lock(admission_mu_);
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(specs.size());
  for (const QuerySpec& spec : specs) {
    QGP_ASSIGN_OR_RETURN(QueryOutcome outcome, SubmitAdmitted(spec));
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

Result<QueryOutcome> QueryEngine::SubmitAdmitted(const QuerySpec& spec) {
  QueryOutcome outcome;
  outcome.tag = spec.tag;
  // Result-cache probe: a repeat of an answered query is served from
  // memory, replaying the original answers and work counters. Queries
  // that bypass the shared state (share_cache = false) neither probe
  // nor populate.
  const bool use_results = options_.enable_result_cache && spec.share_cache;
  std::string result_key;
  if (use_results) {
    result_key = ResultKey(spec);
    WallTimer hit_timer;
    {
      std::lock_guard<std::mutex> results_lock(results_mu_);
      auto it = results_.find(result_key);
      if (it != results_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru);  // refresh LRU
        outcome.answers = it->second.answers;
        outcome.stats = it->second.stats;
        outcome.result_cache_hit = true;
      }
    }
    if (outcome.result_cache_hit) {
      outcome.wall_ms = hit_timer.ElapsedSeconds() * 1000.0;
      std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
      ++stats_.queries;
      ++stats_.result_hits;
      stats_.match.Add(outcome.stats);
      stats_.wall_ms += outcome.wall_ms;
      return outcome;
    }
    // The miss is counted at the store point below: failed evaluations
    // are never cacheable, so they should not drag ResultHitRatio down.
  }
  CandidateCache* cache = spec.share_cache ? &cache_ : nullptr;
  const CandidateCache::Stats cache_before = cache_.stats();
  WallTimer timer;
  Result<AnswerSet> answers = Status::Ok();
  switch (spec.algo) {
    case EngineAlgo::kQMatch:
      answers = QMatch::Evaluate(spec.pattern, *graph_, spec.options,
                                 &outcome.stats, pool_.get(), cache);
      break;
    case EngineAlgo::kQMatchn: {
      MatchOptions naive = spec.options;
      naive.use_incremental_negation = false;
      answers = QMatch::Evaluate(spec.pattern, *graph_, naive, &outcome.stats,
                                 pool_.get(), cache);
      break;
    }
    case EngineAlgo::kEnum:
      answers = EnumMatcher::Evaluate(spec.pattern, *graph_, spec.options,
                                      &outcome.stats, cache);
      break;
    case EngineAlgo::kPQMatch:
    case EngineAlgo::kPEnum: {
      auto part = PartitionAdmitted();
      if (!part.ok()) {
        answers = part.status();
        break;
      }
      ParallelConfig config;
      config.mode = options_.partition_mode;
      config.threads_per_worker = options_.threads_per_worker;
      config.match = spec.options;
      Result<ParallelRunResult> run =
          spec.algo == EngineAlgo::kPQMatch
              ? PQMatch::Evaluate(spec.pattern, **part, config)
              : PEnum::Evaluate(spec.pattern, **part, config);
      if (!run.ok()) {
        answers = run.status();
        break;
      }
      outcome.stats.Add(run->stats);
      answers = std::move(run->answers);
      break;
    }
  }
  outcome.wall_ms = timer.ElapsedSeconds() * 1000.0;
  const CandidateCache::Stats cache_after = cache_.stats();
  outcome.cache_hits = cache_after.hits - cache_before.hits;
  outcome.cache_misses = cache_after.misses - cache_before.misses;
  if (!answers.ok()) {
    // Failures are load too: their wall time and cache traffic feed the
    // cumulative stats, and the pressure valve below still runs — an
    // error-heavy workload must neither under-report itself nor grow
    // the candidate cache past its bound.
    AccountAndShedPressure(outcome, /*failed=*/true);
    return answers.status();
  }
  outcome.answers = std::move(answers).value();
  AccountAndShedPressure(outcome, /*failed=*/false);
  if (use_results) {
    {
      std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
      ++stats_.result_misses;
    }
    std::lock_guard<std::mutex> results_lock(results_mu_);
    lru_.push_front(result_key);
    results_[std::move(result_key)] =
        ResultEntry{outcome.answers, outcome.stats, lru_.begin()};
    if (options_.result_cache_max_entries > 0 &&
        results_.size() > options_.result_cache_max_entries) {
      results_.erase(lru_.back());  // least recently used
      lru_.pop_back();
    }
  }
  return outcome;
}

void QueryEngine::AccountAndShedPressure(const QueryOutcome& outcome,
                                         bool failed) {
  {
    std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
    if (failed) {
      ++stats_.failed;
    } else {
      ++stats_.queries;
      stats_.match.Add(outcome.stats);
    }
    stats_.wall_ms += outcome.wall_ms;
    stats_.cache_hits += outcome.cache_hits;
    stats_.cache_misses += outcome.cache_misses;
  }
  // Pressure policy: shed sets no live evaluation references once the
  // pool outgrows the configured bound. Interned sets are equal by value
  // to freshly computed ones, so eviction can only cost recomputation,
  // never answers. Runs on the failure path too — a failed evaluation
  // still interned whatever filters it touched before erroring out.
  if (options_.cache_max_entries > 0 &&
      cache_.size() > options_.cache_max_entries) {
    const size_t evicted = cache_.EvictUnused();
    std::lock_guard<std::mutex> telemetry_lock(telemetry_mu_);
    stats_.cache_evicted += evicted;
  }
}

size_t QueryEngine::ClearResultCache() {
  std::lock_guard<std::mutex> lock(results_mu_);
  const size_t cleared = results_.size();
  results_.clear();
  lru_.clear();
  return cleared;
}

size_t QueryEngine::EvictUnused() {
  // No admission lock: the intern pool is internally synchronized and
  // refcounted, so shedding unused sets is safe even while a query is
  // mid-flight — monitoring and memory-pressure valves stay responsive.
  const size_t evicted = cache_.EvictUnused();
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  stats_.cache_evicted += evicted;
  return evicted;
}

Result<const Partition*> QueryEngine::partition() {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return PartitionAdmitted();
}

Result<const Partition*> QueryEngine::PartitionAdmitted() {
  if (!partition_.has_value()) {
    DParConfig config;
    config.num_fragments = options_.partition_fragments;
    config.d = options_.partition_d;
    // The pool-parallel DPar build is identical to the serial one
    // (scheduler_determinism_test locks partition identity down).
    QGP_ASSIGN_OR_RETURN(Partition built,
                         DPar(*graph_, config, nullptr, pool_.get()));
    partition_ = std::move(built);
  }
  return &partition_.value();
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  return stats_;
}

}  // namespace qgp
