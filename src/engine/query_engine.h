#ifndef QGP_ENGINE_QUERY_ENGINE_H_
#define QGP_ENGINE_QUERY_ENGINE_H_

/// \file
/// The multi-query engine layer: one long-lived QueryEngine per loaded
/// graph, evaluating a stream or batch of quantified patterns through a
/// shared CandidateCache and a shared ThreadPool. This is the "server
/// scenario" of the ROADMAP: per-graph work (label/degree candidate
/// filters, the worker pool, the DPar partition) is paid once and
/// amortized across the query mix instead of being torn down after every
/// evaluation.

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/candidate_cache.h"
#include "core/candidate_space.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "engine/planner.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "parallel/partition.h"
#include "parallel/worker_set.h"

namespace qgp {

/// Which matcher evaluates a submitted query. The engine dispatches to
/// the same entry points the standalone APIs expose; answers are
/// identical either way (the differential suite in
/// tests/engine/engine_differential_test.cc locks this down).
enum class EngineAlgo {
  kQMatch,   ///< QMatch::Evaluate — incremental negation (§4.2).
  kQMatchn,  ///< QMatch without incremental negation (the §7 baseline).
  kEnum,     ///< EnumMatcher::Evaluate — enumerate-then-verify baseline.
  kPQMatch,  ///< PQMatch over the engine's lazily built DPar partition.
  kPEnum,    ///< PEnum over the same partition.
  kAuto,     ///< Cost-based planner picks one of the above (engine/planner.h).
};

/// Stable lower-case name of an algorithm ("qmatch", "penum", ...).
const char* EngineAlgoName(EngineAlgo algo);

/// Parses an algorithm name as printed by EngineAlgoName; nullopt when
/// unknown.
std::optional<EngineAlgo> ParseEngineAlgo(std::string_view name);

/// One query of a workload: a parsed pattern plus per-query evaluation
/// knobs. Specs are value types — build them up front, submit them to
/// any engine bound to the right graph.
struct QuerySpec {
  /// The quantified pattern to evaluate (over the engine's graph).
  Pattern pattern;
  /// Matcher selection. Unset falls back to EngineOptions::default_algo
  /// (itself kQMatch unless configured), so a bare spec behaves exactly
  /// as before. kAuto — set here or as the engine default — hands the
  /// choice to the cost-based planner; the resolved algorithm comes back
  /// in QueryOutcome::algo.
  std::optional<EngineAlgo> algo;
  /// Per-query matcher knobs (pruning toggles, caps, scheduler grain).
  MatchOptions options;
  /// Evaluation deadline, milliseconds; 0 = none. Measured from the
  /// moment the query is admitted (queue wait under the admission lock
  /// is excluded — a service enforcing an end-to-end latency budget arms
  /// `options.cancel` itself from receipt time instead). On expiry the
  /// evaluation unwinds cooperatively and Submit returns
  /// kDeadlineExceeded; nothing the run computed is admitted into the
  /// result/plan/candidate caches, so a timed-out query perturbs
  /// nothing — re-running without the deadline answers byte-identically
  /// to an engine that never saw the timeout (the engine timeout
  /// differential test locks this down). Composes with an external
  /// `options.cancel` token: the engine's deadline token chains to it as
  /// a parent, and whichever fires first wins.
  int64_t timeout_ms = 0;
  /// Cache admission: when false this query bypasses the engine's shared
  /// CandidateCache (it still interns within itself). Use it for one-off
  /// patterns whose filters would pollute the pool without ever being
  /// reused.
  bool share_cache = true;
  /// Caller-chosen label echoed back in the QueryOutcome (request id,
  /// workload family, ...). Not interpreted by the engine.
  std::string tag;
};

/// Result of one evaluated query.
struct QueryOutcome {
  /// Q(xo, G): sorted, duplicate-free focus matches.
  AnswerSet answers;
  /// Work counters for this query only (aggregated over fragments for
  /// the parallel algorithms).
  MatchStats stats;
  /// Wall-clock evaluation time, milliseconds.
  double wall_ms = 0;
  /// The matcher that actually produced this outcome: the submitted
  /// algorithm, or — under algo = auto — whatever the planner chose.
  /// On a result-cache hit this is the effective algorithm of the probe
  /// (the stored entry was keyed on exactly it).
  EngineAlgo algo = EngineAlgo::kQMatch;
  /// True when the query ran under algo = auto and its pattern family's
  /// plan was served from the plan cache. Always false otherwise.
  bool plan_cache_hit = false;
  /// Shared-cache hits/misses attributable to this query (both zero when
  /// the spec opted out via share_cache = false).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// True when the whole result was served from the engine's result
  /// cache (EngineOptions::enable_result_cache): `answers` and `stats`
  /// replay the original evaluation, so both still equal a fresh run's.
  bool result_cache_hit = false;
  /// True when the answer was produced by the delta-repair fast path
  /// (EngineOptions::enable_delta_repair): the candidate space was
  /// repaired and only affected foci re-verified. Answers equal a fresh
  /// evaluation's; `stats` reflects the (smaller) repair work.
  bool delta_repaired = false;
  /// Echo of QuerySpec::tag.
  std::string tag;
};

/// Result of one QueryEngine::ApplyDelta.
struct DeltaOutcome {
  /// The graph version after this delta (monotonically increasing).
  uint64_t graph_version = 0;
  /// Net effect actually applied (set semantics; no-ops excluded).
  size_t vertices_added = 0;
  size_t vertices_removed = 0;
  size_t edges_added = 0;
  size_t edges_removed = 0;
  /// Stale interned candidate sets dropped from the shared cache.
  size_t candidate_sets_evicted = 0;
  /// Stale result-cache entries dropped.
  size_t results_invalidated = 0;
  /// Stale plan-cache entries dropped (a plan chosen from pre-delta
  /// cardinalities is stale).
  size_t plans_invalidated = 0;
  /// True when a built DPar partition was discarded (it is rebuilt
  /// lazily on the next partition-parallel query).
  bool partition_invalidated = false;
  /// Wall-clock time of the apply + invalidation sweep, milliseconds.
  double wall_ms = 0;
};

/// Engine construction knobs.
struct EngineOptions {
  /// Worker threads of the shared pool. 0 = hardware concurrency; 1
  /// still builds a pool (a single worker), so scheduling code paths are
  /// identical at every setting.
  size_t num_threads = 0;
  /// Cache pressure policy: after a query completes, if the shared
  /// CandidateCache holds more than this many interned sets, the engine
  /// runs EvictUnused() (dropping every set no live query references).
  /// 0 = unbounded (never evict implicitly).
  size_t cache_max_entries = 0;
  /// DPar fragment count n for the lazily built partition that serves
  /// kPQMatch / kPEnum queries.
  size_t partition_fragments = 4;
  /// DPar hop-preservation depth d. Queries whose pattern radius exceeds
  /// it fail with InvalidArgument, exactly like standalone PQMatch.
  int partition_d = 2;
  /// How PQMatch/PEnum logical workers execute (real threads by
  /// default; kSimulated reproduces the paper's n-machine timing model).
  ExecutionMode partition_mode = ExecutionMode::kThreads;
  /// Intra-fragment threads b for PQMatch/PEnum workers.
  size_t threads_per_worker = 1;
  /// Result cache: serve a repeat of an already-answered query — same
  /// pattern (canonical structural key, node names ignored), same
  /// algorithm, same MatchOptions — straight from memory. The stored
  /// outcome replays the original run's answers AND MatchStats, so hits
  /// are indistinguishable from re-evaluation in everything but wall
  /// clock; the engine-batch differential suite asserts exactly that.
  /// Off by default: repeat-heavy server traffic should opt in.
  bool enable_result_cache = false;
  /// LRU capacity of the result cache (entries). 0 = unbounded.
  size_t result_cache_max_entries = 1024;
  /// Delta repair: when a positive qmatch/qmatchn query that was
  /// answered before returns after ApplyDelta calls, repair its
  /// candidate space incrementally and re-verify only foci within
  /// pattern radius of the changes, keeping every other cached answer
  /// (QMatch::EvaluateRepaired). Answers are identical to a fresh
  /// evaluation; MatchStats reflect the smaller repair work, so
  /// workloads that assert stats identity should leave this off (the
  /// default).
  bool enable_delta_repair = false;
  /// Entries retained in the repair store (per canonical query key).
  /// 0 = unbounded.
  size_t repair_store_max_entries = 64;
  /// ApplyDelta summaries retained for composing multi-version repairs.
  /// A repair whose stored artifacts predate the log falls back to full
  /// evaluation.
  size_t delta_log_max_entries = 64;
  /// While the engine is draining (SetDraining(true), service shutdown),
  /// an ApplyDelta parked behind an in-flight evaluation waits at most
  /// this long for admission before giving up with kUnavailable. A delta
  /// is non-cancellable once admitted — this bound keeps the *wait*
  /// from stalling a drain, not the apply.
  int64_t delta_drain_wait_ms = 100;
  /// Focus restriction for shard-mode engines (src/shard/): when
  /// engaged, every query evaluates only foci in this set — the owned
  /// vertices of one DPar fragment — exactly like a single
  /// PQMatch/PEnum worker, so a coordinator that unions subset answers
  /// across shards gets each answer exactly once. nullopt (the default)
  /// = all foci, the historical behavior. An engaged-but-EMPTY set owns
  /// nothing and answers every query with the empty set (mirroring the
  /// parallel workers' empty-fragment skip — NOT "all candidates",
  /// which an empty span means in the lower-level subset APIs). The set
  /// is sorted/deduplicated at construction and ids outside the graph
  /// are dropped (they could never be answers). Under a subset the
  /// delta-repair fast path is disabled (the subset entry points carry
  /// no repair artifacts); the result cache stays valid because the
  /// subset only changes through ApplyDelta, whose version sweep drops
  /// every stored entry anyway.
  std::optional<std::vector<VertexId>> focus_subset;
  /// What a QuerySpec that leaves its algo unset runs as. Set this to
  /// EngineAlgo::kAuto to hand every such query to the planner without
  /// touching the specs.
  EngineAlgo default_algo = EngineAlgo::kQMatch;
  /// Cost-model cutoffs and plan-cache bound for algo = auto.
  PlannerConfig planner;
};

/// Cumulative engine telemetry across every query since construction.
struct EngineStats {
  /// Successfully evaluated queries.
  uint64_t queries = 0;
  /// Queries that returned a non-OK status.
  uint64_t failed = 0;
  /// Subsets of `failed`, split by why the evaluation unwound: the
  /// query's own timeout_ms deadline expired (timeouts) vs. an external
  /// CancelToken fired — e.g. the service's drain token (cancellations).
  uint64_t timeouts = 0;
  uint64_t cancellations = 0;
  /// Sum of per-query MatchStats (scheduler telemetry included).
  MatchStats match;
  /// Sum of per-query wall clock, milliseconds.
  double wall_ms = 0;
  /// Shared-cache hits/misses across all queries (admission-bypassing
  /// queries contribute nothing).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Interned sets dropped by the cache_max_entries pressure policy and
  /// by explicit EvictUnused() calls.
  uint64_t cache_evicted = 0;
  /// Result-cache hits/misses (both stay zero when the result cache is
  /// disabled; admission-bypassing queries count as neither).
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  /// Applied graph deltas and their cumulative apply+invalidation time.
  uint64_t deltas = 0;
  double delta_wall_ms = 0;
  /// Result-cache entries invalidated by ApplyDelta version sweeps.
  uint64_t results_invalidated = 0;
  /// Delta-repair fast-path outcomes: repairs that kept locality
  /// (repair_hits) vs. repairs that degenerated to verifying every
  /// focus or to a fresh evaluation (repair_fallbacks).
  uint64_t repair_hits = 0;
  uint64_t repair_fallbacks = 0;
  /// Planner traffic (all zero unless queries run under algo = auto):
  /// plans computed by the cost model, plans served from the pattern-
  /// family plan cache, and plans dropped by ApplyDelta version sweeps.
  uint64_t plans_built = 0;
  uint64_t plan_hits = 0;
  uint64_t plans_invalidated = 0;
  /// hits / (hits + misses); 0 when the cache was never consulted.
  double HitRatio() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
  /// Result-cache hit ratio; 0 when it was never consulted.
  double ResultHitRatio() const {
    const uint64_t total = result_hits + result_misses;
    return total == 0 ? 0.0 : static_cast<double>(result_hits) / total;
  }
};

/// A long-lived evaluation engine for one graph.
///
/// The engine owns the three per-graph artifacts every evaluation needs
/// and keeps them warm across queries:
///
///  * a CandidateCache interning label/degree candidate sets — queries
///    that share filter keys (pattern families, positified variants,
///    repeated requests) hit instead of recomputing;
///  * a ThreadPool driving the work-stealing match scheduler and the
///    parallel CandidateSpace build;
///  * lazily, a d-hop preserving DPar Partition serving the
///    partition-parallel algorithms.
///
/// Determinism contract: answers and MatchStats work counters of an
/// engine-evaluated query are identical to the standalone per-query API
/// at any thread count and any cache state — warm sets are equal by
/// value to freshly computed ones, and the scheduler never changes what
/// a slot computes (README "Concurrency model"). Only the scheduler
/// telemetry (MatchStats::scheduler_tasks/scheduler_steals) may vary.
///
/// Thread safety: Submit/RunBatch/EvictUnused/ClearResultCache/stats may
/// be called from any thread. Queries are admitted one at a time (an
/// internal admission mutex); each admitted query then fans out over the
/// whole shared pool, which keeps the machine saturated without
/// oversubscribing it. Callers wanting overlap across queries submit
/// from multiple client threads and let admission order decide.
///
/// Monitoring never stalls behind evaluation: telemetry (stats()), the
/// candidate-cache pressure valve (EvictUnused()) and the result cache
/// (ClearResultCache()) live behind their own short-held locks, NOT the
/// admission lock — a monitoring thread gets an answer in microseconds
/// even while a multi-second query is mid-flight (the engine concurrency
/// suite asserts this). A stats() snapshot taken mid-query reflects
/// every query completed so far; totals are exact whenever no query is
/// in flight.
class QueryEngine {
 public:
  /// Owning constructor: the engine takes the loaded graph.
  explicit QueryEngine(Graph graph, const EngineOptions& options = {});

  /// Borrowing constructor: `graph` must outlive the engine (the miner
  /// uses this over a caller-owned graph).
  explicit QueryEngine(const Graph* graph, const EngineOptions& options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Evaluates one query and updates the cumulative stats.
  Result<QueryOutcome> Submit(const QuerySpec& spec);

  /// Applies a batched graph mutation. Only owning engines accept
  /// deltas (a borrowed graph belongs to the caller); the borrowing
  /// constructor's engines return InvalidArgument.
  ///
  /// Sequencing: ApplyDelta takes the admission lock, so it BLOCKS until
  /// the in-flight query or batch drains, and queries submitted after
  /// it queue behind it — every query sees entirely the pre-delta or
  /// entirely the post-delta graph, never a mix (ARCHITECTURE.md
  /// "Mutable graphs" explains why block-not-snapshot). On success the
  /// graph version increases and every version-stamped cache is swept:
  /// stale interned candidate sets and stale result-cache entries are
  /// dropped (exactly the stale ones), and a built partition is
  /// discarded for lazy rebuild. On failure the graph, the caches and
  /// the version are untouched.
  Result<DeltaOutcome> ApplyDelta(const GraphDelta& delta);

  /// Name-level variant: interns added labels into the graph's
  /// dictionary, resolves removals without interning, then applies.
  /// Labels interned by a delta that subsequently fails validation stay
  /// interned (dictionary growth is harmless and never reversed).
  Result<DeltaOutcome> ApplyDelta(const NamedGraphDelta& delta);

  /// Shard-mode variant: applies `delta` and then extends the engine's
  /// focus subset (EngineOptions::focus_subset, which must be engaged)
  /// with `own_after_apply` — LOCAL vertex ids the coordinator newly
  /// assigned to this shard, valid against the POST-apply graph (a
  /// routed delta's freshly appended vertices may appear). The ids are
  /// validated against the post-apply vertex count before anything is
  /// applied; on any failure neither the graph nor the subset changes.
  Result<DeltaOutcome> ApplyDelta(const NamedGraphDelta& delta,
                                  std::span<const VertexId> own_after_apply);

  /// Current graph version (bumped by every successful ApplyDelta).
  /// Lock-free — safe from monitoring threads while queries and deltas
  /// are in flight.
  uint64_t graph_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Copy of the graph's label dictionary, taken under the admission
  /// lock so it is consistent with a fully applied delta. Services
  /// resolve label names against this snapshot and re-take it whenever
  /// graph_version() moves.
  LabelDict DictSnapshot() const;

  /// Evaluates a batch front to back, stopping at the first failure.
  /// Equivalent to (and implemented as) sequential Submit calls, so a
  /// batch enjoys the same warm-cache behavior a stream of Submits does.
  Result<std::vector<QueryOutcome>> RunBatch(std::span<const QuerySpec> specs);

  /// Explicitly drops interned candidate sets no live evaluation
  /// references (counted in EngineStats::cache_evicted). Safe to call
  /// between queries at any time; answers never change (locked down by
  /// the eviction-interleaved differential tests).
  size_t EvictUnused();

  /// Drops every stored result-cache entry; returns how many. Safe
  /// between queries — subsequent repeats simply re-evaluate.
  size_t ClearResultCache();

  /// Drain flag, set by a shutting-down service before it cancels its
  /// in-flight work. While draining, ApplyDelta stops waiting forever
  /// for admission (see EngineOptions::delta_drain_wait_ms); Submit is
  /// unaffected — the service already sheds new queries itself, and the
  /// last in-flight ones must still be answerable. Clearing the flag
  /// restores normal behavior (engines are reusable across drains).
  void SetDraining(bool draining) {
    draining_.store(draining, std::memory_order_release);
  }
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// The lazily built partition for kPQMatch/kPEnum (built on first use
  /// with the engine's pool — identical to a serial DPar build). Exposed
  /// so drivers can report partition diagnostics.
  Result<const Partition*> partition();

  /// The graph every query evaluates against.
  const Graph& graph() const { return *graph_; }
  /// Cumulative telemetry snapshot. Never blocks behind a running query
  /// (its lock is held only for the per-query counter commits); totals
  /// are exact whenever no query is mid-flight. Failed queries
  /// contribute their wall time and cache traffic too, so an
  /// error-heavy workload reports its true load.
  EngineStats stats() const;
  /// The shared intern pool (for diagnostics; prefer EvictUnused()).
  CandidateCache& cache() { return cache_; }
  /// The shared worker pool.
  ThreadPool& pool() { return *pool_; }

 private:
  /// One stored result; `lru` points at this entry's slot in lru_.
  /// `version` stamps the graph the outcome was computed against —
  /// ApplyDelta sweeps entries whose stamp it outdates, and the probe
  /// re-checks as a belt-and-suspenders guard.
  struct ResultEntry {
    AnswerSet answers;
    MatchStats stats;
    std::list<std::string>::iterator lru;
    uint64_t version = 0;
  };

  /// Stored artifacts of one positive qmatch/qmatchn evaluation, the
  /// seed for the delta-repair fast path. Unlike result-cache entries
  /// these survive ApplyDelta — a stale space is exactly what Repair
  /// starts from.
  struct RepairEntry {
    CandidateSpace space;
    AnswerSet answers;
    uint64_t version = 0;
  };

  Result<QueryOutcome> SubmitAdmitted(const QuerySpec& spec);
  Result<const Partition*> PartitionAdmitted();
  /// Admission for deltas: a plain blocking lock normally; while
  /// draining, a bounded try_lock_for that yields kUnavailable instead
  /// of stalling the drain (EngineOptions::delta_drain_wait_ms).
  Result<std::unique_lock<std::timed_mutex>> AdmitDelta();
  Result<DeltaOutcome> ApplyDeltaAdmitted(const GraphDelta& delta);
  /// Merged summary of every delta in (from_version, current]; nullopt
  /// when the log no longer reaches back to from_version.
  std::optional<GraphDeltaSummary> ComposeDeltasSince(
      uint64_t from_version) const;
  /// Commits one finished query (successful or failed) into stats_ and
  /// runs the cache_max_entries pressure policy — the single exit path
  /// shared by every evaluation outcome. `failure_code` (kOk on success)
  /// classifies failures: kDeadlineExceeded / kCancelled feed the
  /// timeouts / cancellations counters.
  void AccountAndShedPressure(const QueryOutcome& outcome, bool failed,
                              StatusCode failure_code = StatusCode::kOk);

  /// Owning engines keep the mutable handle (deltas write through it);
  /// borrowing engines leave it null and reject ApplyDelta. graph_
  /// aliases owned_graph_ when owning.
  std::shared_ptr<Graph> owned_graph_;
  std::shared_ptr<const Graph> graph_;  // no-op deleter when borrowing
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  CandidateCache cache_;
  std::optional<Partition> partition_;
  /// Lock order: admission_mu_ → results_mu_ / telemetry_mu_ (the two
  /// leaf locks are never held together). Monitoring paths take only a
  /// leaf lock, so they cannot stall behind an admitted evaluation.
  ///
  /// Admission: held across one whole evaluation (and the lazy partition
  /// build) — queries run one at a time, each owning the shared pool.
  /// A timed mutex so a draining engine's ApplyDelta can bounded-wait
  /// (try_lock_for) instead of parking forever behind a query that the
  /// drain token is about to cancel.
  mutable std::timed_mutex admission_mu_;
  /// Telemetry: guards stats_ only; held for counter commits/snapshots.
  mutable std::mutex telemetry_mu_;
  EngineStats stats_;
  /// Result cache: canonical (algo, options, pattern) key → stored
  /// outcome, LRU order maintained in lru_ (front = most recent), both
  /// guarded by results_mu_ (held for probe/store/clear only).
  mutable std::mutex results_mu_;
  std::unordered_map<std::string, ResultEntry> results_;
  std::list<std::string> lru_;
  /// Mutability state. version_ mirrors graph_->version() for lock-free
  /// reads; it is written only under the admission lock. delta_log_ and
  /// repair_ are touched only under the admission lock (deltas and
  /// evaluations are both admitted), so they need no extra lock.
  std::atomic<uint64_t> version_{0};
  std::deque<GraphDeltaSummary> delta_log_;
  std::unordered_map<std::string, RepairEntry> repair_;
  /// The algo = auto cost model and its pattern-family plan cache.
  /// Touched only under the admission lock (planning happens inside an
  /// admitted evaluation; the sweep inside an admitted delta), so it
  /// needs no lock of its own — same discipline as repair_.
  Planner planner_{options_.planner};
  /// Drain flag (SetDraining). Read lock-free by ApplyDelta admission.
  std::atomic<bool> draining_{false};
};

}  // namespace qgp

#endif  // QGP_ENGINE_QUERY_ENGINE_H_
