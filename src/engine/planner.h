#ifndef QGP_ENGINE_PLANNER_H_
#define QGP_ENGINE_PLANNER_H_

/// \file
/// The cost-based query planner behind `algo=auto`. Given a pattern and
/// the submitted MatchOptions, the planner picks which matcher evaluates
/// the query (qmatch / qmatchn / enum / pqmatch / penum) and fills the
/// scheduler knobs from cheap, deterministic statistics:
///
///  * graph size and degree profile (O(1) off the CSR),
///  * the focus label's candidate cardinality, read through the
///    interning CandidateCache — the label/degree sets the matchers
///    compute anyway double as free cardinality estimates, and probing
///    them warms exactly the set the chosen evaluation starts from,
///  * pattern shape: radius, negated-edge count, quantifier count,
///  * partition availability (pattern radius vs. the engine's DPar d).
///
/// Decisions are cached per pattern *family*: the cache key is the
/// canonical pattern structure with quantifier parameters stripped
/// (counts, percents and comparison ops removed; only the per-edge
/// class — existential / counting / negated — survives). Two patterns
/// differing only in quantifier values, exactly what the QGAR miner's
/// enlargement loop emits, share one plan — and, through the
/// CandidateCache the plan probe warms, one seeded dual-simulation
/// fixpoint. Entries are stamped with the graph version and swept by
/// QueryEngine::ApplyDelta (a plan chosen from pre-delta cardinalities
/// is stale), mirroring the CandidateCache / result-cache invalidation.
///
/// Determinism: a plan is a pure function of (graph content, pattern
/// structure, submitted options, configuration). Warm candidate sets
/// are equal by value to freshly computed ones, so the decision never
/// depends on cache temperature — an auto query answers byte-identically
/// to the same algo chosen manually, at any thread count (the planner
/// differential suite locks this down).
///
/// Thread safety: none. The QueryEngine owns one Planner and calls it
/// only under its admission lock, like the repair store.

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "core/candidate_cache.h"
#include "core/match_types.h"
#include "core/pattern.h"
#include "graph/graph.h"

namespace qgp {

enum class EngineAlgo;  // engine/query_engine.h

/// Cost-model cutoffs and the plan-cache bound. Exposed as engine
/// options so benches and tests can pin decision boundaries exactly.
struct PlannerConfig {
  /// Plan-cache capacity (pattern families, LRU). 0 = unbounded.
  size_t plan_cache_max_entries = 256;
  /// Focus-candidate cardinality at or below which enumerate-then-verify
  /// wins for conventional patterns: with a handful of foci there is no
  /// dual-simulation fixpoint worth amortizing.
  size_t enum_focus_cutoff = 8;
  /// Graph size (vertices) at or above which fragment-parallel
  /// evaluation over the DPar partition pays for its scatter/gather.
  size_t partition_vertex_cutoff = 200000;
};

/// One planning decision: the matcher that should run and the submitted
/// options with the planner's fills applied. `options` only ever gains
/// scheduler fills — answer-relevant caps and pruning toggles pass
/// through untouched, so a plan can change the schedule and the work
/// profile but never the answer.
struct PlanDecision {
  EngineAlgo algo;
  MatchOptions options;
  /// True when the family was served from the plan cache.
  bool cache_hit = false;
};

class Planner {
 public:
  /// Per-call inputs the engine snapshots under its admission lock.
  struct Context {
    const Graph* graph = nullptr;
    /// Interned cardinality estimates; nullptr for cache-bypassing
    /// specs (share_cache = false), which also bypass the plan cache —
    /// their estimate is computed fresh and their plan is not stored.
    CandidateCache* cache = nullptr;
    uint64_t graph_version = 0;
    size_t num_threads = 1;
    size_t partition_fragments = 0;
    int partition_d = 0;
  };

  explicit Planner(const PlannerConfig& config) : config_(config) {}
  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;

  /// Plans one query. Probes the plan cache first (version-checked);
  /// on a miss, runs the cost model and stores the family's plan.
  PlanDecision Plan(const Pattern& q, const MatchOptions& submitted,
                    const Context& ctx);

  /// Drops exactly the entries stamped with a version other than
  /// `current_version`; returns how many. Called by ApplyDelta.
  size_t EvictStale(uint64_t current_version);

  /// Drops the cached plan for `q`'s family, if any; true when an entry
  /// was erased. The engine calls this when a cancelled or timed-out
  /// query had just built its plan — the plan itself would still be
  /// valid, but the no-cache-poisoning invariant says a cancelled run
  /// admits nothing, so the next query of the family re-plans (and
  /// reports plan_cache_hit = false, which the tests observe).
  bool Forget(const Pattern& q);

  /// Cached families.
  size_t size() const { return plans_.size(); }

  /// The canonical family key: node labels, edge topology + labels,
  /// focus, per-edge quantifier class; quantifier parameters stripped.
  /// Exposed for tests asserting which patterns share a plan.
  static std::string FamilyKey(const Pattern& q);

 private:
  struct CachedPlan {
    EngineAlgo algo;
    size_t scheduler_grain = 0;
    uint64_t version = 0;
    std::list<std::string>::iterator lru;
  };

  PlannerConfig config_;
  std::unordered_map<std::string, CachedPlan> plans_;
  std::list<std::string> lru_;  // front = most recently used
};

}  // namespace qgp

#endif  // QGP_ENGINE_PLANNER_H_
