#include "engine/planner.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "engine/query_engine.h"

namespace qgp {

namespace {

// One character per quantifier CLASS — the only quantifier information
// that survives into the family key. Parameters (counts, percents,
// comparison ops) are stripped so the miner's quantifier-only variants
// land on one entry.
char QuantifierClass(const Quantifier& f) {
  if (f.IsNegation()) return '!';
  if (f.IsExistential()) return '.';
  return 'q';
}

}  // namespace

std::string Planner::FamilyKey(const Pattern& q) {
  // Same canonical structure as the engine's result key (numeric node
  // ids + label ids, names ignored), minus options and minus quantifier
  // parameters.
  std::ostringstream key;
  for (PatternNodeId u = 0; u < q.num_nodes(); ++u) {
    key << 'n' << q.node(u).label << ';';
  }
  for (PatternEdgeId e = 0; e < q.num_edges(); ++e) {
    const PatternEdge& pe = q.edge(e);
    key << 'e' << pe.src << ',' << pe.dst << ',' << pe.label << ','
        << QuantifierClass(pe.quantifier) << ';';
  }
  key << 'f' << q.focus();
  return std::move(key).str();
}

PlanDecision Planner::Plan(const Pattern& q, const MatchOptions& submitted,
                           const Context& ctx) {
  PlanDecision decision;
  decision.options = submitted;

  EngineAlgo base = EngineAlgo::kQMatch;
  size_t grain = 0;
  bool planned = false;

  // Cache-bypassing specs (ctx.cache == nullptr) also bypass the plan
  // cache: their estimate is computed fresh and the decision not stored,
  // mirroring how share_cache = false queries treat every shared
  // structure.
  std::string key;
  if (ctx.cache != nullptr) {
    key = FamilyKey(q);
    auto it = plans_.find(key);
    if (it != plans_.end() && it->second.version == ctx.graph_version) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // refresh LRU
      base = it->second.algo;
      grain = it->second.scheduler_grain;
      decision.cache_hit = true;
      planned = true;
    } else if (it != plans_.end()) {
      // Stale stamp: ApplyDelta's sweep already removes these; the probe
      // guard makes staleness impossible to serve regardless.
      lru_.erase(it->second.lru);
      plans_.erase(it);
    }
  }

  if (!planned) {
    // Focus cardinality: the label/degree set the chosen evaluation
    // starts from anyway. Interned sets are equal by value to freshly
    // computed ones, so the estimate — and hence the plan — never
    // depends on cache temperature.
    const Label focus_label = q.node(q.focus()).label;
    const size_t focus_count =
        ctx.cache != nullptr
            ? ctx.cache->Get(focus_label, {}, {})->members.size()
            : ComputeLabelDegreeSet(*ctx.graph, focus_label, {}, {})
                  ->members.size();

    // Fragment-parallel evaluation pays for its scatter/gather only on
    // big graphs, and is available only when the pattern's radius fits
    // the partition's hop-preservation depth.
    const bool partition_pays =
        ctx.graph->num_vertices() >= config_.partition_vertex_cutoff &&
        ctx.partition_fragments > 1 &&
        q.Radius() <= ctx.partition_d;

    if (!q.IsPositive()) {
      // Negated edges need the Π(Q)/Q⁺ᵉ set-difference machinery;
      // QMatch's incremental negation is the specialist.
      base = EngineAlgo::kQMatch;
    } else if (q.IsConventional() &&
               focus_count <= config_.enum_focus_cutoff) {
      // A handful of foci and no counting quantifiers: direct
      // enumerate-then-verify beats setting up the dual-simulation
      // fixpoint.
      base = partition_pays ? EngineAlgo::kPEnum : EngineAlgo::kEnum;
    } else if (partition_pays) {
      base = EngineAlgo::kPQMatch;
    } else {
      base = EngineAlgo::kQMatch;
    }

    // Scheduler fill: the same ≈ |foci| / (threads · 8) heuristic the
    // matchers use for grain 0, pinned here so the whole family shares
    // one schedule shape. Affects only scheduler telemetry, never
    // answers or work counters.
    const size_t slots = std::max<size_t>(1, ctx.num_threads) * 8;
    grain = std::max<size_t>(1, focus_count / slots);

    if (ctx.cache != nullptr) {
      lru_.push_front(key);
      plans_[std::move(key)] =
          CachedPlan{base, grain, ctx.graph_version, lru_.begin()};
      if (config_.plan_cache_max_entries > 0 &&
          plans_.size() > config_.plan_cache_max_entries) {
        plans_.erase(lru_.back());  // least recently used
        lru_.pop_back();
      }
    }
  }

  decision.algo = base;
  // The qmatch/qmatchn split is a pure function of the submitted
  // options, not of statistics: dispatching kQMatch with incremental
  // negation disabled IS the QMatchn baseline, so report it as such.
  // Applied after the cache so family-mates with different option sets
  // still share one entry.
  if (base == EngineAlgo::kQMatch && !submitted.use_incremental_negation) {
    decision.algo = EngineAlgo::kQMatchn;
  }
  if (decision.options.scheduler_grain == 0) {
    decision.options.scheduler_grain = grain;
  }
  return decision;
}

size_t Planner::EvictStale(uint64_t current_version) {
  size_t evicted = 0;
  for (auto it = plans_.begin(); it != plans_.end();) {
    if (it->second.version != current_version) {
      lru_.erase(it->second.lru);
      it = plans_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

bool Planner::Forget(const Pattern& q) {
  auto it = plans_.find(FamilyKey(q));
  if (it == plans_.end()) return false;
  lru_.erase(it->second.lru);
  plans_.erase(it);
  return true;
}

}  // namespace qgp
