#include "common/env.h"

#include <cstdlib>

#include "common/string_util.h"

namespace qgp {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return v;
}

int64_t GetEnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  int64_t out = 0;
  if (!ParseInt64(v, &out)) return fallback;
  return out;
}

BenchScale GetBenchScale() {
  std::string s = AsciiToLower(GetEnvString("QGP_BENCH_SCALE", "small"));
  if (s == "tiny") return BenchScale::kTiny;
  if (s == "medium") return BenchScale::kMedium;
  if (s == "large") return BenchScale::kLarge;
  return BenchScale::kSmall;
}

double BenchScaleFactor(BenchScale scale) {
  switch (scale) {
    case BenchScale::kTiny:
      return 0.1;
    case BenchScale::kSmall:
      return 1.0;
    case BenchScale::kMedium:
      return 4.0;
    case BenchScale::kLarge:
      return 16.0;
  }
  return 1.0;
}

const char* BenchScaleName(BenchScale scale) {
  switch (scale) {
    case BenchScale::kTiny:
      return "tiny";
    case BenchScale::kSmall:
      return "small";
    case BenchScale::kMedium:
      return "medium";
    case BenchScale::kLarge:
      return "large";
  }
  return "small";
}

}  // namespace qgp
