#ifndef QGP_COMMON_STATUS_H_
#define QGP_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace qgp {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIoError = 7,
  kCorruption = 8,
  /// Transient overload: the caller should back off and retry (used by
  /// the network query service's admission control).
  kUnavailable = 9,
  /// The operation's deadline passed before it completed. The work was
  /// abandoned cleanly (cooperative cancellation; no partial state
  /// escapes into caches) — retrying with a larger budget is safe.
  kDeadlineExceeded = 10,
  /// The operation was cancelled by its caller (explicit CancelToken
  /// cancel, e.g. service drain). Same clean-unwind guarantees as
  /// kDeadlineExceeded.
  kCancelled = 11,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// RocksDB-style status object used for error propagation throughout the
/// library. The public API never throws; fallible operations return Status
/// (or Result<T>, see result.h).
///
/// Usage:
///   Status s = graph.Load(path);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per StatusCode.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category.
  StatusCode code() const { return code_; }

  /// The error message ("" for OK statuses).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Two statuses are equal when both code and message agree.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status out of the enclosing function.
#define QGP_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::qgp::Status _qgp_status = (expr);          \
    if (!_qgp_status.ok()) return _qgp_status;   \
  } while (0)

}  // namespace qgp

#endif  // QGP_COMMON_STATUS_H_
