#include "common/thread_pool.h"

#include <algorithm>

namespace qgp {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t chunks = std::min(n, threads_.size() * 4);
  size_t per = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace qgp
