#include "common/thread_pool.h"

#include <algorithm>

namespace qgp {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++outstanding_;
  }
  work_cv_.notify_one();
}

void ThreadPool::SubmitStealable(size_t home, std::function<void()> task) {
  // Count the task BEFORE making it visible in the deque: a thief that is
  // already probing (woken by other work) may take and finish it
  // immediately, and the completion accounting must never run ahead of
  // the submission accounting (unsigned counters would wrap and wedge
  // the sleep predicate). The reverse transient — counted but not yet
  // pushed — only makes an idle worker re-probe until the push lands.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
    stealable_ready_.fetch_add(1, std::memory_order_relaxed);
  }
  Worker& w = *workers_[home % workers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.deque.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForRange(n, 1, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForRange(
    size_t n, size_t min_grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;
  size_t chunks = std::min(threads_.size() * 4, (n + min_grain - 1) / min_grain);
  // A single worker gains nothing from chunking — and a nested call from
  // inside a worker must not Wait() on its own pool — so both run inline.
  if (chunks <= 1 || threads_.size() == 1 || IsWorkerThread()) {
    fn(0, n);
    return;
  }
  size_t per = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    Submit([begin, end, &fn] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::ParallelForDynamic(
    size_t n, size_t min_grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;
  const size_t chunks = (n + min_grain - 1) / min_grain;
  if (chunks <= 1 || threads_.size() == 1 || IsWorkerThread()) {
    fn(0, n);
    return;
  }
  // Deal chunks round-robin in index order: chunk c lands on worker
  // c % num_threads, so each deque holds an interleaved, order-preserving
  // slice of the caller's (typically size-sorted) chunk sequence.
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * min_grain;
    size_t end = std::min(n, begin + min_grain);
    SubmitStealable(c, [begin, end, &fn] { fn(begin, end); });
  }
  Wait();
}

bool ThreadPool::IsWorkerThread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& t : threads_) {
    if (t.get_id() == self) return true;
  }
  return false;
}

ThreadPool::SchedulerStats ThreadPool::scheduler_stats() const {
  SchedulerStats stats;
  stats.executed.reserve(workers_.size());
  stats.stolen.reserve(workers_.size());
  for (const auto& w : workers_) {
    stats.executed.push_back(w->executed.load(std::memory_order_relaxed));
    stats.stolen.push_back(w->stolen.load(std::memory_order_relaxed));
  }
  return stats;
}

bool ThreadPool::TakeTask(size_t id, std::function<void()>* task) {
  // 1. Own deque, head end: the oldest of this worker's pending chunks,
  // which under largest-first submission is its largest remaining one.
  {
    Worker& own = *workers_[id];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.deque.empty()) {
      *task = std::move(own.deque.front());
      own.deque.pop_front();
      stealable_ready_.fetch_sub(1, std::memory_order_relaxed);
      own.executed.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 2. Central queue.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!queue_.empty()) {
      *task = std::move(queue_.front());
      queue_.pop_front();
      workers_[id]->executed.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 3. Steal: randomized victim selection — probe every other worker
  // once, starting at a random offset, and take the TAIL of the first
  // non-empty deque found (the end opposite the owner, per Chase-Lev).
  const size_t n = workers_.size();
  if (n > 1 && stealable_ready_.load(std::memory_order_relaxed) > 0) {
    // Cheap per-worker xorshift; scheduling may be random, results never
    // depend on it.
    static thread_local uint64_t rng_state = 0;
    if (rng_state == 0) rng_state = 0x9e3779b97f4a7c15ULL ^ (id + 1);
    rng_state ^= rng_state << 13;
    rng_state ^= rng_state >> 7;
    rng_state ^= rng_state << 17;
    const size_t start = static_cast<size_t>(rng_state % n);
    for (size_t probe = 0; probe < n; ++probe) {
      const size_t victim = (start + probe) % n;
      if (victim == id) continue;
      Worker& v = *workers_[victim];
      std::lock_guard<std::mutex> lock(v.mu);
      if (v.deque.empty()) continue;
      *task = std::move(v.deque.back());
      v.deque.pop_back();
      stealable_ready_.fetch_sub(1, std::memory_order_relaxed);
      workers_[id]->executed.fetch_add(1, std::memory_order_relaxed);
      workers_[id]->stolen.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::FinishTask() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
  }
  idle_cv_.notify_all();
}

void ThreadPool::WorkerLoop(size_t id) {
  for (;;) {
    std::function<void()> task;
    if (TakeTask(id, &task)) {
      task();
      task = nullptr;  // release captures before signalling completion
      FinishTask();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] {
      return stop_ || !queue_.empty() ||
             stealable_ready_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_ && queue_.empty() &&
        stealable_ready_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

}  // namespace qgp
