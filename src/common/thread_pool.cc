#include "common/thread_pool.h"

#include <algorithm>

namespace qgp {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForRange(n, 1, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForRange(
    size_t n, size_t min_grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (min_grain == 0) min_grain = 1;
  size_t chunks = std::min(threads_.size() * 4, (n + min_grain - 1) / min_grain);
  // A single worker gains nothing from chunking — and a nested call from
  // inside a worker must not Wait() on its own pool — so both run inline.
  if (chunks <= 1 || threads_.size() == 1 || IsWorkerThread()) {
    fn(0, n);
    return;
  }
  size_t per = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    Submit([begin, end, &fn] { fn(begin, end); });
  }
  Wait();
}

bool ThreadPool::IsWorkerThread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& t : threads_) {
    if (t.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace qgp
