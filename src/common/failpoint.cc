#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace qgp::failpoint {

namespace {

struct Registered {
  Action action;
  uint64_t hits = 0;
  bool tripped = false;  // a `once` action that already fired
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Registered> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

/// Armed-failpoint count, mirrored outside the mutex so the unarmed
/// fast path is one relaxed load. Counts armed entries, including
/// tripped `once` entries until they are disarmed — slightly
/// conservative (the slow path stays on while a tripped point lingers),
/// never unsafe.
std::atomic<uint64_t> g_armed{0};

std::optional<StatusCode> ParseCode(std::string_view name) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
    const auto code = static_cast<StatusCode>(c);
    if (name == StatusCodeName(code)) return code;
  }
  return std::nullopt;
}

/// One env entry: "name=action" where action is
/// "[once:]delay:<ms>" or "[once:]error:<Code>[:<message>]".
bool ParseEntry(std::string_view entry) {
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  const std::string name(entry.substr(0, eq));
  std::string_view spec = entry.substr(eq + 1);
  Action action;
  if (spec.rfind("once:", 0) == 0) {
    action.once = true;
    spec.remove_prefix(5);
  }
  if (spec.rfind("delay:", 0) == 0) {
    spec.remove_prefix(6);
    int64_t ms = 0;
    if (!ParseInt64(spec, &ms) || ms < 0) return false;
    action.kind = Action::Kind::kDelayMs;
    action.delay_ms = ms;
  } else if (spec.rfind("error:", 0) == 0) {
    spec.remove_prefix(6);
    const size_t colon = spec.find(':');
    const std::string_view code_name =
        colon == std::string_view::npos ? spec : spec.substr(0, colon);
    std::optional<StatusCode> code = ParseCode(code_name);
    if (!code.has_value() || *code == StatusCode::kOk) return false;
    action.kind = Action::Kind::kError;
    action.code = *code;
    action.message = colon == std::string_view::npos
                         ? "failpoint '" + name + "'"
                         : std::string(spec.substr(colon + 1));
  } else {
    return false;
  }
  Arm(name, std::move(action));
  return true;
}

}  // namespace

void Arm(std::string_view name, Action action) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.points.try_emplace(std::string(name));
  it->second.action = std::move(action);
  it->second.tripped = false;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.erase(std::string(name)) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed.fetch_sub(registry.points.size(), std::memory_order_relaxed);
  registry.points.clear();
}

size_t ArmFromEnv() {
  const char* env = std::getenv("QGP_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  size_t armed = 0;
  std::string_view spec(env);
  while (!spec.empty()) {
    const size_t semi = spec.find(';');
    const std::string_view entry =
        semi == std::string_view::npos ? spec : spec.substr(0, semi);
    if (!entry.empty() && ParseEntry(entry)) ++armed;
    if (semi == std::string_view::npos) break;
    spec.remove_prefix(semi + 1);
  }
  return armed;
}

uint64_t ArmedCount() { return g_armed.load(std::memory_order_relaxed); }

Status Hit(std::string_view name) {
  Action action;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(std::string(name));
    if (it == registry.points.end() || it->second.tripped) {
      return Status::Ok();
    }
    ++it->second.hits;
    if (it->second.action.once) it->second.tripped = true;
    action = it->second.action;
  }
  // Act outside the lock: a delay must not serialize unrelated seams.
  switch (action.kind) {
    case Action::Kind::kDelayMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
      return Status::Ok();
    case Action::Kind::kError:
      switch (action.code) {
        case StatusCode::kInvalidArgument:
          return Status::InvalidArgument(action.message);
        case StatusCode::kNotFound:
          return Status::NotFound(action.message);
        case StatusCode::kAlreadyExists:
          return Status::AlreadyExists(action.message);
        case StatusCode::kOutOfRange:
          return Status::OutOfRange(action.message);
        case StatusCode::kUnimplemented:
          return Status::Unimplemented(action.message);
        case StatusCode::kIoError:
          return Status::IoError(action.message);
        case StatusCode::kCorruption:
          return Status::Corruption(action.message);
        case StatusCode::kUnavailable:
          return Status::Unavailable(action.message);
        case StatusCode::kDeadlineExceeded:
          return Status::DeadlineExceeded(action.message);
        case StatusCode::kCancelled:
          return Status::Cancelled(action.message);
        case StatusCode::kOk:
        case StatusCode::kInternal:
          return Status::Internal(action.message);
      }
      return Status::Internal(action.message);
  }
  return Status::Ok();
}

uint64_t HitCount(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(std::string(name));
  return it == registry.points.end() ? 0 : it->second.hits;
}

}  // namespace qgp::failpoint
