#ifndef QGP_COMMON_THREAD_POOL_H_
#define QGP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qgp {

/// Fixed-size worker pool. Used for intra-fragment parallelism (mQMatch)
/// and for running per-fragment work in PQMatch's real-thread mode.
///
/// Tasks are plain std::function<void()>; Wait() blocks until the queue is
/// drained and all in-flight tasks have finished.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains and joins. Pending tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

  /// Convenience: applies `fn(i)` for i in [0, n) across the pool and waits.
  /// Chunked statically; `fn` must be thread-safe across distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Batched variant: splits [0, n) into at most `num_threads() * 4`
  /// contiguous chunks of at least `min_grain` indices and applies
  /// `fn(begin, end)` to each across the pool, then waits. Chunking is a
  /// pure function of (n, min_grain, num_threads()), never of scheduling,
  /// so callers that write only to index-owned slots get deterministic
  /// results at any thread count. Runs inline (single chunk) when the
  /// range is too small to be worth dispatching, and also when called
  /// from inside one of this pool's own workers — a nested Wait() from a
  /// worker would deadlock, so nested calls degrade to serial instead.
  void ParallelForRange(size_t n, size_t min_grain,
                        const std::function<void(size_t, size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool IsWorkerThread() const;

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when work arrives / stop
  std::condition_variable idle_cv_;   // signalled when a task finishes
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace qgp

#endif  // QGP_COMMON_THREAD_POOL_H_
