#ifndef QGP_COMMON_THREAD_POOL_H_
#define QGP_COMMON_THREAD_POOL_H_

/// \file
/// The fixed-size worker pool and its work-stealing scheduler — the one
/// concurrency substrate every parallel phase of the repo runs on (see
/// docs/ARCHITECTURE.md for where it sits in the stack).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qgp {

/// Fixed-size worker pool. Used for intra-fragment parallelism (mQMatch),
/// for running per-fragment work in PQMatch's real-thread mode, and for
/// the work-stealing match scheduler.
///
/// Two task channels share the same workers:
///  * `Submit` feeds a central FIFO queue (legacy path, still used for
///    one-shot fan-outs where placement does not matter).
///  * `SubmitStealable` feeds per-worker Chase-Lev-style deques: each
///    worker drains its own deque from the head, and an idle worker
///    steals from the tail of a randomly chosen victim. With tasks
///    enqueued largest-first, a worker always runs its biggest pending
///    chunk next while thieves peel the victim's smallest chunk off the
///    opposite end — skewed workloads rebalance instead of serializing
///    on one worker.
///
/// Wait() blocks until both channels are drained and all in-flight tasks
/// have finished.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains and joins. Pending tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task on the central queue.
  void Submit(std::function<void()> task);

  /// Enqueues a task on worker `home`'s deque (modulo num_threads()).
  /// The home worker drains its deque head-first (submission order),
  /// idle workers steal tail-first (the opposite end). Submission order
  /// from a single thread is therefore the home worker's execution
  /// order — callers submit largest tasks first.
  void SubmitStealable(size_t home, std::function<void()> task);

  /// Blocks until all submitted tasks (both channels) have completed.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

  /// Convenience: applies `fn(i)` for i in [0, n) across the pool and waits.
  /// Chunked statically; `fn` must be thread-safe across distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Batched variant: splits [0, n) into at most `num_threads() * 4`
  /// contiguous chunks of at least `min_grain` indices and applies
  /// `fn(begin, end)` to each across the pool, then waits. Chunking is a
  /// pure function of (n, min_grain, num_threads()), never of scheduling,
  /// so callers that write only to index-owned slots get deterministic
  /// results at any thread count. Runs inline (single chunk) when the
  /// range is too small to be worth dispatching, and also when called
  /// from inside one of this pool's own workers — a nested Wait() from a
  /// worker would deadlock, so nested calls degrade to serial instead.
  void ParallelForRange(size_t n, size_t min_grain,
                        const std::function<void(size_t, size_t)>& fn);

  /// Work-stealing variant: splits [0, n) into contiguous chunks of
  /// exactly `min_grain` indices (last chunk may be short), deals them
  /// round-robin onto the per-worker deques in index order, and waits.
  /// Chunk boundaries are a pure function of (n, min_grain), so callers
  /// that write only to index-owned slots get results identical to the
  /// serial loop at any thread count — stealing moves chunks between
  /// workers, never between slots. Callers that want largest-first
  /// execution sort their index space before calling (see
  /// qmatch.cc's focus map). Degrades to inline execution when nested
  /// inside a worker or when a single chunk results.
  void ParallelForDynamic(size_t n, size_t min_grain,
                          const std::function<void(size_t, size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool IsWorkerThread() const;

  /// Cumulative scheduler counters since construction. `executed[w]` /
  /// `stolen[w]` count tasks worker w ran / ran after stealing them from
  /// another worker's deque (central-queue tasks count as executed,
  /// never stolen). Snapshot is not atomic across workers — read it
  /// while the pool is quiescent (after Wait()) for exact totals.
  struct SchedulerStats {
    std::vector<uint64_t> executed;  ///< per worker: tasks it ran
    std::vector<uint64_t> stolen;    ///< per worker: ran after stealing
    /// Sum of `executed` across workers.
    uint64_t total_executed() const {
      uint64_t n = 0;
      for (uint64_t e : executed) n += e;
      return n;
    }
    /// Sum of `stolen` across workers.
    uint64_t total_stolen() const {
      uint64_t n = 0;
      for (uint64_t s : stolen) n += s;
      return n;
    }
  };
  SchedulerStats scheduler_stats() const;

 private:
  /// One worker's stealable-task deque plus its scheduler counters.
  /// Chase-Lev in discipline (owner and thieves work opposite ends:
  /// the owner drains the head, thieves take the newest-submitted task
  /// at the tail — under largest-first submission, the victim's
  /// smallest pending chunk); a per-deque mutex instead of the
  /// lock-free protocol — match tasks are chunky (a focus
  /// verification, a ball extraction), so the lock is nanoseconds
  /// against microseconds-to-milliseconds of work, and it keeps the
  /// scheduler trivially TSan-clean.
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> stolen{0};
  };

  void WorkerLoop(size_t id);
  /// Own deque head, else central queue, else steal from a random
  /// victim's tail. Returns false when no task was found anywhere.
  bool TakeTask(size_t id, std::function<void()>* task);
  void FinishTask();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when work arrives / stop
  std::condition_variable idle_cv_;   // signalled when a task finishes
  std::deque<std::function<void()>> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  /// Stealable tasks sitting in deques, not yet claimed. Guards the
  /// sleep predicate: a worker only blocks when both channels are empty.
  std::atomic<size_t> stealable_ready_{0};
  size_t outstanding_ = 0;  // submitted but unfinished, both channels
  bool stop_ = false;
};

}  // namespace qgp

#endif  // QGP_COMMON_THREAD_POOL_H_
