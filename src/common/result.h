#ifndef QGP_COMMON_RESULT_H_
#define QGP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace qgp {

/// Value-or-error wrapper (StatusOr / arrow::Result style). Holds either a
/// value of type T or a non-OK Status explaining why the value is absent.
///
/// Usage:
///   Result<Graph> r = GraphIo::Load(path);
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed Result from a non-OK status. Using an OK status is
  /// a programming error and is converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Access to the held value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

/// Unwraps a Result into `lhs`, or returns its status on failure.
#define QGP_ASSIGN_OR_RETURN(lhs, expr)              \
  auto QGP_CONCAT_(_qgp_result_, __LINE__) = (expr); \
  if (!QGP_CONCAT_(_qgp_result_, __LINE__).ok())     \
    return QGP_CONCAT_(_qgp_result_, __LINE__).status(); \
  lhs = std::move(QGP_CONCAT_(_qgp_result_, __LINE__)).value()

#define QGP_CONCAT_(a, b) QGP_CONCAT_IMPL_(a, b)
#define QGP_CONCAT_IMPL_(a, b) a##b

}  // namespace qgp

#endif  // QGP_COMMON_RESULT_H_
