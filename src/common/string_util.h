#ifndef QGP_COMMON_STRING_UTIL_H_
#define QGP_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qgp {

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Splits `s` on any ASCII whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a signed integer; returns false on any malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on any malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Lowercases ASCII letters.
std::string AsciiToLower(std::string_view s);

}  // namespace qgp

#endif  // QGP_COMMON_STRING_UTIL_H_
