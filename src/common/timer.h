#ifndef QGP_COMMON_TIMER_H_
#define QGP_COMMON_TIMER_H_

#include <chrono>

namespace qgp {

/// Monotonic wall-clock stopwatch used by benches and the parallel engine
/// (per-fragment makespan accounting).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qgp

#endif  // QGP_COMMON_TIMER_H_
