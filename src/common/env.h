#ifndef QGP_COMMON_ENV_H_
#define QGP_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace qgp {

/// Reads an environment variable, or `fallback` when unset/empty.
std::string GetEnvString(const char* name, const std::string& fallback);

/// Reads an integer environment variable, or `fallback` when unset/invalid.
int64_t GetEnvInt64(const char* name, int64_t fallback);

/// Benchmark scale knob shared by all bench binaries.
/// QGP_BENCH_SCALE=tiny|small|medium|large; defaults to "small".
/// Benches multiply their default workload sizes by ScaleFactor().
enum class BenchScale { kTiny, kSmall, kMedium, kLarge };

/// Parses QGP_BENCH_SCALE from the environment.
BenchScale GetBenchScale();

/// Multiplier applied to bench workload sizes: tiny=0.1, small=1,
/// medium=4, large=16.
double BenchScaleFactor(BenchScale scale);

/// Human-readable name for a scale.
const char* BenchScaleName(BenchScale scale);

}  // namespace qgp

#endif  // QGP_COMMON_ENV_H_
