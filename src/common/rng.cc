#include "common/rng.h"

#include <cmath>
#include <unordered_set>

namespace qgp {

uint64_t Rng::Next() {
  // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, 1 mul-xor chain.
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextUint64(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF on a continuous approximation of the Zipf law; accurate
  // enough for workload skew and O(1) per draw.
  double u = NextDouble();
  if (s == 1.0) s = 1.0000001;
  double nd = static_cast<double>(n);
  double t = (std::pow(nd, 1.0 - s) - 1.0) * u + 1.0;
  double x = std::pow(t, 1.0 / (1.0 - s));
  uint64_t rank = static_cast<uint64_t>(x) - 1;
  return rank >= n ? n - 1 : rank;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  std::vector<uint64_t> out;
  if (n == 0) return out;
  if (k >= n) {
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i) out[i] = i;
    Shuffle(out);
    return out;
  }
  std::unordered_set<uint64_t> seen;
  out.reserve(k);
  while (out.size() < k) {
    uint64_t v = NextUint64(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace qgp
