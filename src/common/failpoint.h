#ifndef QGP_COMMON_FAILPOINT_H_
#define QGP_COMMON_FAILPOINT_H_

/// \file
/// Named failpoints: test-armable fault hooks compiled into a handful
/// of hot seams (service dispatch dequeue, engine submit, delta apply,
/// socket write, shard scatter/gather) so tests can deterministically
/// force slow-query, stuck-worker and mid-response-disconnect scenarios
/// without races or sleeps.
///
/// Current seam catalog:
///  * service.dispatch_dequeue — dispatch worker after dequeuing a unit
///  * service.socket_write     — per write(2) attempt in the server
///  * engine.submit            — QueryEngine::Submit admission
///  * engine.apply_delta       — QueryEngine delta apply, pre-mutation
///  * shard.scatter            — ShardedEngine per-shard fan-out, before
///                               the shard evaluates
///  * shard.gather             — ShardedEngine per-shard merge, before a
///                               slice's answers join the union
///
/// Cost when unarmed: QGP_FAILPOINT expands to one relaxed atomic load
/// of a global armed counter — the registry mutex and the name lookup
/// are touched only while at least one failpoint is armed anywhere in
/// the process. Production builds keep the hooks compiled in; arming
/// is what tests (programmatic) and operators (QGP_FAILPOINTS env) do.
///
/// Actions:
///  * delay N ms   — sleep, then continue (slow-path simulation);
///  * error CODE   — return a Status of that code from the seam;
///  * trip once    — the action fires on the first hit only, then the
///                   failpoint disarms itself (one bad request, then a
///                   healthy service).
///
/// Env syntax (parsed by ArmFromEnv, ';'-separated):
///   QGP_FAILPOINTS="engine.submit=error:Unavailable;service.dispatch_dequeue=delay:50"
/// with an optional "once:" prefix on the action:
///   QGP_FAILPOINTS="engine.apply_delta=once:error:IoError"

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace qgp::failpoint {

/// What an armed failpoint does when hit.
struct Action {
  enum class Kind {
    kDelayMs,  ///< sleep delay_ms, then proceed (Hit returns OK)
    kError,    ///< Hit returns Status(code, message)
  };
  Kind kind = Kind::kError;
  /// Sleep length for kDelayMs.
  int64_t delay_ms = 0;
  /// Status for kError.
  StatusCode code = StatusCode::kInternal;
  std::string message;
  /// When true the action fires once, then the failpoint disarms.
  bool once = false;
};

/// Arms (or re-arms) failpoint `name`.
void Arm(std::string_view name, Action action);

/// Disarms `name`; no-op when it was not armed.
void Disarm(std::string_view name);

/// Disarms everything (test teardown).
void DisarmAll();

/// Parses QGP_FAILPOINTS and arms accordingly. Returns the number of
/// failpoints armed; malformed entries are skipped. Call sites: service
/// start and CLI entry — library code never arms implicitly.
size_t ArmFromEnv();

/// Number of currently armed failpoints (relaxed; the macro's guard).
uint64_t ArmedCount();

/// Executes `name`'s armed action, if any. Returns the action's error
/// status for kError, OK otherwise (including unarmed). Hot seams call
/// this through QGP_FAILPOINT so the unarmed path never takes a lock.
Status Hit(std::string_view name);

/// Counts hits of `name` since arming (0 when never armed). For tests
/// asserting a seam actually fired.
uint64_t HitCount(std::string_view name);

}  // namespace qgp::failpoint

/// The seam macro: free when nothing is armed, otherwise runs the named
/// action and propagates its error status out of the enclosing
/// function. Use only in functions returning Status or Result<T>.
#define QGP_FAILPOINT(name)                                        \
  do {                                                             \
    if (::qgp::failpoint::ArmedCount() > 0) {                      \
      QGP_RETURN_IF_ERROR(::qgp::failpoint::Hit(name));            \
    }                                                              \
  } while (0)

/// Non-propagating variant for seams without a Status channel (e.g.
/// the raw socket writer): evaluates to the action's Status so the
/// caller can map it onto its own failure convention.
#define QGP_FAILPOINT_STATUS(name)                                 \
  (::qgp::failpoint::ArmedCount() > 0 ? ::qgp::failpoint::Hit(name) \
                                      : ::qgp::Status::Ok())

#endif  // QGP_COMMON_FAILPOINT_H_
