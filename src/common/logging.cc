#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace qgp {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void Logger::SetMinLevel(LogLevel level) { g_min_level.store(level); }

LogLevel Logger::min_level() { return g_min_level.load(); }

void Logger::Log(LogLevel level, const char* file, int line,
                 const std::string& msg) {
  if (level < min_level()) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), Basename(file),
               line, msg.c_str());
}

}  // namespace qgp
