#ifndef QGP_COMMON_LOGGING_H_
#define QGP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace qgp {

/// Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal thread-safe logger writing to stderr. The global minimum level
/// defaults to kWarning so library internals stay quiet; benches and
/// examples raise it explicitly.
class Logger {
 public:
  /// Sets the global minimum severity that will be emitted.
  static void SetMinLevel(LogLevel level);

  /// Current global minimum severity.
  static LogLevel min_level();

  /// Emits one formatted line: "[LEVEL] file:line msg".
  static void Log(LogLevel level, const char* file, int line,
                  const std::string& msg);
};

namespace internal_logging {

/// Stream-style builder used by the QGP_LOG macro; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Log(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Stream-style logging: QGP_LOG(kInfo) << "loaded " << n << " edges";
#define QGP_LOG(severity)                                              \
  if (::qgp::LogLevel::severity < ::qgp::Logger::min_level()) {        \
  } else                                                               \
    ::qgp::internal_logging::LogMessage(::qgp::LogLevel::severity,     \
                                        __FILE__, __LINE__)            \
        .stream()

}  // namespace qgp

#endif  // QGP_COMMON_LOGGING_H_
