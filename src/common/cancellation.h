#ifndef QGP_COMMON_CANCELLATION_H_
#define QGP_COMMON_CANCELLATION_H_

/// \file
/// Cooperative cancellation: a CancelToken combines an explicit cancel
/// flag with an optional steady-clock deadline. Long-running work
/// (matchers, candidate-space builds, fixpoint rounds) polls
/// ShouldStop() at coarse granularity — per focus, per fixpoint round,
/// per fragment — and unwinds with ToStatus() when it fires, leaving
/// every shared structure (caches, scratch arenas) in a consistent
/// state. The poll is designed to be cheap enough to sit on those
/// loops unconditionally:
///
///  * the explicit-cancel check is one relaxed atomic load;
///  * the deadline check adds one steady_clock read (tens of
///    nanoseconds — fine per focus; tighter loops stride their own
///    polls, e.g. NaiveMatcher checks every ~1024 extensions);
///  * once either condition fires it latches (sticky), so every
///    subsequent poll is the single relaxed load.
///
/// The deadline read is deliberately NOT strided inside the token: poll
/// sites are coarse by design, and a stride would make firing depend on
/// the poll count — on a small machine a run may poll only a handful of
/// times, and a deadline that is only consulted every N polls could
/// never fire at all.
///
/// Tokens chain: a token constructed with a parent also stops when the
/// parent does (service drain token → per-request deadline token). The
/// chain is followed on the slow path only (when this token has not
/// latched yet); a fired parent latches the child, restoring the
/// one-load fast path.
///
/// Thread safety: RequestCancel/ShouldStop may race freely from any
/// thread. The token must outlive every evaluation polling it.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace qgp {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token with no deadline: stops only on RequestCancel() (or when
  /// `parent` stops).
  explicit CancelToken(const CancelToken* parent = nullptr)
      : parent_(parent) {}

  /// A token that additionally stops once `deadline` passes.
  explicit CancelToken(Clock::time_point deadline,
                       const CancelToken* parent = nullptr)
      : parent_(parent), deadline_(deadline), has_deadline_(true) {}

  /// Convenience: deadline `timeout_ms` from now.
  static CancelToken AfterMillis(int64_t timeout_ms,
                                 const CancelToken* parent = nullptr) {
    return CancelToken(Clock::now() + std::chrono::milliseconds(timeout_ms),
                       parent);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests explicit cancellation. Idempotent; sticky.
  void RequestCancel() { stopped_.store(kCancelledBit, std::memory_order_relaxed); }

  /// True once the token has fired (explicit cancel, elapsed deadline,
  /// or a fired parent). Cheap enough to poll per focus / per round.
  bool ShouldStop() const {
    uint8_t state = stopped_.load(std::memory_order_relaxed);
    if (state != 0) return true;
    // Slow path: the parent chain, then the deadline clock (the
    // parent's own fast path is one load).
    if (parent_ != nullptr && parent_->ShouldStop()) {
      // Latch with the PARENT's reason so ToStatus() reports why.
      stopped_.store(parent_->stopped_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      return true;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      stopped_.store(kDeadlineBit, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Synonym kept for call sites that poll outside an evaluation loop
  /// (operation entry / dispatch dequeue): documents that the caller
  /// wants a current answer, not a cached latch.
  bool ShouldStopExact() const { return ShouldStop(); }

  /// True iff the token latched because of an explicit RequestCancel
  /// (possibly inherited from a parent), as opposed to a deadline.
  bool cancelled() const {
    return stopped_.load(std::memory_order_relaxed) == kCancelledBit;
  }

  /// The Status a stopped evaluation unwinds with: kCancelled for an
  /// explicit cancel, kDeadlineExceeded for an elapsed deadline.
  /// Precondition: the token has fired (callers check ShouldStop*()).
  Status ToStatus() const {
    if (cancelled()) {
      return Status::Cancelled("evaluation cancelled");
    }
    return Status::DeadlineExceeded("evaluation deadline exceeded");
  }

 private:
  static constexpr uint8_t kCancelledBit = 1;
  static constexpr uint8_t kDeadlineBit = 2;

  const CancelToken* parent_ = nullptr;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  /// 0 = running; kCancelledBit / kDeadlineBit once latched. mutable:
  /// latching from const polls is the whole point.
  mutable std::atomic<uint8_t> stopped_{0};
};

/// Polls `token` (nullable) and returns its status out of the enclosing
/// function when it has fired — the standard per-focus / per-round
/// cancellation point.
#define QGP_CHECK_CANCEL(token)                             \
  do {                                                      \
    const ::qgp::CancelToken* _qgp_tok = (token);           \
    if (_qgp_tok != nullptr && _qgp_tok->ShouldStop())      \
      return _qgp_tok->ToStatus();                          \
  } while (0)

}  // namespace qgp

#endif  // QGP_COMMON_CANCELLATION_H_
