#ifndef QGP_COMMON_VERTEX_SET_H_
#define QGP_COMMON_VERTEX_SET_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "common/bitset.h"

namespace qgp {

/// Candidate-set kernels shared by the matcher hot paths: a touched-word
/// bitset whose reset costs O(dirty) instead of O(universe), plus sorted
/// intersection routines (two-pointer merge, galloping for skewed sizes,
/// word-parallel AND for dense sets) with a size-ratio dispatch.
///
/// All sorted-run kernels take ascending uint32 runs (or runs of structs
/// projected to uint32) and append ascending output; they never clear the
/// output vector, so callers can reuse scratch buffers.

/// Bitset over a large universe with O(touched-words) reset: Set/TestAndSet
/// record which 64-bit words became nonzero so ResetTouched() only zeroes
/// those. This is what makes a per-thread visited set reusable across
/// thousands of per-focus ball extractions without O(|V|) clearing each
/// time.
class SparseBitset {
 public:
  /// Grows the universe to at least `n` bits; existing bits survive.
  void EnsureUniverse(size_t n) {
    if (n > size_) {
      size_ = n;
      words_.resize((n + 63) / 64, 0);
    }
  }

  size_t size() const { return size_; }

  bool Test(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1ULL; }

  void Set(size_t i) {
    uint64_t& w = words_[i >> 6];
    if (w == 0) touched_.push_back(static_cast<uint32_t>(i >> 6));
    w |= 1ULL << (i & 63);
  }

  /// Sets bit i; returns whether it was previously clear.
  bool TestAndSet(size_t i) {
    uint64_t& w = words_[i >> 6];
    uint64_t mask = 1ULL << (i & 63);
    if ((w & mask) != 0) return false;
    if (w == 0) touched_.push_back(static_cast<uint32_t>(i >> 6));
    w |= mask;
    return true;
  }

  /// Clears bit i. The word stays on the touched list, so a later
  /// ResetTouched() still works.
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Zeroes every dirtied word; cost proportional to bits set since the
  /// last reset, not to the universe.
  void ResetTouched() {
    for (uint32_t w : touched_) words_[w] = 0;
    touched_.clear();
  }

  /// Raw words, for word-parallel intersection with another bitset.
  std::span<const uint64_t> words() const { return words_; }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
  std::vector<uint32_t> touched_;
};

/// Sorted-run intersections iterate the smaller side and gallop in the
/// larger once the size ratio passes this; below it a two-pointer merge
/// has better constants.
inline constexpr size_t kGallopRatio = 16;

/// First position in [first, last) not less than `key`, found by
/// exponential probing followed by binary search — O(log distance) when
/// matches cluster near `first`, which is what makes galloping
/// intersection O(small · log(large/small)).
template <typename T, typename Proj>
const T* GallopLowerBound(const T* first, const T* last, uint32_t key,
                          Proj proj) {
  const size_t len = static_cast<size_t>(last - first);
  size_t bound = 1;
  while (bound < len && proj(first[bound]) < key) bound <<= 1;
  const size_t lo = bound >> 1;
  const size_t hi = std::min(bound + 1, len);
  return std::partition_point(first + lo, first + hi,
                              [&](const T& x) { return proj(x) < key; });
}

inline const uint32_t* GallopLowerBound(const uint32_t* first,
                                        const uint32_t* last, uint32_t key) {
  return GallopLowerBound(first, last, key, [](uint32_t x) { return x; });
}

/// Intersection of a sorted projected run `a` with a sorted uint32 run
/// `b`, appending the common values to `out` in ascending order.
/// Dispatches on the size ratio: two-pointer merge for comparable sizes,
/// galloping over the larger side when skewed by >= kGallopRatio.
template <typename T, typename Proj>
void IntersectSortedInto(std::span<const T> a, Proj proj,
                         std::span<const uint32_t> b,
                         std::vector<uint32_t>& out) {
  if (a.empty() || b.empty()) return;
  if (a.size() * kGallopRatio <= b.size()) {
    // a much smaller: gallop through b.
    const uint32_t* bit = b.data();
    const uint32_t* bend = b.data() + b.size();
    for (const T& x : a) {
      const uint32_t key = proj(x);
      bit = GallopLowerBound(bit, bend, key);
      if (bit == bend) return;
      if (*bit == key) out.push_back(key);
    }
    return;
  }
  if (b.size() * kGallopRatio <= a.size()) {
    // b much smaller: gallop through a.
    const T* ait = a.data();
    const T* aend = a.data() + a.size();
    for (uint32_t key : b) {
      ait = GallopLowerBound(ait, aend, key, proj);
      if (ait == aend) return;
      if (proj(*ait) == key) out.push_back(key);
    }
    return;
  }
  // Comparable sizes: linear two-pointer merge.
  const T* ait = a.data();
  const T* aend = a.data() + a.size();
  const uint32_t* bit = b.data();
  const uint32_t* bend = b.data() + b.size();
  while (ait != aend && bit != bend) {
    const uint32_t av = proj(*ait);
    if (av < *bit) {
      ++ait;
    } else if (*bit < av) {
      ++bit;
    } else {
      out.push_back(av);
      ++ait;
      ++bit;
    }
  }
}

inline void IntersectSortedInto(std::span<const uint32_t> a,
                                std::span<const uint32_t> b,
                                std::vector<uint32_t>& out) {
  IntersectSortedInto(a, [](uint32_t x) { return x; }, b, out);
}

/// Scalar word-parallel AND of two bitset word arrays, decoding the
/// surviving bits (ascending) into `out`. O(min-words); beats
/// element-wise kernels once both sets are dense fractions of the
/// universe. Exposed separately from the dispatching IntersectWordsInto
/// so the property tests can diff the SIMD path against it directly.
inline void IntersectWordsScalarInto(std::span<const uint64_t> a,
                                     std::span<const uint64_t> b,
                                     std::vector<uint32_t>& out) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      out.push_back(static_cast<uint32_t>((i << 6) + bit));
      w &= w - 1;
    }
  }
}

// AVX2 variant: AND four words per vector op and skip all-zero groups
// with one test — sparse intersections of dense sets (long zero runs)
// are where the win lives; surviving words decode bit-by-bit here, and
// via pext in the BMI2 layer below. Compiled via the target attribute
// (no global -mavx2 needed) and selected at runtime, so non-AVX2 hosts
// fall back to the scalar kernel transparently.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QGP_VERTEX_SET_HAS_AVX2 1

inline bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

__attribute__((target("avx2"))) inline void IntersectWordsAvx2Into(
    std::span<const uint64_t> a, std::span<const uint64_t> b,
    std::vector<uint32_t>& out) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    const __m256i vw = _mm256_and_si256(va, vb);
    if (_mm256_testz_si256(vw, vw)) continue;
    alignas(32) uint64_t words[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(words), vw);
    for (size_t k = 0; k < 4; ++k) {
      uint64_t w = words[k];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        out.push_back(static_cast<uint32_t>(((i + k) << 6) + bit));
        w &= w - 1;
      }
    }
  }
  for (; i < n; ++i) {
    uint64_t w = a[i] & b[i];
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      out.push_back(static_cast<uint32_t>((i << 6) + bit));
      w &= w - 1;
    }
  }
}

// BMI2 layer on top of the AVX2 kernel: surviving words decode via
// pdep/pext instead of the ctz/clear-lowest loop. Per 16-bit chunk,
// pdep spreads the chunk's bits into nibble masks and pext compresses
// the constant 0xfedc...3210 index table through them, yielding the set
// bit positions packed one per nibble in ascending order — popcount
// pushes, no data-dependent branch per bit. Worth it exactly where the
// AVX2 kernel leaves off: dense survivors with many set bits per word.
// (pdep/pext are microcoded and slow on pre-Zen3 AMD; the runtime
// check only asks "supported", so those hosts take the slow-but-
// correct path — same answers, see the property fuzz suite.)
#define QGP_VERTEX_SET_HAS_BMI2 1

inline bool CpuHasBmi2() {
  static const bool has = __builtin_cpu_supports("bmi2");
  return has;
}

/// Appends the set-bit positions of `w` (offset by `base`) to `out` in
/// ascending order. Exposed so the property tests can diff it against
/// the ctz-loop decode word by word.
__attribute__((target("bmi2"))) inline void DecodeWordBmi2Into(
    uint64_t w, uint32_t base, std::vector<uint32_t>& out) {
  for (uint32_t c = 0; c < 4; ++c) {
    const uint64_t m = (w >> (c * 16)) & 0xFFFFULL;
    if (m == 0) continue;
    // Each set bit of m becomes a full-nibble mask; multiplying the
    // pdep'd single bits by 0xF cannot carry across nibbles.
    const uint64_t spread = _pdep_u64(m, 0x1111111111111111ULL) * 0xF;
    uint64_t idx = _pext_u64(0xfedcba9876543210ULL, spread);
    const uint32_t cbase = base + c * 16;
    for (int k = __builtin_popcountll(m); k > 0; --k) {
      out.push_back(cbase + static_cast<uint32_t>(idx & 0xF));
      idx >>= 4;
    }
  }
}

__attribute__((target("avx2,bmi2"))) inline void IntersectWordsAvx2Bmi2Into(
    std::span<const uint64_t> a, std::span<const uint64_t> b,
    std::vector<uint32_t>& out) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + i));
    const __m256i vw = _mm256_and_si256(va, vb);
    if (_mm256_testz_si256(vw, vw)) continue;
    alignas(32) uint64_t words[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(words), vw);
    for (size_t k = 0; k < 4; ++k) {
      if (words[k] == 0) continue;
      DecodeWordBmi2Into(words[k], static_cast<uint32_t>((i + k) << 6), out);
    }
  }
  for (; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    if (w == 0) continue;
    DecodeWordBmi2Into(w, static_cast<uint32_t>(i << 6), out);
  }
}
#endif  // x86-64 GCC/Clang

/// Word-parallel AND with SIMD dispatch: the size-ratio dispatches in
/// CandidateSpace and the matchers call this for the dense/dense case;
/// it picks the AVX2+BMI2 kernel when the host supports both, the plain
/// AVX2 kernel with AVX2 alone, and the scalar kernel otherwise. Output
/// is identical in all three cases (the property tests fuzz each tier
/// against the sorted-set oracle).
inline void IntersectWordsInto(std::span<const uint64_t> a,
                               std::span<const uint64_t> b,
                               std::vector<uint32_t>& out) {
#if defined(QGP_VERTEX_SET_HAS_AVX2)
  if (CpuHasAvx2()) {
    if (CpuHasBmi2()) {
      IntersectWordsAvx2Bmi2Into(a, b, out);
    } else {
      IntersectWordsAvx2Into(a, b, out);
    }
    return;
  }
#endif
  IntersectWordsScalarInto(a, b, out);
}

}  // namespace qgp

#endif  // QGP_COMMON_VERTEX_SET_H_
