#ifndef QGP_COMMON_RNG_H_
#define QGP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qgp {

/// Deterministic, fast pseudo-random number generator (splitmix64 core).
/// Every stochastic component in the library (generators, workload
/// sampling) takes an explicit Rng so runs are reproducible from a seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 42) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Approximately Zipf-distributed rank in [0, n) with exponent `s`.
  /// Used by the scale-free graph generators for degree skew.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Draws `k` distinct indices from [0, n). Returns fewer when k > n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Forks an independent stream (for per-thread determinism).
  Rng Fork();

 private:
  uint64_t state_;
};

}  // namespace qgp

#endif  // QGP_COMMON_RNG_H_
