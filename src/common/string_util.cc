#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace qgp {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= s.size()) {
    size_t end = s.find(sep, begin);
    if (end == std::string_view::npos) end = s.size();
    if (end > begin) out.emplace_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t begin = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > begin) out.emplace_back(s.substr(begin, i - begin));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars<double> is not universally available with older
  // libstdc++; strtod on a NUL-terminated copy is portable.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace qgp
