#ifndef QGP_COMMON_BITSET_H_
#define QGP_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace qgp {

/// Flat dynamic bitset. Used for visited sets in BFS / ball extraction and
/// match bookkeeping, where std::vector<bool> proxies and unordered_set
/// overhead both hurt.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `n` bits, all clear.
  explicit DynamicBitset(size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// Number of bits.
  size_t size() const { return size_; }

  /// Resizes, preserving existing bits; new bits are clear.
  void Resize(size_t n) {
    size_ = n;
    words_.resize((n + 63) / 64, 0);
  }

  /// Sets bit i. Precondition: i < size().
  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  /// Clears bit i. Precondition: i < size().
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Tests bit i. Precondition: i < size().
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Sets bit i and returns whether it was previously clear.
  bool TestAndSet(size_t i) {
    uint64_t& w = words_[i >> 6];
    uint64_t mask = 1ULL << (i & 63);
    bool was_clear = (w & mask) == 0;
    w |= mask;
    return was_clear;
  }

  /// Clears all bits.
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
    return total;
  }

  /// Raw 64-bit words, for word-parallel set operations (see
  /// IntersectWordsInto in common/vertex_set.h).
  std::span<const uint64_t> words() const { return words_; }

  /// Order-sensitive content hash (FNV-1a over words); used to detect
  /// that two bitsets encode the same set, e.g. when validating cached
  /// artifacts parameterized by a filter.
  uint64_t Fingerprint() const {
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t w : words_) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return h ^ size_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace qgp

#endif  // QGP_COMMON_BITSET_H_
