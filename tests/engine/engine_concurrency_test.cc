// Engine monitoring-under-load suite: telemetry and maintenance entry
// points (stats / EvictUnused / ClearResultCache) must never stall
// behind a running evaluation — they live behind their own short-held
// leaf locks, not the admission lock. The suite drives them
// concurrently with long Submit batches (the TSan CI leg runs it via
// the `scheduler` label) and pins down the latency contract: a stats()
// snapshot completes in well under a millisecond while a multi-second
// batch holds the admission lock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

Graph MakeGraph(uint64_t seed, size_t vertices) {
  SyntheticConfig gc;
  gc.num_vertices = vertices;
  gc.num_edges = vertices * 3;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

std::vector<QuerySpec> MakeWorkload(Graph& g, uint64_t seed, size_t repeats) {
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 5;
  pc.num_quantified = 1;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 5, pc, seed);
  std::vector<QuerySpec> workload;
  for (size_t r = 0; r < repeats; ++r) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      QuerySpec spec;
      spec.pattern = patterns[i];
      spec.algo = (i % 2 == 0) ? EngineAlgo::kQMatch : EngineAlgo::kQMatchn;
      spec.tag = "q" + std::to_string(i);
      workload.push_back(std::move(spec));
    }
  }
  return workload;
}

// The latency contract: while a long RunBatch holds the admission lock,
// stats() still answers in sub-millisecond time. The minimum over many
// samples is the robust statistic (scheduler preemption inflates the
// max, never the min), and the batch-still-running flag proves every
// sample really raced a held admission lock.
TEST(EngineConcurrencyTest, StatsIsSubMillisecondWhileBatchRuns) {
  Graph g = MakeGraph(7, 400);
  std::vector<QuerySpec> workload = MakeWorkload(g, 7, 60);
  QueryEngine engine(&g, EngineOptions{});

  std::atomic<bool> batch_done{false};
  std::thread batch([&] {
    auto outcomes = engine.RunBatch(workload);
    EXPECT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    batch_done.store(true);
  });

  // Wait until evaluation work is observably underway.
  while (engine.stats().queries == 0 && !batch_done.load()) {
    std::this_thread::yield();
  }

  using Clock = std::chrono::steady_clock;
  auto min_latency = std::chrono::nanoseconds::max();
  size_t samples_during_batch = 0;
  while (!batch_done.load() && samples_during_batch < 200) {
    const auto t0 = Clock::now();
    const EngineStats snapshot = engine.stats();
    const auto dt = Clock::now() - t0;
    if (batch_done.load()) break;  // sample may not have raced the lock
    ++samples_during_batch;
    if (dt < min_latency) min_latency = dt;
    EXPECT_LE(snapshot.queries, workload.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  batch.join();

  ASSERT_GT(samples_during_batch, 0u)
      << "batch finished before any stats sample - widen the workload";
  EXPECT_LT(min_latency, std::chrono::milliseconds(1))
      << "stats() is stalling behind the admission lock";
  EXPECT_EQ(engine.stats().queries, workload.size());
}

// Monitoring and maintenance from many threads concurrent with
// evaluation: no deadlock, no lost counts, and (under the TSan leg) no
// data races. ClearResultCache and EvictUnused interleave with Submits
// without perturbing answers — each query's answers are compared
// against a serial reference run.
TEST(EngineConcurrencyTest, MaintenanceRacesEvaluationSafely) {
  Graph g = MakeGraph(13, 120);
  std::vector<QuerySpec> workload = MakeWorkload(g, 13, 4);

  // Serial reference on a separate engine.
  QueryEngine reference(&g, EngineOptions{});
  auto expected = reference.RunBatch(workload);
  ASSERT_TRUE(expected.ok());

  EngineOptions opts;
  opts.enable_result_cache = true;
  QueryEngine engine(&g, opts);
  std::atomic<bool> stop{false};

  std::thread monitor([&] {
    while (!stop.load()) {
      const EngineStats s = engine.stats();
      EXPECT_EQ(s.failed, 0u);
      std::this_thread::yield();
    }
  });
  std::thread evictor([&] {
    while (!stop.load()) {
      engine.EvictUnused();
      engine.ClearResultCache();
      std::this_thread::yield();
    }
  });

  constexpr size_t kClients = 3;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < workload.size(); ++i) {
        auto outcome = engine.Submit(workload[i]);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        EXPECT_EQ(outcome->answers, (*expected)[i].answers)
            << workload[i].tag;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  monitor.join();
  evictor.join();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, kClients * workload.size());
  EXPECT_EQ(stats.failed, 0u);
}

// ApplyDelta racing Submit / stats() / EvictUnused(): deltas sequence
// through the admission lock, so every concurrently submitted query
// must see entirely one of the graph versions — its answers equal the
// serial reference of SOME version the query could have run under
// (bracketed by graph_version() reads before and after), never a blend.
// The TSan leg additionally proves the version mirror and telemetry
// paths race-free.
TEST(EngineConcurrencyTest, DeltaRacesEvaluationAtomically) {
  Graph base = MakeGraph(21, 120);
  std::vector<QuerySpec> workload = MakeWorkload(base, 21, 1);

  // Precompute the version chain and each version's reference answers.
  constexpr size_t kDeltas = 4;
  const Label el0 = base.dict().Find("el0");
  const Label nl0 = base.dict().Find("nl0");
  std::vector<GraphDelta> deltas;
  {
    std::mt19937 rng(17);
    Graph cursor = base;
    for (size_t k = 0; k < kDeltas; ++k) {
      std::vector<VertexId> alive;
      for (VertexId v = 0; v < cursor.num_vertices(); ++v) {
        if (cursor.vertex_label(v) != kInvalidLabel) alive.push_back(v);
      }
      GraphDelta d;
      for (int i = 0; i < 6; ++i) {
        d.add_edges.push_back({alive[rng() % alive.size()],
                               alive[rng() % alive.size()], el0});
      }
      d.remove_vertices.push_back(alive[rng() % alive.size()]);
      d.add_vertices.push_back(nl0);
      ASSERT_TRUE(cursor.ApplyDelta(d).ok());
      deltas.push_back(std::move(d));
    }
  }
  std::vector<std::vector<AnswerSet>> per_version;  // [version][query]
  {
    Graph cursor = base;
    for (size_t k = 0; k <= kDeltas; ++k) {
      QueryEngine reference(&cursor, EngineOptions{});
      auto outcomes = reference.RunBatch(workload);
      ASSERT_TRUE(outcomes.ok());
      std::vector<AnswerSet> answers;
      for (const QueryOutcome& o : *outcomes) answers.push_back(o.answers);
      per_version.push_back(std::move(answers));
      if (k < kDeltas) {
        ASSERT_TRUE(cursor.ApplyDelta(deltas[k]).ok());
      }
    }
  }

  QueryEngine engine(std::move(base), EngineOptions{});
  const uint64_t v0 = engine.graph_version();
  std::atomic<bool> stop{false};

  std::thread monitor([&] {
    while (!stop.load()) {
      const EngineStats s = engine.stats();
      EXPECT_EQ(s.failed, 0u);
      EXPECT_LE(engine.graph_version() - v0, kDeltas);
      std::this_thread::yield();
    }
  });
  std::thread evictor([&] {
    while (!stop.load()) {
      engine.EvictUnused();
      std::this_thread::yield();
    }
  });
  std::thread mutator([&] {
    for (const GraphDelta& d : deltas) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      auto outcome = engine.ApplyDelta(d);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
  });

  auto check_round = [&] {
    for (size_t i = 0; i < workload.size(); ++i) {
      const uint64_t before = engine.graph_version() - v0;
      auto outcome = engine.Submit(workload[i]);
      const uint64_t after = engine.graph_version() - v0;
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      bool matched = false;
      for (uint64_t k = before; k <= after && !matched; ++k) {
        matched = outcome->answers == per_version[k][i];
      }
      EXPECT_TRUE(matched)
          << workload[i].tag << " answers match no version in ["
          << before << ", " << after << "]";
    }
  };
  constexpr size_t kClients = 3;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < 8; ++round) check_round();
    });
  }
  for (std::thread& t : clients) t.join();
  mutator.join();
  stop.store(true);
  monitor.join();
  evictor.join();

  // Quiescent: all deltas applied, queries now see the final version.
  EXPECT_EQ(engine.graph_version() - v0, kDeltas);
  for (size_t i = 0; i < workload.size(); ++i) {
    auto outcome = engine.Submit(workload[i]);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->answers, per_version[kDeltas][i]) << workload[i].tag;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.deltas, kDeltas);
  EXPECT_EQ(stats.failed, 0u);
}

}  // namespace
}  // namespace qgp
