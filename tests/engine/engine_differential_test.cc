// Engine-batch differential suite: the semantics lock for the engine
// layer. On randomized (graph, workload) pairs, a QueryEngine evaluating
// a mixed-algorithm batch must be ANSWER- and MATCHSTATS-identical to
// standalone per-query runs (serial, no shared cache) — at thread counts
// {1, 2, 4, 8}, with cache-pressure eviction interleaved between batch
// entries, and under concurrent Submit from multiple client threads.
// Only the scheduler telemetry (MatchStats::scheduler_tasks/steals) may
// differ; every work counter must match exactly, which is what makes the
// engine's shared-cache + shared-pool reuse a pure optimization.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/enum_matcher.h"
#include "core/qmatch.h"
#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 50 + seed % 23;
  gc.num_edges = 150 + (seed % 11) * 9;
  gc.num_node_labels = 4 + seed % 3;
  gc.num_edge_labels = 3;
  gc.model = (seed % 2 == 0) ? SyntheticConfig::Model::kSmallWorld
                             : SyntheticConfig::Model::kPowerLaw;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

// A mixed workload: two pattern families (different shapes, one with
// negated edges) interleaved, algorithms rotating qmatch / qmatchn /
// enum so one batch exercises every sequential dispatch path.
std::vector<QuerySpec> MakeWorkload(const Graph& g, uint64_t seed) {
  PatternGenConfig small;
  small.num_nodes = 4;
  small.num_edges = 4;
  small.num_quantified = 1;
  small.num_negated = seed % 2;
  PatternGenConfig larger;
  larger.num_nodes = 5;
  larger.num_edges = 5;
  larger.num_quantified = 2;
  larger.num_negated = 1;
  std::vector<Pattern> a = GeneratePatternSuite(g, 4, small, seed * 13 + 1);
  std::vector<Pattern> b = GeneratePatternSuite(g, 3, larger, seed * 17 + 5);
  a.insert(a.end(), b.begin(), b.end());

  const EngineAlgo algos[] = {EngineAlgo::kQMatch, EngineAlgo::kQMatchn,
                              EngineAlgo::kEnum};
  std::vector<QuerySpec> workload;
  for (size_t i = 0; i < a.size(); ++i) {
    QuerySpec spec;
    spec.pattern = std::move(a[i]);
    spec.algo = algos[i % 3];
    spec.options.max_isomorphisms = 2'000'000;
    spec.tag = "q" + std::to_string(i);
    workload.push_back(std::move(spec));
  }
  return workload;
}

// Standalone reference for one spec: the per-query API, serial, no
// shared state. Returns false when the (capped) evaluation overflows —
// the caller then drops the spec from the workload entirely.
bool RunStandalone(const QuerySpec& spec, const Graph& g, AnswerSet* answers,
                   MatchStats* stats) {
  Result<AnswerSet> r = Status::Ok();
  switch (*spec.algo) {
    case EngineAlgo::kQMatch:
      r = QMatch::Evaluate(spec.pattern, g, spec.options, stats);
      break;
    case EngineAlgo::kQMatchn:
      r = QMatchNaiveEvaluate(spec.pattern, g, spec.options, stats);
      break;
    default:
      r = EnumMatcher::Evaluate(spec.pattern, g, spec.options, stats);
      break;
  }
  if (!r.ok()) return false;
  *answers = std::move(r).value();
  return true;
}

// Work-counter identity: every MatchStats field except the scheduler
// telemetry, which deliberately describes the schedule rather than the
// work (see match_types.h).
void ExpectSameWork(const MatchStats& a, const MatchStats& b,
                    const std::string& context) {
  EXPECT_EQ(a.isomorphisms_enumerated, b.isomorphisms_enumerated) << context;
  EXPECT_EQ(a.witness_searches, b.witness_searches) << context;
  EXPECT_EQ(a.search_extensions, b.search_extensions) << context;
  EXPECT_EQ(a.candidates_initial, b.candidates_initial) << context;
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned) << context;
  EXPECT_EQ(a.focus_candidates_checked, b.focus_candidates_checked) << context;
  EXPECT_EQ(a.inc_candidates_checked, b.inc_candidates_checked) << context;
  EXPECT_EQ(a.balls_built, b.balls_built) << context;
}

struct Reference {
  std::vector<QuerySpec> workload;
  std::vector<AnswerSet> answers;
  std::vector<MatchStats> stats;
};

Reference MakeReference(const Graph& g, uint64_t seed) {
  Reference ref;
  for (QuerySpec& spec : MakeWorkload(g, seed)) {
    AnswerSet answers;
    MatchStats stats;
    if (!RunStandalone(spec, g, &answers, &stats)) continue;  // overflow
    ref.workload.push_back(std::move(spec));
    ref.answers.push_back(std::move(answers));
    ref.stats.push_back(stats);
  }
  return ref;
}

// The headline contract: batches through an engine at any thread count
// are answer- and work-counter-identical to standalone serial runs.
TEST(EngineDifferentialTest, BatchesMatchStandaloneAtAllThreadCounts) {
  size_t compared = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = MakeGraph(seed);
    Reference ref = MakeReference(g, seed);
    if (ref.workload.empty()) continue;
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      EngineOptions opts;
      opts.num_threads = threads;
      QueryEngine engine(&g, opts);
      auto outcomes = engine.RunBatch(ref.workload);
      ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
      ASSERT_EQ(outcomes->size(), ref.workload.size());
      for (size_t i = 0; i < outcomes->size(); ++i) {
        const std::string context =
            "seed " + std::to_string(seed) + " threads " +
            std::to_string(threads) + " " + ref.workload[i].tag + " (" +
            EngineAlgoName(*ref.workload[i].algo) + ")";
        EXPECT_EQ((*outcomes)[i].answers, ref.answers[i]) << context;
        ExpectSameWork((*outcomes)[i].stats, ref.stats[i], context);
        ++compared;
      }
      // Cumulative engine stats are the sum of the per-query ones.
      MatchStats sum;
      for (const QueryOutcome& o : *outcomes) sum.Add(o.stats);
      ExpectSameWork(engine.stats().match, sum,
                     "cumulative, seed " + std::to_string(seed));
    }
  }
  EXPECT_GE(compared, 100u) << "suite lost its volume; widen the seeds";
}

// Cache eviction interleaved between batch entries — a server shedding
// memory mid-workload — must not change answers or work counters.
TEST(EngineDifferentialTest, EvictionBetweenEntriesChangesNothing) {
  size_t compared = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = MakeGraph(seed + 40);
    Reference ref = MakeReference(g, seed + 40);
    for (size_t threads : {1u, 4u}) {
      EngineOptions opts;
      opts.num_threads = threads;
      QueryEngine engine(&g, opts);
      for (size_t i = 0; i < ref.workload.size(); ++i) {
        auto outcome = engine.Submit(ref.workload[i]);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        const std::string context = "seed " + std::to_string(seed) +
                                    " threads " + std::to_string(threads) +
                                    " " + ref.workload[i].tag;
        EXPECT_EQ(outcome->answers, ref.answers[i]) << context;
        ExpectSameWork(outcome->stats, ref.stats[i], context);
        engine.EvictUnused();  // between every pair of entries
        ++compared;
      }
    }
  }
  EXPECT_GE(compared, 40u);
}

// The hard pressure policy (cache_max_entries = 1) exercises the
// admit-evict-readmit churn path on every query.
TEST(EngineDifferentialTest, HardPressurePolicyChangesNothing) {
  for (uint64_t seed = 2; seed <= 4; ++seed) {
    Graph g = MakeGraph(seed + 60);
    Reference ref = MakeReference(g, seed + 60);
    EngineOptions opts;
    opts.num_threads = 2;
    opts.cache_max_entries = 1;
    QueryEngine engine(&g, opts);
    auto outcomes = engine.RunBatch(ref.workload);
    ASSERT_TRUE(outcomes.ok());
    for (size_t i = 0; i < outcomes->size(); ++i) {
      EXPECT_EQ((*outcomes)[i].answers, ref.answers[i]);
      ExpectSameWork((*outcomes)[i].stats, ref.stats[i],
                     "pressure seed " + std::to_string(seed));
    }
  }
}

// Result cache on, workload run three times through one engine: the
// second and third passes are served from memory and must still be
// answer- AND work-counter-identical to the standalone runs (a hit
// replays the original outcome, and the original was identical).
TEST(EngineDifferentialTest, ResultCacheRepeatsMatchStandalone) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = MakeGraph(seed + 80);
    Reference ref = MakeReference(g, seed + 80);
    if (ref.workload.empty()) continue;
    EngineOptions opts;
    opts.num_threads = 2;
    opts.enable_result_cache = true;
    QueryEngine engine(&g, opts);
    for (int pass = 0; pass < 3; ++pass) {
      auto outcomes = engine.RunBatch(ref.workload);
      ASSERT_TRUE(outcomes.ok());
      for (size_t i = 0; i < outcomes->size(); ++i) {
        const std::string context = "seed " + std::to_string(seed) +
                                    " pass " + std::to_string(pass) + " " +
                                    ref.workload[i].tag;
        EXPECT_EQ((*outcomes)[i].result_cache_hit, pass > 0) << context;
        EXPECT_EQ((*outcomes)[i].answers, ref.answers[i]) << context;
        ExpectSameWork((*outcomes)[i].stats, ref.stats[i], context);
      }
    }
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.result_hits, 2 * ref.workload.size());
    EXPECT_EQ(stats.result_misses, ref.workload.size());
  }
}

// Concurrent clients: Submit racing from several threads. Admission
// order is nondeterministic, but every query's answers and work
// counters must still match its standalone run — the shared cache and
// pool may never leak one query's state into another's results.
TEST(EngineDifferentialTest, ConcurrentSubmitsMatchStandalone) {
  Graph g = MakeGraph(77);
  Reference ref = MakeReference(g, 77);
  ASSERT_GE(ref.workload.size(), 2u);
  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine(&g, opts);

  constexpr size_t kClients = 4;
  std::vector<std::vector<AnswerSet>> got(kClients);
  std::vector<std::vector<MatchStats>> got_stats(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (const QuerySpec& spec : ref.workload) {
        auto outcome = engine.Submit(spec);
        ASSERT_TRUE(outcome.ok());
        got[c].push_back(std::move(outcome->answers));
        got_stats[c].push_back(outcome->stats);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), ref.workload.size());
    for (size_t i = 0; i < got[c].size(); ++i) {
      const std::string context =
          "client " + std::to_string(c) + " " + ref.workload[i].tag;
      EXPECT_EQ(got[c][i], ref.answers[i]) << context;
      ExpectSameWork(got_stats[c][i], ref.stats[i], context);
    }
  }
  EXPECT_EQ(engine.stats().queries, kClients * ref.workload.size());
}

}  // namespace
}  // namespace qgp
