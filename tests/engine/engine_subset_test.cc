// EngineOptions::focus_subset — the restriction that turns a QueryEngine
// into a shard. Contract under test, for every algo family:
//
//   Submit(spec) on an engine with focus_subset S ==
//       SetIntersection(Submit(spec) on the full engine, S)
//
// plus the subset lifecycle: an engaged-but-EMPTY subset answers
// nothing (it owns nothing — never "all", which is what an empty span
// means further down the matcher stack); out-of-range ids are dropped
// at construction; ApplyDelta(delta, own) atomically extends the subset
// with newly-owned post-delta ids; and the own-extension overload is
// rejected on engines it cannot apply to.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "core/pattern_parser.h"
#include "graph/graph_builder.h"

namespace qgp {
namespace {

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 50;
  gc.num_edges = 150;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

TEST(EngineSubsetTest, EveryAlgoRestrictsToTheSubset) {
  Graph g = MakeGraph(61);
  // Every other vertex: exercises both "focus in subset" and "focus
  // outside subset" for any pattern with spread-out answers.
  std::vector<VertexId> subset;
  for (VertexId v = 0; v < g.num_vertices(); v += 2) subset.push_back(v);

  EngineOptions full_opts;
  full_opts.num_threads = 2;
  QueryEngine full(&g, full_opts);
  EngineOptions sub_opts = full_opts;
  sub_opts.focus_subset = subset;
  QueryEngine restricted(g, sub_opts);

  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.num_negated = 1;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 8, pc, 7);
  ASSERT_FALSE(suite.empty());

  const EngineAlgo algos[] = {EngineAlgo::kQMatch, EngineAlgo::kQMatchn,
                              EngineAlgo::kEnum, EngineAlgo::kPQMatch,
                              EngineAlgo::kPEnum, EngineAlgo::kAuto};
  size_t compared = 0;
  for (const Pattern& p : suite) {
    if (p.Radius() > 2) continue;  // parallel families' partition depth
    for (EngineAlgo algo : algos) {
      QuerySpec spec;
      spec.pattern = p;
      spec.algo = algo;
      spec.options.max_isomorphisms = 2'000'000;
      auto want = full.Submit(spec);
      auto got = restricted.Submit(spec);
      ASSERT_EQ(got.ok(), want.ok()) << EngineAlgoName(algo);
      if (!got.ok()) continue;
      EXPECT_EQ(got->answers, SetIntersection(want->answers, subset))
          << EngineAlgoName(algo);
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(EngineSubsetTest, EngagedEmptySubsetAnswersNothing) {
  Graph g = MakeGraph(62);
  EngineOptions opts;
  opts.num_threads = 1;
  opts.focus_subset.emplace();  // engaged AND empty: owns nothing
  QueryEngine engine(g, opts);

  PatternGenConfig pc;
  pc.num_nodes = 3;
  pc.num_edges = 2;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 4, pc, 3);
  ASSERT_FALSE(suite.empty());
  for (EngineAlgo algo :
       {EngineAlgo::kQMatch, EngineAlgo::kEnum, EngineAlgo::kPQMatch}) {
    QuerySpec spec;
    spec.pattern = suite[0];
    spec.algo = algo;
    auto out = engine.Submit(spec);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(out->answers.empty()) << EngineAlgoName(algo);
  }

  // Invalid patterns still fail validation — the short-circuit answers
  // empty only for queries that would have been accepted.
  QuerySpec bad;
  bad.pattern = Pattern{};  // no nodes, no focus
  EXPECT_FALSE(engine.Submit(bad).ok());
}

TEST(EngineSubsetTest, OutOfRangeAndDuplicateIdsDropAtConstruction) {
  Graph g = MakeGraph(63);
  std::vector<VertexId> clean = {4, 8, 12};
  EngineOptions messy_opts;
  messy_opts.num_threads = 1;
  messy_opts.focus_subset = std::vector<VertexId>{
      12, 4, 8, 4, static_cast<VertexId>(g.num_vertices() + 100)};
  QueryEngine messy(g, messy_opts);
  EngineOptions clean_opts;
  clean_opts.num_threads = 1;
  clean_opts.focus_subset = clean;
  QueryEngine reference(g, clean_opts);

  PatternGenConfig pc;
  pc.num_nodes = 3;
  pc.num_edges = 2;
  for (Pattern& p : GeneratePatternSuite(g, 4, pc, 5)) {
    QuerySpec spec;
    spec.pattern = std::move(p);
    auto a = messy.Submit(spec);
    auto b = reference.Submit(spec);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->answers, b->answers);
    }
  }
}

// A pinned micro-graph where ownership visibly gates answers, so the
// own-extension of ApplyDelta is observable end to end.
class SubsetDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GraphBuilder b;
    p0_ = b.AddVertex("person");
    p1_ = b.AddVertex("person");
    product_ = b.AddVertex("product");
    (void)b.AddEdge(p0_, product_, "buys");
    (void)b.AddEdge(p1_, product_, "buys");
    graph_ = std::move(std::move(b).Build()).value();
    pattern_text_ = "node x person\nnode y product\nedge x y buys\nfocus x\n";
  }

  // Every label the pattern names is already interned in the fixture
  // graph, so parsing against a dict snapshot yields ids valid for the
  // engine (nothing new is interned).
  Pattern ParseFor(const QueryEngine& engine) {
    LabelDict dict = engine.DictSnapshot();
    return std::move(PatternParser::Parse(pattern_text_, dict)).value();
  }

  Graph graph_;
  VertexId p0_ = 0, p1_ = 0, product_ = 0;
  std::string pattern_text_;
};

TEST_F(SubsetDeltaTest, ApplyDeltaOwnExtendsTheSubset) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.focus_subset = std::vector<VertexId>{p0_};
  QueryEngine engine(graph_, opts);
  QuerySpec spec;
  spec.pattern = ParseFor(engine);

  auto before = engine.Submit(spec);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->answers, (AnswerSet{p0_}));  // p1 matches but is unowned

  // New person buys the product; the coordinator assigns it to us.
  NamedGraphDelta delta;
  delta.add_vertices.push_back("person");
  const VertexId p2 = graph_.num_vertices();  // owning engine copied graph_
  delta.add_edges.push_back({p2, product_, "buys"});
  auto applied = engine.ApplyDelta(delta, std::vector<VertexId>{p2});
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  auto after = engine.Submit(spec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->answers, (AnswerSet{p0_, p2}));  // p1 still unowned
}

TEST_F(SubsetDeltaTest, OwnValidationFailureIsAtomic) {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.focus_subset = std::vector<VertexId>{p0_};
  QueryEngine engine(graph_, opts);
  const uint64_t version_before = engine.graph_version();

  NamedGraphDelta delta;
  delta.add_vertices.push_back("person");
  // Out of range even after the one added vertex: rejected before the
  // delta touches the graph or the subset.
  auto applied = engine.ApplyDelta(
      delta, std::vector<VertexId>{static_cast<VertexId>(
                 graph_.num_vertices() + 5)});
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.graph_version(), version_before);

  QuerySpec spec;
  spec.pattern = ParseFor(engine);
  auto out = engine.Submit(spec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->answers, (AnswerSet{p0_}));
}

TEST_F(SubsetDeltaTest, OwnRejectedWithoutAnEngagedSubset) {
  QueryEngine engine(graph_);  // owning, but no focus subset
  NamedGraphDelta delta;
  delta.add_vertices.push_back("person");
  auto applied = engine.ApplyDelta(delta, std::vector<VertexId>{0});
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SubsetDeltaTest, OwnRejectedOnBorrowingEngine) {
  EngineOptions opts;
  opts.focus_subset = std::vector<VertexId>{p0_};
  QueryEngine engine(&graph_, opts);  // borrows: cannot mutate the graph
  NamedGraphDelta delta;
  delta.add_vertices.push_back("person");
  auto applied = engine.ApplyDelta(delta, std::vector<VertexId>{0});
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qgp
