// Planner suite: the semantics lock for algo = auto. The headline
// differential asserts that an auto query is ANSWER- and MATCHSTATS-
// identical to submitting the planner's chosen algorithm manually, at
// thread counts {1, 2, 4, 8} — the planner may change the schedule but
// never the work. The rest pins the cost model's decision boundaries on
// hand-built graphs, the pattern-family plan cache (quantifier-only
// variants share one entry; ApplyDelta sweeps it), the effective-algo
// result-cache keying, and the cache-bypass path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/planner.h"
#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "graph/graph_builder.h"
#include "graph/graph_delta.h"

namespace qgp {
namespace {

Graph MakeSynthetic(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 60;
  gc.num_edges = 170;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.model = (seed % 2 == 0) ? SyntheticConfig::Model::kSmallWorld
                             : SyntheticConfig::Model::kPowerLaw;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

// A graph whose "user" label has exactly 4 vertices (below the default
// enum_focus_cutoff of 8) and whose "page" label has 30 (above it), so
// cost-model decisions are pinned rather than sampled.
Graph MakeTinyFocusGraph() {
  GraphBuilder b;
  std::vector<VertexId> users, pages;
  for (int i = 0; i < 4; ++i) users.push_back(b.AddVertex("user"));
  for (int i = 0; i < 30; ++i) pages.push_back(b.AddVertex("page"));
  for (size_t u = 0; u < users.size(); ++u) {
    for (size_t p = 0; p < pages.size(); ++p) {
      if ((u + p) % 3 == 0) {
        EXPECT_TRUE(b.AddEdge(users[u], pages[p], "visits").ok());
      }
    }
  }
  return std::move(b).Build().value();
}

// user -visits-> page with a configurable quantifier on the edge,
// focused on the user: the miner's WithPercent enlargement shape.
Pattern UserPattern(const Quantifier& quant) {
  Pattern q;
  PatternNodeId user = q.AddNode(0, "user");  // labels interned in order
  PatternNodeId page = q.AddNode(1, "page");
  (void)q.AddEdge(user, page, 2, quant);  // "visits"
  (void)q.set_focus(user);
  return q;
}

// Work-counter identity: everything but the scheduler telemetry (which
// describes the schedule, not the work — see match_types.h). The
// planner's scheduler_grain fill lands exactly in the excluded fields.
void ExpectSameWork(const MatchStats& a, const MatchStats& b,
                    const std::string& context) {
  EXPECT_EQ(a.isomorphisms_enumerated, b.isomorphisms_enumerated) << context;
  EXPECT_EQ(a.witness_searches, b.witness_searches) << context;
  EXPECT_EQ(a.search_extensions, b.search_extensions) << context;
  EXPECT_EQ(a.candidates_initial, b.candidates_initial) << context;
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned) << context;
  EXPECT_EQ(a.focus_candidates_checked, b.focus_candidates_checked) << context;
  EXPECT_EQ(a.inc_candidates_checked, b.inc_candidates_checked) << context;
  EXPECT_EQ(a.balls_built, b.balls_built) << context;
}

// ---------------------------------------------------------------------
// Family key

TEST(PlannerFamilyKey, StripsQuantifierParameters) {
  // The miner's enlargement loop: same structure, ratios 30/40/…/100.
  const std::string base =
      Planner::FamilyKey(UserPattern(Quantifier::Ratio(QuantOp::kGe, 30.0)));
  for (double p : {40.0, 55.5, 100.0}) {
    EXPECT_EQ(Planner::FamilyKey(UserPattern(Quantifier::Ratio(QuantOp::kGe, p))),
              base);
  }
  // Count thresholds and comparison ops are parameters too.
  EXPECT_EQ(Planner::FamilyKey(UserPattern(Quantifier::Numeric(QuantOp::kGe, 5))),
            base);
  EXPECT_EQ(Planner::FamilyKey(UserPattern(Quantifier::Numeric(QuantOp::kEq, 2))),
            base);
}

TEST(PlannerFamilyKey, SeparatesClassesAndStructure) {
  const std::string counting =
      Planner::FamilyKey(UserPattern(Quantifier::Numeric(QuantOp::kGe, 2)));
  const std::string existential =
      Planner::FamilyKey(UserPattern(Quantifier::Numeric(QuantOp::kGe, 1)));
  const std::string negated =
      Planner::FamilyKey(UserPattern(Quantifier::Negation()));
  // The three quantifier classes are distinct families: they dispatch to
  // genuinely different machinery.
  EXPECT_NE(counting, existential);
  EXPECT_NE(counting, negated);
  EXPECT_NE(existential, negated);

  // Focus and labels are structural.
  Pattern refocused = UserPattern(Quantifier::Numeric(QuantOp::kGe, 2));
  (void)refocused.set_focus(1);
  EXPECT_NE(Planner::FamilyKey(refocused), counting);
  Pattern relabeled;
  PatternNodeId a = relabeled.AddNode(3, "user");
  PatternNodeId b = relabeled.AddNode(1, "page");
  (void)relabeled.AddEdge(a, b, 2, Quantifier::Numeric(QuantOp::kGe, 2));
  (void)relabeled.set_focus(a);
  EXPECT_NE(Planner::FamilyKey(relabeled), counting);
}

// ---------------------------------------------------------------------
// The differential: auto ≡ the manually submitted plan

// Submit every pattern under algo = auto, read back the planner's
// choice, then run the identical spec with that algorithm requested
// explicitly on a fresh engine. Answers and work counters must match
// exactly at every thread count — auto is a routing decision, never a
// semantic one.
TEST(PlannerDifferential, AutoMatchesManualChoiceAtAllThreadCounts) {
  size_t compared = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = MakeSynthetic(seed);
    PatternGenConfig pc;
    pc.num_nodes = 4;
    pc.num_edges = 4;
    pc.num_quantified = 1;
    pc.num_negated = seed % 2;
    std::vector<Pattern> suite = GeneratePatternSuite(g, 5, pc, seed * 13 + 1);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      EngineOptions opts;
      opts.num_threads = threads;
      QueryEngine auto_engine(&g, opts);
      QueryEngine manual_engine(&g, opts);
      for (size_t i = 0; i < suite.size(); ++i) {
        QuerySpec spec;
        spec.pattern = suite[i];
        spec.algo = EngineAlgo::kAuto;
        spec.options.max_isomorphisms = 2'000'000;
        spec.tag = "q" + std::to_string(i);
        auto planned = auto_engine.Submit(spec);
        if (!planned.ok()) continue;  // overflow under caps: skip
        ASSERT_NE(planned->algo, EngineAlgo::kAuto)
            << "auto must resolve to a concrete matcher";

        spec.algo = planned->algo;
        auto manual = manual_engine.Submit(spec);
        ASSERT_TRUE(manual.ok()) << manual.status().ToString();
        const std::string context =
            "seed " + std::to_string(seed) + " t" + std::to_string(threads) +
            " " + spec.tag + " (" + EngineAlgoName(planned->algo) + ")";
        EXPECT_EQ(planned->answers, manual->answers) << context;
        ExpectSameWork(planned->stats, manual->stats, context);
        ++compared;
      }
    }
  }
  EXPECT_GE(compared, 60u) << "suite lost its volume; widen the seeds";
}

// ---------------------------------------------------------------------
// Decision boundaries (hand-built graph, pinned cutoffs)

TEST(PlannerDecisions, TinyFocusConventionalPlansToEnum) {
  Graph g = MakeTinyFocusGraph();
  QueryEngine engine(&g);
  QuerySpec spec;
  spec.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 1));
  spec.algo = EngineAlgo::kAuto;
  auto outcome = engine.Submit(spec);
  ASSERT_TRUE(outcome.ok());
  // 4 "user" foci <= enum_focus_cutoff (8), no counting quantifier:
  // enumerate-then-verify wins.
  EXPECT_EQ(outcome->algo, EngineAlgo::kEnum);

  // The same shape focused on "page" (30 candidates) crosses the cutoff.
  QuerySpec wide = spec;
  (void)wide.pattern.set_focus(1);
  auto wide_outcome = engine.Submit(wide);
  ASSERT_TRUE(wide_outcome.ok());
  EXPECT_EQ(wide_outcome->algo, EngineAlgo::kQMatch);

  // A counting quantifier disqualifies enum regardless of focus count.
  QuerySpec counting = spec;
  counting.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 2));
  auto counting_outcome = engine.Submit(counting);
  ASSERT_TRUE(counting_outcome.ok());
  EXPECT_EQ(counting_outcome->algo, EngineAlgo::kQMatch);
}

TEST(PlannerDecisions, NegatedPatternsPlanToQmatchAndRespectOptions) {
  Graph g = MakeTinyFocusGraph();
  QueryEngine engine(&g);
  QuerySpec spec;
  spec.pattern = UserPattern(Quantifier::Negation());
  spec.algo = EngineAlgo::kAuto;
  auto outcome = engine.Submit(spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->algo, EngineAlgo::kQMatch);
  EXPECT_FALSE(outcome->plan_cache_hit);

  // Same family, incremental negation disabled: the plan entry is
  // shared (the rename happens after the cache lookup) and the
  // effective algorithm is reported as the qmatchn baseline.
  spec.options.use_incremental_negation = false;
  auto naive = engine.Submit(spec);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->algo, EngineAlgo::kQMatchn);
  EXPECT_TRUE(naive->plan_cache_hit);
  EXPECT_EQ(naive->answers, outcome->answers);
}

TEST(PlannerDecisions, PartitionCutoffRoutesToParallelAlgos) {
  Graph g = MakeTinyFocusGraph();
  EngineOptions opts;
  // Force "this graph is big enough to shard" so the partition branch is
  // exercised without a 200k-vertex fixture.
  opts.planner.partition_vertex_cutoff = 1;
  QueryEngine engine(&g, opts);

  QuerySpec counting;
  counting.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 2));
  counting.algo = EngineAlgo::kAuto;
  auto pq = engine.Submit(counting);
  ASSERT_TRUE(pq.ok());
  EXPECT_EQ(pq->algo, EngineAlgo::kPQMatch);

  QuerySpec conventional;
  conventional.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 1));
  conventional.algo = EngineAlgo::kAuto;
  auto pe = engine.Submit(conventional);
  ASSERT_TRUE(pe.ok());
  EXPECT_EQ(pe->algo, EngineAlgo::kPEnum);

  // Parallel routing is still answer-identical to the serial picks.
  EngineOptions serial_opts;
  QueryEngine serial(&g, serial_opts);
  auto pq_serial = serial.Submit(counting);
  auto pe_serial = serial.Submit(conventional);
  ASSERT_TRUE(pq_serial.ok());
  ASSERT_TRUE(pe_serial.ok());
  EXPECT_EQ(pq->answers, pq_serial->answers);
  EXPECT_EQ(pe->answers, pe_serial->answers);
}

// ---------------------------------------------------------------------
// Plan cache

TEST(PlannerCache, QuantifierVariantsShareOnePlan) {
  Graph g = MakeTinyFocusGraph();
  QueryEngine engine(&g);
  // The miner's enlargement loop: ratio 30 → 100 in steps of 10.
  size_t submitted = 0;
  for (double p = 30.0; p <= 100.0; p += 10.0) {
    QuerySpec spec;
    spec.pattern = UserPattern(Quantifier::Ratio(QuantOp::kGe, p));
    spec.algo = EngineAlgo::kAuto;
    auto outcome = engine.Submit(spec);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->plan_cache_hit, submitted > 0) << "percent " << p;
    ++submitted;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plans_built, 1u);
  EXPECT_EQ(stats.plan_hits, submitted - 1);
}

TEST(PlannerCache, DeltaSweepsPlanCacheExactly) {
  Graph base = MakeTinyFocusGraph();
  QueryEngine engine(std::move(base));
  QuerySpec counting;
  counting.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 2));
  counting.algo = EngineAlgo::kAuto;
  QuerySpec negated;
  negated.pattern = UserPattern(Quantifier::Negation());
  negated.algo = EngineAlgo::kAuto;
  ASSERT_TRUE(engine.Submit(counting).ok());
  ASSERT_TRUE(engine.Submit(negated).ok());

  // A no-op delta still bumps the version: every stored plan predates it.
  auto outcome = engine.ApplyDelta(GraphDelta{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->plans_invalidated, 2u);
  EXPECT_EQ(engine.stats().plans_invalidated, 2u);

  // Post-delta the family re-plans (miss), then caches again (hit).
  auto miss = engine.Submit(counting);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->plan_cache_hit);
  auto hit = engine.Submit(counting);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->plan_cache_hit);
}

TEST(PlannerCache, CacheBypassingSpecsSkipThePlanCache) {
  Graph g = MakeTinyFocusGraph();
  QueryEngine engine(&g);
  QuerySpec spec;
  spec.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 2));
  spec.algo = EngineAlgo::kAuto;
  spec.share_cache = false;
  for (int i = 0; i < 3; ++i) {
    auto outcome = engine.Submit(spec);
    ASSERT_TRUE(outcome.ok());
    // Fresh estimate, fresh plan, nothing stored: never a hit.
    EXPECT_FALSE(outcome->plan_cache_hit);
    EXPECT_EQ(outcome->algo, EngineAlgo::kQMatch);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.plans_built, 3u);
  EXPECT_EQ(stats.plan_hits, 0u);
}

// ---------------------------------------------------------------------
// Effective-algo result-cache keying (the cache-collision regression)

TEST(PlannerResultCache, AutoSharesEntriesWithItsResolvedAlgo) {
  Graph g = MakeTinyFocusGraph();
  EngineOptions opts;
  opts.enable_result_cache = true;
  QueryEngine engine(&g, opts);

  QuerySpec manual;
  manual.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 1));
  manual.algo = EngineAlgo::kEnum;
  auto stored = engine.Submit(manual);
  ASSERT_TRUE(stored.ok());
  EXPECT_FALSE(stored->result_cache_hit);

  // Auto resolves this pattern to enum, so the result key — built from
  // the EFFECTIVE algorithm, not the submitted "auto" — lands on the
  // manual run's entry.
  QuerySpec automatic = manual;
  automatic.algo = EngineAlgo::kAuto;
  auto replayed = engine.Submit(automatic);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->result_cache_hit);
  EXPECT_EQ(replayed->algo, EngineAlgo::kEnum);
  EXPECT_EQ(replayed->answers, stored->answers);

  // A different matcher over the same pattern must NOT collide: keying
  // on the submitted spec (the old behavior) would have replayed the
  // enum entry here.
  QuerySpec qmatch = manual;
  qmatch.algo = EngineAlgo::kQMatch;
  auto fresh = engine.Submit(qmatch);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->result_cache_hit);
  EXPECT_EQ(fresh->answers, stored->answers);  // same semantics either way
}

// Replayed outcomes carry the effective algorithm of the original run
// even when the replaying submission said "auto".
TEST(PlannerResultCache, ReplaysCarryTheEffectiveAlgo) {
  Graph g = MakeTinyFocusGraph();
  EngineOptions opts;
  opts.enable_result_cache = true;
  QueryEngine engine(&g, opts);
  QuerySpec spec;
  spec.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 2));
  spec.algo = EngineAlgo::kAuto;
  auto first = engine.Submit(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->result_cache_hit);
  auto second = engine.Submit(spec);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->result_cache_hit);
  EXPECT_EQ(second->algo, first->algo);
  ExpectSameWork(second->stats, first->stats, "replay");
}

// ---------------------------------------------------------------------
// Engine default

TEST(PlannerDefaults, DefaultAlgoAutoAppliesToBareSpecs) {
  Graph g = MakeTinyFocusGraph();
  EngineOptions opts;
  opts.default_algo = EngineAlgo::kAuto;
  QueryEngine engine(&g, opts);
  QuerySpec spec;  // algo deliberately unset
  spec.pattern = UserPattern(Quantifier::Numeric(QuantOp::kGe, 1));
  auto outcome = engine.Submit(spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->algo, EngineAlgo::kEnum);
  EXPECT_EQ(engine.stats().plans_built, 1u);

  // An explicit spec algo still overrides the engine default.
  spec.algo = EngineAlgo::kQMatch;
  auto manual = engine.Submit(spec);
  ASSERT_TRUE(manual.ok());
  EXPECT_EQ(manual->algo, EngineAlgo::kQMatch);
  EXPECT_EQ(manual->answers, outcome->answers);
}

}  // namespace
}  // namespace qgp
