// QueryEngine unit tests: algorithm dispatch equals the standalone
// APIs, cumulative stats and cache telemetry accumulate, the admission
// and pressure policies behave, and the lazily built partition matches
// a standalone DPar build.
#include <gtest/gtest.h>

#include <string>

#include "core/enum_matcher.h"
#include "core/qmatch.h"
#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "parallel/dpar.h"
#include "parallel/pqmatch.h"

namespace qgp {
namespace {

Graph MakeGraph(uint64_t seed = 3) {
  SyntheticConfig gc;
  gc.num_vertices = 80;
  gc.num_edges = 260;
  gc.num_node_labels = 5;
  gc.num_edge_labels = 3;
  gc.model = SyntheticConfig::Model::kPowerLaw;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

std::vector<Pattern> MakePatterns(const Graph& g, size_t count,
                                  size_t num_negated = 1,
                                  uint64_t seed = 91) {
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.num_negated = num_negated;
  return GeneratePatternSuite(g, count, pc, seed);
}

TEST(EngineAlgoTest, NamesRoundTrip) {
  for (EngineAlgo algo :
       {EngineAlgo::kQMatch, EngineAlgo::kQMatchn, EngineAlgo::kEnum,
        EngineAlgo::kPQMatch, EngineAlgo::kPEnum, EngineAlgo::kAuto}) {
    auto parsed = ParseEngineAlgo(EngineAlgoName(algo));
    ASSERT_TRUE(parsed.has_value()) << EngineAlgoName(algo);
    EXPECT_EQ(*parsed, algo);
  }
  EXPECT_FALSE(ParseEngineAlgo("bogus").has_value());
  EXPECT_FALSE(ParseEngineAlgo("").has_value());
}

TEST(QueryEngineTest, SequentialAlgosMatchStandalone) {
  Graph g = MakeGraph();
  std::vector<Pattern> patterns = MakePatterns(g, 4);
  ASSERT_FALSE(patterns.empty());
  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine(&g, opts);
  for (const Pattern& q : patterns) {
    SCOPED_TRACE(q.ToString(&g.dict()));
    QuerySpec spec;
    spec.pattern = q;

    spec.algo = EngineAlgo::kQMatch;
    auto via_engine = engine.Submit(spec);
    ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
    auto standalone = QMatch::Evaluate(q, g);
    ASSERT_TRUE(standalone.ok());
    EXPECT_EQ(via_engine->answers, standalone.value());

    spec.algo = EngineAlgo::kQMatchn;
    via_engine = engine.Submit(spec);
    ASSERT_TRUE(via_engine.ok());
    standalone = QMatchNaiveEvaluate(q, g);
    ASSERT_TRUE(standalone.ok());
    EXPECT_EQ(via_engine->answers, standalone.value());

    spec.algo = EngineAlgo::kEnum;
    spec.options.max_isomorphisms = 5'000'000;
    via_engine = engine.Submit(spec);
    ASSERT_TRUE(via_engine.ok());
    standalone = EnumMatcher::Evaluate(q, g, spec.options);
    ASSERT_TRUE(standalone.ok());
    EXPECT_EQ(via_engine->answers, standalone.value());
  }
}

TEST(QueryEngineTest, PartitionAlgosMatchStandalone) {
  Graph g = MakeGraph(5);
  std::vector<Pattern> patterns = MakePatterns(g, 3, /*num_negated=*/0);
  ASSERT_FALSE(patterns.empty());
  EngineOptions opts;
  opts.partition_fragments = 3;
  opts.partition_d = 2;
  QueryEngine engine(&g, opts);

  DParConfig dpc;
  dpc.num_fragments = 3;
  dpc.d = 2;
  auto partition = DPar(g, dpc);
  ASSERT_TRUE(partition.ok());

  for (const Pattern& q : patterns) {
    if (q.Radius() > 2) continue;
    SCOPED_TRACE(q.ToString(&g.dict()));
    QuerySpec spec;
    spec.pattern = q;
    spec.algo = EngineAlgo::kPQMatch;
    auto via_engine = engine.Submit(spec);
    ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
    ParallelConfig config;
    auto standalone = PQMatch::Evaluate(q, *partition, config);
    ASSERT_TRUE(standalone.ok());
    EXPECT_EQ(via_engine->answers, standalone->answers);

    spec.algo = EngineAlgo::kPEnum;
    spec.options.max_isomorphisms = 5'000'000;
    via_engine = engine.Submit(spec);
    ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
    EXPECT_EQ(via_engine->answers, standalone->answers)
        << "PEnum disagrees with PQMatch";
  }
}

TEST(QueryEngineTest, PartitionIsLazyAndRadiusChecked) {
  Graph g = MakeGraph(7);
  std::vector<Pattern> patterns = MakePatterns(g, 1, /*num_negated=*/0);
  ASSERT_FALSE(patterns.empty());
  EngineOptions opts;
  opts.partition_d = 0;  // no pattern with an edge fits radius 0
  QueryEngine engine(&g, opts);
  QuerySpec spec;
  spec.pattern = patterns[0];
  spec.algo = EngineAlgo::kPQMatch;
  auto outcome = engine.Submit(spec);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(engine.stats().failed, 1u);
  // The failure is per-query; the engine keeps serving.
  spec.algo = EngineAlgo::kQMatch;
  outcome = engine.Submit(spec);
  EXPECT_TRUE(outcome.ok());
}

TEST(QueryEngineTest, WarmCacheHitsAndIdenticalAnswers) {
  Graph g = MakeGraph(11);
  std::vector<Pattern> patterns = MakePatterns(g, 3);
  ASSERT_FALSE(patterns.empty());
  QueryEngine engine(&g);
  QuerySpec spec;
  spec.pattern = patterns[0];
  auto cold = engine.Submit(spec);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->cache_misses, 0u) << "cold query should populate the cache";
  auto warm = engine.Submit(spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->cache_hits, 0u) << "repeat query should hit";
  EXPECT_EQ(warm->cache_misses, 0u);
  EXPECT_EQ(cold->answers, warm->answers);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, cold->cache_hits + warm->cache_hits);
  EXPECT_EQ(stats.cache_misses, cold->cache_misses + warm->cache_misses);
  EXPECT_GT(stats.HitRatio(), 0.0);
  EXPECT_GE(stats.wall_ms, cold->wall_ms);
}

TEST(QueryEngineTest, CacheAdmissionOptOut) {
  Graph g = MakeGraph(13);
  std::vector<Pattern> patterns = MakePatterns(g, 1);
  ASSERT_FALSE(patterns.empty());
  QueryEngine engine(&g);
  QuerySpec spec;
  spec.pattern = patterns[0];
  spec.share_cache = false;
  auto outcome = engine.Submit(spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cache_hits, 0u);
  EXPECT_EQ(outcome->cache_misses, 0u);
  EXPECT_EQ(engine.cache().size(), 0u) << "opted-out query polluted the pool";

  // Same query with admission: identical answers, real misses.
  spec.share_cache = true;
  auto shared = engine.Submit(spec);
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared->answers, outcome->answers);
  EXPECT_GT(shared->cache_misses, 0u);
  EXPECT_GT(engine.cache().size(), 0u);
}

TEST(QueryEngineTest, PressurePolicyEvicts) {
  Graph g = MakeGraph(17);
  std::vector<Pattern> patterns = MakePatterns(g, 6, /*num_negated=*/1);
  ASSERT_GE(patterns.size(), 3u);
  EngineOptions opts;
  opts.cache_max_entries = 1;  // evict after nearly every query
  QueryEngine bounded(&g, opts);
  QueryEngine unbounded(&g);
  for (const Pattern& q : patterns) {
    QuerySpec spec;
    spec.pattern = q;
    auto b = bounded.Submit(spec);
    auto u = unbounded.Submit(spec);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(b->answers, u->answers)
        << "eviction pressure changed answers: " << q.ToString(&g.dict());
  }
  EXPECT_GT(bounded.stats().cache_evicted, 0u);
  EXPECT_LE(bounded.cache().size(), unbounded.cache().size());
}

TEST(QueryEngineTest, ExplicitEvictUnusedIsCounted) {
  Graph g = MakeGraph(19);
  std::vector<Pattern> patterns = MakePatterns(g, 1);
  ASSERT_FALSE(patterns.empty());
  QueryEngine engine(&g);
  QuerySpec spec;
  spec.pattern = patterns[0];
  ASSERT_TRUE(engine.Submit(spec).ok());
  const size_t interned = engine.cache().size();
  ASSERT_GT(interned, 0u);
  EXPECT_EQ(engine.EvictUnused(), interned);
  EXPECT_EQ(engine.cache().size(), 0u);
  EXPECT_EQ(engine.stats().cache_evicted, interned);
}

TEST(QueryEngineTest, ResultCacheServesRepeatsIdentically) {
  Graph g = MakeGraph(31);
  std::vector<Pattern> patterns = MakePatterns(g, 3);
  ASSERT_GE(patterns.size(), 2u);
  EngineOptions opts;
  opts.enable_result_cache = true;
  QueryEngine engine(&g, opts);
  for (const Pattern& q : patterns) {
    QuerySpec spec;
    spec.pattern = q;
    auto first = engine.Submit(spec);
    ASSERT_TRUE(first.ok());
    EXPECT_FALSE(first->result_cache_hit);
    auto repeat = engine.Submit(spec);
    ASSERT_TRUE(repeat.ok());
    EXPECT_TRUE(repeat->result_cache_hit);
    EXPECT_EQ(repeat->answers, first->answers);
    // A hit replays the original run's work counters exactly.
    EXPECT_EQ(repeat->stats.search_extensions, first->stats.search_extensions);
    EXPECT_EQ(repeat->stats.balls_built, first->stats.balls_built);
    // Same pattern under different options is a different key.
    spec.options.use_quantifier_pruning = false;
    auto other_options = engine.Submit(spec);
    ASSERT_TRUE(other_options.ok());
    EXPECT_FALSE(other_options->result_cache_hit);
    EXPECT_EQ(other_options->answers, first->answers);
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.result_hits, patterns.size());
  EXPECT_EQ(stats.result_misses, 2 * patterns.size());
  EXPECT_GT(stats.ResultHitRatio(), 0.0);
}

TEST(QueryEngineTest, ResultCacheLruEvictsAndClearWorks) {
  Graph g = MakeGraph(37);
  std::vector<Pattern> patterns = MakePatterns(g, 4);
  ASSERT_GE(patterns.size(), 3u);
  EngineOptions opts;
  opts.enable_result_cache = true;
  opts.result_cache_max_entries = 2;
  QueryEngine engine(&g, opts);
  auto submit = [&](const Pattern& q) {
    QuerySpec spec;
    spec.pattern = q;
    auto outcome = engine.Submit(spec);
    ASSERT_TRUE(outcome.ok());
  };
  submit(patterns[0]);
  submit(patterns[1]);
  submit(patterns[2]);  // capacity 2: evicts patterns[0]
  QuerySpec spec;
  spec.pattern = patterns[0];
  auto evicted = engine.Submit(spec);
  ASSERT_TRUE(evicted.ok());
  EXPECT_FALSE(evicted->result_cache_hit) << "LRU entry should be gone";
  spec.pattern = patterns[2];
  auto kept = engine.Submit(spec);
  ASSERT_TRUE(kept.ok());
  EXPECT_TRUE(kept->result_cache_hit);

  EXPECT_EQ(engine.ClearResultCache(), 2u);
  auto after_clear = engine.Submit(spec);
  ASSERT_TRUE(after_clear.ok());
  EXPECT_FALSE(after_clear->result_cache_hit);
  EXPECT_EQ(after_clear->answers, kept->answers);
}

TEST(QueryEngineTest, ResultCacheBoundaryAtSingleEntry) {
  // Capacity one is the LRU degenerate case: every distinct query evicts
  // the previous resident, and only back-to-back repeats may hit.
  Graph g = MakeGraph(41);
  std::vector<Pattern> patterns = MakePatterns(g, 3);
  ASSERT_GE(patterns.size(), 2u);
  EngineOptions opts;
  opts.enable_result_cache = true;
  opts.result_cache_max_entries = 1;
  QueryEngine engine(&g, opts);
  auto submit = [&](const Pattern& q) {
    QuerySpec spec;
    spec.pattern = q;
    auto outcome = engine.Submit(spec);
    EXPECT_TRUE(outcome.ok());
    return outcome->result_cache_hit;
  };
  EXPECT_FALSE(submit(patterns[0]));  // cold: stored
  EXPECT_TRUE(submit(patterns[0]));   // resident
  EXPECT_FALSE(submit(patterns[1]));  // evicts patterns[0]
  EXPECT_FALSE(submit(patterns[0]));  // gone: re-stored, evicts patterns[1]
  EXPECT_TRUE(submit(patterns[0]));   // resident again
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.result_hits, 2u);
  EXPECT_EQ(stats.result_misses, 3u);
}

TEST(QueryEngineTest, FailuresFeedWallClockCacheTrafficAndPressure) {
  // An error-heavy workload is load too: each failed evaluation must add
  // its wall time and candidate-cache traffic to the cumulative stats,
  // and the pressure valve must keep the cache at its bound even when no
  // query ever succeeds.
  Graph g = MakeGraph(43);
  std::vector<Pattern> patterns = MakePatterns(g, 6);
  ASSERT_FALSE(patterns.empty());
  EngineOptions opts;
  opts.cache_max_entries = 1;
  QueryEngine engine(&g, opts);
  size_t failures = 0;
  for (const Pattern& q : patterns) {
    QuerySpec spec;
    spec.pattern = q;
    spec.algo = EngineAlgo::kEnum;
    spec.options.max_isomorphisms = 1;  // trips mid-enumeration
    const double wall_before = engine.stats().wall_ms;
    auto outcome = engine.Submit(spec);
    if (outcome.ok()) continue;  // pattern with <= 1 embedding: fine
    ++failures;
    EXPECT_EQ(outcome.status().code(), StatusCode::kInternal);
    EXPECT_GT(engine.stats().wall_ms, wall_before)
        << "failed evaluation did not report its wall time";
  }
  ASSERT_GT(failures, 0u) << "no pattern tripped the cap - tighten it";
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.failed, failures);
  EXPECT_GT(stats.cache_misses, 0u)
      << "failures built candidates but reported no cache traffic";
  EXPECT_GT(stats.cache_evicted, 0u)
      << "pressure valve never ran on the failure path";
  EXPECT_LE(engine.cache().size(), opts.cache_max_entries);

  // The engine keeps serving after a failing streak.
  QuerySpec spec;
  spec.pattern = patterns[0];
  EXPECT_TRUE(engine.Submit(spec).ok());
}

TEST(QueryEngineTest, RunBatchEqualsSubmits) {
  Graph g = MakeGraph(23);
  std::vector<Pattern> patterns = MakePatterns(g, 4);
  ASSERT_GE(patterns.size(), 2u);
  std::vector<QuerySpec> batch;
  for (size_t i = 0; i < patterns.size(); ++i) {
    QuerySpec spec;
    spec.pattern = patterns[i];
    spec.tag = "q" + std::to_string(i);
    batch.push_back(std::move(spec));
  }
  QueryEngine batched(&g);
  auto outcomes = batched.RunBatch(batch);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), batch.size());

  QueryEngine streamed(&g);
  for (size_t i = 0; i < batch.size(); ++i) {
    auto one = streamed.Submit(batch[i]);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ((*outcomes)[i].answers, one->answers);
    EXPECT_EQ((*outcomes)[i].tag, batch[i].tag);
  }
  EXPECT_EQ(batched.stats().queries, streamed.stats().queries);
  EXPECT_EQ(batched.stats().cache_hits, streamed.stats().cache_hits);
}

TEST(QueryEngineTest, OwningConstructorServesQueries) {
  Graph g = MakeGraph(29);
  std::vector<Pattern> patterns = MakePatterns(g, 1);
  ASSERT_FALSE(patterns.empty());
  auto standalone = QMatch::Evaluate(patterns[0], g);
  ASSERT_TRUE(standalone.ok());
  QueryEngine engine(std::move(g));  // engine owns the graph now
  QuerySpec spec;
  spec.pattern = patterns[0];
  auto outcome = engine.Submit(spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->answers, standalone.value());
  EXPECT_GT(engine.graph().num_vertices(), 0u);
}

}  // namespace
}  // namespace qgp
