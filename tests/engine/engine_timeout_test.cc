// Engine deadline / cancellation differential suite. The invariant
// under test everywhere: an evaluation that unwinds early — its own
// timeout_ms, an external CancelToken, a drain — perturbs NOTHING. A
// clean run submitted right after a timed-out one must be byte-
// identical (answers, work counters, cache traffic) to a run on an
// engine that never saw the timeout, because the failed run's partial
// state was rolled back from every cache it touched.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "core/pattern_parser.h"
#include "engine/query_engine.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

using Clock = std::chrono::steady_clock;

/// The shared slow case: clean runtime is hundreds of milliseconds on
/// any machine this suite runs on, so a 50 ms deadline provably fires
/// mid-evaluation.
struct SlowCase {
  Graph graph;
  std::string pattern_text;
};

SlowCase& Slow() {
  static SlowCase* slow = [] {
    SyntheticConfig gc;
    gc.num_vertices = 8000;
    gc.num_edges = 8000 * 8;
    gc.num_node_labels = 2;
    gc.num_edge_labels = 2;
    gc.seed = 99;
    auto* s = new SlowCase{std::move(GenerateSynthetic(gc)).value(),
                           "node x0 nl0\nnode x1 nl0\nnode x2 nl0\n"
                           "node x3 nl0\nedge x0 x1 el0 >=2\n"
                           "edge x1 x2 el0\nedge x2 x3 el0\nfocus x0\n"};
    (void)PatternParser::Parse(s->pattern_text, s->graph.mutable_dict());
    return s;
  }();
  return *slow;
}

QuerySpec SlowSpec(EngineAlgo algo = EngineAlgo::kQMatch) {
  QuerySpec spec;
  spec.pattern = std::move(PatternParser::Parse(Slow().pattern_text,
                                                Slow().graph.mutable_dict()))
                     .value();
  spec.algo = algo;
  return spec;
}

void ExpectSameWork(const MatchStats& a, const MatchStats& b,
                    const std::string& context) {
  EXPECT_EQ(a.isomorphisms_enumerated, b.isomorphisms_enumerated) << context;
  EXPECT_EQ(a.witness_searches, b.witness_searches) << context;
  EXPECT_EQ(a.search_extensions, b.search_extensions) << context;
  EXPECT_EQ(a.candidates_initial, b.candidates_initial) << context;
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned) << context;
  EXPECT_EQ(a.focus_candidates_checked, b.focus_candidates_checked) << context;
  EXPECT_EQ(a.balls_built, b.balls_built) << context;
}

// The core differential: engine A runs the query cleanly; engine B
// times the same query out first, then runs it cleanly. B's clean run
// must match A's in answers, work counters AND cache traffic — the
// timed-out attempt left no trace in the candidate or result cache.
TEST(EngineTimeoutTest, TimedOutQueryPerturbsNothing) {
  SlowCase& slow = Slow();

  EngineOptions options;
  options.enable_result_cache = true;
  QueryEngine reference(&slow.graph, options);
  auto expected = reference.Submit(SlowSpec());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  QueryEngine engine(&slow.graph, options);
  QuerySpec timed = SlowSpec();
  timed.timeout_ms = 50;
  const auto t0 = Clock::now();
  auto aborted = engine.Submit(timed);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kDeadlineExceeded)
      << aborted.status().ToString();
  EXPECT_LT(elapsed_ms, expected->wall_ms / 2)
      << "the deadline did not interrupt the evaluation (clean run: "
      << expected->wall_ms << " ms)";

  // Rollback left both caches empty...
  EXPECT_EQ(engine.cache().size(), 0u);
  EXPECT_EQ(engine.ClearResultCache(), 0u);
  EXPECT_EQ(engine.stats().timeouts, 1u);
  EXPECT_EQ(engine.stats().failed, 1u);
  EXPECT_EQ(engine.stats().queries, 0u);

  // ...so the clean run is indistinguishable from the reference's.
  auto clean = engine.Submit(SlowSpec());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->answers, expected->answers);
  ExpectSameWork(clean->stats, expected->stats, "clean-after-timeout");
  EXPECT_EQ(clean->cache_hits, expected->cache_hits);
  EXPECT_EQ(clean->cache_misses, expected->cache_misses);
  EXPECT_FALSE(clean->result_cache_hit);

  auto repeat = engine.Submit(SlowSpec());
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->result_cache_hit);
  EXPECT_EQ(repeat->answers, expected->answers);
}

// An external CancelToken fired from another thread unwinds the
// evaluation with kCancelled (not kDeadlineExceeded — the engine
// distinguishes whose signal it was) and counts in
// EngineStats::cancellations.
TEST(EngineTimeoutTest, ExternalCancelTokenUnwinds) {
  SlowCase& slow = Slow();
  QueryEngine engine(&slow.graph, EngineOptions{});

  CancelToken token;
  QuerySpec spec = SlowSpec();
  spec.options.cancel = &token;
  // A generous engine-side deadline: the external cancel must win, and
  // the status must say so.
  spec.timeout_ms = 60'000;

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    token.RequestCancel();
  });
  auto outcome = engine.Submit(spec);
  canceller.join();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled)
      << outcome.status().ToString();
  EXPECT_EQ(engine.stats().cancellations, 1u);
  EXPECT_EQ(engine.stats().timeouts, 0u);
  EXPECT_EQ(engine.cache().size(), 0u);

  // The engine is fully reusable after a cancellation.
  auto clean = engine.Submit(SlowSpec());
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
}

// While the engine drains, ApplyDelta stops waiting forever behind an
// in-flight evaluation: it bounded-waits delta_drain_wait_ms and gives
// up with kUnavailable. Once the evaluation is cancelled and draining
// clears, the same delta applies normally.
TEST(EngineTimeoutTest, ApplyDeltaBoundedWaitWhileDraining) {
  SlowCase& slow = Slow();
  EngineOptions options;
  options.delta_drain_wait_ms = 50;
  QueryEngine engine(Graph(slow.graph), options);  // owning: deltas legal

  engine.SetDraining(true);
  CancelToken token;
  QuerySpec spec = SlowSpec();
  spec.options.cancel = &token;
  std::thread query([&engine, &spec] {
    auto outcome = engine.Submit(spec);
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled)
        << outcome.status().ToString();
  });

  // Keep trying an empty delta until the slow query owns admission and
  // the bounded wait gives up: each early attempt (before the query is
  // admitted) succeeds as a harmless version-bumping no-op.
  bool saw_unavailable = false;
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  while (Clock::now() < deadline) {
    auto applied = engine.ApplyDelta(NamedGraphDelta{});
    if (!applied.ok()) {
      EXPECT_EQ(applied.status().code(), StatusCode::kUnavailable)
          << applied.status().ToString();
      saw_unavailable = true;
      break;
    }
  }
  EXPECT_TRUE(saw_unavailable)
      << "ApplyDelta never hit the bounded wait - the slow query "
         "finished before it was ever parked";

  token.RequestCancel();
  query.join();
  engine.SetDraining(false);
  auto applied = engine.ApplyDelta(NamedGraphDelta{});
  EXPECT_TRUE(applied.ok()) << applied.status().ToString();
}

// Under algo=auto, a timed-out query's freshly built plan is forgotten:
// the aborted run proves nothing about the plan's quality, and a poisoned
// plan cache would silently survive into every later query of the same
// pattern family. The clean re-run re-plans from scratch, and only
// after IT succeeds does the family start hitting the plan cache.
TEST(EngineTimeoutTest, TimedOutAutoQueryForgetsItsPlan) {
  SlowCase& slow = Slow();
  QueryEngine engine(&slow.graph, EngineOptions{});

  QuerySpec timed = SlowSpec(EngineAlgo::kAuto);
  timed.timeout_ms = 50;
  auto aborted = engine.Submit(timed);
  ASSERT_FALSE(aborted.ok());
  ASSERT_EQ(aborted.status().code(), StatusCode::kDeadlineExceeded)
      << aborted.status().ToString();
  EXPECT_EQ(engine.stats().plans_built, 1u);
  EXPECT_EQ(engine.stats().plan_hits, 0u);

  auto clean = engine.Submit(SlowSpec(EngineAlgo::kAuto));
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_FALSE(clean->plan_cache_hit) << "the aborted run's plan survived";
  EXPECT_EQ(engine.stats().plans_built, 2u);

  auto warm = engine.Submit(SlowSpec(EngineAlgo::kAuto));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_EQ(warm->answers, clean->answers);
  EXPECT_EQ(engine.stats().plan_hits, 1u);
}

}  // namespace
}  // namespace qgp
