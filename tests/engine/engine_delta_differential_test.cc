// Delta differential harness, engine layer: after every ApplyDelta, an
// engine evaluating a mixed-algorithm workload on the mutated graph must
// be ANSWER- and MATCHSTATS-identical to a fresh engine on a from-scratch
// rebuilt copy of the same content — for qmatch / qmatchn / enum /
// pqmatch at thread counts {1, 2, 4, 8}, across randomized delta batches
// (including no-ops and inverse pairs that must round-trip answers).
// CSR invariants are re-asserted after every delta. Both engines run
// with the result cache and delta repair OFF (the defaults), which is
// what makes exact stats identity a fair demand; the repair-enabled
// variant at the bottom asserts answer identity plus fast-path telemetry.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "graph/graph_builder.h"
#include "graph/graph_delta.h"

namespace qgp {
namespace {

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 60;
  gc.num_edges = 170;
  gc.num_node_labels = 4;
  gc.num_edge_labels = 3;
  gc.model = (seed % 2 == 0) ? SyntheticConfig::Model::kSmallWorld
                             : SyntheticConfig::Model::kPowerLaw;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

// Content-equal rebuild through the from-scratch construction path: the
// oracle an ApplyDelta'd CSR is compared against. Tombstoned vertices
// are reproduced as kInvalidLabel vertices so ids line up.
Graph RebuildLike(const Graph& g) {
  GraphBuilder b(g.dict());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    b.AddVertexWithLabel(g.vertex_label(v));
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& nbr : g.OutNeighbors(v)) {
      EXPECT_TRUE(b.AddEdgeWithLabel(v, nbr.v, nbr.label).ok());
    }
  }
  return std::move(b).Build().value();
}

std::vector<VertexId> AliveVertices(const Graph& g) {
  std::vector<VertexId> alive;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_label(v) != kInvalidLabel) alive.push_back(v);
  }
  return alive;
}

// Random delta over the current graph: edge churn plus occasional vertex
// add/tombstone, all within the pre-interned label vocabulary.
GraphDelta RandomDelta(const Graph& g, std::mt19937* rng, size_t ops) {
  GraphDelta d;
  std::vector<VertexId> alive = AliveVertices(g);
  auto rand_vertex = [&]() { return alive[(*rng)() % alive.size()]; };
  for (size_t i = 0; i < ops; ++i) {
    switch ((*rng)() % 8) {
      case 0:
        d.add_vertices.push_back(
            g.dict().Find("nl" + std::to_string((*rng)() % 4)));
        break;
      case 1:
        d.remove_vertices.push_back(rand_vertex());
        break;
      case 2:
      case 3: {
        VertexId v = rand_vertex();
        auto nbrs = g.OutNeighbors(v);
        if (nbrs.empty()) break;
        const Neighbor& nbr = nbrs[(*rng)() % nbrs.size()];
        d.remove_edges.push_back({v, nbr.v, nbr.label});
        break;
      }
      default:
        d.add_edges.push_back(
            {rand_vertex(), rand_vertex(),
             g.dict().Find("el" + std::to_string((*rng)() % 3))});
        break;
    }
  }
  return d;
}

// The mixed workload: pattern families with and without negation,
// algorithms rotating through every engine dispatch path that evaluates
// on the engine's (possibly mutated) graph.
std::vector<QuerySpec> MakeWorkload(const Graph& g, uint64_t seed) {
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.num_negated = seed % 2;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 6, pc, seed * 13 + 1);
  const EngineAlgo algos[] = {EngineAlgo::kQMatch, EngineAlgo::kQMatchn,
                              EngineAlgo::kEnum, EngineAlgo::kPQMatch};
  std::vector<QuerySpec> workload;
  for (size_t i = 0; i < suite.size(); ++i) {
    QuerySpec spec;
    spec.pattern = std::move(suite[i]);
    spec.algo = algos[i % 4];
    spec.options.max_isomorphisms = 2'000'000;
    spec.tag = "q" + std::to_string(i);
    workload.push_back(std::move(spec));
  }
  return workload;
}

// Work-counter identity: everything but the scheduler telemetry (which
// describes the schedule, not the work — see match_types.h).
void ExpectSameWork(const MatchStats& a, const MatchStats& b,
                    const std::string& context) {
  EXPECT_EQ(a.isomorphisms_enumerated, b.isomorphisms_enumerated) << context;
  EXPECT_EQ(a.witness_searches, b.witness_searches) << context;
  EXPECT_EQ(a.search_extensions, b.search_extensions) << context;
  EXPECT_EQ(a.candidates_initial, b.candidates_initial) << context;
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned) << context;
  EXPECT_EQ(a.focus_candidates_checked, b.focus_candidates_checked) << context;
  EXPECT_EQ(a.inc_candidates_checked, b.inc_candidates_checked) << context;
  EXPECT_EQ(a.balls_built, b.balls_built) << context;
}

// Drops workload entries the engine cannot evaluate on this graph at
// all (pattern radius exceeding partition d, isomorphism caps): both
// sides of the differential would fail identically, but the harness
// wants every retained spec to produce comparable outcomes.
std::vector<QuerySpec> FilterEvaluable(std::vector<QuerySpec> workload,
                                       const Graph& g, size_t threads) {
  EngineOptions opts;
  opts.num_threads = threads;
  QueryEngine probe(&g, opts);
  std::vector<QuerySpec> kept;
  for (QuerySpec& spec : workload) {
    if (probe.Submit(spec).ok()) kept.push_back(std::move(spec));
  }
  return kept;
}

// One sweep: an owning engine absorbs 8 delta batches (one of them a
// no-op); after every batch the workload's outcomes must match a fresh
// engine over a rebuilt content-equal graph, and the mutated CSR must
// pass its invariant audit. `*batches_run` counts exercised batches
// (out-param because ASSERT_* needs a void-returning frame).
void RunSweep(uint64_t seed, size_t threads, size_t* batches_run) {
  Graph base = MakeGraph(seed);
  std::vector<QuerySpec> workload =
      FilterEvaluable(MakeWorkload(base, seed), base, threads);
  ASSERT_FALSE(workload.empty());

  EngineOptions opts;
  opts.num_threads = threads;
  QueryEngine engine(std::move(base), opts);

  std::mt19937 rng(seed * 101 + 3);
  for (int batch = 0; batch < 8; ++batch) {
    GraphDelta delta = (batch == 3)
                           ? GraphDelta{}  // no-op batch: version still bumps
                           : RandomDelta(engine.graph(), &rng, 1 + rng() % 6);
    const uint64_t before = engine.graph_version();
    auto outcome = engine.ApplyDelta(delta);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->graph_version, before + 1);
    EXPECT_EQ(engine.graph_version(), before + 1);
    ASSERT_TRUE(engine.graph().ValidateInvariants().ok());
    ++*batches_run;

    Graph rebuilt = RebuildLike(engine.graph());
    ASSERT_TRUE(ContentEquals(engine.graph(), rebuilt));
    QueryEngine reference(&rebuilt, opts);
    for (const QuerySpec& spec : workload) {
      auto got = engine.Submit(spec);
      auto want = reference.Submit(spec);
      ASSERT_EQ(got.ok(), want.ok())
          << spec.tag << " batch " << batch << " "
          << (got.ok() ? want.status().ToString() : got.status().ToString());
      if (!got.ok()) continue;
      const std::string context = "seed " + std::to_string(seed) + " t" +
                                  std::to_string(threads) + " batch " +
                                  std::to_string(batch) + " " + spec.tag;
      EXPECT_EQ(got->answers, want->answers) << context;
      ExpectSameWork(got->stats, want->stats, context);
    }
  }
}

TEST(EngineDeltaDifferential, ApplyEqualsRebuildAcrossThreadCounts) {
  size_t total_batches = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      RunSweep(seed, threads, &total_batches);
    }
  }
  // The acceptance floor: at least 100 randomized delta batches across
  // algorithms and thread counts, every one differentially checked.
  EXPECT_GE(total_batches, 100u);
}

// Applies edge-only deltas followed by their inverses; after every pair
// the graph content and every query's answers must be back to the
// pristine state. Additions are restricted to edges not already present
// (re-adding a present edge is a no-op forward but its inverse removal
// would not be), which makes inverse(batch) an exact undo.
TEST(EngineDeltaDifferential, InverseDeltaPairsRoundTripAnswers) {
  Graph base = MakeGraph(7);
  std::vector<QuerySpec> workload =
      FilterEvaluable(MakeWorkload(base, 7), base, 4);
  ASSERT_FALSE(workload.empty());
  EngineOptions opts;
  opts.num_threads = 4;
  QueryEngine engine(std::move(base), opts);
  Graph pristine = engine.graph();  // value copy of the pre-delta graph

  std::vector<AnswerSet> before;
  for (const QuerySpec& spec : workload) {
    auto r = engine.Submit(spec);
    ASSERT_TRUE(r.ok());
    before.push_back(r->answers);
  }

  std::mt19937 rng(99);
  for (int round = 0; round < 10; ++round) {
    const Graph& g = engine.graph();
    std::vector<VertexId> alive = AliveVertices(g);
    GraphDelta d;
    for (int i = 0; i < 3; ++i) {
      VertexId v = alive[rng() % alive.size()];
      auto nbrs = g.OutNeighbors(v);
      if (!nbrs.empty() && rng() % 2 == 0) {
        const Neighbor& nbr = nbrs[rng() % nbrs.size()];
        d.remove_edges.push_back({v, nbr.v, nbr.label});
      } else {
        VertexId dst = alive[rng() % alive.size()];
        Label el = g.dict().Find("el" + std::to_string(rng() % 3));
        if (!g.HasEdge(v, dst, el)) d.add_edges.push_back({v, dst, el});
      }
    }
    GraphDelta inverse;
    inverse.add_edges = d.remove_edges;
    inverse.remove_edges = d.add_edges;

    auto fwd = engine.ApplyDelta(d);
    ASSERT_TRUE(fwd.ok()) << fwd.status().ToString();
    auto bwd = engine.ApplyDelta(inverse);
    ASSERT_TRUE(bwd.ok()) << bwd.status().ToString();
    ASSERT_TRUE(engine.graph().ValidateInvariants().ok());
    ASSERT_TRUE(ContentEquals(engine.graph(), pristine)) << "round " << round;
    for (size_t i = 0; i < workload.size(); ++i) {
      auto r = engine.Submit(workload[i]);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->answers, before[i])
          << workload[i].tag << " round " << round;
    }
  }
}

TEST(EngineDeltaDifferential, BorrowingEngineRejectsDeltas) {
  Graph g = MakeGraph(2);
  QueryEngine engine(&g);
  auto r = engine.ApplyDelta(GraphDelta{});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineDeltaDifferential, DeltaInvalidatesResultCacheExactly) {
  Graph base = MakeGraph(4);
  std::vector<QuerySpec> workload =
      FilterEvaluable(MakeWorkload(base, 4), base, 2);
  ASSERT_FALSE(workload.empty());
  EngineOptions opts;
  opts.num_threads = 2;
  opts.enable_result_cache = true;
  QueryEngine engine(std::move(base), opts);

  for (const QuerySpec& spec : workload) ASSERT_TRUE(engine.Submit(spec).ok());
  // Repeats hit.
  auto repeat = engine.Submit(workload[0]);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->result_cache_hit);

  auto outcome = engine.ApplyDelta(GraphDelta{});  // no-op still bumps version
  ASSERT_TRUE(outcome.ok());
  // Every stored entry predates the new version, so all are swept.
  EXPECT_GT(outcome->results_invalidated, 0u);
  EXPECT_LE(outcome->results_invalidated, workload.size());

  // Post-delta, the same query re-evaluates (miss), then hits again.
  auto miss = engine.Submit(workload[0]);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->result_cache_hit);
  auto hit = engine.Submit(workload[0]);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->result_cache_hit);
  EXPECT_EQ(hit->answers, repeat->answers);  // no-op delta: same content
}

// A delta that fails validation is atomic: the graph, its version, the
// candidate cache, the result cache (stored entries still hit) and the
// delta telemetry are all byte-identical to before the attempt — a
// rejected mutation never half-lands.
TEST(EngineDeltaDifferential, RejectedDeltaPerturbsNothing) {
  Graph base = MakeGraph(6);
  const size_t n = base.num_vertices();
  std::vector<QuerySpec> workload =
      FilterEvaluable(MakeWorkload(base, 6), base, 2);
  ASSERT_FALSE(workload.empty());
  EngineOptions opts;
  opts.num_threads = 2;
  opts.enable_result_cache = true;
  QueryEngine engine(std::move(base), opts);

  std::vector<AnswerSet> before;
  for (const QuerySpec& spec : workload) {
    auto r = engine.Submit(spec);
    ASSERT_TRUE(r.ok());
    before.push_back(r->answers);
  }
  const Graph pristine = engine.graph();
  const uint64_t version = engine.graph_version();
  const size_t cache_size = engine.cache().size();
  const EngineStats stats = engine.stats();

  // Two rejection shapes: an out-of-range endpoint, and a structurally
  // fine batch whose ONE bad edge must poison the whole batch.
  GraphDelta bad_endpoint;
  bad_endpoint.add_edges.push_back(
      {static_cast<VertexId>(n + 100), 0, engine.graph().dict().Find("el0")});
  GraphDelta mixed = bad_endpoint;
  mixed.add_vertices.push_back(engine.graph().dict().Find("nl0"));
  mixed.remove_vertices.push_back(0);
  for (const GraphDelta& delta : {bad_endpoint, mixed}) {
    auto rejected = engine.ApplyDelta(delta);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument)
        << rejected.status().ToString();
  }

  EXPECT_EQ(engine.graph_version(), version);
  EXPECT_TRUE(ContentEquals(engine.graph(), pristine));
  EXPECT_EQ(engine.cache().size(), cache_size);
  const EngineStats after = engine.stats();
  EXPECT_EQ(after.deltas, stats.deltas);
  EXPECT_EQ(after.results_invalidated, stats.results_invalidated);
  EXPECT_EQ(after.cache_evicted, stats.cache_evicted);

  // Stored results survived the failed attempts: repeats still hit, and
  // answers are unchanged.
  for (size_t i = 0; i < workload.size(); ++i) {
    auto r = engine.Submit(workload[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->result_cache_hit) << workload[i].tag;
    EXPECT_EQ(r->answers, before[i]) << workload[i].tag;
  }
}

// algo = auto through deltas: after every ApplyDelta, an auto query on
// the mutated engine must pick the same plan — and produce the same
// answers and work counters — as an auto query on a fresh engine over a
// rebuilt content-equal graph. The planner reads its statistics through
// the (post-sweep) candidate cache, so this locks down that plans never
// depend on pre-delta state; DeltaOutcome/EngineStats invalidation
// counters are audited along the way.
TEST(EngineDeltaDifferential, AutoPlansMatchRebuildAfterDeltas) {
  for (uint64_t seed : {21u, 22u}) {
    Graph base = MakeGraph(seed);
    std::vector<QuerySpec> workload =
        FilterEvaluable(MakeWorkload(base, seed), base, 4);
    for (QuerySpec& spec : workload) spec.algo = EngineAlgo::kAuto;
    ASSERT_FALSE(workload.empty());
    std::set<std::string> families;
    for (const QuerySpec& spec : workload) {
      families.insert(Planner::FamilyKey(spec.pattern));
    }

    EngineOptions opts;
    opts.num_threads = 4;
    QueryEngine engine(std::move(base), opts);
    // Populate the plan cache so the first delta has entries to sweep.
    for (const QuerySpec& spec : workload) ASSERT_TRUE(engine.Submit(spec).ok());
    uint64_t swept_total = 0;

    std::mt19937 rng(seed * 31 + 7);
    for (int batch = 0; batch < 6; ++batch) {
      GraphDelta delta = RandomDelta(engine.graph(), &rng, 1 + rng() % 5);
      auto applied = engine.ApplyDelta(delta);
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      // Every family planned since the last delta is stale now.
      EXPECT_EQ(applied->plans_invalidated, families.size());
      swept_total += applied->plans_invalidated;

      Graph rebuilt = RebuildLike(engine.graph());
      QueryEngine reference(&rebuilt, opts);
      for (const QuerySpec& spec : workload) {
        auto got = engine.Submit(spec);
        auto want = reference.Submit(spec);
        ASSERT_EQ(got.ok(), want.ok()) << spec.tag << " batch " << batch;
        if (!got.ok()) continue;
        const std::string context = "seed " + std::to_string(seed) +
                                    " batch " + std::to_string(batch) + " " +
                                    spec.tag;
        EXPECT_EQ(got->algo, want->algo) << context;
        EXPECT_NE(got->algo, EngineAlgo::kAuto) << context;
        EXPECT_EQ(got->answers, want->answers) << context;
        ExpectSameWork(got->stats, want->stats, context);
      }
    }
    EXPECT_EQ(engine.stats().plans_invalidated, swept_total);
    // A repeat pass with no intervening delta is served from the plan
    // cache: one hit per spec (failed evaluations plan too).
    const uint64_t hits_before = engine.stats().plan_hits;
    for (const QuerySpec& spec : workload) (void)engine.Submit(spec);
    EXPECT_GE(engine.stats().plan_hits, hits_before + families.size());
  }
}

// Repair-enabled engines serve answer-identical results through the
// fast path. Stats identity is deliberately NOT asserted here — repair
// does less work; the harness above (repair off) owns stats identity.
TEST(EngineDeltaDifferential, RepairEnabledAnswersIdentical) {
  for (uint64_t seed : {11u, 12u}) {
    Graph base = MakeGraph(seed);
    // Positive-only qmatch workload: the repair-eligible shape.
    PatternGenConfig pc;
    pc.num_nodes = 4;
    pc.num_edges = 4;
    pc.num_quantified = 1;
    pc.num_negated = 0;
    std::vector<QuerySpec> workload;
    for (Pattern& p : GeneratePatternSuite(base, 5, pc, seed * 7 + 2)) {
      if (!p.IsPositive()) continue;
      QuerySpec spec;
      spec.pattern = std::move(p);
      spec.algo = EngineAlgo::kQMatch;
      workload.push_back(std::move(spec));
    }
    ASSERT_FALSE(workload.empty());

    EngineOptions opts;
    opts.num_threads = 4;
    opts.enable_delta_repair = true;
    QueryEngine engine(std::move(base), opts);
    for (const QuerySpec& spec : workload) {
      ASSERT_TRUE(engine.Submit(spec).ok());  // seeds the repair store
    }

    std::mt19937 rng(seed * 5 + 1);
    for (int batch = 0; batch < 6; ++batch) {
      GraphDelta delta = RandomDelta(engine.graph(), &rng, 1 + rng() % 4);
      ASSERT_TRUE(engine.ApplyDelta(delta).ok());
      Graph rebuilt = RebuildLike(engine.graph());
      EngineOptions ref_opts;
      ref_opts.num_threads = 4;
      QueryEngine reference(&rebuilt, ref_opts);
      for (const QuerySpec& spec : workload) {
        auto got = engine.Submit(spec);
        auto want = reference.Submit(spec);
        ASSERT_EQ(got.ok(), want.ok());
        if (!got.ok()) continue;
        EXPECT_TRUE(got->delta_repaired)
            << "repair store should cover re-submitted queries";
        EXPECT_EQ(got->answers, want->answers)
            << "seed " << seed << " batch " << batch;
      }
    }
    const EngineStats stats = engine.stats();
    EXPECT_GT(stats.repair_hits + stats.repair_fallbacks, 0u);
    EXPECT_EQ(stats.deltas, 6u);
  }
}

}  // namespace
}  // namespace qgp
