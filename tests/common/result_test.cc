#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace qgp {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("no such vertex"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "no such vertex");
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  // Constructing a Result from an OK status is a programming error that
  // must surface as a failed Result, never as a silently absent value.
  Result<int> r(Status::Ok());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("qgp"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good(3);
  Result<int> bad(Status::Internal("boom"));
  EXPECT_EQ(good.value_or(-1), 3);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, RvalueValueMovesOutTheHeldValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(ResultTest, MoveOnlyValueTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5);
}

TEST(ResultTest, CopyAndMoveSemantics) {
  Result<std::string> a(std::string("alpha"));
  Result<std::string> b = a;  // copy keeps the source intact
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b.value(), "alpha");

  Result<std::string> c(Status::IoError("disk"));
  b = c;
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kIoError);

  Result<std::string> d = std::move(a);
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.value(), "alpha");
}

Status ParseEven(int n, int* out) {
  Result<int> r = n % 2 == 0 ? Result<int>(n)
                             : Result<int>(Status::InvalidArgument("odd"));
  QGP_ASSIGN_OR_RETURN(*out, r);
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnUnwrapsOrPropagates) {
  int out = 0;
  EXPECT_TRUE(ParseEven(4, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = ParseEven(5, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 4);  // untouched on failure
}

Status ChainTwo(int a, int b, int* sum) {
  QGP_ASSIGN_OR_RETURN(int x, Result<int>(a));
  QGP_ASSIGN_OR_RETURN(int y, Result<int>(b));
  *sum = x + y;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnComposesInOneFunction) {
  // Two expansions in one scope must not collide (the __LINE__ concat).
  int sum = 0;
  ASSERT_TRUE(ChainTwo(2, 3, &sum).ok());
  EXPECT_EQ(sum, 5);
}

}  // namespace
}  // namespace qgp
