#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace qgp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextUint64CoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.NextUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(RngTest, ZipfWithinRangeAndSkewed) {
  Rng rng(23);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.NextZipf(n, 1.2);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // Rank 0 must dominate the tail.
  EXPECT_GT(counts[0], counts[50] * 3);
}

TEST(RngTest, ZipfDegenerate) {
  Rng rng(29);
  EXPECT_EQ(rng.NextZipf(1, 1.5), 0u);
  EXPECT_EQ(rng.NextZipf(0, 1.5), 0u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (uint64_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleMoreThanPopulation) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(5, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 5u);
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(55);
  Rng forked = a.Fork();
  // Fork advances the parent; both streams continue deterministically.
  Rng a2(55);
  Rng forked2 = a2.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Next(), a2.Next());
    EXPECT_EQ(forked.Next(), forked2.Next());
  }
}

}  // namespace
}  // namespace qgp
