#include "common/string_util.h"

#include <gtest/gtest.h>

namespace qgp {
namespace {

TEST(SplitStringTest, Basic) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, DropsEmptyPieces) {
  EXPECT_EQ(SplitString(",a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitString("", ',').empty());
  EXPECT_TRUE(SplitString(",,,", ',').empty());
}

TEST(SplitWhitespaceTest, MixedWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a\tb\n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   \t\n").empty());
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith(">=80%", ">="));
  EXPECT_FALSE(StartsWith("=80%", ">="));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("  7  ", &v));
  EXPECT_EQ(v, 7);
}

TEST(ParseInt64Test, InvalidInputs) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("80", &v));
  EXPECT_DOUBLE_EQ(v, 80.0);
  EXPECT_TRUE(ParseDouble("-0.5", &v));
  EXPECT_DOUBLE_EQ(v, -0.5);
}

TEST(ParseDoubleTest, InvalidInputs) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("80%", &v));
  EXPECT_FALSE(ParseDouble("x", &v));
}

TEST(AsciiToLowerTest, Basic) {
  EXPECT_EQ(AsciiToLower("LaRgE"), "large");
  EXPECT_EQ(AsciiToLower("already"), "already");
  EXPECT_EQ(AsciiToLower("MiX3d_Case"), "mix3d_case");
}

}  // namespace
}  // namespace qgp
