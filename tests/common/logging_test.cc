#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>

namespace qgp {
namespace {

// Restores the global minimum level after each test so test order cannot
// leak a noisy (or silent) logger into other suites.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Logger::min_level(); }
  void TearDown() override { Logger::SetMinLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultMinLevelIsWarning) {
  // The library default documented in logging.h; benches raise it. Every
  // test here restores the level it found, so the process-start default
  // is still observable regardless of test order.
  EXPECT_EQ(Logger::min_level(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SetMinLevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    Logger::SetMinLevel(level);
    EXPECT_EQ(Logger::min_level(), level);
  }
}

TEST_F(LoggingTest, EmitsAtOrAboveMinLevel) {
  Logger::SetMinLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  QGP_LOG(kInfo) << "hello " << 42;
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO]"), std::string::npos);
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  // The file tag is the basename, not the full path.
  EXPECT_NE(out.find("logging_test.cc:"), std::string::npos);
  EXPECT_EQ(out.find("tests/common"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowMinLevel) {
  Logger::SetMinLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  QGP_LOG(kDebug) << "quiet";
  QGP_LOG(kInfo) << "quiet";
  QGP_LOG(kWarning) << "quiet";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, SuppressedStatementsDoNotEvaluateOperands) {
  Logger::SetMinLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("costly");
  };
  QGP_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  Logger::SetMinLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  QGP_LOG(kDebug) << expensive();
  (void)::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LevelNamesMatchSeverity) {
  Logger::SetMinLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  QGP_LOG(kDebug) << "d";
  QGP_LOG(kInfo) << "i";
  QGP_LOG(kWarning) << "w";
  QGP_LOG(kError) << "e";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[DEBUG]"), std::string::npos);
  EXPECT_NE(out.find("[INFO]"), std::string::npos);
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
  EXPECT_NE(out.find("[ERROR]"), std::string::npos);
}

TEST_F(LoggingTest, LogIsUsableInsideIfWithoutBraces) {
  // The dangling-else shape the macro must survive.
  Logger::SetMinLevel(LogLevel::kError);
  bool flag = true;
  if (flag)
    QGP_LOG(kInfo) << "then-branch";
  else
    FAIL() << "macro broke if/else association";
}

}  // namespace
}  // namespace qgp
