// Property/fuzz suite for the vertex_set.h intersection kernels against a
// std::set_intersection oracle. The kernels dispatch on size ratios
// (merge / gallop-a / gallop-b / word-AND), so the generator deliberately
// produces adversarial shapes — empty, singleton, disjoint ranges, fully
// nested, dense duplicate-free runs, and heavily skewed sizes — to force
// every path, and the oracle must agree on all of them.
#include "common/vertex_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

namespace qgp {
namespace {

constexpr size_t kUniverse = 4096;

std::vector<uint32_t> Oracle(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint64_t> ToWords(const std::vector<uint32_t>& run) {
  std::vector<uint64_t> words(kUniverse / 64, 0);
  for (uint32_t v : run) words[v >> 6] |= 1ULL << (v & 63);
  return words;
}

// Sorted duplicate-free run of `size` values drawn from [lo, hi).
std::vector<uint32_t> RandomRun(std::mt19937& rng, size_t size, uint32_t lo,
                                uint32_t hi) {
  std::set<uint32_t> s;
  std::uniform_int_distribution<uint32_t> dist(lo, hi - 1);
  while (s.size() < size && s.size() < static_cast<size_t>(hi - lo)) {
    s.insert(dist(rng));
  }
  return std::vector<uint32_t>(s.begin(), s.end());
}

// One adversarial (a, b) pair per shape id; shapes cycle with the seed.
std::pair<std::vector<uint32_t>, std::vector<uint32_t>> MakeCase(
    std::mt19937& rng, int shape) {
  switch (shape % 8) {
    case 0:  // one side empty
      return {{}, RandomRun(rng, 40, 0, kUniverse)};
    case 1:  // singletons (hit and miss both covered across seeds)
      return {{static_cast<uint32_t>(rng() % kUniverse)},
              RandomRun(rng, 100, 0, kUniverse)};
    case 2:  // disjoint value ranges: intersection provably empty
      return {RandomRun(rng, 60, 0, kUniverse / 2),
              RandomRun(rng, 60, kUniverse / 2, kUniverse)};
    case 3: {  // nested: b is a sampled subset of a
      std::vector<uint32_t> a = RandomRun(rng, 200, 0, kUniverse);
      std::vector<uint32_t> b;
      for (size_t i = 0; i < a.size(); i += 1 + rng() % 4) b.push_back(a[i]);
      return {a, b};
    }
    case 4:  // dense duplicate-free: word-AND territory on both sides
      return {RandomRun(rng, kUniverse / 2, 0, kUniverse),
              RandomRun(rng, kUniverse / 2, 0, kUniverse)};
    case 5:  // heavy skew: tiny a inside huge b (gallop over b)
      return {RandomRun(rng, 5, 0, kUniverse),
              RandomRun(rng, 2000, 0, kUniverse)};
    case 6:  // heavy skew the other way (gallop over a)
      return {RandomRun(rng, 2000, 0, kUniverse),
              RandomRun(rng, 5, 0, kUniverse)};
    default:  // comparable sizes: the two-pointer merge path
      return {RandomRun(rng, 150, 0, kUniverse),
              RandomRun(rng, 170, 0, kUniverse)};
  }
}

TEST(VertexSetPropertyTest, SortedKernelsMatchOracleOnAdversarialShapes) {
  size_t nonempty_results = 0;
  for (uint64_t seed = 0; seed < 160; ++seed) {
    std::mt19937 rng(seed * 2654435761u + 17);
    auto [a, b] = MakeCase(rng, static_cast<int>(seed));
    const std::vector<uint32_t> expected = Oracle(a, b);
    SCOPED_TRACE("seed " + std::to_string(seed) + " |a|=" +
                 std::to_string(a.size()) + " |b|=" +
                 std::to_string(b.size()));
    std::vector<uint32_t> got;
    IntersectSortedInto(std::span<const uint32_t>(a),
                        std::span<const uint32_t>(b), got);
    EXPECT_EQ(got, expected);
    // Symmetry: the dispatch must not depend on argument order.
    got.clear();
    IntersectSortedInto(std::span<const uint32_t>(b),
                        std::span<const uint32_t>(a), got);
    EXPECT_EQ(got, expected);
    // The kernels append without clearing: a pre-seeded output keeps its
    // prefix (the scratch-reuse contract).
    std::vector<uint32_t> seeded{static_cast<uint32_t>(kUniverse + 1)};
    IntersectSortedInto(std::span<const uint32_t>(a),
                        std::span<const uint32_t>(b), seeded);
    ASSERT_GE(seeded.size(), 1u);
    EXPECT_EQ(seeded[0], kUniverse + 1);
    EXPECT_EQ(std::vector<uint32_t>(seeded.begin() + 1, seeded.end()),
              expected);
    if (!expected.empty()) ++nonempty_results;
  }
  // The generator must actually exercise non-trivial intersections.
  EXPECT_GE(nonempty_results, 40u);
}

TEST(VertexSetPropertyTest, ProjectedKernelMatchesOracle) {
  struct Labeled {
    uint32_t v;
    uint32_t payload;
  };
  for (uint64_t seed = 0; seed < 40; ++seed) {
    std::mt19937 rng(seed * 48271 + 3);
    auto [a, b] = MakeCase(rng, static_cast<int>(seed));
    std::vector<Labeled> a_structs;
    for (uint32_t v : a) a_structs.push_back({v, v ^ 0xdead});
    const std::vector<uint32_t> expected = Oracle(a, b);
    std::vector<uint32_t> got;
    IntersectSortedInto(
        std::span<const Labeled>(a_structs),
        [](const Labeled& x) { return x.v; },
        std::span<const uint32_t>(b), got);
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST(VertexSetPropertyTest, WordAndKernelMatchesOracle) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    std::mt19937 rng(seed * 69621 + 7);
    auto [a, b] = MakeCase(rng, static_cast<int>(seed));
    const std::vector<uint32_t> expected = Oracle(a, b);
    std::vector<uint32_t> got;
    IntersectWordsInto(ToWords(a), ToWords(b), got);
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
  // Mismatched word-array lengths intersect over the shorter prefix.
  std::vector<uint64_t> shorter{~0ULL};
  std::vector<uint64_t> longer{~0ULL, ~0ULL};
  std::vector<uint32_t> got;
  IntersectWordsInto(shorter, longer, got);
  EXPECT_EQ(got.size(), 64u);
  EXPECT_EQ(got.front(), 0u);
  EXPECT_EQ(got.back(), 63u);
}

// The SIMD dispatch (AVX2 when the host has it, scalar otherwise) and
// the always-available scalar kernel must agree bit for bit with the
// oracle on adversarial shapes, including word counts that are not a
// multiple of the 4-word vector width and ragged length pairs — the
// vector epilogue is where off-by-ones would live.
TEST(VertexSetPropertyTest, SimdWordAndMatchesScalarOnAdversarialShapes) {
#if defined(QGP_VERTEX_SET_HAS_AVX2)
  const bool avx2 = CpuHasAvx2();
#else
  const bool avx2 = false;
#endif
  size_t nonempty = 0;
  for (uint64_t seed = 0; seed < 120; ++seed) {
    std::mt19937 rng(seed * 2246822519u + 11);
    auto [a, b] = MakeCase(rng, static_cast<int>(seed));
    std::vector<uint64_t> wa = ToWords(a);
    std::vector<uint64_t> wb = ToWords(b);
    // Ragged truncation: force unequal lengths and non-multiple-of-4
    // word counts (1..4 words trimmed from one side per seed).
    const size_t trim = seed % 5;
    if (trim != 0 && wa.size() > trim) {
      (seed % 2 == 0 ? wa : wb).resize(wa.size() - trim);
    }
    const size_t n = std::min(wa.size(), wb.size());
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t bit = 0; bit < 64; ++bit) {
        if ((wa[i] >> bit) & (wb[i] >> bit) & 1ULL) {
          expected.push_back(static_cast<uint32_t>(i * 64 + bit));
        }
      }
    }
    SCOPED_TRACE("seed " + std::to_string(seed) + " |wa|=" +
                 std::to_string(wa.size()) + " |wb|=" +
                 std::to_string(wb.size()));
    std::vector<uint32_t> scalar;
    IntersectWordsScalarInto(wa, wb, scalar);
    EXPECT_EQ(scalar, expected);
    std::vector<uint32_t> dispatched;
    IntersectWordsInto(wa, wb, dispatched);
    EXPECT_EQ(dispatched, expected);
#if defined(QGP_VERTEX_SET_HAS_AVX2)
    if (avx2) {
      std::vector<uint32_t> simd;
      IntersectWordsAvx2Into(wa, wb, simd);
      EXPECT_EQ(simd, expected);
      // Append-without-clearing contract holds for the SIMD path too.
      std::vector<uint32_t> seeded{0xdeadbeefu};
      IntersectWordsAvx2Into(wa, wb, seeded);
      ASSERT_GE(seeded.size(), 1u);
      EXPECT_EQ(seeded[0], 0xdeadbeefu);
      EXPECT_EQ(std::vector<uint32_t>(seeded.begin() + 1, seeded.end()),
                expected);
    }
#endif
    if (!expected.empty()) ++nonempty;
  }
  EXPECT_GE(nonempty, 30u);
  // On AVX2 hosts this suite really covered the vector path; elsewhere
  // the dispatch-equals-scalar half still holds. Either way the
  // dispatcher never diverges from the scalar spec.
  (void)avx2;
}

// The pext decode (BMI2 tier) must agree with the ctz-loop decode on
// every word shape: empty, full, single bits at every position, bits
// straddling the 16-bit chunk boundaries the decoder works in, and
// random fuzz. Then the full AVX2+BMI2 kernel must agree with the
// scalar kernel on the same adversarial set shapes as the other SIMD
// tiers, including ragged word counts.
TEST(VertexSetPropertyTest, PextDecodeMatchesScalarOracle) {
#if !defined(QGP_VERTEX_SET_HAS_BMI2)
  GTEST_SKIP() << "no BMI2 build support on this target";
#else
  if (!CpuHasBmi2()) GTEST_SKIP() << "host lacks BMI2";
  auto decode_scalar = [](uint64_t w, uint32_t base) {
    std::vector<uint32_t> out;
    while (w != 0) {
      out.push_back(base + static_cast<uint32_t>(__builtin_ctzll(w)));
      w &= w - 1;
    }
    return out;
  };
  auto check_word = [&](uint64_t w, uint32_t base) {
    std::vector<uint32_t> got;
    DecodeWordBmi2Into(w, base, got);
    EXPECT_EQ(got, decode_scalar(w, base))
        << "word 0x" << std::hex << w << " base " << std::dec << base;
  };
  // Directed shapes first.
  check_word(0, 0);
  check_word(~0ULL, 128);
  for (int bit = 0; bit < 64; ++bit) check_word(1ULL << bit, 64);
  for (int edge : {15, 16, 31, 32, 47, 48}) {
    check_word((1ULL << edge) | (1ULL << (edge + 1)), 0);
  }
  check_word(0x8001800180018001ULL, 0);  // chunk-extreme bits, all chunks
  check_word(0xAAAAAAAAAAAAAAAAULL, 0);  // alternating, 8 bits per chunk
  // Random word fuzz across densities.
  std::mt19937_64 rng(0x9e3779b97f4a7c15ULL);
  for (int trial = 0; trial < 2000; ++trial) {
    uint64_t w = rng();
    // Vary density: sparse words come from AND-ing random words.
    for (int d = 0; d < trial % 4; ++d) w &= rng();
    check_word(w, static_cast<uint32_t>((trial % 64) << 6));
  }
#endif
}

TEST(VertexSetPropertyTest, Avx2Bmi2KernelMatchesScalarOnAdversarialShapes) {
#if !defined(QGP_VERTEX_SET_HAS_BMI2)
  GTEST_SKIP() << "no BMI2 build support on this target";
#else
  if (!CpuHasAvx2() || !CpuHasBmi2()) GTEST_SKIP() << "host lacks AVX2+BMI2";
  size_t nonempty = 0;
  for (uint64_t seed = 0; seed < 120; ++seed) {
    std::mt19937 rng(seed * 2654435761u + 101);
    auto [a, b] = MakeCase(rng, static_cast<int>(seed));
    std::vector<uint64_t> wa = ToWords(a);
    std::vector<uint64_t> wb = ToWords(b);
    const size_t trim = seed % 5;
    if (trim != 0 && wa.size() > trim) {
      (seed % 2 == 0 ? wa : wb).resize(wa.size() - trim);
    }
    std::vector<uint32_t> scalar;
    IntersectWordsScalarInto(wa, wb, scalar);
    std::vector<uint32_t> simd;
    IntersectWordsAvx2Bmi2Into(wa, wb, simd);
    EXPECT_EQ(simd, scalar) << "seed " << seed;
    // Append-without-clearing contract holds for the BMI2 tier too.
    std::vector<uint32_t> seeded{0xfeedfaceu};
    IntersectWordsAvx2Bmi2Into(wa, wb, seeded);
    ASSERT_GE(seeded.size(), 1u);
    EXPECT_EQ(seeded[0], 0xfeedfaceu);
    EXPECT_EQ(std::vector<uint32_t>(seeded.begin() + 1, seeded.end()),
              scalar);
    if (!scalar.empty()) ++nonempty;
  }
  EXPECT_GE(nonempty, 30u);
#endif
}

TEST(VertexSetPropertyTest, GallopLowerBoundMatchesStdLowerBound) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937 rng(seed * 16807 + 13);
    std::vector<uint32_t> run = RandomRun(rng, 1 + rng() % 300, 0, kUniverse);
    for (int probe = 0; probe < 50; ++probe) {
      uint32_t key = rng() % (kUniverse + 2);
      const uint32_t* expect =
          std::lower_bound(run.data(), run.data() + run.size(), key);
      const uint32_t* got =
          GallopLowerBound(run.data(), run.data() + run.size(), key);
      EXPECT_EQ(got, expect)
          << "seed " << seed << " key " << key;
    }
  }
}

TEST(VertexSetPropertyTest, SparseBitsetLifecycleUnderRandomOps) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    std::mt19937 rng(seed * 22695477 + 1);
    SparseBitset bits;
    bits.EnsureUniverse(kUniverse);
    std::set<uint32_t> model;
    for (int round = 0; round < 4; ++round) {
      for (int op = 0; op < 300; ++op) {
        uint32_t v = rng() % kUniverse;
        switch (rng() % 3) {
          case 0:
            bits.Set(v);
            model.insert(v);
            break;
          case 1: {
            bool was_clear = model.insert(v).second;
            EXPECT_EQ(bits.TestAndSet(v), was_clear);
            break;
          }
          default:
            bits.Clear(v);
            model.erase(v);
            break;
        }
      }
      for (uint32_t v = 0; v < kUniverse; ++v) {
        ASSERT_EQ(bits.Test(v), model.count(v) != 0)
            << "seed " << seed << " round " << round << " bit " << v;
      }
      // O(touched) reset really clears everything, every round.
      bits.ResetTouched();
      model.clear();
      for (uint32_t v = 0; v < kUniverse; ++v) {
        ASSERT_FALSE(bits.Test(v));
      }
    }
  }
}

}  // namespace
}  // namespace qgp
