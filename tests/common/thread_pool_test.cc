#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace qgp {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor must complete pending tasks.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<int64_t> partial(1000, 0);
  pool.ParallelFor(partial.size(),
                   [&](size_t i) { partial[i] = static_cast<int64_t>(i); });
  int64_t total = std::accumulate(partial.begin(), partial.end(), int64_t{0});
  EXPECT_EQ(total, 999 * 1000 / 2);
}

// --- Work-stealing scheduler ---

TEST(ThreadPoolSchedulerTest, StealableTasksAllRunExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  for (size_t i = 0; i < hits.size(); ++i) {
    pool.SubmitStealable(i, [&hits, i] { hits[i].fetch_add(1); });
  }
  pool.Wait();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  const ThreadPool::SchedulerStats stats = pool.scheduler_stats();
  EXPECT_EQ(stats.total_executed(), hits.size());
  EXPECT_EQ(stats.executed.size(), 4u);
}

// Forced-steal stress: every task lands on worker 0's deque, so any work
// the other three workers do is, by construction, stolen. All tasks must
// still run exactly once and the counters must account for every task.
TEST(ThreadPoolSchedulerTest, ForcedStealDrainsOneWorkersDeque) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    pool.SubmitStealable(0, [&hits, i] { hits[i].fetch_add(1); });
  }
  pool.Wait();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  const ThreadPool::SchedulerStats stats = pool.scheduler_stats();
  EXPECT_EQ(stats.total_executed(), kTasks);
  uint64_t stolen_by_others = 0;
  for (size_t w = 1; w < 4; ++w) {
    // A non-home worker can only have executed stolen tasks.
    EXPECT_EQ(stats.executed[w], stats.stolen[w]);
    stolen_by_others += stats.stolen[w];
  }
  EXPECT_EQ(stats.total_stolen(), stolen_by_others + stats.stolen[0]);
  EXPECT_EQ(stats.stolen[0], 0u);  // can't steal from yourself
}

TEST(ThreadPoolSchedulerTest, ParallelForDynamicCoversAllIndices) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(313);
    pool.ParallelForDynamic(hits.size(), 7, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolSchedulerTest, ParallelForDynamicEmptyAndSingleChunk) {
  ThreadPool pool(3);
  bool called = false;
  pool.ParallelForDynamic(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
  // n <= grain: one chunk, runs inline.
  std::vector<int> slots(5, 0);
  pool.ParallelForDynamic(slots.size(), 100, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) slots[i] = 1;
  });
  EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0), 5);
}

// Slot-owned writes merge to the same result at any thread count and any
// grain — the determinism contract every match-path caller relies on.
TEST(ThreadPoolSchedulerTest, ParallelForDynamicDeterministicSlots) {
  std::vector<uint64_t> expected(1000);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = i * 2654435761u;
  }
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (size_t grain : {1u, 3u, 64u}) {
      ThreadPool pool(threads);
      std::vector<uint64_t> slots(expected.size(), 0);
      pool.ParallelForDynamic(slots.size(), grain,
                              [&](size_t begin, size_t end) {
                                for (size_t i = begin; i < end; ++i) {
                                  slots[i] = i * 2654435761u;
                                }
                              });
      EXPECT_EQ(slots, expected)
          << "threads=" << threads << " grain=" << grain;
    }
  }
}

// Nested dynamic dispatch from inside a worker degrades to inline
// execution instead of deadlocking on the pool's own Wait().
TEST(ThreadPoolSchedulerTest, NestedParallelForDynamicRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  pool.Submit([&] {
    pool.ParallelForDynamic(10, 1, [&](size_t begin, size_t end) {
      inner_hits.fetch_add(static_cast<int>(end - begin));
    });
  });
  pool.Wait();
  EXPECT_EQ(inner_hits.load(), 10);
}

// Central-queue and stealable tasks share the workers and Wait() covers
// both channels.
TEST(ThreadPoolSchedulerTest, MixedChannelsDrainTogether) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    pool.Submit([&] { counter.fetch_add(1); });
    pool.SubmitStealable(static_cast<size_t>(round),
                         [&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 40);
}

TEST(ThreadPoolSchedulerTest, DestructorDrainsStealableDeques) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.SubmitStealable(static_cast<size_t>(i),
                           [&counter] { counter.fetch_add(1); });
    }
    // Destructor must complete pending stealable tasks too.
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace qgp
