#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace qgp {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor must complete pending tasks.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<int64_t> partial(1000, 0);
  pool.ParallelFor(partial.size(),
                   [&](size_t i) { partial[i] = static_cast<int64_t>(i); });
  int64_t total = std::accumulate(partial.begin(), partial.end(), int64_t{0});
  EXPECT_EQ(total, 999 * 1000 / 2);
}

}  // namespace
}  // namespace qgp
