#include "common/bitset.h"

#include <gtest/gtest.h>

namespace qgp {
namespace {

TEST(DynamicBitsetTest, StartsClear) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Test(i));
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(DynamicBitsetTest, SetClearTest) {
  DynamicBitset bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(DynamicBitsetTest, TestAndSet) {
  DynamicBitset bits(10);
  EXPECT_TRUE(bits.TestAndSet(5));   // was clear
  EXPECT_FALSE(bits.TestAndSet(5));  // now set
  EXPECT_TRUE(bits.Test(5));
}

TEST(DynamicBitsetTest, Reset) {
  DynamicBitset bits(70);
  for (size_t i = 0; i < 70; i += 7) bits.Set(i);
  EXPECT_GT(bits.Count(), 0u);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(DynamicBitsetTest, ResizePreservesBits) {
  DynamicBitset bits(10);
  bits.Set(3);
  bits.Resize(200);
  EXPECT_TRUE(bits.Test(3));
  EXPECT_FALSE(bits.Test(150));
  bits.Set(150);
  EXPECT_TRUE(bits.Test(150));
}

TEST(DynamicBitsetTest, WordBoundaries) {
  DynamicBitset bits(256);
  for (size_t i : {63u, 64u, 127u, 128u, 191u, 192u, 255u}) {
    EXPECT_TRUE(bits.TestAndSet(i));
  }
  EXPECT_EQ(bits.Count(), 7u);
}

}  // namespace
}  // namespace qgp
