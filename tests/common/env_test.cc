#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace qgp {
namespace {

TEST(EnvTest, StringFallback) {
  ::unsetenv("QGP_TEST_VAR");
  EXPECT_EQ(GetEnvString("QGP_TEST_VAR", "fb"), "fb");
  ::setenv("QGP_TEST_VAR", "value", 1);
  EXPECT_EQ(GetEnvString("QGP_TEST_VAR", "fb"), "value");
  ::setenv("QGP_TEST_VAR", "", 1);
  EXPECT_EQ(GetEnvString("QGP_TEST_VAR", "fb"), "fb");
  ::unsetenv("QGP_TEST_VAR");
}

TEST(EnvTest, IntFallback) {
  ::unsetenv("QGP_TEST_INT");
  EXPECT_EQ(GetEnvInt64("QGP_TEST_INT", 5), 5);
  ::setenv("QGP_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt64("QGP_TEST_INT", 5), 42);
  ::setenv("QGP_TEST_INT", "garbage", 1);
  EXPECT_EQ(GetEnvInt64("QGP_TEST_INT", 5), 5);
  ::unsetenv("QGP_TEST_INT");
}

TEST(EnvTest, BenchScaleParsing) {
  ::unsetenv("QGP_BENCH_SCALE");
  EXPECT_EQ(GetBenchScale(), BenchScale::kSmall);
  ::setenv("QGP_BENCH_SCALE", "tiny", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kTiny);
  ::setenv("QGP_BENCH_SCALE", "MEDIUM", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kMedium);
  ::setenv("QGP_BENCH_SCALE", "large", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kLarge);
  ::setenv("QGP_BENCH_SCALE", "bogus", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kSmall);
  ::unsetenv("QGP_BENCH_SCALE");
}

TEST(EnvTest, ScaleFactorsMonotone) {
  EXPECT_LT(BenchScaleFactor(BenchScale::kTiny),
            BenchScaleFactor(BenchScale::kSmall));
  EXPECT_LT(BenchScaleFactor(BenchScale::kSmall),
            BenchScaleFactor(BenchScale::kMedium));
  EXPECT_LT(BenchScaleFactor(BenchScale::kMedium),
            BenchScaleFactor(BenchScale::kLarge));
}

TEST(EnvTest, ScaleNames) {
  EXPECT_STREQ(BenchScaleName(BenchScale::kTiny), "tiny");
  EXPECT_STREQ(BenchScaleName(BenchScale::kLarge), "large");
}

}  // namespace
}  // namespace qgp
