#include "common/timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace qgp {
namespace {

TEST(WallTimerTest, StartsNearZero) {
  WallTimer t;
  // Fresh timers read a tiny elapsed time; a full second would mean the
  // clock source is broken.
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

TEST(WallTimerTest, ElapsedIsMonotone) {
  WallTimer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  double c = t.ElapsedSeconds();
  EXPECT_LE(a, b);
  EXPECT_LE(b, c);
}

TEST(WallTimerTest, MeasuresSleeps) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // sleep_for guarantees at least the requested duration on a steady
  // clock; allow generous slack above (scheduler noise) but none below.
  EXPECT_GE(t.ElapsedMillis(), 19.0);
  EXPECT_LT(t.ElapsedSeconds(), 10.0);
}

TEST(WallTimerTest, MillisIsSecondsTimesThousand) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double s = t.ElapsedSeconds();
  double ms = t.ElapsedMillis();
  // Two separate clock reads: ms was taken after s, so it can only be
  // larger, and by far less than a second's worth of drift.
  EXPECT_GE(ms, s * 1e3);
  EXPECT_LT(ms, (s + 1.0) * 1e3);
}

TEST(WallTimerTest, RestartResetsTheOrigin) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double before = t.ElapsedMillis();
  t.Restart();
  double after = t.ElapsedMillis();
  EXPECT_GE(before, 19.0);
  EXPECT_LT(after, before);
}

TEST(WallTimerTest, IndependentTimersDoNotInterfere) {
  WallTimer outer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  WallTimer inner;
  EXPECT_GT(outer.ElapsedSeconds(), inner.ElapsedSeconds());
}

}  // namespace
}  // namespace qgp
