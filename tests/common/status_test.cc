#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace qgp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad p");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad p");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad p");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::Ok();
}

Status Chained(int x) {
  QGP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::Ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  QGP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace qgp
