// Unit tests for the candidate-set kernels: SparseBitset touched-word
// reset semantics, galloping lower bound, and the intersection routines
// across all dispatch branches (merge, gallop-either-side, word-AND),
// checked against std::set_intersection on randomized runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <random>
#include <vector>

#include "common/bitset.h"
#include "common/vertex_set.h"

namespace qgp {
namespace {

std::vector<uint32_t> RandomSortedRun(std::mt19937& rng, size_t n,
                                      uint32_t universe) {
  std::uniform_int_distribution<uint32_t> dist(0, universe - 1);
  std::vector<uint32_t> run;
  run.reserve(n);
  for (size_t i = 0; i < n; ++i) run.push_back(dist(rng));
  std::sort(run.begin(), run.end());
  run.erase(std::unique(run.begin(), run.end()), run.end());
  return run;
}

std::vector<uint32_t> Reference(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(SparseBitsetTest, SetTestClearAndTouchedReset) {
  SparseBitset bits;
  bits.EnsureUniverse(1000);
  EXPECT_FALSE(bits.Test(0));
  EXPECT_TRUE(bits.TestAndSet(0));
  EXPECT_FALSE(bits.TestAndSet(0));
  bits.Set(999);
  bits.Set(64);
  EXPECT_TRUE(bits.Test(64));
  bits.Clear(64);
  EXPECT_FALSE(bits.Test(64));
  // Clear() keeps the word on the touched list: after setting another
  // bit in the same word, reset must still wipe it.
  bits.Set(65);
  bits.ResetTouched();
  for (size_t i : {0, 64, 65, 999}) EXPECT_FALSE(bits.Test(i));
  // Reuse after reset behaves like a fresh bitset.
  EXPECT_TRUE(bits.TestAndSet(999));
}

TEST(SparseBitsetTest, EnsureUniverseGrowsAndPreserves) {
  SparseBitset bits;
  bits.EnsureUniverse(10);
  bits.Set(7);
  bits.EnsureUniverse(5000);
  EXPECT_EQ(bits.size(), 5000u);
  EXPECT_TRUE(bits.Test(7));
  EXPECT_FALSE(bits.Test(4999));
  bits.EnsureUniverse(100);  // never shrinks
  EXPECT_EQ(bits.size(), 5000u);
}

TEST(GallopLowerBoundTest, MatchesStdLowerBound) {
  std::mt19937 rng(7);
  std::vector<uint32_t> run = RandomSortedRun(rng, 400, 5000);
  for (uint32_t key : {0u, 1u, 2500u, 4999u, 6000u}) {
    const uint32_t* expect =
        std::lower_bound(run.data(), run.data() + run.size(), key);
    const uint32_t* got =
        GallopLowerBound(run.data(), run.data() + run.size(), key);
    EXPECT_EQ(got, expect) << "key " << key;
  }
  for (uint32_t v : run) {
    EXPECT_EQ(*GallopLowerBound(run.data(), run.data() + run.size(), v), v);
  }
  // Empty run.
  EXPECT_EQ(GallopLowerBound(run.data(), run.data(), 3u), run.data());
}

TEST(IntersectSortedTest, AllDispatchBranchesMatchReference) {
  std::mt19937 rng(13);
  // (|a|, |b|) chosen to hit: both empty, merge (comparable), gallop
  // through b (a tiny), gallop through a (b tiny).
  const std::pair<size_t, size_t> shapes[] = {
      {0, 50},   {50, 0},    {300, 350},  {5, 4000},
      {4000, 5}, {1, 1},     {64, 4096},  {4096, 64},
  };
  for (auto [na, nb] : shapes) {
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<uint32_t> a = RandomSortedRun(rng, na, 8192);
      std::vector<uint32_t> b = RandomSortedRun(rng, nb, 8192);
      std::vector<uint32_t> out;
      IntersectSortedInto(a, b, out);
      EXPECT_EQ(out, Reference(a, b)) << "|a|=" << na << " |b|=" << nb;
    }
  }
}

TEST(IntersectSortedTest, ProjectedVariantUsesProjection) {
  struct Entry {
    uint32_t id;
    int payload;
  };
  std::vector<Entry> a = {{2, 9}, {5, 9}, {9, 9}, {11, 9}};
  std::vector<uint32_t> b = {1, 5, 9, 12};
  std::vector<uint32_t> out;
  IntersectSortedInto(std::span<const Entry>(a),
                      [](const Entry& e) { return e.id; },
                      std::span<const uint32_t>(b), out);
  EXPECT_EQ(out, (std::vector<uint32_t>{5, 9}));
}

TEST(IntersectWordsTest, MatchesElementwiseReference) {
  std::mt19937 rng(29);
  const size_t universe = 2048;
  std::vector<uint32_t> a = RandomSortedRun(rng, 700, universe);
  std::vector<uint32_t> b = RandomSortedRun(rng, 900, universe);
  DynamicBitset abits(universe);
  DynamicBitset bbits(universe);
  for (uint32_t v : a) abits.Set(v);
  for (uint32_t v : b) bbits.Set(v);
  std::vector<uint32_t> out;
  IntersectWordsInto(abits.words(), bbits.words(), out);
  EXPECT_EQ(out, Reference(a, b));
  // Mismatched word-array lengths intersect over the common prefix.
  DynamicBitset longer(universe * 4);
  for (uint32_t v : b) longer.Set(v);
  longer.Set(universe * 4 - 1);  // outside a's universe: must not appear
  out.clear();
  IntersectWordsInto(abits.words(), longer.words(), out);
  EXPECT_EQ(out, Reference(a, b));
}

TEST(IntersectSortedTest, OutputAppendsWithoutClearing) {
  std::vector<uint32_t> a = {1, 2, 3};
  std::vector<uint32_t> b = {2, 3, 4};
  std::vector<uint32_t> out = {77};
  IntersectSortedInto(a, b, out);
  EXPECT_EQ(out, (std::vector<uint32_t>{77, 2, 3}));
}

}  // namespace
}  // namespace qgp
