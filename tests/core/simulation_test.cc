#include "core/simulation.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

TEST(DualSimulationTest, FiltersByLabelAndChildren) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());

  auto sim = DualSimulation(q2, g);
  ASSERT_EQ(sim.size(), 3u);
  // z requires an outgoing recom to redmi and an incoming follow:
  // v0..v3 qualify; v4 (bad_rating only) and x1..x3 (no recom) do not.
  EXPECT_EQ(sim[1], (std::vector<VertexId>{ids.v0, ids.v1, ids.v2, ids.v3}));
  // xo requires a follow-child that simulates z: all of x1, x2, x3.
  EXPECT_EQ(sim[0], (std::vector<VertexId>{ids.x1, ids.x2, ids.x3}));
  // redmi: needs an incoming recom from a z-simulator.
  EXPECT_EQ(sim[2], (std::vector<VertexId>{ids.redmi}));
}

TEST(DualSimulationTest, PropagatesRemovalToFixpoint) {
  // Chain pattern a->b->c; graph chain 0->1->2 plus a dangling 3->4
  // (labels a,b but no c child): 3 and 4 must be eliminated transitively.
  GraphBuilder gb;
  VertexId n0 = gb.AddVertex("a");
  VertexId n1 = gb.AddVertex("b");
  VertexId n2 = gb.AddVertex("c");
  VertexId n3 = gb.AddVertex("a");
  VertexId n4 = gb.AddVertex("b");
  (void)gb.AddEdge(n0, n1, "e");
  (void)gb.AddEdge(n1, n2, "e");
  (void)gb.AddEdge(n3, n4, "e");
  Graph g = std::move(gb).Build().value();

  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  PatternNodeId c = p.AddNode(dict.Intern("c"), "c");
  (void)p.AddEdge(a, b, dict.Intern("e"));
  (void)p.AddEdge(b, c, dict.Intern("e"));
  (void)p.set_focus(a);

  auto sim = DualSimulation(p, g);
  EXPECT_EQ(sim[0], (std::vector<VertexId>{n0}));
  EXPECT_EQ(sim[1], (std::vector<VertexId>{n1}));
  EXPECT_EQ(sim[2], (std::vector<VertexId>{n2}));
}

TEST(DualSimulationTest, ChecksParentsToo) {
  // Pattern b with required parent a. Graph: 0(a)->1(b), 2(b) orphan.
  GraphBuilder gb;
  VertexId n0 = gb.AddVertex("a");
  VertexId n1 = gb.AddVertex("b");
  gb.AddVertex("b");  // orphan
  (void)gb.AddEdge(n0, n1, "e");
  Graph g = std::move(gb).Build().value();
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  (void)p.AddEdge(a, b, dict.Intern("e"));
  (void)p.set_focus(a);
  auto sim = DualSimulation(p, g);
  EXPECT_EQ(sim[1], (std::vector<VertexId>{n1}));  // orphan dropped
}

TEST(DualSimulationTest, EmptyWhenLabelAbsent) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  p.AddNode(dict.Intern("nonexistent_label"), "a");
  auto sim = DualSimulation(p, g);
  EXPECT_TRUE(sim[0].empty());
}

}  // namespace
}  // namespace qgp
