#include "core/qmatch.h"

#include <gtest/gtest.h>

#include "core/dmatch.h"
#include "core/inc_qmatch.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

TEST(QMatchTest, SubsetRestrictsAnswers) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchOptions opts;
  std::vector<VertexId> subset{ids.x2, ids.x3};
  auto answers = QMatch::EvaluateSubset(q2, g, subset, opts, nullptr);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{ids.x2}));  // x1 not in subset
}

TEST(QMatchTest, IncrementalAndNaiveNegationAgree) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  auto inc = QMatch::Evaluate(q3, g);
  auto naive = QMatchNaiveEvaluate(q3, g);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(inc.value(), naive.value());
}

TEST(QMatchTest, IncrementalDoesLessVerification) {
  testing::G2Ids ids;
  Graph g = testing::BuildG2(&ids);
  Pattern q4 = testing::BuildQ4(g.mutable_dict(), 2);
  MatchStats inc_stats, naive_stats;
  MatchOptions opts;
  ASSERT_TRUE(QMatch::Evaluate(q4, g, opts, &inc_stats).ok());
  opts.use_incremental_negation = false;
  ASSERT_TRUE(QMatch::Evaluate(q4, g, opts, &naive_stats).ok());
  // IncQMatch re-verifies only the cached answers, QMatchn the full good
  // focus set of each positified pattern.
  EXPECT_LE(inc_stats.focus_candidates_checked,
            naive_stats.focus_candidates_checked);
}

TEST(QMatchTest, ThreadPoolProducesSameAnswers) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  MatchOptions opts;
  ThreadPool pool(3);
  auto parallel = QMatch::Evaluate(q3, g, opts, nullptr, &pool);
  auto serial = QMatch::Evaluate(q3, g, opts, nullptr, nullptr);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(parallel.value(), serial.value());
}

TEST(QMatchTest, OptionTogglesPreserveAnswers) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  auto reference = QMatch::Evaluate(q3, g);
  ASSERT_TRUE(reference.ok());
  for (bool sim : {true, false}) {
    for (bool prune : {true, false}) {
      for (bool potential : {true, false}) {
        for (bool early : {true, false}) {
          MatchOptions opts;
          opts.use_simulation = sim;
          opts.use_quantifier_pruning = prune;
          opts.use_potential_ordering = potential;
          opts.early_stop_counting = early;
          auto answers = QMatch::Evaluate(q3, g, opts);
          ASSERT_TRUE(answers.ok());
          EXPECT_EQ(answers.value(), reference.value())
              << "sim=" << sim << " prune=" << prune
              << " potential=" << potential << " early=" << early;
        }
      }
    }
  }
}

TEST(QMatchTest, RejectsInvalidPattern) {
  Graph g = testing::BuildG1(nullptr);
  Pattern empty;
  EXPECT_FALSE(QMatch::Evaluate(empty, g).ok());
}

TEST(QMatchTest, RejectsPathRuleViolation) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("person"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("person"), "b");
  PatternNodeId c = p.AddNode(dict.Intern("person"), "c");
  PatternNodeId d = p.AddNode(dict.Intern("person"), "d");
  Quantifier q = Quantifier::Numeric(QuantOp::kGe, 2);
  (void)p.AddEdge(a, b, dict.Intern("follow"), q);
  (void)p.AddEdge(b, c, dict.Intern("follow"), q);
  (void)p.AddEdge(c, d, dict.Intern("follow"), q);
  (void)p.set_focus(a);
  MatchOptions opts;  // default l = 2
  EXPECT_FALSE(QMatch::Evaluate(p, g, opts).ok());
  opts.max_quantified_per_path = 3;
  EXPECT_TRUE(QMatch::Evaluate(p, g, opts).ok());
}

TEST(DMatchTest, EvaluatorExposesFocusCandidates) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchOptions opts;
  auto ev = PositiveEvaluator::Create(q2, g, opts);
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->radius(), 2);
  EXPECT_FALSE(ev->FocusCandidates().empty());
  EXPECT_TRUE(ev->VerifyFocus(ids.x1, nullptr, nullptr, nullptr));
  EXPECT_TRUE(ev->VerifyFocus(ids.x2, nullptr, nullptr, nullptr));
  EXPECT_FALSE(ev->VerifyFocus(ids.x3, nullptr, nullptr, nullptr));
  EXPECT_FALSE(ev->VerifyFocus(ids.v4, nullptr, nullptr, nullptr));
}

TEST(DMatchTest, RejectsNegativePattern) {
  Graph g = testing::BuildG1(nullptr);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  MatchOptions opts;
  EXPECT_FALSE(PositiveEvaluator::Create(q3, g, opts).ok());
}

TEST(DMatchTest, CachesRecordBallAndWitness) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchOptions opts;
  auto ev = PositiveEvaluator::Create(q2, g, opts);
  ASSERT_TRUE(ev.ok());
  FocusCache cache;
  ASSERT_TRUE(ev->VerifyFocus(ids.x2, nullptr, &cache, nullptr));
  EXPECT_EQ(cache.radius, 2);
  EXPECT_FALSE(cache.ball.empty());
  ASSERT_EQ(cache.witness.size(), q2.num_nodes());
  EXPECT_EQ(cache.witness[q2.focus()], ids.x2);
}

TEST(IncQMatchTest, MatchesDirectEvaluation) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  MatchOptions opts;

  auto pi = q3.Pi();
  ASSERT_TRUE(pi.ok());
  auto ev0 = PositiveEvaluator::Create(pi.value().first, g, opts,
                                       &pi.value().second.edge_to_original,
                                       q3.num_edges());
  ASSERT_TRUE(ev0.ok());
  std::unordered_map<VertexId, FocusCache> caches;
  AnswerSet a0 = ev0->EvaluateAll(nullptr, &caches);
  EXPECT_EQ(a0, (AnswerSet{ids.x2, ids.x3}));

  PatternEdgeId neg = q3.NegatedEdgeIds()[0];
  auto positified = q3.Positify(neg);
  ASSERT_TRUE(positified.ok());
  auto pi_pos = positified.value().Pi();
  ASSERT_TRUE(pi_pos.ok());
  auto ev_e = PositiveEvaluator::Create(
      pi_pos.value().first, g, opts,
      &pi_pos.value().second.edge_to_original, q3.num_edges());
  ASSERT_TRUE(ev_e.ok());

  AnswerSet incremental = IncQMatchEvaluate(*ev_e, a0, caches, nullptr);
  AnswerSet direct = ev_e->EvaluateAll(nullptr, nullptr);
  // Incremental is restricted to a0; direct may exceed it, but inside a0
  // they must agree.
  EXPECT_EQ(incremental, SetIntersection(direct, a0));
  EXPECT_EQ(incremental, (AnswerSet{ids.x3}));
}

}  // namespace
}  // namespace qgp
