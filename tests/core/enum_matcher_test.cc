#include "core/enum_matcher.h"

#include <gtest/gtest.h>

#include "testing/paper_graphs.h"

namespace qgp {
namespace {

TEST(EnumMatcherTest, MatchesPaperAnswers) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  auto answers = EnumMatcher::Evaluate(q2, g);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{ids.x1, ids.x2}));
}

TEST(EnumMatcherTest, FocusSubset) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchOptions opts;
  std::vector<VertexId> subset{ids.x1};
  auto answers =
      EnumMatcher::EvaluatePositive(q2, g, opts, nullptr, subset);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{ids.x1}));
}

TEST(EnumMatcherTest, CapReturnsError) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchOptions opts;
  opts.max_isomorphisms = 1;
  // x2 and x3 have two+ embeddings each; the cap must trip.
  auto answers = EnumMatcher::Evaluate(q2, g, opts);
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kInternal);
}

TEST(EnumMatcherTest, EnumeratesMoreThanQMatch) {
  // The baseline enumerates every embedding; DMatch short-circuits.
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchStats enum_stats;
  ASSERT_TRUE(EnumMatcher::Evaluate(q2, g, {}, &enum_stats).ok());
  EXPECT_GT(enum_stats.isomorphisms_enumerated, 0u);
}

TEST(EnumMatcherTest, RejectsNegativePatternInPositiveApi) {
  Graph g = testing::BuildG1(nullptr);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  EXPECT_FALSE(EnumMatcher::EvaluatePositive(q3, g, {}, nullptr).ok());
}

}  // namespace
}  // namespace qgp
