#include "core/expand.h"

#include <gtest/gtest.h>

#include "core/naive_matcher.h"
#include "graph/graph_builder.h"

namespace qgp {
namespace {

Pattern TwoLevelTree(LabelDict& dict, uint32_t p_children) {
  Pattern q;
  PatternNodeId r = q.AddNode(dict.Intern("r"), "r");
  PatternNodeId z = q.AddNode(dict.Intern("z"), "z");
  PatternNodeId w = q.AddNode(dict.Intern("w"), "w");
  (void)q.AddEdge(r, z, dict.Intern("e"),
                  Quantifier::Numeric(QuantOp::kGe, p_children));
  (void)q.AddEdge(z, w, dict.Intern("f"));
  (void)q.set_focus(r);
  return q;
}

TEST(ExpandTest, CopiesSubtrees) {
  LabelDict dict;
  Pattern q = TwoLevelTree(dict, 2);
  auto expanded = ExpandNumericCopies(q);
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  // Root + 2 copies of (z -> w): 5 nodes, 4 edges, all existential.
  EXPECT_EQ(expanded->num_nodes(), 5u);
  EXPECT_EQ(expanded->num_edges(), 4u);
  EXPECT_TRUE(expanded->IsConventional());
}

TEST(ExpandTest, RejectsNonTreeAndNonGe) {
  LabelDict dict;
  // Cycle: not an out-tree.
  Pattern cyc;
  PatternNodeId a = cyc.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = cyc.AddNode(dict.Intern("b"), "b");
  (void)cyc.AddEdge(a, b, dict.Intern("e"));
  (void)cyc.AddEdge(b, a, dict.Intern("e"));
  (void)cyc.set_focus(a);
  EXPECT_EQ(ExpandNumericCopies(cyc).status().code(),
            StatusCode::kUnimplemented);

  // Ratio quantifier unsupported.
  Pattern ratio;
  PatternNodeId r = ratio.AddNode(dict.Intern("a"), "a");
  PatternNodeId z = ratio.AddNode(dict.Intern("b"), "b");
  (void)ratio.AddEdge(r, z, dict.Intern("e"),
                      Quantifier::Ratio(QuantOp::kGe, 50.0));
  (void)ratio.set_focus(r);
  EXPECT_EQ(ExpandNumericCopies(ratio).status().code(),
            StatusCode::kUnimplemented);

  // Negation unsupported.
  Pattern neg;
  PatternNodeId n0 = neg.AddNode(dict.Intern("a"), "a");
  PatternNodeId n1 = neg.AddNode(dict.Intern("b"), "b");
  (void)neg.AddEdge(n0, n1, dict.Intern("e"), Quantifier::Negation());
  (void)neg.set_focus(n0);
  EXPECT_EQ(ExpandNumericCopies(neg).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ExpandTest, DemonstratesLemma3Discrepancy) {
  // DESIGN.md deviation 2: two z-children share their single w-child.
  // §2.2 counts both z's (answer: root matches); the copy-expansion
  // demands node-disjoint w-witnesses and rejects the root.
  GraphBuilder b;
  VertexId root = b.AddVertex("r");
  VertexId z1 = b.AddVertex("z");
  VertexId z2 = b.AddVertex("z");
  VertexId w = b.AddVertex("w");
  (void)b.AddEdge(root, z1, "e");
  (void)b.AddEdge(root, z2, "e");
  (void)b.AddEdge(z1, w, "f");
  (void)b.AddEdge(z2, w, "f");
  Graph g = std::move(b).Build().value();

  Pattern q = TwoLevelTree(g.mutable_dict(), 2);
  auto original = NaiveMatcher::Evaluate(q, g);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original.value(), (AnswerSet{root}));

  auto expanded = ExpandNumericCopies(q);
  ASSERT_TRUE(expanded.ok());
  auto copied = NaiveMatcher::Evaluate(*expanded, g);
  ASSERT_TRUE(copied.ok());
  EXPECT_TRUE(copied.value().empty());  // the expansion is NOT equivalent
}

TEST(ExpandTest, AgreesWhenWitnessesAreDisjoint) {
  // With two disjoint w's the two semantics coincide.
  GraphBuilder b;
  VertexId root = b.AddVertex("r");
  VertexId z1 = b.AddVertex("z");
  VertexId z2 = b.AddVertex("z");
  VertexId w1 = b.AddVertex("w");
  VertexId w2 = b.AddVertex("w");
  (void)b.AddEdge(root, z1, "e");
  (void)b.AddEdge(root, z2, "e");
  (void)b.AddEdge(z1, w1, "f");
  (void)b.AddEdge(z2, w2, "f");
  Graph g = std::move(b).Build().value();

  Pattern q = TwoLevelTree(g.mutable_dict(), 2);
  auto original = NaiveMatcher::Evaluate(q, g);
  auto expanded = ExpandNumericCopies(q);
  ASSERT_TRUE(expanded.ok());
  auto copied = NaiveMatcher::Evaluate(*expanded, g);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(original.value(), copied.value());
  EXPECT_EQ(original.value(), (AnswerSet{root}));
}

}  // namespace
}  // namespace qgp
