#include "core/ratio_transform.h"

#include <gtest/gtest.h>

namespace qgp {
namespace {

TEST(ToNumericAtTest, GeRatioUsesCeiling) {
  NumericForm f = ToNumericAt(Quantifier::Ratio(QuantOp::kGe, 80.0), 3);
  EXPECT_TRUE(f.satisfiable);
  EXPECT_EQ(f.min_count, 3u);  // ceil(2.4), not the paper's floor
  EXPECT_FALSE(f.exact);
}

TEST(ToNumericAtTest, ExactPercentOfExactTotal) {
  NumericForm f = ToNumericAt(Quantifier::Ratio(QuantOp::kEq, 50.0), 4);
  EXPECT_TRUE(f.satisfiable);
  EXPECT_EQ(f.min_count, 2u);
  EXPECT_TRUE(f.exact);
}

TEST(ToNumericAtTest, FractionalEqualityUnsatisfiable) {
  NumericForm f = ToNumericAt(Quantifier::Ratio(QuantOp::kEq, 50.0), 3);
  EXPECT_FALSE(f.satisfiable);
}

TEST(ToNumericAtTest, RequirementAboveTotalUnsatisfiable) {
  NumericForm f = ToNumericAt(Quantifier::Numeric(QuantOp::kGe, 5), 3);
  EXPECT_FALSE(f.satisfiable);
}

TEST(ToNumericAtTest, NegationUnsatisfiableAsCount) {
  NumericForm f = ToNumericAt(Quantifier::Negation(), 3);
  EXPECT_FALSE(f.satisfiable);
}

TEST(ToNumericAtTest, NumericPassThrough) {
  NumericForm f = ToNumericAt(Quantifier::Numeric(QuantOp::kEq, 2), 5);
  EXPECT_TRUE(f.satisfiable);
  EXPECT_EQ(f.min_count, 2u);
  EXPECT_TRUE(f.exact);
}

TEST(NormalizeGtTest, RewritesNumericGt) {
  LabelDict dict;
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  PatternNodeId c = p.AddNode(dict.Intern("c"), "c");
  (void)p.AddEdge(a, b, dict.Intern("e"),
                  Quantifier::Numeric(QuantOp::kGt, 2));
  (void)p.AddEdge(b, c, dict.Intern("e"),
                  Quantifier::Ratio(QuantOp::kGt, 50.0));
  (void)p.set_focus(a);
  Pattern n = NormalizeGtQuantifiers(p);
  EXPECT_EQ(n.edge(0).quantifier, Quantifier::Numeric(QuantOp::kGe, 3));
  // Ratio > passes through.
  EXPECT_EQ(n.edge(1).quantifier, Quantifier::Ratio(QuantOp::kGt, 50.0));
  EXPECT_EQ(n.focus(), p.focus());
}

}  // namespace
}  // namespace qgp
