#include "core/candidate_space.h"

#include <gtest/gtest.h>

#include "testing/paper_graphs.h"

namespace qgp {
namespace {

TEST(CandidateSpaceTest, RequiresPositivePattern) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  MatchOptions opts;
  EXPECT_FALSE(CandidateSpace::Build(q3, g, opts, nullptr).ok());
}

TEST(CandidateSpaceTest, GoodSetsPruneByUpperBound) {
  // Example 5: with >=2 on (xo,z1), x1 (one followee) leaves the good
  // focus set but stays a stratified candidate.
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  auto pi = q3.Pi();
  ASSERT_TRUE(pi.ok());
  MatchOptions opts;
  auto cs = CandidateSpace::Build(pi.value().first, g, opts, nullptr);
  ASSERT_TRUE(cs.ok());
  EXPECT_TRUE(cs->InStratified(0, ids.x1));
  EXPECT_FALSE(cs->InGood(0, ids.x1));
  EXPECT_TRUE(cs->InGood(0, ids.x2));
  EXPECT_TRUE(cs->InGood(0, ids.x3));
}

TEST(CandidateSpaceTest, QuantifierPruningCanBeDisabled) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q3 = testing::BuildQ3(g.mutable_dict(), 2);
  auto pi = q3.Pi();
  ASSERT_TRUE(pi.ok());
  MatchOptions opts;
  opts.use_quantifier_pruning = false;
  auto cs = CandidateSpace::Build(pi.value().first, g, opts, nullptr);
  ASSERT_TRUE(cs.ok());
  EXPECT_TRUE(cs->InGood(0, ids.x1));  // no pruning: good == stratified
}

TEST(CandidateSpaceTest, SimulationTightensStratifiedSets) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchOptions with_sim;
  auto cs1 = CandidateSpace::Build(q2, g, with_sim, nullptr);
  ASSERT_TRUE(cs1.ok());
  MatchOptions without;
  without.use_simulation = false;
  auto cs2 = CandidateSpace::Build(q2, g, without, nullptr);
  ASSERT_TRUE(cs2.ok());
  // Simulation result must be a subset of the degree-refined result.
  for (PatternNodeId u = 0; u < q2.num_nodes(); ++u) {
    for (VertexId v : cs1->stratified(u)) {
      EXPECT_TRUE(cs2->InStratified(u, v));
    }
    EXPECT_LE(cs1->stratified(u).size(), cs2->stratified(u).size());
  }
}

TEST(CandidateSpaceTest, StatsRecordPruning) {
  Graph g = testing::BuildG1(nullptr);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchOptions opts;
  MatchStats stats;
  auto cs = CandidateSpace::Build(q2, g, opts, &stats);
  ASSERT_TRUE(cs.ok());
  EXPECT_GT(stats.candidates_initial, 0u);
  EXPECT_GT(stats.candidates_pruned, 0u);
}

TEST(CandidateSpaceTest, RestrictToBallIntersects) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  Pattern q2 = testing::BuildQ2(g.mutable_dict());
  MatchOptions opts;
  auto cs = CandidateSpace::Build(q2, g, opts, nullptr);
  ASSERT_TRUE(cs.ok());
  std::vector<VertexId> ball{ids.x2, ids.v1, ids.v2, ids.redmi};
  auto local = cs->RestrictStratifiedToBall(ball);
  EXPECT_EQ(local[0], (std::vector<VertexId>{ids.x2}));
  EXPECT_EQ(local[1], (std::vector<VertexId>{ids.v1, ids.v2}));
  EXPECT_EQ(local[2], (std::vector<VertexId>{ids.redmi}));
}

TEST(CandidateSpaceTest, UnsatisfiableRatioPrunesVertex) {
  // =40% is unsatisfiable at vertices whose label-degree is not a
  // multiple of 5 (e.g. 3 children).
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId xo = p.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = p.AddNode(dict.Intern("person"), "z");
  (void)p.AddEdge(xo, z, dict.Intern("follow"),
                  Quantifier::Ratio(QuantOp::kEq, 40.0));
  (void)p.set_focus(xo);
  MatchOptions opts;
  auto cs = CandidateSpace::Build(p, g, opts, nullptr);
  ASSERT_TRUE(cs.ok());
  // x3 has 3 followees: 40% of 3 is fractional -> not good.
  EXPECT_FALSE(cs->InGood(0, ids.x3));
}

}  // namespace
}  // namespace qgp
