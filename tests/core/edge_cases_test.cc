// Corner cases of the QGP semantics that the paper's prose does not
// spell out; each is pinned by agreement between the brute-force oracle
// and the optimized matchers.
#include <gtest/gtest.h>

#include "core/enum_matcher.h"
#include "core/naive_matcher.h"
#include "core/qmatch.h"
#include "graph/graph_builder.h"
#include "qgar/gar_match.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

void ExpectAllMatchersAgree(const Pattern& q, const Graph& g,
                            const AnswerSet& expected) {
  auto naive = NaiveMatcher::Evaluate(q, g);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(naive.value(), expected) << "naive";
  auto qm = QMatch::Evaluate(q, g);
  ASSERT_TRUE(qm.ok()) << qm.status().ToString();
  EXPECT_EQ(qm.value(), expected) << "qmatch";
  auto en = EnumMatcher::Evaluate(q, g);
  ASSERT_TRUE(en.ok()) << en.status().ToString();
  EXPECT_EQ(en.value(), expected) << "enum";
}

TEST(EdgeCasesTest, QuantifiedEdgeIntoFocus) {
  // Quantifier on an edge whose TARGET is the focus: with h(xo) pinned,
  // Me(vx, v, Q) ⊆ {vx}, so >=2 can never hold and >=1 reduces to the
  // plain edge requirement.
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  {
    Pattern q;
    PatternNodeId z = q.AddNode(dict.Intern("person"), "z");
    PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
    (void)q.AddEdge(z, xo, dict.Intern("follow"),
                    Quantifier::Numeric(QuantOp::kGe, 2));
    (void)q.set_focus(xo);
    ExpectAllMatchersAgree(q, g, {});
  }
  {
    Pattern q;
    PatternNodeId z = q.AddNode(dict.Intern("person"), "z");
    PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
    (void)q.AddEdge(z, xo, dict.Intern("follow"),
                    Quantifier::Numeric(QuantOp::kGe, 1));
    (void)q.set_focus(xo);
    // Followed persons: v0..v4 minus... every vi with an in-follow edge.
    ExpectAllMatchersAgree(
        q, g, {ids.v0, ids.v1, ids.v2, ids.v3, ids.v4});
  }
}

TEST(EdgeCasesTest, ParallelPatternEdgesDistinctLabels) {
  // Two pattern edges between the same node pair with different labels:
  // the match needs BOTH graph edges.
  GraphBuilder b;
  VertexId u0 = b.AddVertex("p");
  VertexId u1 = b.AddVertex("q");
  VertexId u2 = b.AddVertex("p");
  VertexId u3 = b.AddVertex("q");
  (void)b.AddEdge(u0, u1, "likes");
  (void)b.AddEdge(u0, u1, "knows");
  (void)b.AddEdge(u2, u3, "likes");  // only one of the two labels
  Graph g = std::move(b).Build().value();
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId a = q.AddNode(dict.Intern("p"), "a");
  PatternNodeId c = q.AddNode(dict.Intern("q"), "c");
  (void)q.AddEdge(a, c, dict.Intern("likes"));
  (void)q.AddEdge(a, c, dict.Intern("knows"));
  (void)q.set_focus(a);
  ExpectAllMatchersAgree(q, g, {u0});
}

TEST(EdgeCasesTest, SelfLoopPattern) {
  GraphBuilder b;
  VertexId u0 = b.AddVertex("p");
  VertexId u1 = b.AddVertex("p");
  (void)b.AddEdge(u0, u0, "self");
  Graph g = std::move(b).Build().value();
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId a = q.AddNode(dict.Intern("p"), "a");
  (void)q.AddEdge(a, a, dict.Intern("self"));
  (void)q.set_focus(a);
  ExpectAllMatchersAgree(q, g, {u0});
  (void)u1;
}

TEST(EdgeCasesTest, RatioOverMixedTargets) {
  // Denominator |Me(v)| counts ALL label-children, numerator only those
  // matching the target's node label and constraints: u0 likes 2 albums
  // and 2 products via the same edge label, so "=50% of likes are
  // albums" holds exactly.
  GraphBuilder b;
  VertexId u0 = b.AddVertex("person");
  VertexId a1 = b.AddVertex("album");
  VertexId a2 = b.AddVertex("album");
  VertexId p1 = b.AddVertex("product");
  VertexId p2 = b.AddVertex("product");
  for (VertexId t : {a1, a2, p1, p2}) (void)b.AddEdge(u0, t, "like");
  Graph g = std::move(b).Build().value();
  LabelDict& dict = g.mutable_dict();
  {
    Pattern q;
    PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
    PatternNodeId y = q.AddNode(dict.Intern("album"), "y");
    (void)q.AddEdge(xo, y, dict.Intern("like"),
                    Quantifier::Ratio(QuantOp::kEq, 50.0));
    (void)q.set_focus(xo);
    ExpectAllMatchersAgree(q, g, {u0});
  }
  {
    Pattern q;
    PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
    PatternNodeId y = q.AddNode(dict.Intern("album"), "y");
    (void)q.AddEdge(xo, y, dict.Intern("like"),
                    Quantifier::Ratio(QuantOp::kGt, 50.0));
    (void)q.set_focus(xo);
    ExpectAllMatchersAgree(q, g, {});
  }
}

TEST(EdgeCasesTest, NegatedConsequentRule) {
  // R2-style rule: the consequent is a single NEGATED edge ("xo is
  // unlikely to follow y"). Q2(xo,G) = Π(Q2) \ Π(Q2⁺ᵉ) where Π(Q2)
  // degenerates to the focus-only pattern.
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId y = q.AddNode(dict.Intern("person"), "y");
  (void)q.AddEdge(xo, y, dict.Intern("follow"), Quantifier::Negation());
  (void)q.set_focus(xo);
  // Persons with no outgoing follow edge: v0..v4.
  ExpectAllMatchersAgree(q, g,
                         {ids.v0, ids.v1, ids.v2, ids.v3, ids.v4});
}

TEST(EdgeCasesTest, GtQuantifier) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = q.AddNode(dict.Intern("person"), "z");
  PatternNodeId r = q.AddNode(dict.Intern("redmi_2a"), "r");
  (void)q.AddEdge(xo, z, dict.Intern("follow"),
                  Quantifier::Numeric(QuantOp::kGt, 1));
  (void)q.AddEdge(z, r, dict.Intern("recom"));
  (void)q.set_focus(xo);
  // > 1 recommending followee: x2 (2) and x3 (2).
  ExpectAllMatchersAgree(q, g, {ids.x2, ids.x3});
}

TEST(EdgeCasesTest, TwoNegatedBranches) {
  // Q5-style: two negated edges on SEPARATE branches (two on one path
  // would be double negation and is rejected by Validate). The second
  // branch targets a label absent from G1, so its positified pattern is
  // vacuous and only the bad-rating negation bites.
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z1 = q.AddNode(dict.Intern("person"), "z1");
  PatternNodeId z2 = q.AddNode(dict.Intern("person"), "z2");
  PatternNodeId r = q.AddNode(dict.Intern("redmi_2a"), "r");
  PatternNodeId c = q.AddNode(dict.Intern("club"), "c");
  (void)q.AddEdge(xo, z1, dict.Intern("follow"));
  (void)q.AddEdge(z1, r, dict.Intern("recom"));
  (void)q.AddEdge(xo, z2, dict.Intern("follow"), Quantifier::Negation());
  (void)q.AddEdge(z2, r, dict.Intern("bad_rating"));
  (void)q.AddEdge(xo, c, dict.Intern("in"), Quantifier::Negation());
  (void)q.set_focus(xo);
  ASSERT_TRUE(q.Validate().ok());
  // Π(Q) keeps {xo, z1, r}: every follower of a recommender matches;
  // the bad-rating positified branch removes x3; the club branch is
  // vacuous (no club vertices in G1).
  ExpectAllMatchersAgree(q, g, {ids.x1, ids.x2});
}

TEST(EdgeCasesTest, DoubleNegationOnPathRejected) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = q.AddNode(dict.Intern("person"), "z");
  PatternNodeId r = q.AddNode(dict.Intern("redmi_2a"), "r");
  (void)q.AddEdge(xo, z, dict.Intern("follow"), Quantifier::Negation());
  (void)q.AddEdge(z, r, dict.Intern("bad_rating"), Quantifier::Negation());
  (void)q.set_focus(xo);
  EXPECT_FALSE(q.Validate().ok());
  EXPECT_FALSE(QMatch::Evaluate(q, g).ok());
}

TEST(EdgeCasesTest, LabelAbsentFromGraph) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = q.AddNode(dict.Intern("martian"), "z");
  (void)q.AddEdge(xo, z, dict.Intern("follow"));
  (void)q.set_focus(xo);
  ExpectAllMatchersAgree(q, g, {});
}

TEST(EdgeCasesTest, UniversalOverEmptyChildSetNeverMatches) {
  // =100% needs at least one child because the stratified embedding
  // must map the target node; a person with zero followees is no match.
  GraphBuilder b;
  VertexId loner = b.AddVertex("person");
  VertexId active = b.AddVertex("person");
  VertexId prod = b.AddVertex("product");
  (void)b.AddEdge(active, prod, "recom");
  Graph g = std::move(b).Build().value();
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId y = q.AddNode(dict.Intern("product"), "y");
  (void)q.AddEdge(xo, y, dict.Intern("recom"), Quantifier::Universal());
  (void)q.set_focus(xo);
  ExpectAllMatchersAgree(q, g, {active});
  (void)loner;
}

}  // namespace
}  // namespace qgp
