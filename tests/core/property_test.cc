// Oracle property sweeps: on randomly generated small graphs and
// generated quantified patterns, every optimized matcher must agree with
// the brute-force NaiveMatcher implementation of the §2.2 semantics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/enum_matcher.h"
#include "core/naive_matcher.h"
#include "core/qmatch.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

struct PropertyCase {
  std::string name;
  SyntheticConfig graph;
  PatternGenConfig pattern;
  size_t num_patterns = 5;
  uint64_t seed = 99;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
  return os << c.name;
}

PropertyCase MakeCase(std::string name, SyntheticConfig::Model model,
                      QuantKind kind, QuantOp op, size_t negated,
                      size_t quantified, uint64_t seed) {
  PropertyCase c;
  c.name = std::move(name);
  c.graph.num_vertices = 48;
  c.graph.num_edges = 140;
  c.graph.num_node_labels = 6;
  c.graph.num_edge_labels = 3;
  c.graph.model = model;
  c.graph.seed = seed;
  c.pattern.num_nodes = 4;
  c.pattern.num_edges = 4;
  c.pattern.num_quantified = quantified;
  c.pattern.kind = kind;
  c.pattern.op = op;
  c.pattern.percent = 50.0;
  c.pattern.count = 2;
  c.pattern.num_negated = negated;
  c.seed = seed * 31 + 7;
  return c;
}

class OracleAgreementTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(OracleAgreementTest, AllMatchersAgreeWithNaive) {
  const PropertyCase& c = GetParam();
  auto graph = GenerateSynthetic(c.graph);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const Graph& g = *graph;

  std::vector<Pattern> patterns =
      GeneratePatternSuite(g, c.num_patterns, c.pattern, c.seed);
  ASSERT_FALSE(patterns.empty())
      << "pattern generator produced nothing for " << c.name;

  MatchOptions naive_opts;
  naive_opts.max_isomorphisms = 3'000'000;
  size_t checked = 0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    const Pattern& q = patterns[i];
    SCOPED_TRACE("pattern " + std::to_string(i) + ":\n" +
                 q.ToString(&g.dict()));
    auto oracle = NaiveMatcher::Evaluate(q, g, naive_opts);
    if (!oracle.ok()) continue;  // oracle overflow: skip, do not fail
    ++checked;

    auto qm = QMatch::Evaluate(q, g);
    ASSERT_TRUE(qm.ok()) << qm.status().ToString();
    EXPECT_EQ(qm.value(), oracle.value()) << "QMatch disagrees";

    auto qmn = QMatchNaiveEvaluate(q, g);
    ASSERT_TRUE(qmn.ok()) << qmn.status().ToString();
    EXPECT_EQ(qmn.value(), oracle.value()) << "QMatchn disagrees";

    auto en = EnumMatcher::Evaluate(q, g);
    ASSERT_TRUE(en.ok()) << en.status().ToString();
    EXPECT_EQ(en.value(), oracle.value()) << "Enum disagrees";

    // Strategy toggles must not change answers either.
    MatchOptions stripped;
    stripped.use_simulation = false;
    stripped.use_quantifier_pruning = false;
    stripped.use_potential_ordering = false;
    stripped.early_stop_counting = false;
    auto bare = QMatch::Evaluate(q, g, stripped);
    ASSERT_TRUE(bare.ok());
    EXPECT_EQ(bare.value(), oracle.value()) << "unoptimized QMatch disagrees";
  }
  EXPECT_GT(checked, 0u) << "every oracle run overflowed";
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  uint64_t seed = 1;
  for (auto model : {SyntheticConfig::Model::kSmallWorld,
                     SyntheticConfig::Model::kPowerLaw}) {
    const char* mname =
        model == SyntheticConfig::Model::kSmallWorld ? "sw" : "pl";
    for (auto kind : {QuantKind::kRatio, QuantKind::kNumeric}) {
      const char* kname = kind == QuantKind::kRatio ? "ratio" : "numeric";
      for (auto op : {QuantOp::kGe, QuantOp::kEq}) {
        const char* oname = op == QuantOp::kGe ? "ge" : "eq";
        for (size_t negated : {0u, 1u, 2u}) {
          std::ostringstream name;
          name << mname << "_" << kname << "_" << oname << "_neg"
               << negated;
          cases.push_back(MakeCase(name.str(), model, kind, op, negated,
                                   /*quantified=*/negated == 2 ? 1 : 2,
                                   ++seed));
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleAgreementTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<PropertyCase>& i) {
                           return i.param.name;
                         });

// Metamorphic property (Lemma 10 anti-monotonicity, quantifier side):
// raising a positive numeric threshold never adds answers.
TEST(MetamorphicTest, RaisingThresholdShrinksAnswers) {
  SyntheticConfig gc;
  gc.num_vertices = 60;
  gc.num_edges = 220;
  gc.num_node_labels = 5;
  gc.num_edge_labels = 3;
  gc.seed = 77;
  auto graph = GenerateSynthetic(gc);
  ASSERT_TRUE(graph.ok());
  const Graph& g = *graph;

  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.kind = QuantKind::kNumeric;
  pc.count = 1;
  pc.num_negated = 0;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 4, pc, 5);
  ASSERT_FALSE(patterns.empty());

  for (const Pattern& base : patterns) {
    AnswerSet previous;
    bool first = true;
    for (uint32_t p = 1; p <= 4; ++p) {
      // Rebuild with threshold p on every quantified edge.
      Pattern q;
      for (PatternNodeId u = 0; u < base.num_nodes(); ++u) {
        q.AddNode(base.node(u).label, base.node(u).name);
      }
      for (PatternEdgeId e = 0; e < base.num_edges(); ++e) {
        const PatternEdge& pe = base.edge(e);
        Quantifier quant = pe.quantifier;
        if (!quant.IsExistential() && !quant.IsNegation()) {
          quant = Quantifier::Numeric(QuantOp::kGe, p);
        }
        ASSERT_TRUE(q.AddEdge(pe.src, pe.dst, pe.label, quant).ok());
      }
      ASSERT_TRUE(q.set_focus(base.focus()).ok());
      auto answers = QMatch::Evaluate(q, g);
      ASSERT_TRUE(answers.ok());
      if (!first) {
        EXPECT_EQ(SetIntersection(answers.value(), previous),
                  answers.value())
            << "answers grew when the threshold rose to " << p;
      }
      previous = answers.value();
      first = false;
    }
  }
}

// Metamorphic property: Π(Q⁺ᵉ)(xo, G) ⊆ Π(Q)(xo, G) for >= quantifiers
// (adding constraints removes answers).
TEST(MetamorphicTest, PositifiedSubsetOfPi) {
  SyntheticConfig gc;
  gc.num_vertices = 60;
  gc.num_edges = 200;
  gc.num_node_labels = 5;
  gc.num_edge_labels = 3;
  gc.seed = 101;
  auto graph = GenerateSynthetic(gc);
  ASSERT_TRUE(graph.ok());
  const Graph& g = *graph;

  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.kind = QuantKind::kRatio;
  pc.op = QuantOp::kGe;
  pc.percent = 40.0;
  pc.num_negated = 1;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 5, pc, 9);
  ASSERT_FALSE(patterns.empty());
  for (const Pattern& q : patterns) {
    auto pi = q.Pi();
    ASSERT_TRUE(pi.ok());
    auto a0 = NaiveMatcher::EvaluatePositive(pi.value().first, g, 0);
    if (!a0.ok()) continue;
    for (PatternEdgeId e : q.NegatedEdgeIds()) {
      auto positified = q.Positify(e);
      ASSERT_TRUE(positified.ok());
      auto pi_pos = positified.value().Pi();
      ASSERT_TRUE(pi_pos.ok());
      auto ae = NaiveMatcher::EvaluatePositive(pi_pos.value().first, g, 0);
      if (!ae.ok()) continue;
      EXPECT_EQ(SetIntersection(ae.value(), a0.value()), ae.value())
          << "positified answers not contained in Pi answers";
    }
  }
}

}  // namespace
}  // namespace qgp
