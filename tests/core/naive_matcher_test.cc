#include "core/naive_matcher.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

TEST(NaiveMatcherTest, ConventionalPatternIsSubgraphIso) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId xo = p.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = p.AddNode(dict.Intern("person"), "z");
  (void)p.AddEdge(xo, z, dict.Intern("follow"));
  (void)p.set_focus(xo);
  auto answers = NaiveMatcher::Evaluate(p, g);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{ids.x1, ids.x2, ids.x3}));
}

TEST(NaiveMatcherTest, SingleNodePattern) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  p.AddNode(dict.Intern("redmi_2a"), "r");
  auto answers = NaiveMatcher::Evaluate(p, g);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{ids.redmi}));
}

TEST(NaiveMatcherTest, CountsDistinctWitnessedChildren) {
  // xo with >=2 z-children each needing a w-child; z1, z2 share w: both
  // count (the §2.2 semantics counts children, not disjoint witnesses).
  GraphBuilder b;
  VertexId root = b.AddVertex("r");
  VertexId z1 = b.AddVertex("z");
  VertexId z2 = b.AddVertex("z");
  VertexId w = b.AddVertex("w");
  (void)b.AddEdge(root, z1, "e");
  (void)b.AddEdge(root, z2, "e");
  (void)b.AddEdge(z1, w, "f");
  (void)b.AddEdge(z2, w, "f");
  Graph g = std::move(b).Build().value();
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId pr = p.AddNode(dict.Intern("r"), "r");
  PatternNodeId pz = p.AddNode(dict.Intern("z"), "z");
  PatternNodeId pw = p.AddNode(dict.Intern("w"), "w");
  (void)p.AddEdge(pr, pz, dict.Intern("e"),
                  Quantifier::Numeric(QuantOp::kGe, 2));
  (void)p.AddEdge(pz, pw, dict.Intern("f"));
  (void)p.set_focus(pr);
  auto answers = NaiveMatcher::Evaluate(p, g);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{root}));
}

TEST(NaiveMatcherTest, EqualityQuantifierExactCount) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId xo = p.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = p.AddNode(dict.Intern("person"), "z");
  PatternNodeId r = p.AddNode(dict.Intern("redmi_2a"), "r");
  (void)p.AddEdge(xo, z, dict.Intern("follow"),
                  Quantifier::Numeric(QuantOp::kEq, 2));
  (void)p.AddEdge(z, r, dict.Intern("recom"));
  (void)p.set_focus(xo);
  auto answers = NaiveMatcher::Evaluate(p, g);
  ASSERT_TRUE(answers.ok());
  // x2 has exactly 2 recommending followees; x3 has exactly 2 as well
  // (v2, v3); x1 has exactly 1.
  EXPECT_EQ(answers.value(), (AnswerSet{ids.x2, ids.x3}));
}

TEST(NaiveMatcherTest, EvaluatePositiveRejectsNegative) {
  LabelDict dict;
  Pattern q3 = testing::BuildQ3(dict, 2);
  Graph g = testing::BuildG1(nullptr);
  EXPECT_FALSE(NaiveMatcher::EvaluatePositive(q3, g, 0).ok());
}

TEST(NaiveMatcherTest, CapReturnsInternalError) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("person"), "a");
  PatternNodeId b2 = p.AddNode(dict.Intern("person"), "b");
  (void)p.AddEdge(a, b2, dict.Intern("follow"));
  (void)p.set_focus(a);
  MatchOptions opts;
  opts.max_isomorphisms = 1;  // 6 follow edges exist
  auto answers = NaiveMatcher::Evaluate(p, g, opts);
  EXPECT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kInternal);
}

TEST(NaiveMatcherTest, ValidatesPattern) {
  Graph g = testing::BuildG1(nullptr);
  Pattern empty;
  EXPECT_FALSE(NaiveMatcher::Evaluate(empty, g).ok());
}

TEST(NaiveMatcherTest, NoMatchesWhenLabelMissing) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  p.AddNode(dict.Intern("unicorn"), "u");
  auto answers = NaiveMatcher::Evaluate(p, g);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers.value().empty());
}

}  // namespace
}  // namespace qgp
