// End-to-end checks against the worked examples of the paper (Examples
// 3–7 on Fig. 2's G1, Example 4's Q4 on the G2-style graph). Every
// matcher in the library must reproduce the published answers.
#include <gtest/gtest.h>

#include "core/enum_matcher.h"
#include "core/naive_matcher.h"
#include "core/qmatch.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

using testing::BuildG1;
using testing::BuildG2;
using testing::BuildQ2;
using testing::BuildQ3;
using testing::BuildQ4;
using testing::G1Ids;
using testing::G2Ids;

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g1_ = BuildG1(&ids1_);
    g2_ = BuildG2(&ids2_);
  }
  Graph g1_, g2_;
  G1Ids ids1_;
  G2Ids ids2_;
};

TEST_F(PaperExamplesTest, Example3_Q2UniversalQuantifier) {
  Pattern q2 = BuildQ2(g1_.mutable_dict());
  AnswerSet expected{ids1_.x1, ids1_.x2};

  auto naive = NaiveMatcher::Evaluate(q2, g1_);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(naive.value(), expected);

  auto qmatch = QMatch::Evaluate(q2, g1_);
  ASSERT_TRUE(qmatch.ok()) << qmatch.status().ToString();
  EXPECT_EQ(qmatch.value(), expected);

  auto en = EnumMatcher::Evaluate(q2, g1_);
  ASSERT_TRUE(en.ok()) << en.status().ToString();
  EXPECT_EQ(en.value(), expected);
}

TEST_F(PaperExamplesTest, Example4_PiQ3PositivePart) {
  // Π(Q3) with p=2 keeps {x2, x3}: x1's single followee cannot reach the
  // >=2 counter.
  Pattern q3 = BuildQ3(g1_.mutable_dict(), /*p=*/2);
  auto pi = q3.Pi();
  ASSERT_TRUE(pi.ok()) << pi.status().ToString();
  const Pattern& pi_pattern = pi.value().first;
  // Π(Q3) drops z2 and both its edges.
  EXPECT_EQ(pi_pattern.num_nodes(), 3u);
  EXPECT_EQ(pi_pattern.num_edges(), 2u);

  auto answers = NaiveMatcher::EvaluatePositive(pi_pattern, g1_, 0);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{ids1_.x2, ids1_.x3}));
}

TEST_F(PaperExamplesTest, Example4_Q3NegationExcludesX3) {
  Pattern q3 = BuildQ3(g1_.mutable_dict(), /*p=*/2);
  AnswerSet expected{ids1_.x2};  // x3 follows v4 who gave a bad rating

  auto naive = NaiveMatcher::Evaluate(q3, g1_);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(naive.value(), expected);

  auto qmatch = QMatch::Evaluate(q3, g1_);
  ASSERT_TRUE(qmatch.ok()) << qmatch.status().ToString();
  EXPECT_EQ(qmatch.value(), expected);

  auto qmatchn = QMatchNaiveEvaluate(q3, g1_);
  ASSERT_TRUE(qmatchn.ok());
  EXPECT_EQ(qmatchn.value(), expected);

  auto en = EnumMatcher::Evaluate(q3, g1_);
  ASSERT_TRUE(en.ok());
  EXPECT_EQ(en.value(), expected);
}

TEST_F(PaperExamplesTest, Example7_PositifiedQ3FindsX3) {
  // Π(Q3^{+(xo,z2)})(xo, G1) = {x3}: only x3 follows someone with a bad
  // rating on the product.
  Pattern q3 = BuildQ3(g1_.mutable_dict(), /*p=*/2);
  std::vector<PatternEdgeId> negated = q3.NegatedEdgeIds();
  ASSERT_EQ(negated.size(), 1u);
  auto positified = q3.Positify(negated[0]);
  ASSERT_TRUE(positified.ok());
  auto pi = positified.value().Pi();
  ASSERT_TRUE(pi.ok());
  EXPECT_EQ(pi.value().first.num_nodes(), q3.num_nodes());

  auto answers = NaiveMatcher::EvaluatePositive(pi.value().first, g1_, 0);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{ids1_.x3}));
}

TEST_F(PaperExamplesTest, Example4_Q4OnKnowledgeGraph) {
  Pattern q4 = BuildQ4(g2_.mutable_dict(), /*p=*/2);
  AnswerSet expected{ids2_.x5, ids2_.x6};  // x4 holds a PhD

  auto naive = NaiveMatcher::Evaluate(q4, g2_);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  EXPECT_EQ(naive.value(), expected);

  auto qmatch = QMatch::Evaluate(q4, g2_);
  ASSERT_TRUE(qmatch.ok()) << qmatch.status().ToString();
  EXPECT_EQ(qmatch.value(), expected);

  auto en = EnumMatcher::Evaluate(q4, g2_);
  ASSERT_TRUE(en.ok());
  EXPECT_EQ(en.value(), expected);
}

TEST_F(PaperExamplesTest, Q4StratifiedAcceptsX4) {
  // "x4 matches the stratified pattern of Q4" — only the negation rules
  // it out.
  Pattern q4 = BuildQ4(g2_.mutable_dict(), /*p=*/2);
  auto pi = q4.Pi();
  ASSERT_TRUE(pi.ok());
  auto answers = NaiveMatcher::EvaluatePositive(pi.value().first, g2_, 0);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value(), (AnswerSet{ids2_.x4, ids2_.x5, ids2_.x6}));
}

TEST_F(PaperExamplesTest, Q4LargerThresholdEmpty) {
  // With p=3 no professor has three UK-professor students.
  Pattern q4 = BuildQ4(g2_.mutable_dict(), /*p=*/3);
  auto qmatch = QMatch::Evaluate(q4, g2_);
  ASSERT_TRUE(qmatch.ok());
  EXPECT_TRUE(qmatch.value().empty());
}

TEST_F(PaperExamplesTest, Q3ThresholdOneKeepsX1) {
  // Dropping the counter to >=1 admits x1 into Π(Q3); the negation still
  // removes x3.
  Pattern q3 = BuildQ3(g1_.mutable_dict(), /*p=*/1);
  auto qmatch = QMatch::Evaluate(q3, g1_);
  ASSERT_TRUE(qmatch.ok());
  EXPECT_EQ(qmatch.value(), (AnswerSet{ids1_.x1, ids1_.x2}));
}

TEST_F(PaperExamplesTest, RatioEightyPercentVariant) {
  // Q1-style ratio: >= 80% of followees recommend the product. x1: 1/1,
  // x2: 2/2 pass; x3: 2/3 = 66.7% fails.
  LabelDict& dict = g1_.mutable_dict();
  Pattern q;
  PatternNodeId xo = q.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = q.AddNode(dict.Intern("person"), "z");
  PatternNodeId r = q.AddNode(dict.Intern("redmi_2a"), "r");
  ASSERT_TRUE(q.AddEdge(xo, z, dict.Intern("follow"),
                        Quantifier::Ratio(QuantOp::kGe, 80.0))
                  .ok());
  ASSERT_TRUE(q.AddEdge(z, r, dict.Intern("recom")).ok());
  ASSERT_TRUE(q.set_focus(xo).ok());

  auto naive = NaiveMatcher::Evaluate(q, g1_);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive.value(), (AnswerSet{ids1_.x1, ids1_.x2}));
  auto qmatch = QMatch::Evaluate(q, g1_);
  ASSERT_TRUE(qmatch.ok());
  EXPECT_EQ(qmatch.value(), naive.value());
}

}  // namespace
}  // namespace qgp
