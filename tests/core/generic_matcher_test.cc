#include "core/generic_matcher.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

// A triangle 0->1->2->0 with uniform labels, plus candidate sets.
struct TriangleFixture {
  Graph g;
  Pattern p;
  std::vector<std::vector<VertexId>> candidates;

  TriangleFixture() {
    GraphBuilder b;
    for (int i = 0; i < 3; ++i) b.AddVertex("n");
    (void)b.AddEdge(0, 1, "e");
    (void)b.AddEdge(1, 2, "e");
    (void)b.AddEdge(2, 0, "e");
    g = std::move(b).Build().value();
    LabelDict& dict = g.mutable_dict();
    PatternNodeId a = p.AddNode(dict.Intern("n"), "a");
    PatternNodeId c = p.AddNode(dict.Intern("n"), "b");
    PatternNodeId d = p.AddNode(dict.Intern("n"), "c");
    (void)p.AddEdge(a, c, dict.Intern("e"));
    (void)p.AddEdge(c, d, dict.Intern("e"));
    (void)p.AddEdge(d, a, dict.Intern("e"));
    (void)p.set_focus(a);
    candidates.assign(3, {0, 1, 2});
  }
};

TEST(GenericMatcherTest, EnumeratesAllEmbeddings) {
  TriangleFixture f;
  GenericMatcher m(f.p, f.g, f.candidates);
  size_t count = 0;
  GenericMatcher::SearchOptions opts;
  bool complete = m.Enumerate(opts, [&](const std::vector<VertexId>& h) {
    EXPECT_EQ(h.size(), 3u);
    ++count;
    return true;
  });
  EXPECT_TRUE(complete);
  // Triangle rotations: 3 embeddings of the directed 3-cycle.
  EXPECT_EQ(count, 3u);
}

TEST(GenericMatcherTest, PinRestrictsEmbeddings) {
  TriangleFixture f;
  GenericMatcher m(f.p, f.g, f.candidates);
  std::pair<PatternNodeId, VertexId> pin{0, 1};
  GenericMatcher::SearchOptions opts;
  opts.pins = {&pin, 1};
  size_t count = 0;
  m.Enumerate(opts, [&](const std::vector<VertexId>& h) {
    EXPECT_EQ(h[0], 1u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST(GenericMatcherTest, InconsistentPinsYieldNothing) {
  TriangleFixture f;
  GenericMatcher m(f.p, f.g, f.candidates);
  // 0 -> 1 in the pattern, but graph edge (1, 0) does not exist.
  std::pair<PatternNodeId, VertexId> pins[2] = {{0, 1}, {1, 0}};
  GenericMatcher::SearchOptions opts;
  opts.pins = pins;
  size_t count = 0;
  m.Enumerate(opts, [&](const std::vector<VertexId>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0u);
}

TEST(GenericMatcherTest, PinOutsideCandidatesYieldsNothing) {
  TriangleFixture f;
  f.candidates[0] = {0};  // restrict node 0's candidates
  GenericMatcher m(f.p, f.g, f.candidates);
  std::pair<PatternNodeId, VertexId> pin{0, 2};
  GenericMatcher::SearchOptions opts;
  opts.pins = {&pin, 1};
  EXPECT_FALSE(m.FindAny(opts));
}

TEST(GenericMatcherTest, CallbackCanStopEarly) {
  TriangleFixture f;
  GenericMatcher m(f.p, f.g, f.candidates);
  size_t count = 0;
  GenericMatcher::SearchOptions opts;
  m.Enumerate(opts, [&](const std::vector<VertexId>&) {
    ++count;
    return false;  // stop after the first embedding
  });
  EXPECT_EQ(count, 1u);
}

TEST(GenericMatcherTest, MaxIsomorphismsCap) {
  TriangleFixture f;
  GenericMatcher m(f.p, f.g, f.candidates);
  GenericMatcher::SearchOptions opts;
  opts.max_isomorphisms = 2;
  size_t count = 0;
  bool complete = m.Enumerate(opts, [&](const std::vector<VertexId>&) {
    ++count;
    return true;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(count, 2u);
}

TEST(GenericMatcherTest, AcceptPredicateFilters) {
  TriangleFixture f;
  GenericMatcher m(f.p, f.g, f.candidates);
  GenericMatcher::Accept accept = [](PatternNodeId, VertexId v) {
    return v != 2;  // forbid vertex 2 anywhere
  };
  GenericMatcher::SearchOptions opts;
  opts.accept = &accept;
  EXPECT_FALSE(m.FindAny(opts));  // the cycle needs all three vertices
}

TEST(GenericMatcherTest, InjectivityEnforced) {
  // Pattern with two 'n' nodes both children of a root; graph has a
  // single shared child: no embedding (h must be injective).
  GraphBuilder b;
  VertexId root = b.AddVertex("r");
  VertexId child = b.AddVertex("n");
  (void)b.AddEdge(root, child, "e");
  Graph g = std::move(b).Build().value();
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId pr = p.AddNode(dict.Intern("r"), "r");
  PatternNodeId c1 = p.AddNode(dict.Intern("n"), "c1");
  PatternNodeId c2 = p.AddNode(dict.Intern("n"), "c2");
  (void)p.AddEdge(pr, c1, dict.Intern("e"));
  (void)p.AddEdge(pr, c2, dict.Intern("e"));
  (void)p.set_focus(pr);
  std::vector<std::vector<VertexId>> cand{{root}, {child}, {child}};
  GenericMatcher m(p, g, cand);
  GenericMatcher::SearchOptions opts;
  EXPECT_FALSE(m.FindAny(opts));
}

TEST(GenericMatcherTest, SingleNodePattern) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  Pattern p;
  p.AddNode(dict.Intern("redmi_2a"), "r");
  std::vector<std::vector<VertexId>> cand{{8}};
  GenericMatcher m(p, g, cand);
  GenericMatcher::SearchOptions opts;
  std::vector<VertexId> found;
  EXPECT_TRUE(m.FindAny(opts, &found));
  EXPECT_EQ(found[0], 8u);
}

TEST(GenericMatcherTest, ScoreOrdersChildren) {
  TriangleFixture f;
  GenericMatcher m(f.p, f.g, f.candidates);
  GenericMatcher::Score score = [](PatternNodeId, VertexId v) {
    return static_cast<double>(v);  // prefer the highest vertex id
  };
  GenericMatcher::SearchOptions opts;
  opts.score = &score;
  std::vector<VertexId> first;
  ASSERT_TRUE(m.FindAny(opts, &first));
  // Root step iterates the full candidate list ordered by score: 2 first.
  EXPECT_EQ(first[0], 2u);
}

TEST(GenericMatcherTest, StatsCountExtensions) {
  TriangleFixture f;
  GenericMatcher m(f.p, f.g, f.candidates);
  MatchStats stats;
  GenericMatcher::SearchOptions opts;
  opts.stats = &stats;
  m.Enumerate(opts, [](const std::vector<VertexId>&) { return true; });
  EXPECT_EQ(stats.isomorphisms_enumerated, 3u);
  EXPECT_GT(stats.search_extensions, 0u);
}

}  // namespace
}  // namespace qgp
