// Differential lockdown for parallel CandidateSpace::Build: across
// randomized seeded (graph, pattern) pairs, the parallel build at every
// tested thread count — with and without the intern pool — must produce
// candidate sets BYTE-identical to the serial build (members and
// bitsets), and QMatch/DMatch answers must not depend on the pool either.
// This is the contract the concurrency model promises (README
// "Concurrency model"): chunking may change who computes a slot, never
// what the slot holds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/candidate_cache.h"
#include "core/candidate_space.h"
#include "core/dmatch.h"
#include "core/qmatch.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 60 + seed % 41;
  gc.num_edges = 170 + (seed % 11) * 9;
  gc.num_node_labels = 4 + seed % 4;
  gc.num_edge_labels = 3;
  gc.model = (seed % 2 == 0) ? SyntheticConfig::Model::kSmallWorld
                             : SyntheticConfig::Model::kPowerLaw;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

PatternGenConfig MakePatternConfig(uint64_t seed) {
  PatternGenConfig pc;
  pc.num_nodes = 4 + seed % 2;
  pc.num_edges = 4 + seed % 3;
  pc.num_quantified = 1 + seed % 2;
  pc.kind = (seed % 3 == 0) ? QuantKind::kNumeric : QuantKind::kRatio;
  pc.op = (seed % 5 == 0) ? QuantOp::kEq : QuantOp::kGe;
  pc.percent = 25.0 + 25.0 * (seed % 3);
  pc.count = 1 + seed % 3;
  pc.num_negated = seed % 3;
  return pc;
}

// Byte-identity of the two set families: same members in the same order
// and the same membership bitsets (compared by content fingerprint).
void ExpectIdentical(const CandidateSpace& serial,
                     const CandidateSpace& parallel) {
  ASSERT_EQ(serial.num_pattern_nodes(), parallel.num_pattern_nodes());
  for (PatternNodeId u = 0; u < serial.num_pattern_nodes(); ++u) {
    const std::span<const VertexId> s = serial.stratified(u);
    const std::span<const VertexId> p = parallel.stratified(u);
    ASSERT_TRUE(std::equal(s.begin(), s.end(), p.begin(), p.end()))
        << "stratified(" << u << ") diverged";
    EXPECT_EQ(serial.stratified_set(u)->bits.Fingerprint(),
              parallel.stratified_set(u)->bits.Fingerprint());
    const std::span<const VertexId> sg = serial.good(u);
    const std::span<const VertexId> pg = parallel.good(u);
    ASSERT_TRUE(std::equal(sg.begin(), sg.end(), pg.begin(), pg.end()))
        << "good(" << u << ") diverged";
    EXPECT_EQ(serial.good_set(u)->bits.Fingerprint(),
              parallel.good_set(u)->bits.Fingerprint());
  }
}

// Parallel Build == serial Build, for every thread count, for both build
// paths (simulation on and off), with and without an intern pool.
TEST(CandidateSpaceParallelTest, ParallelBuildIsByteIdenticalToSerial) {
  size_t pairs_compared = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Graph g = MakeGraph(seed);
    std::vector<Pattern> patterns =
        GeneratePatternSuite(g, 5, MakePatternConfig(seed), seed * 211 + 5);
    for (size_t i = 0; i < patterns.size(); ++i) {
      auto pi = patterns[i].Pi();
      if (!pi.ok()) continue;
      const Pattern& positive = pi.value().first;
      SCOPED_TRACE("seed " + std::to_string(seed) + " pattern " +
                   std::to_string(i));
      MatchOptions opts;
      opts.use_simulation = (seed + i) % 2 == 0;
      auto serial = CandidateSpace::Build(positive, g, opts, nullptr);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        auto par =
            CandidateSpace::Build(positive, g, opts, nullptr, &pool);
        ASSERT_TRUE(par.ok()) << par.status().ToString();
        ExpectIdentical(*serial, *par);
        CandidateCache cache(g);
        auto cached =
            CandidateSpace::Build(positive, g, opts, nullptr, &pool, &cache);
        ASSERT_TRUE(cached.ok()) << cached.status().ToString();
        ExpectIdentical(*serial, *cached);
      }
      ++pairs_compared;
    }
  }
  // The lockdown is only meaningful at volume; if pattern generation
  // starts eating cases, widen the seed range instead of shrinking this.
  EXPECT_GE(pairs_compared, 100u);
}

// Build stats are part of the contract too: the parallel build must
// report the same pruning counters as the serial one.
TEST(CandidateSpaceParallelTest, ParallelBuildStatsMatchSerial) {
  size_t compared = 0;
  for (uint64_t seed = 31; seed <= 42; ++seed) {
    Graph g = MakeGraph(seed);
    std::vector<Pattern> patterns =
        GeneratePatternSuite(g, 3, MakePatternConfig(seed), seed * 97 + 1);
    for (const Pattern& q : patterns) {
      auto pi = q.Pi();
      if (!pi.ok()) continue;
      MatchOptions opts;
      MatchStats serial_stats;
      auto serial =
          CandidateSpace::Build(pi.value().first, g, opts, &serial_stats);
      ASSERT_TRUE(serial.ok());
      ThreadPool pool(4);
      MatchStats par_stats;
      auto par = CandidateSpace::Build(pi.value().first, g, opts, &par_stats,
                                       &pool);
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(serial_stats.candidates_initial, par_stats.candidates_initial);
      EXPECT_EQ(serial_stats.candidates_pruned, par_stats.candidates_pruned);
      ++compared;
    }
  }
  EXPECT_GE(compared, 20u);
}

// End to end: QMatch with a pool (parallel Build + parallel verification,
// shared intern pool) returns the same answers as the serial evaluation,
// and a pool-built PositiveEvaluator enumerates the same DMatch answers.
TEST(CandidateSpaceParallelTest, QMatchAndDMatchAnswersMatchSerial) {
  size_t compared = 0;
  for (uint64_t seed = 51; seed <= 74; ++seed) {
    Graph g = MakeGraph(seed);
    std::vector<Pattern> patterns =
        GeneratePatternSuite(g, 3, MakePatternConfig(seed), seed * 389 + 11);
    for (size_t i = 0; i < patterns.size(); ++i) {
      const Pattern& q = patterns[i];
      SCOPED_TRACE("seed " + std::to_string(seed) + " pattern " +
                   std::to_string(i) + ":\n" + q.ToString(&g.dict()));
      auto serial = QMatch::Evaluate(q, g);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (size_t threads : kThreadCounts) {
        ThreadPool pool(threads);
        CandidateCache cache(g);
        auto par = QMatch::Evaluate(q, g, {}, nullptr, &pool, &cache);
        ASSERT_TRUE(par.ok()) << par.status().ToString();
        EXPECT_EQ(serial.value(), par.value())
            << "QMatch diverged at " << threads << " threads";
      }
      auto pi = q.Pi();
      if (pi.ok()) {
        auto ev_serial =
            PositiveEvaluator::Create(pi.value().first, g, MatchOptions{});
        ASSERT_TRUE(ev_serial.ok());
        ThreadPool pool(4);
        CandidateCache cache(g);
        auto ev_par = PositiveEvaluator::Create(
            pi.value().first, g, MatchOptions{}, nullptr, 0, nullptr, &pool,
            &cache);
        ASSERT_TRUE(ev_par.ok());
        EXPECT_EQ(ev_serial->EvaluateAll(nullptr, nullptr),
                  ev_par->EvaluateAll(nullptr, nullptr))
            << "DMatch diverged under parallel Build";
      }
      ++compared;
    }
  }
  EXPECT_GE(compared, 50u);
}

}  // namespace
}  // namespace qgp
