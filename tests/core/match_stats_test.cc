// MatchStats consistency under the bitset/galloping hot-path rewrite:
// counters must stay populated, grow monotonically with the focus subset,
// and be bit-identical between ThreadPool and sequential execution.
#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/dmatch.h"
#include "core/qmatch.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

Graph TestGraph() {
  SyntheticConfig gc;
  gc.num_vertices = 220;
  gc.num_edges = 700;
  gc.num_node_labels = 6;
  gc.num_edge_labels = 3;
  gc.seed = 5;
  return std::move(GenerateSynthetic(gc)).value();
}

std::vector<Pattern> TestPatterns(const Graph& g, size_t negated) {
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 5;
  pc.num_quantified = 2;
  pc.kind = QuantKind::kRatio;
  pc.op = QuantOp::kGe;
  pc.percent = 40.0;
  pc.num_negated = negated;
  return GeneratePatternSuite(g, 4, pc, 42);
}

TEST(MatchStatsTest, CountersPopulated) {
  Graph g = TestGraph();
  std::vector<Pattern> patterns = TestPatterns(g, 0);
  ASSERT_FALSE(patterns.empty());
  MatchStats stats;
  bool any_answers = false;
  for (const Pattern& q : patterns) {
    auto r = QMatch::Evaluate(q, g, {}, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    any_answers = any_answers || !r->empty();
  }
  ASSERT_TRUE(any_answers) << "workload too weak to exercise the counters";
  EXPECT_GT(stats.focus_candidates_checked, 0u);
  EXPECT_GT(stats.balls_built, 0u);
  EXPECT_GT(stats.search_extensions, 0u);
  EXPECT_GT(stats.isomorphisms_enumerated, 0u);
}

// More focus candidates can only mean more verification work: every
// counter is non-decreasing as the evaluated subset grows.
TEST(MatchStatsTest, MonotonicInFocusSubset) {
  Graph g = TestGraph();
  std::vector<Pattern> patterns = TestPatterns(g, 0);
  ASSERT_FALSE(patterns.empty());
  size_t checked = 0;
  for (const Pattern& q : patterns) {
    auto pi = q.Pi();
    ASSERT_TRUE(pi.ok());
    auto ev = PositiveEvaluator::Create(std::move(pi->first), g, {});
    ASSERT_TRUE(ev.ok()) << ev.status().ToString();
    const std::span<const VertexId> all = ev->FocusCandidates();
    if (all.size() < 2) continue;
    ++checked;
    std::span<const VertexId> half(all.data(), all.size() / 2);
    MatchStats stats_half;
    MatchStats stats_all;
    ev->EvaluateSubset(half, &stats_half, nullptr);
    ev->EvaluateSubset(all, &stats_all, nullptr);
    EXPECT_LE(stats_half.focus_candidates_checked,
              stats_all.focus_candidates_checked);
    EXPECT_LE(stats_half.balls_built, stats_all.balls_built);
    EXPECT_LE(stats_half.witness_searches, stats_all.witness_searches);
    EXPECT_LE(stats_half.search_extensions, stats_all.search_extensions);
    EXPECT_LE(stats_half.isomorphisms_enumerated,
              stats_all.isomorphisms_enumerated);
  }
  EXPECT_GT(checked, 0u);
}

// Per-focus verification is independent work; threading must change
// neither the answers nor any counter, including inc_candidates_checked
// on negated patterns (the IncQMatch path).
TEST(MatchStatsTest, ThreadPoolMatchesSequential) {
  Graph g = TestGraph();
  ThreadPool pool(3);
  for (size_t negated : {size_t{0}, size_t{1}, size_t{2}}) {
    std::vector<Pattern> patterns = TestPatterns(g, negated);
    ASSERT_FALSE(patterns.empty());
    for (const Pattern& q : patterns) {
      MatchStats seq_stats;
      MatchStats par_stats;
      auto seq = QMatch::Evaluate(q, g, {}, &seq_stats, nullptr);
      auto par = QMatch::Evaluate(q, g, {}, &par_stats, &pool);
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_EQ(seq.value(), par.value());
      EXPECT_EQ(seq_stats.isomorphisms_enumerated,
                par_stats.isomorphisms_enumerated);
      EXPECT_EQ(seq_stats.witness_searches, par_stats.witness_searches);
      EXPECT_EQ(seq_stats.search_extensions, par_stats.search_extensions);
      EXPECT_EQ(seq_stats.candidates_initial, par_stats.candidates_initial);
      EXPECT_EQ(seq_stats.candidates_pruned, par_stats.candidates_pruned);
      EXPECT_EQ(seq_stats.focus_candidates_checked,
                par_stats.focus_candidates_checked);
      EXPECT_EQ(seq_stats.inc_candidates_checked,
                par_stats.inc_candidates_checked);
      EXPECT_EQ(seq_stats.balls_built, par_stats.balls_built);
    }
  }
}

}  // namespace
}  // namespace qgp
