#include "core/pattern.h"

#include <gtest/gtest.h>

#include "testing/paper_graphs.h"

namespace qgp {
namespace {

Pattern Chain3(LabelDict& dict, Quantifier q01 = Quantifier(),
               Quantifier q12 = Quantifier()) {
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  PatternNodeId c = p.AddNode(dict.Intern("c"), "c");
  (void)p.AddEdge(a, b, dict.Intern("e"), q01);
  (void)p.AddEdge(b, c, dict.Intern("f"), q12);
  (void)p.set_focus(a);
  return p;
}

TEST(PatternTest, BuildAndAccessors) {
  LabelDict dict;
  Pattern p = Chain3(dict);
  EXPECT_EQ(p.num_nodes(), 3u);
  EXPECT_EQ(p.num_edges(), 2u);
  EXPECT_EQ(p.focus(), 0u);
  EXPECT_EQ(p.OutEdgeIds(0).size(), 1u);
  EXPECT_EQ(p.InEdgeIds(1).size(), 1u);
  EXPECT_EQ(p.edge(0).src, 0u);
  EXPECT_EQ(p.edge(0).dst, 1u);
  EXPECT_TRUE(p.IsPositive());
  EXPECT_TRUE(p.IsConventional());
}

TEST(PatternTest, EdgeEndpointValidation) {
  Pattern p;
  p.AddNode(0, "a");
  EXPECT_FALSE(p.AddEdge(0, 5, 0).ok());
  EXPECT_FALSE(p.set_focus(9).ok());
}

TEST(PatternTest, InvalidQuantifierRejected) {
  Pattern p;
  p.AddNode(0, "a");
  p.AddNode(0, "b");
  EXPECT_FALSE(p.AddEdge(0, 1, 0, Quantifier::Ratio(QuantOp::kGe, 0)).ok());
}

TEST(PatternTest, StratifiedStripsQuantifiers) {
  LabelDict dict;
  Pattern p = Chain3(dict, Quantifier::Numeric(QuantOp::kGe, 5),
                     Quantifier::Universal());
  EXPECT_FALSE(p.IsConventional());
  Pattern s = p.Stratified();
  EXPECT_TRUE(s.IsConventional());
  EXPECT_EQ(s.num_nodes(), p.num_nodes());
  EXPECT_EQ(s.num_edges(), p.num_edges());
  EXPECT_EQ(s.focus(), p.focus());
}

TEST(PatternTest, NegatedEdgeIds) {
  LabelDict dict;
  Pattern p = Chain3(dict, Quantifier(), Quantifier::Negation());
  EXPECT_FALSE(p.IsPositive());
  EXPECT_EQ(p.NegatedEdgeIds(), (std::vector<PatternEdgeId>{1}));
}

TEST(PatternTest, PiOnPositivePatternIsIdentity) {
  LabelDict dict;
  Pattern p = Chain3(dict, Quantifier::Numeric(QuantOp::kGe, 2));
  auto pi = p.Pi();
  ASSERT_TRUE(pi.ok());
  EXPECT_EQ(pi.value().first.num_nodes(), 3u);
  EXPECT_EQ(pi.value().first.num_edges(), 2u);
  // Mappings are identities.
  for (PatternNodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(pi.value().second.node_to_original[u], u);
    EXPECT_EQ(pi.value().second.node_from_original[u], u);
  }
}

TEST(PatternTest, PiDropsNodesBehindNegatedEdges) {
  // Q3 shape: z2 and its outgoing edge disappear even though z2 reaches
  // the shared product node (the directed-path reading; DESIGN.md §2).
  LabelDict dict;
  Pattern q3 = testing::BuildQ3(dict, 2);
  auto pi = q3.Pi();
  ASSERT_TRUE(pi.ok());
  const Pattern& p = pi.value().first;
  const SubPattern& map = pi.value().second;
  EXPECT_EQ(p.num_nodes(), 3u);
  EXPECT_EQ(p.num_edges(), 2u);
  // z2 (original node 2) has no image.
  EXPECT_EQ(map.node_from_original[2], kInvalidPatternId);
  // Edge mapping points at original ids.
  ASSERT_EQ(map.edge_to_original.size(), 2u);
  EXPECT_EQ(map.edge_to_original[0], 0u);
  EXPECT_EQ(map.edge_to_original[1], 1u);
}

TEST(PatternTest, PiDropsNegatedTargetEvenWhenOtherwiseConnected) {
  // xo -> a, xo -> b, a -(neg)-> b: b is "connected via at least one
  // negated edge" (§2.2), so Π drops it together with the (xo, b) edge;
  // positifying restores all three edges.
  LabelDict dict;
  Pattern p;
  PatternNodeId xo = p.AddNode(dict.Intern("x"), "xo");
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  (void)p.AddEdge(xo, a, dict.Intern("e"));
  (void)p.AddEdge(xo, b, dict.Intern("e"));
  (void)p.AddEdge(a, b, dict.Intern("f"), Quantifier::Negation());
  (void)p.set_focus(xo);
  auto pi = p.Pi();
  ASSERT_TRUE(pi.ok());
  EXPECT_EQ(pi.value().first.num_nodes(), 2u);
  EXPECT_EQ(pi.value().first.num_edges(), 1u);
  EXPECT_EQ(pi.value().second.node_from_original[b], kInvalidPatternId);

  auto pos = p.Positify(2);
  ASSERT_TRUE(pos.ok());
  auto pi_pos = pos.value().Pi();
  ASSERT_TRUE(pi_pos.ok());
  EXPECT_EQ(pi_pos.value().first.num_nodes(), 3u);
  EXPECT_EQ(pi_pos.value().first.num_edges(), 3u);
}

TEST(PatternTest, PositifyTurnsNegationExistential) {
  LabelDict dict;
  Pattern q3 = testing::BuildQ3(dict, 2);
  auto pos = q3.Positify(q3.NegatedEdgeIds()[0]);
  ASSERT_TRUE(pos.ok());
  EXPECT_TRUE(pos.value().IsPositive());
  EXPECT_TRUE(pos.value()
                  .edge(q3.NegatedEdgeIds()[0])
                  .quantifier.IsExistential());
}

TEST(PatternTest, PositifyRejectsNonNegatedEdge) {
  LabelDict dict;
  Pattern q3 = testing::BuildQ3(dict, 2);
  EXPECT_FALSE(q3.Positify(0).ok());
  EXPECT_FALSE(q3.Positify(99).ok());
}

TEST(PatternTest, ValidateRejectsEmptyAndDisconnected) {
  Pattern empty;
  EXPECT_FALSE(empty.Validate().ok());

  LabelDict dict;
  Pattern p;
  p.AddNode(dict.Intern("a"), "a");
  p.AddNode(dict.Intern("b"), "b");  // no edge: disconnected
  (void)p.set_focus(0);
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PatternTest, ValidateSingleNodeOk) {
  LabelDict dict;
  Pattern p;
  p.AddNode(dict.Intern("a"), "a");
  EXPECT_TRUE(p.Validate().ok());
}

TEST(PatternTest, ValidatePathQuantifierBudget) {
  LabelDict dict;
  // Three non-existential quantifiers on one simple path exceeds l = 2.
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  PatternNodeId c = p.AddNode(dict.Intern("c"), "c");
  PatternNodeId d = p.AddNode(dict.Intern("d"), "d");
  Quantifier q = Quantifier::Numeric(QuantOp::kGe, 2);
  (void)p.AddEdge(a, b, dict.Intern("e"), q);
  (void)p.AddEdge(b, c, dict.Intern("e"), q);
  (void)p.AddEdge(c, d, dict.Intern("e"), q);
  (void)p.set_focus(a);
  EXPECT_FALSE(p.Validate(2).ok());
  EXPECT_TRUE(p.Validate(3).ok());
}

TEST(PatternTest, ValidateRejectsDoubleNegationOnPath) {
  LabelDict dict;
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  PatternNodeId c = p.AddNode(dict.Intern("c"), "c");
  (void)p.AddEdge(a, b, dict.Intern("e"), Quantifier::Negation());
  (void)p.AddEdge(b, c, dict.Intern("e"), Quantifier::Negation());
  (void)p.set_focus(a);
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PatternTest, ValidateAllowsNegationsOnSeparateBranches) {
  // Q5-style: two negated edges on different branches are fine.
  LabelDict dict;
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  PatternNodeId c = p.AddNode(dict.Intern("c"), "c");
  (void)p.AddEdge(a, b, dict.Intern("e"), Quantifier::Negation());
  (void)p.AddEdge(a, c, dict.Intern("e"), Quantifier::Negation());
  (void)p.set_focus(a);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(PatternTest, RadiusUndirected) {
  LabelDict dict;
  Pattern p = Chain3(dict);
  EXPECT_EQ(p.Radius(), 2);
  (void)p.set_focus(1);
  EXPECT_EQ(p.Radius(), 1);  // middle node reaches both ends in one hop
}

TEST(PatternTest, EqualityOperator) {
  LabelDict dict;
  Pattern a = Chain3(dict);
  Pattern b = Chain3(dict);
  EXPECT_TRUE(a == b);
  Pattern c = Chain3(dict, Quantifier::Numeric(QuantOp::kGe, 2));
  EXPECT_FALSE(a == c);
}

TEST(PatternTest, ToStringMentionsQuantifier) {
  LabelDict dict;
  Pattern p = Chain3(dict, Quantifier::Ratio(QuantOp::kGe, 80));
  std::string text = p.ToString(&dict);
  EXPECT_NE(text.find(">=80%"), std::string::npos);
  EXPECT_NE(text.find("(focus)"), std::string::npos);
}

}  // namespace
}  // namespace qgp
