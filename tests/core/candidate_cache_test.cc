// CandidateCache: interning semantics (one allocation per distinct
// label/degree filter), refcount lifecycle (EvictUnused respects live
// handles), equivalence with the serial degree refinement, and the
// sharing CandidateSpace::Build is expected to exhibit (same-key nodes
// alias one set; good aliases stratified when unpruned).
#include "core/candidate_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/candidate_space.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

TEST(CandidateCacheTest, InterningReturnsOneAllocationPerKey) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  const Label person = dict.Intern("person");
  const Label follow = dict.Intern("follow");
  CandidateCache cache(g);
  CandidateSetRef a = cache.Get(person, {follow}, {});
  CandidateSetRef b = cache.Get(person, {follow}, {});
  EXPECT_EQ(a.get(), b.get()) << "same key must intern to one set";
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // A different key is a different entry.
  CandidateSetRef c = cache.Get(person, {}, {follow});
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CandidateCacheTest, KeyNormalizesLabelOrderAndDuplicates) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  const Label person = dict.Intern("person");
  const Label follow = dict.Intern("follow");
  const Label recom = dict.Intern("recom");
  CandidateCache cache(g);
  CandidateSetRef a = cache.Get(person, {follow, recom}, {});
  CandidateSetRef b = cache.Get(person, {recom, follow, follow}, {});
  EXPECT_EQ(a.get(), b.get())
      << "label lists must be order- and duplicate-insensitive";
}

TEST(CandidateCacheTest, SetsMatchTheSerialDegreeRefinement) {
  testing::G1Ids ids;
  Graph g = testing::BuildG1(&ids);
  LabelDict& dict = g.mutable_dict();
  const Label person = dict.Intern("person");
  const Label follow = dict.Intern("follow");
  const Label recom = dict.Intern("recom");
  CandidateCache cache(g);
  // Persons with at least one follow out-edge: x1, x2, x3.
  CandidateSetRef followers = cache.Get(person, {follow}, {});
  EXPECT_EQ(followers->members,
            (std::vector<VertexId>{ids.x1, ids.x2, ids.x3}));
  // Persons with a recom out-edge AND a follow in-edge: v0..v3.
  CandidateSetRef recommenders = cache.Get(person, {recom}, {follow});
  EXPECT_EQ(recommenders->members,
            (std::vector<VertexId>{ids.v0, ids.v1, ids.v2, ids.v3}));
  // Bitset agrees with the member list.
  for (VertexId v : recommenders->members) {
    EXPECT_TRUE(recommenders->bits.Test(v));
  }
  EXPECT_FALSE(recommenders->bits.Test(ids.v4));
  EXPECT_FALSE(recommenders->bits.Test(ids.x1));
}

TEST(CandidateCacheTest, EvictUnusedRespectsLiveReferences) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  const Label person = dict.Intern("person");
  const Label follow = dict.Intern("follow");
  const Label recom = dict.Intern("recom");
  CandidateCache cache(g);
  CandidateSetRef held = cache.Get(person, {follow}, {});
  EXPECT_EQ(held.use_count(), 2) << "pool + caller";
  {
    CandidateSetRef dropped = cache.Get(person, {recom}, {});
    EXPECT_EQ(cache.size(), 2u);
    // `dropped` dies here; only the pool's reference remains.
  }
  EXPECT_EQ(cache.EvictUnused(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  // The held set survived eviction, stays valid, and is still interned.
  EXPECT_FALSE(held->members.empty());
  CandidateSetRef again = cache.Get(person, {follow}, {});
  EXPECT_EQ(held.get(), again.get());
  // Once the last external handle dies, the entry becomes evictable.
  held.reset();
  again.reset();
  EXPECT_EQ(cache.EvictUnused(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CandidateCacheTest, BuildSharesSetsBetweenSameKeyNodes) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  // Two pattern nodes with identical label/degree filters: z1 and z2 both
  // "person with a recom out-edge".
  Pattern p;
  PatternNodeId xo = p.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z1 = p.AddNode(dict.Intern("person"), "z1");
  PatternNodeId z2 = p.AddNode(dict.Intern("person"), "z2");
  PatternNodeId r = p.AddNode(dict.Intern("redmi_2a"), "r");
  (void)p.AddEdge(xo, z1, dict.Intern("follow"));
  (void)p.AddEdge(xo, z2, dict.Intern("follow"));
  (void)p.AddEdge(z1, r, dict.Intern("recom"));
  (void)p.AddEdge(z2, r, dict.Intern("recom"));
  (void)p.set_focus(xo);
  MatchOptions plain;
  plain.use_simulation = false;
  CandidateCache cache(g);
  auto cs = CandidateSpace::Build(p, g, plain, nullptr, nullptr, &cache);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->stratified_set(z1).get(), cs->stratified_set(z2).get())
      << "same-key nodes must share one interned set";
  EXPECT_NE(cs->stratified_set(xo).get(), cs->stratified_set(z1).get());
  // No quantified out-edges anywhere: good aliases stratified.
  for (PatternNodeId u = 0; u < p.num_nodes(); ++u) {
    EXPECT_EQ(cs->good_set(u).get(), cs->stratified_set(u).get());
  }
  // A second build on the same cache hits instead of recomputing.
  const uint64_t misses_before = cache.stats().misses;
  auto cs2 = CandidateSpace::Build(p, g, plain, nullptr, nullptr, &cache);
  ASSERT_TRUE(cs2.ok());
  EXPECT_EQ(cache.stats().misses, misses_before);
  EXPECT_EQ(cs2->stratified_set(z1).get(), cs->stratified_set(z1).get());
}

TEST(CandidateCacheTest, ConcurrentGetsAgreeOnContent) {
  Graph g = testing::BuildG1(nullptr);
  LabelDict& dict = g.mutable_dict();
  const Label person = dict.Intern("person");
  const Label follow = dict.Intern("follow");
  const Label recom = dict.Intern("recom");
  CandidateCache cache(g);
  constexpr size_t kThreads = 8;
  std::vector<CandidateSetRef> got(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Half the threads race on one key, half on another.
      got[t] = (t % 2 == 0) ? cache.Get(person, {follow}, {})
                            : cache.Get(person, {recom}, {});
    });
  }
  for (auto& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(got[t], nullptr);
    EXPECT_EQ(got[t]->members, got[t % 2]->members);
  }
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace qgp
