// Direct IncQMatch unit coverage (§4.2): the three incrementality
// levers, each pinned by the MatchStats counter that proves the work
// was actually skipped — cached-ball reuse when the positified radius
// did not grow (balls_built), failed-witness-pair transfer
// (witness_searches), and the empty-cache fallback (correct answers
// with zero warm state). The end-to-end agreement of QMatch vs QMatchn
// lives in qmatch_test.cc / differential_test.cc; this file exercises
// IncQMatchEvaluate against a hand-built Π(Q) run.

#include "core/inc_qmatch.h"

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>

#include "core/dmatch.h"
#include "core/qmatch.h"
#include "graph/graph_builder.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

// Shared fixture state: Π(Q) and Π(Q⁺ᵉ) evaluators for Q3 over G1,
// built the way QMatch builds them — both with the ORIGINAL pattern's
// ball-label filter, so Π(Q)-cached balls stay valid for Π(Q⁺ᵉ). The
// graph member is constructed first and never moved afterwards (the
// evaluators reference it).
class IncSetup {
 public:
  IncSetup() : g_(testing::BuildG1(nullptr)) {
    Pattern q3 = testing::BuildQ3(g_.mutable_dict(), 2);
    MatchOptions opts;

    ball_labels_ = DynamicBitset(g_.dict().size());
    for (PatternEdgeId e = 0; e < q3.num_edges(); ++e) {
      Label l = q3.edge(e).label;
      if (l < ball_labels_.size()) ball_labels_.Set(l);
    }

    auto pi = q3.Pi();
    EXPECT_TRUE(pi.ok());
    auto ev0 = PositiveEvaluator::Create(
        pi.value().first, g_, opts, &pi.value().second.edge_to_original,
        q3.num_edges(), &ball_labels_);
    EXPECT_TRUE(ev0.ok());
    ev0_.emplace(std::move(ev0).value());

    PatternEdgeId neg = q3.NegatedEdgeIds()[0];
    auto positified = q3.Positify(neg);
    EXPECT_TRUE(positified.ok());
    auto pi_pos = positified.value().Pi();
    EXPECT_TRUE(pi_pos.ok());
    auto ev_e = PositiveEvaluator::Create(
        pi_pos.value().first, g_, opts,
        &pi_pos.value().second.edge_to_original, q3.num_edges(),
        &ball_labels_);
    EXPECT_TRUE(ev_e.ok());
    ev_e_.emplace(std::move(ev_e).value());

    a0 = ev0_->EvaluateAll(&base_stats, &caches);
  }

  const PositiveEvaluator& ev0() const { return *ev0_; }
  const PositiveEvaluator& ev_e() const { return *ev_e_; }

  AnswerSet a0;
  std::unordered_map<VertexId, FocusCache> caches;
  MatchStats base_stats;

 private:
  Graph g_;
  DynamicBitset ball_labels_;
  std::optional<PositiveEvaluator> ev0_;
  std::optional<PositiveEvaluator> ev_e_;
};

TEST(IncQMatchTest, CachedBallsReusedWhenRadiusDoesNotGrow) {
  IncSetup s;
  ASSERT_FALSE(s.a0.empty());
  // Positifying adds a constraint but no new hop depth here: the warm
  // path may reuse every Π(Q) ball.
  ASSERT_LE(s.ev_e().radius(), s.ev0().radius());
  for (VertexId vx : s.a0) {
    ASSERT_TRUE(s.caches.count(vx));
    EXPECT_TRUE(s.caches.at(vx).ball_complete);
  }

  MatchStats warm, cold;
  AnswerSet with_cache = IncQMatchEvaluate(s.ev_e(), s.a0, s.caches, &warm);
  AnswerSet without_cache = IncQMatchEvaluate(s.ev_e(), s.a0, {}, &cold);
  EXPECT_EQ(with_cache, without_cache);

  // Cold verification rebuilds focus balls (candidates rejected before
  // ball extraction build none, so >= 1, not == |a0|); the warm run
  // rebuilds none at all.
  EXPECT_GT(cold.balls_built, 0u);
  EXPECT_EQ(warm.balls_built, 0u);
}

// A focus that passes σ(e) >= 2 with one failing child records that
// child as a failed pair; a warm re-verification must not re-search it.
// Simulation/pruning/early-stop are disabled so the failure is really
// discovered (and memoized) at search time.
TEST(IncQMatchTest, FailedWitnessPairsTransfer) {
  GraphBuilder b;
  VertexId a = b.AddVertex("p");
  VertexId c1 = b.AddVertex("c");
  VertexId c2 = b.AddVertex("c");
  // c3 keeps a "g" out-edge (so the label-degree filter admits it as an
  // n1 candidate) but to a wrong-label vertex: its pinned witness search
  // must run and fail, recording the failed pair.
  VertexId c3 = b.AddVertex("c");
  VertexId d1 = b.AddVertex("x");
  VertexId d2 = b.AddVertex("x");
  VertexId y = b.AddVertex("y");
  ASSERT_TRUE(b.AddEdge(a, c1, "f").ok());
  ASSERT_TRUE(b.AddEdge(a, c2, "f").ok());
  ASSERT_TRUE(b.AddEdge(a, c3, "f").ok());
  ASSERT_TRUE(b.AddEdge(c1, d1, "g").ok());
  ASSERT_TRUE(b.AddEdge(c2, d2, "g").ok());
  ASSERT_TRUE(b.AddEdge(c3, y, "g").ok());
  Graph g = std::move(b).Build().value();

  LabelDict& dict = g.mutable_dict();
  Pattern p;
  PatternNodeId n0 = p.AddNode(dict.Intern("p"), "n0");
  PatternNodeId n1 = p.AddNode(dict.Intern("c"), "n1");
  PatternNodeId n2 = p.AddNode(dict.Intern("x"), "n2");
  (void)p.AddEdge(n0, n1, dict.Intern("f"), Quantifier::Numeric(QuantOp::kGe, 2));
  (void)p.AddEdge(n1, n2, dict.Intern("g"), Quantifier());
  (void)p.set_focus(n0);
  ASSERT_TRUE(p.Validate().ok());

  MatchOptions opts;
  opts.use_simulation = false;
  opts.use_quantifier_pruning = false;
  opts.early_stop_counting = false;
  auto ev = PositiveEvaluator::Create(p, g, opts, nullptr, p.num_edges());
  ASSERT_TRUE(ev.ok());

  std::unordered_map<VertexId, FocusCache> caches;
  MatchStats first;
  AnswerSet a0 = ev->EvaluateAll(&first, &caches);
  ASSERT_EQ(a0, (AnswerSet{a}));

  // The Π(Q) run proved (a, c3) witness-free and recorded it.
  size_t transferred_pairs = 0;
  for (const auto& [vx, cache] : caches) {
    for (const auto& failed : cache.failed_by_original_edge) {
      transferred_pairs += failed.size();
    }
  }
  ASSERT_GT(transferred_pairs, 0u);

  MatchStats warm, cold;
  AnswerSet with_cache = IncQMatchEvaluate(*ev, a0, caches, &warm);
  AnswerSet without_cache = IncQMatchEvaluate(*ev, a0, {}, &cold);
  EXPECT_EQ(with_cache, without_cache);
  EXPECT_EQ(with_cache, a0);
  EXPECT_LT(warm.witness_searches, cold.witness_searches);
}

TEST(IncQMatchTest, EmptyCacheFallbackIsExact) {
  IncSetup s;
  MatchStats stats;
  AnswerSet incremental = IncQMatchEvaluate(s.ev_e(), s.a0, {}, &stats);
  // No warm state: still restricted to the cached answers and still
  // exact inside them.
  AnswerSet direct = s.ev_e().EvaluateAll(nullptr, nullptr);
  EXPECT_EQ(incremental, SetIntersection(direct, s.a0));
  EXPECT_EQ(stats.inc_candidates_checked, s.a0.size());

  // Degenerate inputs: no cached answers means nothing to verify.
  MatchStats empty_stats;
  EXPECT_TRUE(IncQMatchEvaluate(s.ev_e(), {}, {}, &empty_stats).empty());
  EXPECT_EQ(empty_stats.inc_candidates_checked, 0u);
}

}  // namespace
}  // namespace qgp
