#include "core/pattern_analysis.h"

#include <gtest/gtest.h>

#include "testing/paper_graphs.h"

namespace qgp {
namespace {

TEST(PatternSizeTest, Q3Descriptor) {
  LabelDict dict;
  Pattern q3 = testing::BuildQ3(dict, 2);
  PatternSize s = ComputePatternSize(q3);
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.num_negated, 1u);
  EXPECT_DOUBLE_EQ(s.avg_quantifier, 2.0);  // the single >=2
  EXPECT_EQ(s.ToString(), "(4, 4, 2, 1)");
}

TEST(PatternSizeTest, MixedQuantifierAverage) {
  LabelDict dict;
  Pattern p;
  PatternNodeId a = p.AddNode(dict.Intern("a"), "a");
  PatternNodeId b = p.AddNode(dict.Intern("b"), "b");
  PatternNodeId c = p.AddNode(dict.Intern("c"), "c");
  (void)p.AddEdge(a, b, dict.Intern("e"),
                  Quantifier::Ratio(QuantOp::kGe, 30.0));
  (void)p.AddEdge(a, c, dict.Intern("e"),
                  Quantifier::Ratio(QuantOp::kGe, 50.0));
  (void)p.set_focus(a);
  PatternSize s = ComputePatternSize(p);
  EXPECT_DOUBLE_EQ(s.avg_quantifier, 40.0);
}

TEST(FocusDistancesTest, Q3Distances) {
  LabelDict dict;
  Pattern q3 = testing::BuildQ3(dict, 2);
  std::vector<int> d = FocusDistances(q3);
  EXPECT_EQ(d[q3.focus()], 0);
  EXPECT_EQ(d[1], 1);  // z1
  EXPECT_EQ(d[2], 1);  // z2
  EXPECT_EQ(d[3], 2);  // redmi
}

TEST(NumQuantifiedEdgesTest, ExcludesNegationAndExistential) {
  LabelDict dict;
  Pattern q3 = testing::BuildQ3(dict, 2);
  EXPECT_EQ(NumQuantifiedEdges(q3), 1u);
  Pattern q2 = testing::BuildQ2(dict);
  EXPECT_EQ(NumQuantifiedEdges(q2), 1u);
}

TEST(PatternsShareEdgeTest, DetectsByNameAndLabel) {
  LabelDict dict;
  Pattern a;
  PatternNodeId a0 = a.AddNode(dict.Intern("p"), "xo");
  PatternNodeId a1 = a.AddNode(dict.Intern("q"), "y");
  (void)a.AddEdge(a0, a1, dict.Intern("buy"));
  (void)a.set_focus(a0);

  Pattern b;
  PatternNodeId b0 = b.AddNode(dict.Intern("p"), "xo");
  PatternNodeId b1 = b.AddNode(dict.Intern("q"), "y");
  (void)b.AddEdge(b0, b1, dict.Intern("buy"));
  (void)b.set_focus(b0);
  EXPECT_TRUE(PatternsShareEdge(a, b));

  Pattern c;
  PatternNodeId c0 = c.AddNode(dict.Intern("p"), "xo");
  PatternNodeId c1 = c.AddNode(dict.Intern("q"), "z");  // different name
  (void)c.AddEdge(c0, c1, dict.Intern("buy"));
  (void)c.set_focus(c0);
  EXPECT_FALSE(PatternsShareEdge(a, c));

  Pattern d;
  PatternNodeId d0 = d.AddNode(dict.Intern("p"), "xo");
  PatternNodeId d1 = d.AddNode(dict.Intern("q"), "y");
  (void)d.AddEdge(d0, d1, dict.Intern("like"));  // different label
  (void)d.set_focus(d0);
  EXPECT_FALSE(PatternsShareEdge(a, d));
}

TEST(PatternsShareEdgeTest, UnnamedNodesNeverMatch) {
  LabelDict dict;
  Pattern a;
  PatternNodeId a0 = a.AddNode(dict.Intern("p"));
  PatternNodeId a1 = a.AddNode(dict.Intern("q"));
  (void)a.AddEdge(a0, a1, dict.Intern("buy"));
  EXPECT_FALSE(PatternsShareEdge(a, a));
}

}  // namespace
}  // namespace qgp
