// Direct coverage of DMatch (§4.1): PositiveEvaluator and the
// DMatchEvaluate wrapper, previously exercised only indirectly through
// qmatch_test.cc. Ground truth comes from the paper's Fig. 2 examples and
// from the enumeration baseline, which shares none of DMatch's pruning.
#include "core/dmatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "core/enum_matcher.h"
#include "gen/pattern_gen.h"
#include "gen/social_gen.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

using qgp::testing::BuildG1;
using qgp::testing::BuildG2;
using qgp::testing::BuildQ2;
using qgp::testing::BuildQ3;
using qgp::testing::BuildQ4;
using qgp::testing::G1Ids;
using qgp::testing::G2Ids;

TEST(DMatchDirectTest, Q2OnG1MatchesExample3) {
  G1Ids ids;
  Graph g = BuildG1(&ids);
  Pattern q2 = BuildQ2(g.mutable_dict());
  MatchStats stats;
  auto res = DMatchEvaluate(q2, g, MatchOptions{}, &stats);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(*res, (AnswerSet{ids.x1, ids.x2}));
  EXPECT_GT(stats.focus_candidates_checked, 0u);
}

TEST(DMatchDirectTest, PiOfQ3OnG1MatchesExample6) {
  G1Ids ids;
  Graph g = BuildG1(&ids);
  Pattern q3 = BuildQ3(g.mutable_dict(), /*p=*/2);
  auto pi = q3.Pi();
  ASSERT_TRUE(pi.ok()) << pi.status().ToString();
  MatchStats stats;
  auto res = DMatchEvaluate(pi->first, g, MatchOptions{}, &stats);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(*res, (AnswerSet{ids.x2, ids.x3}));
}

TEST(DMatchDirectTest, PiOfQ4OnG2CountsAdvisees) {
  G2Ids ids;
  Graph g = BuildG2(&ids);
  // Without the PhD negation, x4 qualifies too (advises v5 and v6).
  Pattern q4 = BuildQ4(g.mutable_dict(), /*p=*/2);
  auto pi = q4.Pi();
  ASSERT_TRUE(pi.ok());
  auto res = DMatchEvaluate(pi->first, g, MatchOptions{}, nullptr);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(*res, (AnswerSet{ids.x4, ids.x5, ids.x6}));
  // At p = 3 only x6 advises three UK professors... x6's third advisee v9
  // is in the US, so nobody qualifies.
  Pattern q4p3 = BuildQ4(g.mutable_dict(), /*p=*/3);
  auto pi3 = q4p3.Pi();
  ASSERT_TRUE(pi3.ok());
  auto res3 = DMatchEvaluate(pi3->first, g, MatchOptions{}, nullptr);
  ASSERT_TRUE(res3.ok());
  EXPECT_TRUE(res3->empty());
}

TEST(DMatchDirectTest, VerifyFocusAgreesWithEvaluateAll) {
  G1Ids ids;
  Graph g = BuildG1(&ids);
  Pattern q2 = BuildQ2(g.mutable_dict());
  auto ev = PositiveEvaluator::Create(q2, g, MatchOptions{});
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();
  AnswerSet all = ev->EvaluateAll(nullptr, nullptr);
  for (VertexId vx : ev->FocusCandidates()) {
    bool member = std::binary_search(all.begin(), all.end(), vx);
    MatchStats stats;
    EXPECT_EQ(ev->VerifyFocus(vx, nullptr, nullptr, &stats), member)
        << "focus candidate " << vx;
  }
}

TEST(DMatchDirectTest, EvaluateSubsetRestrictsTheDomain) {
  G1Ids ids;
  Graph g = BuildG1(&ids);
  Pattern q2 = BuildQ2(g.mutable_dict());
  auto ev = PositiveEvaluator::Create(q2, g, MatchOptions{});
  ASSERT_TRUE(ev.ok());
  // Q2(xo, G1) = {x1, x2}; restricting to {x2, x3} must yield {x2}.
  std::vector<VertexId> subset = {ids.x2, ids.x3};
  AnswerSet res = ev->EvaluateSubset(subset, nullptr, nullptr);
  EXPECT_EQ(res, (AnswerSet{ids.x2}));
  // Empty subset, empty answer.
  AnswerSet empty = ev->EvaluateSubset({}, nullptr, nullptr);
  EXPECT_TRUE(empty.empty());
}

TEST(DMatchDirectTest, EvaluateAllFillsCaches) {
  G1Ids ids;
  Graph g = BuildG1(&ids);
  Pattern q2 = BuildQ2(g.mutable_dict());
  auto ev = PositiveEvaluator::Create(q2, g, MatchOptions{});
  ASSERT_TRUE(ev.ok());
  std::unordered_map<VertexId, FocusCache> caches;
  AnswerSet all = ev->EvaluateAll(nullptr, &caches);
  EXPECT_EQ(caches.size(), all.size());
  for (VertexId vx : all) EXPECT_TRUE(caches.contains(vx));
}

TEST(DMatchDirectTest, RejectsNegatedPatterns) {
  Graph g = BuildG1(nullptr);
  Pattern q3 = BuildQ3(g.mutable_dict(), 2);  // has a =0 edge
  auto res = DMatchEvaluate(q3, g, MatchOptions{}, nullptr);
  EXPECT_FALSE(res.ok());
}

MatchOptions Ablated(bool simulation, bool pruning, bool ordering,
                     bool early_stop) {
  MatchOptions o;
  o.use_simulation = simulation;
  o.use_quantifier_pruning = pruning;
  o.use_potential_ordering = ordering;
  o.early_stop_counting = early_stop;
  return o;
}

TEST(DMatchDirectTest, OptionTogglesPreserveAnswersOnGeneratedWorkload) {
  SocialConfig sc;
  sc.num_users = 300;
  sc.community_size = 60;
  Graph g = std::move(GenerateSocialGraph(sc)).value();
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 2;
  pc.percent = 40.0;
  pc.num_negated = 0;  // positive-only: DMatch's own domain
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 4, pc, 97);
  ASSERT_FALSE(patterns.empty());
  size_t compared = 0;
  for (const Pattern& q : patterns) {
    auto pi = q.Pi();
    ASSERT_TRUE(pi.ok());
    const Pattern& pos = pi->first;
    auto baseline =
        EnumMatcher::EvaluatePositive(pos, g, MatchOptions{}, nullptr);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    for (MatchOptions o :
         {Ablated(true, true, true, true), Ablated(false, true, true, true),
          Ablated(true, false, true, true), Ablated(true, true, false, true),
          Ablated(true, true, true, false),
          Ablated(false, false, false, false)}) {
      auto res = DMatchEvaluate(pos, g, o, nullptr);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_EQ(*res, *baseline);
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

TEST(DMatchDirectTest, TinyBallLimitFallsBackCorrectly) {
  // A ball cap of 1 forces the hub guard's global-candidate fallback on
  // every focus; answers must not change.
  G1Ids ids;
  Graph g = BuildG1(&ids);
  Pattern q2 = BuildQ2(g.mutable_dict());
  MatchOptions capped;
  capped.ball_limit = 1;
  auto res = DMatchEvaluate(q2, g, capped, nullptr);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, (AnswerSet{ids.x1, ids.x2}));
}

}  // namespace
}  // namespace qgp
