// Differential property suite for the matcher family: on randomized
// (graph, pattern) pairs from the synthetic generators, NaiveMatcher,
// EnumMatcher and QMatch must return identical AnswerSets, and QMatch
// with incremental negation on/off (QMatch vs QMatchn) must agree on
// patterns with negated edges. This is the safety net under the
// bitset/galloping hot-path kernels: any intersection bug that changes
// answers trips one of these ~200+ comparisons.
#include <gtest/gtest.h>

#include <string>

#include "core/enum_matcher.h"
#include "core/naive_matcher.h"
#include "core/qmatch.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 40 + seed % 17;
  gc.num_edges = 110 + (seed % 13) * 5;
  gc.num_node_labels = 5 + seed % 3;
  gc.num_edge_labels = 3;
  gc.model = (seed % 2 == 0) ? SyntheticConfig::Model::kSmallWorld
                             : SyntheticConfig::Model::kPowerLaw;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

PatternGenConfig MakePatternConfig(uint64_t seed) {
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4 + seed % 2;
  pc.num_quantified = 1 + seed % 2;
  pc.kind = (seed % 3 == 0) ? QuantKind::kNumeric : QuantKind::kRatio;
  pc.op = (seed % 5 == 0) ? QuantOp::kEq : QuantOp::kGe;
  pc.percent = 30.0 + 20.0 * (seed % 3);
  pc.count = 2 + seed % 2;
  pc.num_negated = seed % 3;
  return pc;
}

// All four matchers against the brute-force oracle, across enough seeds
// to accumulate at least 200 fully compared cases.
TEST(DifferentialTest, MatchersAgreeOnRandomizedCases) {
  size_t compared = 0;
  size_t compared_negated = 0;
  MatchOptions capped;
  capped.max_isomorphisms = 2'000'000;
  for (uint64_t seed = 1; seed <= 60 && compared < 220; ++seed) {
    Graph g = MakeGraph(seed);
    std::vector<Pattern> patterns =
        GeneratePatternSuite(g, 10, MakePatternConfig(seed), seed * 131 + 7);
    for (size_t i = 0; i < patterns.size(); ++i) {
      const Pattern& q = patterns[i];
      SCOPED_TRACE("seed " + std::to_string(seed) + " pattern " +
                   std::to_string(i) + ":\n" + q.ToString(&g.dict()));
      auto oracle = NaiveMatcher::Evaluate(q, g, capped);
      if (!oracle.ok()) continue;  // oracle overflow: skip, do not fail
      auto en = EnumMatcher::Evaluate(q, g, capped);
      if (!en.ok()) continue;  // enum overflow on a hub-heavy case
      auto qm = QMatch::Evaluate(q, g);
      ASSERT_TRUE(qm.ok()) << qm.status().ToString();
      auto qmn = QMatchNaiveEvaluate(q, g);
      ASSERT_TRUE(qmn.ok()) << qmn.status().ToString();
      EXPECT_EQ(qm.value(), oracle.value()) << "QMatch disagrees";
      EXPECT_EQ(qmn.value(), oracle.value()) << "QMatchn disagrees";
      EXPECT_EQ(en.value(), oracle.value()) << "Enum disagrees";
      ++compared;
      if (!q.NegatedEdgeIds().empty()) ++compared_negated;
    }
  }
  // The suite is only meaningful at volume; if generation or screening
  // starts eating cases, widen the seed range instead of shrinking this.
  EXPECT_GE(compared, 200u);
  EXPECT_GE(compared_negated, 30u);
}

// Incremental negation is an optimization, never a semantics change:
// QMatch (IncQMatch) and QMatchn (full recomputation) must agree on
// every negated pattern — checked without the oracle so hub-heavy cases
// the brute force cannot finish are covered too.
TEST(DifferentialTest, IncrementalNegationAgreesOnNegatedPatterns) {
  size_t compared = 0;
  for (uint64_t seed = 101; seed <= 140 && compared < 60; ++seed) {
    Graph g = MakeGraph(seed);
    PatternGenConfig pc = MakePatternConfig(seed);
    pc.num_negated = 1 + seed % 2;
    std::vector<Pattern> patterns =
        GeneratePatternSuite(g, 6, pc, seed * 977 + 3);
    for (size_t i = 0; i < patterns.size(); ++i) {
      const Pattern& q = patterns[i];
      if (q.NegatedEdgeIds().empty()) continue;
      SCOPED_TRACE("seed " + std::to_string(seed) + " pattern " +
                   std::to_string(i) + ":\n" + q.ToString(&g.dict()));
      auto qm = QMatch::Evaluate(q, g);
      ASSERT_TRUE(qm.ok()) << qm.status().ToString();
      auto qmn = QMatchNaiveEvaluate(q, g);
      ASSERT_TRUE(qmn.ok()) << qmn.status().ToString();
      EXPECT_EQ(qm.value(), qmn.value())
          << "IncQMatch and full recomputation disagree";
      ++compared;
    }
  }
  EXPECT_GE(compared, 40u);
}

}  // namespace
}  // namespace qgp
