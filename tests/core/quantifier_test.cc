#include "core/quantifier.h"

#include <gtest/gtest.h>

namespace qgp {
namespace {

TEST(QuantifierTest, DefaultIsExistential) {
  Quantifier q;
  EXPECT_TRUE(q.IsExistential());
  EXPECT_FALSE(q.IsNegation());
  EXPECT_TRUE(q.Eval(1, 0));
  EXPECT_FALSE(q.Eval(0, 0));
  EXPECT_EQ(q.ToString(), ">=1");
}

TEST(QuantifierTest, NumericGe) {
  Quantifier q = Quantifier::Numeric(QuantOp::kGe, 3);
  EXPECT_FALSE(q.Eval(2, 10));
  EXPECT_TRUE(q.Eval(3, 10));
  EXPECT_TRUE(q.Eval(7, 10));
  EXPECT_EQ(q.ToString(), ">=3");
  EXPECT_EQ(q.MinCountNeeded(10), 3u);
  EXPECT_EQ(q.EarlyStopCount(10), 3u);
}

TEST(QuantifierTest, NumericEq) {
  Quantifier q = Quantifier::Numeric(QuantOp::kEq, 2);
  EXPECT_FALSE(q.Eval(1, 5));
  EXPECT_TRUE(q.Eval(2, 5));
  EXPECT_FALSE(q.Eval(3, 5));
  // Exact counts cannot stop early.
  EXPECT_FALSE(q.EarlyStopCount(5).has_value());
  EXPECT_EQ(q.MinCountNeeded(5), 2u);
}

TEST(QuantifierTest, NumericGt) {
  Quantifier q = Quantifier::Numeric(QuantOp::kGt, 2);
  EXPECT_FALSE(q.Eval(2, 5));
  EXPECT_TRUE(q.Eval(3, 5));
  EXPECT_EQ(q.MinCountNeeded(5), 3u);  // > 2 means >= 3
  EXPECT_EQ(q.ToString(), ">2");
}

TEST(QuantifierTest, Negation) {
  Quantifier q = Quantifier::Negation();
  EXPECT_TRUE(q.IsNegation());
  EXPECT_TRUE(q.Eval(0, 5));
  EXPECT_FALSE(q.Eval(1, 5));
  EXPECT_EQ(q.ToString(), "=0");
  EXPECT_FALSE(q.MinCountNeeded(5).has_value());
}

TEST(QuantifierTest, RatioGeCeilingNotFloor) {
  // DESIGN.md deviation 1: >=80% of 3 children requires 3 matches, not
  // the paper's floor(3*0.8) = 2 (2/3 = 66.7% < 80%).
  Quantifier q = Quantifier::Ratio(QuantOp::kGe, 80.0);
  EXPECT_EQ(q.MinCountNeeded(3), 3u);
  EXPECT_FALSE(q.Eval(2, 3));
  EXPECT_TRUE(q.Eval(3, 3));
  // 80% of 5 is exactly 4.
  EXPECT_EQ(q.MinCountNeeded(5), 4u);
  EXPECT_TRUE(q.Eval(4, 5));
  EXPECT_FALSE(q.Eval(3, 5));
}

TEST(QuantifierTest, RatioUniversal) {
  Quantifier q = Quantifier::Universal();
  EXPECT_EQ(q.kind(), QuantKind::kRatio);
  EXPECT_TRUE(q.Eval(4, 4));
  EXPECT_FALSE(q.Eval(3, 4));
  EXPECT_EQ(q.ToString(), "=100%");
  EXPECT_EQ(q.MinCountNeeded(4), 4u);
}

TEST(QuantifierTest, RatioEqRequiresIntegralTarget) {
  Quantifier q = Quantifier::Ratio(QuantOp::kEq, 40.0);
  // 40% of 5 = 2: satisfiable.
  EXPECT_EQ(q.MinCountNeeded(5), 2u);
  EXPECT_TRUE(q.Eval(2, 5));
  EXPECT_FALSE(q.Eval(3, 5));
  // 40% of 3 = 1.2: unsatisfiable.
  EXPECT_FALSE(q.MinCountNeeded(3).has_value());
  EXPECT_FALSE(q.Eval(1, 3));
}

TEST(QuantifierTest, RatioGtStrict) {
  Quantifier q = Quantifier::Ratio(QuantOp::kGt, 50.0);
  EXPECT_FALSE(q.Eval(2, 4));  // exactly 50% is not > 50%
  EXPECT_TRUE(q.Eval(3, 4));
  EXPECT_EQ(q.MinCountNeeded(4), 3u);
}

TEST(QuantifierTest, RatioZeroTotalIsFalse) {
  Quantifier q = Quantifier::Ratio(QuantOp::kGe, 50.0);
  EXPECT_FALSE(q.Eval(0, 0));
}

TEST(QuantifierTest, EarlyStopOnlyForMonotone) {
  EXPECT_TRUE(
      Quantifier::Ratio(QuantOp::kGe, 50.0).EarlyStopCount(10).has_value());
  EXPECT_FALSE(Quantifier::Universal().EarlyStopCount(10).has_value());
  EXPECT_FALSE(
      Quantifier::Numeric(QuantOp::kEq, 3).EarlyStopCount(10).has_value());
}

TEST(QuantifierTest, Validation) {
  EXPECT_TRUE(Quantifier::Numeric(QuantOp::kGe, 1).Validate().ok());
  EXPECT_TRUE(Quantifier::Negation().Validate().ok());
  EXPECT_TRUE(Quantifier::Ratio(QuantOp::kGe, 100.0).Validate().ok());
  EXPECT_FALSE(Quantifier::Ratio(QuantOp::kGe, 0.0).Validate().ok());
  EXPECT_FALSE(Quantifier::Ratio(QuantOp::kGe, 120.0).Validate().ok());
  EXPECT_FALSE(Quantifier::Ratio(QuantOp::kGe, -5.0).Validate().ok());
  EXPECT_FALSE(Quantifier::Numeric(QuantOp::kGe, 0).Validate().ok());
}

TEST(QuantifierTest, Equality) {
  EXPECT_EQ(Quantifier(), Quantifier::Numeric(QuantOp::kGe, 1));
  EXPECT_FALSE(Quantifier::Numeric(QuantOp::kGe, 2) ==
               Quantifier::Numeric(QuantOp::kGe, 3));
  EXPECT_FALSE(Quantifier::Ratio(QuantOp::kGe, 30) ==
               Quantifier::Numeric(QuantOp::kGe, 30));
  EXPECT_EQ(Quantifier::Universal(), Quantifier::Ratio(QuantOp::kEq, 100.0));
}

TEST(QuantifierTest, ToStringFractionalRatio) {
  Quantifier q = Quantifier::Ratio(QuantOp::kGe, 33.5);
  EXPECT_EQ(q.ToString(), ">=33.5%");
}

}  // namespace
}  // namespace qgp
