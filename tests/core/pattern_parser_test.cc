#include "core/pattern_parser.h"

#include <gtest/gtest.h>

namespace qgp {
namespace {

constexpr char kQ2Text[] = R"(
# Q2 from the paper
node xo person
node z  person
node r  redmi_2a
edge xo z follow =100%
edge z  r recom
focus xo
)";

TEST(PatternParserTest, ParsesQ2) {
  LabelDict dict;
  auto p = PatternParser::Parse(kQ2Text, dict);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->num_nodes(), 3u);
  EXPECT_EQ(p->num_edges(), 2u);
  EXPECT_EQ(p->node(p->focus()).name, "xo");
  EXPECT_EQ(p->edge(0).quantifier, Quantifier::Universal());
  EXPECT_TRUE(p->edge(1).quantifier.IsExistential());
  EXPECT_TRUE(p->Validate().ok());
}

TEST(PatternParserTest, QuantifierTokens) {
  auto check = [](std::string_view tok, const Quantifier& expected) {
    auto q = PatternParser::ParseQuantifier(tok);
    ASSERT_TRUE(q.ok()) << tok << ": " << q.status().ToString();
    EXPECT_EQ(*q, expected) << tok;
  };
  check(">=3", Quantifier::Numeric(QuantOp::kGe, 3));
  check("=2", Quantifier::Numeric(QuantOp::kEq, 2));
  check(">5", Quantifier::Numeric(QuantOp::kGt, 5));
  check("=0", Quantifier::Negation());
  check(">=80%", Quantifier::Ratio(QuantOp::kGe, 80.0));
  check("=100%", Quantifier::Universal());
  check(">50%", Quantifier::Ratio(QuantOp::kGt, 50.0));
  check(">=33.5%", Quantifier::Ratio(QuantOp::kGe, 33.5));
}

TEST(PatternParserTest, BadQuantifierTokens) {
  for (const char* tok :
       {"3", "<=2", ">=", "=x", ">=200%", "=0%", ">=-5", ">0x", ">=1%%"}) {
    EXPECT_FALSE(PatternParser::ParseQuantifier(tok).ok()) << tok;
  }
  // "=0" is only valid with the equals operator.
  EXPECT_FALSE(PatternParser::ParseQuantifier(">=0").ok());
}

TEST(PatternParserTest, ErrorsCarryLineContext) {
  LabelDict dict;
  auto p = PatternParser::Parse("node a person\nbogus record\n", dict);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2"), std::string::npos);
}

TEST(PatternParserTest, RejectsDuplicateNodeName) {
  LabelDict dict;
  auto p = PatternParser::Parse("node a x\nnode a y\nfocus a\n", dict);
  EXPECT_FALSE(p.ok());
}

TEST(PatternParserTest, RejectsUndeclaredReferences) {
  LabelDict dict;
  EXPECT_FALSE(
      PatternParser::Parse("node a x\nedge a b e\nfocus a\n", dict).ok());
  EXPECT_FALSE(PatternParser::Parse("node a x\nfocus b\n", dict).ok());
}

TEST(PatternParserTest, RequiresFocus) {
  LabelDict dict;
  EXPECT_FALSE(PatternParser::Parse("node a x\n", dict).ok());
  EXPECT_FALSE(PatternParser::Parse("", dict).ok());
}

TEST(PatternParserTest, SerializeRoundTrip) {
  LabelDict dict;
  auto p = PatternParser::Parse(kQ2Text, dict);
  ASSERT_TRUE(p.ok());
  std::string text = PatternParser::Serialize(*p, dict);
  auto p2 = PatternParser::Parse(text, dict);
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();
  EXPECT_TRUE(*p == *p2);
}

TEST(PatternParserTest, SerializeNegatedEdge) {
  LabelDict dict;
  auto p = PatternParser::Parse(
      "node a person\nnode b person\nedge a b follow =0\nfocus a\n", dict);
  ASSERT_TRUE(p.ok());
  std::string text = PatternParser::Serialize(*p, dict);
  EXPECT_NE(text.find("=0"), std::string::npos);
  auto p2 = PatternParser::Parse(text, dict);
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(*p == *p2);
}

TEST(PatternParserTest, SharedDictAcrossPatterns) {
  LabelDict dict;
  auto a = PatternParser::Parse("node x person\nfocus x\n", dict);
  auto b = PatternParser::Parse("node y person\nfocus y\n", dict);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->node(0).label, b->node(0).label);
}

}  // namespace
}  // namespace qgp
