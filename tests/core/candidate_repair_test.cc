// CandidateSpace::Repair must produce sets identical to a from-scratch
// Build after every delta — same stratified members, same good members,
// same MatchStats contributions — across simulation and label/degree
// builds, serial and pooled, including the budget-fallback path. The
// randomized sweep mirrors the graph-level delta harness but checks the
// candidate layer.

#include "core/candidate_space.h"

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/pattern.h"
#include "gen/pattern_gen.h"
#include "gen/synthetic_gen.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_delta.h"

namespace qgp {
namespace {

Graph MakeBaseGraph(uint64_t seed) {
  SyntheticConfig config;
  config.num_vertices = 80;
  config.num_edges = 220;
  config.num_node_labels = 4;
  config.num_edge_labels = 3;
  config.seed = seed;
  return GenerateSynthetic(config).value();
}

std::vector<Pattern> MakePositivePatterns(const Graph& g, uint64_t seed) {
  PatternGenConfig config;
  config.num_nodes = 4;
  config.num_edges = 5;
  config.num_quantified = 2;
  config.num_negated = 0;
  std::vector<Pattern> suite = GeneratePatternSuite(g, 6, config, seed);
  std::vector<Pattern> positive;
  for (Pattern& p : suite) {
    if (p.IsPositive()) positive.push_back(std::move(p));
  }
  return positive;
}

// Random delta over alive vertices: edge churn plus occasional vertex
// add/tombstone.
GraphDelta RandomDelta(const Graph& g, std::mt19937* rng, size_t ops) {
  GraphDelta d;
  std::vector<VertexId> alive;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_label(v) != kInvalidLabel) alive.push_back(v);
  }
  auto rand_vertex = [&]() { return alive[(*rng)() % alive.size()]; };
  auto rand_edge_label = [&]() {
    return g.dict().Find("el" + std::to_string((*rng)() % 3));
  };
  for (size_t i = 0; i < ops; ++i) {
    switch ((*rng)() % 8) {
      case 0:
        d.add_vertices.push_back(
            g.dict().Find("nl" + std::to_string((*rng)() % 4)));
        break;
      case 1:
        d.remove_vertices.push_back(rand_vertex());
        break;
      case 2:
      case 3: {  // remove an existing edge of a random vertex
        VertexId v = rand_vertex();
        auto nbrs = g.OutNeighbors(v);
        if (nbrs.empty()) break;
        const Neighbor& nbr = nbrs[(*rng)() % nbrs.size()];
        d.remove_edges.push_back({v, nbr.v, nbr.label});
        break;
      }
      default:
        d.add_edges.push_back({rand_vertex(), rand_vertex(),
                               rand_edge_label()});
        break;
    }
  }
  return d;
}

void ExpectSameSpace(const CandidateSpace& a, const CandidateSpace& b) {
  ASSERT_EQ(a.num_pattern_nodes(), b.num_pattern_nodes());
  for (PatternNodeId u = 0; u < a.num_pattern_nodes(); ++u) {
    std::span<const VertexId> as = a.stratified(u), bs = b.stratified(u);
    EXPECT_TRUE(std::equal(as.begin(), as.end(), bs.begin(), bs.end()))
        << "stratified mismatch at node " << u;
    std::span<const VertexId> ag = a.good(u), bg = b.good(u);
    EXPECT_TRUE(std::equal(ag.begin(), ag.end(), bg.begin(), bg.end()))
        << "good mismatch at node " << u;
  }
}

void ExpectSameStats(const MatchStats& a, const MatchStats& b) {
  EXPECT_EQ(a.candidates_initial, b.candidates_initial);
  EXPECT_EQ(a.candidates_pruned, b.candidates_pruned);
}

// One sweep: build spaces, churn the graph with deltas, repair vs rebuild
// after every batch.
void RunSweep(bool use_simulation, ThreadPool* pool, uint64_t seed) {
  Graph g = MakeBaseGraph(seed);
  std::vector<Pattern> patterns = MakePositivePatterns(g, seed + 1);
  ASSERT_FALSE(patterns.empty());
  MatchOptions options;
  options.use_simulation = use_simulation;

  std::vector<CandidateSpace> spaces;
  for (const Pattern& p : patterns) {
    spaces.push_back(
        CandidateSpace::Build(p, g, options, nullptr, pool).value());
  }

  std::mt19937 rng(seed * 31 + 7);
  for (int batch = 0; batch < 12; ++batch) {
    GraphDelta delta = RandomDelta(g, &rng, 1 + rng() % 6);
    auto summary = g.ApplyDelta(delta);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    for (size_t i = 0; i < patterns.size(); ++i) {
      MatchStats repair_stats, build_stats;
      CandidateRepairInfo info;
      auto repaired =
          CandidateSpace::Repair(spaces[i], patterns[i], g, *summary, options,
                                 &repair_stats, pool, nullptr, &info);
      ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
      auto rebuilt =
          CandidateSpace::Build(patterns[i], g, options, &build_stats, pool);
      ASSERT_TRUE(rebuilt.ok());
      ExpectSameSpace(*repaired, *rebuilt);
      ExpectSameStats(repair_stats, build_stats);
      // The changed list must cover every vertex whose stratified
      // candidacy differs (it is exactly that set by construction; spot
      // check membership semantics).
      for (PatternNodeId u = 0; u < patterns[i].num_nodes(); ++u) {
        std::span<const VertexId> now = rebuilt->stratified(u);
        for (VertexId v : now) {
          if (!spaces[i].InStratified(u, v)) {
            EXPECT_TRUE(std::binary_search(info.changed.begin(),
                                           info.changed.end(), v));
          }
        }
      }
      spaces[i] = std::move(*repaired);
    }
  }
}

TEST(CandidateRepair, SimulationSerial) { RunSweep(true, nullptr, 3); }

TEST(CandidateRepair, SimulationPooled) {
  ThreadPool pool(4);
  RunSweep(true, &pool, 5);
}

TEST(CandidateRepair, LabelDegreeSerial) { RunSweep(false, nullptr, 9); }

TEST(CandidateRepair, LabelDegreePooled) {
  ThreadPool pool(4);
  RunSweep(false, &pool, 11);
}

TEST(CandidateRepair, NoOpDeltaReusesSets) {
  Graph g = MakeBaseGraph(13);
  std::vector<Pattern> patterns = MakePositivePatterns(g, 17);
  ASSERT_FALSE(patterns.empty());
  MatchOptions options;
  CandidateSpace space =
      CandidateSpace::Build(patterns[0], g, options, nullptr).value();
  auto summary = g.ApplyDelta(GraphDelta{});  // bumps version, changes nothing
  ASSERT_TRUE(summary.ok());
  CandidateRepairInfo info;
  auto repaired = CandidateSpace::Repair(space, patterns[0], g, *summary,
                                         options, nullptr, nullptr, nullptr,
                                         &info);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(info.changed.empty());
  EXPECT_FALSE(info.fell_back);
  // Sets are reused by identity, not just equal.
  for (PatternNodeId u = 0; u < patterns[0].num_nodes(); ++u) {
    EXPECT_EQ(repaired->stratified_set(u).get(), space.stratified_set(u).get());
    EXPECT_EQ(repaired->good_set(u).get(), space.good_set(u).get());
  }
}

TEST(CandidateRepair, BudgetFallbackStillExact) {
  // Closing a long chain into a ring cascades candidacy gains across all
  // of it, past the max(64, |V|/4) budget; Repair must fall back to Build
  // and stay exact.
  GraphBuilder b;
  const size_t n = 400;
  for (size_t i = 0; i < n; ++i) b.AddVertex("nl0");
  for (size_t i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(b.AddEdge(static_cast<VertexId>(i),
                          static_cast<VertexId>(i + 1), "el0")
                    .ok());
  }
  Graph g = std::move(b).Build().value();

  Pattern cycle;
  PatternNodeId p0 = cycle.AddNode(g.dict().Find("nl0"));
  PatternNodeId p1 = cycle.AddNode(g.dict().Find("nl0"));
  cycle.AddEdge(p0, p1, g.dict().Find("el0"));
  cycle.AddEdge(p1, p0, g.dict().Find("el0"));
  cycle.set_focus(p0);
  ASSERT_TRUE(cycle.Validate().ok());

  MatchOptions options;
  CandidateSpace space =
      CandidateSpace::Build(cycle, g, options, nullptr).value();
  // No 2-cycles anywhere: empty candidacy.
  EXPECT_TRUE(space.stratified(p0).empty());

  // Close the chain into one big cycle: every vertex gains candidacy, and
  // the gain cascades the whole ring from a single inserted edge.
  GraphDelta d;
  d.add_edges.push_back(
      {static_cast<VertexId>(n - 1), 0, g.dict().Find("el0")});
  auto summary = g.ApplyDelta(d);
  ASSERT_TRUE(summary.ok());

  CandidateRepairInfo info;
  auto repaired = CandidateSpace::Repair(space, cycle, g, *summary, options,
                                         nullptr, nullptr, nullptr, &info);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(info.fell_back);
  auto rebuilt = CandidateSpace::Build(cycle, g, options, nullptr);
  ASSERT_TRUE(rebuilt.ok());
  ExpectSameSpace(*repaired, *rebuilt);
  // Not a 2-cycle pattern match... the ring makes every vertex reach a
  // cycle, so dual simulation keeps the whole ring.
  EXPECT_EQ(repaired->stratified(p0).size(), n);
  EXPECT_EQ(info.changed.size(), n);
}

TEST(CandidateRepair, UniverseGrowthRewrapsBitsets) {
  Graph g = MakeBaseGraph(19);
  std::vector<Pattern> patterns = MakePositivePatterns(g, 23);
  ASSERT_FALSE(patterns.empty());
  MatchOptions options;
  CandidateSpace space =
      CandidateSpace::Build(patterns[0], g, options, nullptr).value();
  // Add vertices with an irrelevant fresh label: candidacy is unchanged
  // but the universe grows, so bitsets must be re-sized.
  GraphDelta d;
  d.add_vertices.assign(5, g.mutable_dict().Intern("spectator"));
  auto summary = g.ApplyDelta(d);
  ASSERT_TRUE(summary.ok());
  auto repaired = CandidateSpace::Repair(space, patterns[0], g, *summary,
                                         options, nullptr);
  ASSERT_TRUE(repaired.ok());
  auto rebuilt = CandidateSpace::Build(patterns[0], g, options, nullptr);
  ASSERT_TRUE(rebuilt.ok());
  ExpectSameSpace(*repaired, *rebuilt);
  for (PatternNodeId u = 0; u < patterns[0].num_nodes(); ++u) {
    EXPECT_EQ(repaired->stratified_set(u)->bits.size(), g.num_vertices());
  }
}

}  // namespace
}  // namespace qgp
