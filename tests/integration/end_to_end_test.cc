// Full-pipeline integration tests: generate realistic graphs, parse
// patterns from text, match sequentially and in parallel, mine rules,
// and cross-check every stage against the others.
#include <gtest/gtest.h>

#include <sstream>

#include "core/pattern_parser.h"
#include "core/qmatch.h"
#include "gen/knowledge_gen.h"
#include "gen/social_gen.h"
#include "graph/graph_io.h"
#include "parallel/dpar.h"
#include "parallel/penum.h"
#include "parallel/pqmatch.h"
#include "qgar/gar_match.h"
#include "qgar/miner.h"

namespace qgp {
namespace {

TEST(EndToEndTest, SocialMarketingPipeline) {
  // 1. Generate a social graph.
  SocialConfig sc;
  sc.num_users = 1000;
  sc.community_size = 125;
  Graph g = std::move(GenerateSocialGraph(sc)).value();

  // 2. Author the paper's Q1-style antecedent in the text syntax.
  auto pattern = PatternParser::Parse(R"(
      node xo person
      node c  club
      node z  person
      node y  album
      edge xo c in
      edge xo z follow >=60%
      edge z  y like
      focus xo
  )",
                                      g.mutable_dict());
  ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
  ASSERT_TRUE(pattern->Validate().ok());

  // 3. Sequential matching finds potential customers.
  MatchStats stats;
  auto customers = QMatch::Evaluate(*pattern, g, {}, &stats);
  ASSERT_TRUE(customers.ok());
  EXPECT_FALSE(customers.value().empty());
  EXPECT_GT(stats.focus_candidates_checked, 0u);

  // 4. Partition + parallel matching agree exactly.
  DParConfig dc;
  dc.num_fragments = 4;
  dc.d = pattern->Radius();
  auto part = DPar(g, dc);
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(part->Validate(g).ok());
  ParallelConfig pc;
  auto parallel = PQMatch::Evaluate(*pattern, *part, pc);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->answers, customers.value());
  auto penum = PEnum::Evaluate(*pattern, *part, pc);
  ASSERT_TRUE(penum.ok());
  EXPECT_EQ(penum->answers, customers.value());
}

TEST(EndToEndTest, KnowledgeDiscoveryPipeline) {
  KnowledgeConfig kc;
  kc.num_scientists = 1500;
  Graph g = std::move(GenerateKnowledgeGraph(kc)).value();

  // Q4-style query with negation, parsed from text.
  auto q4 = PatternParser::Parse(R"(
      node xo  scientist
      node t   prof_title
      node z   scientist
      node phd phd_degree
      edge xo t  is_a
      edge xo z  advisor >=2
      edge z  t  is_a
      edge xo phd has_degree =0
      focus xo
  )",
                                 g.mutable_dict());
  ASSERT_TRUE(q4.ok()) << q4.status().ToString();

  auto inc = QMatch::Evaluate(*q4, g);
  auto full = QMatchNaiveEvaluate(*q4, g);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(inc.value(), full.value());
  // Negation holds on every answer.
  Label has_degree = g.dict().Find("has_degree");
  for (VertexId v : inc.value()) {
    EXPECT_EQ(g.OutDegreeWithLabel(v, has_degree), 0u);
  }
}

TEST(EndToEndTest, GraphSerializationPreservesAnswers) {
  SocialConfig sc;
  sc.num_users = 300;
  Graph g = std::move(GenerateSocialGraph(sc)).value();
  auto pattern = PatternParser::Parse(
      "node xo person\nnode z person\nedge xo z follow >=2\nfocus xo\n",
      g.mutable_dict());
  ASSERT_TRUE(pattern.ok());
  auto before = QMatch::Evaluate(*pattern, g);
  ASSERT_TRUE(before.ok());

  std::ostringstream buffer;
  ASSERT_TRUE(GraphIo::Write(g, buffer).ok());
  std::istringstream in(buffer.str());
  auto reloaded = GraphIo::Read(in);
  ASSERT_TRUE(reloaded.ok());
  auto pattern2 = PatternParser::Parse(
      "node xo person\nnode z person\nedge xo z follow >=2\nfocus xo\n",
      reloaded->mutable_dict());
  ASSERT_TRUE(pattern2.ok());
  auto after = QMatch::Evaluate(*pattern2, *reloaded);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), before.value());
}

TEST(EndToEndTest, MinedRulesIdentifyEntitiesInParallel) {
  SocialConfig sc;
  sc.num_users = 600;
  sc.community_size = 100;
  Graph g = std::move(GenerateSocialGraph(sc)).value();

  MinerConfig mc;
  mc.min_confidence = 0.4;
  mc.min_support = 5;
  mc.max_rules = 2;
  mc.max_evaluations = 30;
  auto rules = MineQgars(g, mc);
  ASSERT_TRUE(rules.ok());
  if (rules->empty()) GTEST_SKIP() << "no rules mined at this scale";

  int max_radius = 0;
  for (const MinedRule& r : *rules) {
    max_radius = std::max({max_radius, r.rule.antecedent.Radius(),
                           r.rule.consequent.Radius()});
  }
  DParConfig dc;
  dc.num_fragments = 3;
  dc.d = max_radius;
  auto part = DPar(g, dc);
  ASSERT_TRUE(part.ok());
  for (const MinedRule& r : *rules) {
    auto seq = GarMatch(r.rule, g, mc.min_confidence);
    auto par = DGarMatch(r.rule, g, *part, mc.min_confidence);
    ASSERT_TRUE(seq.ok());
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(seq->entities, par->entities);
    EXPECT_FALSE(seq->entities.empty());
  }
}

}  // namespace
}  // namespace qgp
