#include "qgar/gar_match.h"

#include <gtest/gtest.h>

#include "gen/social_gen.h"
#include "parallel/dpar.h"

namespace qgp {
namespace {

// R1-style rule on the generated social graph: if >= 60% of xo's
// followees like an album, xo likes it too (the generator's community
// structure makes this hold often).
Qgar LikeRule(Graph& g) {
  LabelDict& dict = g.mutable_dict();
  Qgar r;
  PatternNodeId xo = r.antecedent.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = r.antecedent.AddNode(dict.Intern("person"), "z");
  PatternNodeId y = r.antecedent.AddNode(dict.Intern("album"), "y");
  (void)r.antecedent.AddEdge(xo, z, dict.Intern("follow"),
                             Quantifier::Ratio(QuantOp::kGe, 60.0));
  (void)r.antecedent.AddEdge(z, y, dict.Intern("like"));
  (void)r.antecedent.set_focus(xo);

  PatternNodeId cxo = r.consequent.AddNode(dict.Intern("person"), "xo");
  PatternNodeId cy = r.consequent.AddNode(dict.Intern("album"), "y2");
  (void)r.consequent.AddEdge(cxo, cy, dict.Intern("like"));
  (void)r.consequent.set_focus(cxo);
  r.name = "like-album";
  return r;
}

TEST(GarMatchTest, ComputesSupportAndConfidence) {
  SocialConfig c;
  c.num_users = 600;
  c.community_size = 100;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  Qgar rule = LikeRule(g);
  ASSERT_TRUE(rule.Validate().ok());

  auto res = GarMatch(rule, g, /*eta=*/0.0);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->q1_answers.empty());
  EXPECT_EQ(res->rule_matches,
            SetIntersection(res->q1_answers, res->q2_answers));
  EXPECT_EQ(res->support, res->rule_matches.size());
  EXPECT_GE(res->confidence, 0.0);
  EXPECT_LE(res->confidence, 1.0);
  // η = 0 always identifies entities.
  EXPECT_EQ(res->entities, res->rule_matches);
}

TEST(GarMatchTest, EtaGatesEntityIdentification) {
  SocialConfig c;
  c.num_users = 400;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  Qgar rule = LikeRule(g);
  auto res = GarMatch(rule, g, /*eta=*/0.0);
  ASSERT_TRUE(res.ok());
  // Raising η above the measured confidence empties the entity set but
  // keeps the raw matches.
  auto gated = GarMatch(rule, g, res->confidence + 0.01);
  ASSERT_TRUE(gated.ok());
  EXPECT_TRUE(gated->entities.empty());
  EXPECT_EQ(gated->rule_matches, res->rule_matches);
}

TEST(GarMatchTest, RejectsInvalidRule) {
  SocialConfig c;
  c.num_users = 100;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  Qgar bad;  // empty patterns
  EXPECT_FALSE(GarMatch(bad, g, 0.5).ok());
}

TEST(DGarMatchTest, MatchesSequentialGarMatch) {
  SocialConfig c;
  c.num_users = 500;
  c.community_size = 100;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  Qgar rule = LikeRule(g);

  DParConfig dc;
  dc.num_fragments = 3;
  dc.d = 2;
  auto part = DPar(g, dc);
  ASSERT_TRUE(part.ok());

  auto seq = GarMatch(rule, g, 0.3);
  auto par = DGarMatch(rule, g, *part, 0.3);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->q1_answers, seq->q1_answers);
  EXPECT_EQ(par->q2_answers, seq->q2_answers);
  EXPECT_EQ(par->rule_matches, seq->rule_matches);
  EXPECT_DOUBLE_EQ(par->confidence, seq->confidence);
  EXPECT_EQ(par->entities, seq->entities);
}

}  // namespace
}  // namespace qgp
