#include "qgar/metrics.h"

#include <gtest/gtest.h>

#include "core/qmatch.h"
#include "graph/graph_builder.h"

namespace qgp {
namespace {

// Tiny marketing graph: 4 persons; p0, p1 follow recommenders and buy;
// p2 follows recommenders but did not buy (with a buy edge elsewhere so
// LCWA keeps it); p3 has no buy edges at all (LCWA drops it).
struct Fixture {
  Graph g;
  Qgar rule;
  VertexId p0, p1, p2, p3, prod, other;

  Fixture() {
    GraphBuilder b;
    p0 = b.AddVertex("person");
    p1 = b.AddVertex("person");
    p2 = b.AddVertex("person");
    p3 = b.AddVertex("person");
    VertexId z = b.AddVertex("person");
    prod = b.AddVertex("product");
    other = b.AddVertex("product");
    for (VertexId p : {p0, p1, p2, p3}) {
      (void)b.AddEdge(p, z, "follow");
    }
    (void)b.AddEdge(z, prod, "recom");
    (void)b.AddEdge(p0, prod, "buy");
    (void)b.AddEdge(p1, prod, "buy");
    (void)b.AddEdge(p2, other, "buy");  // bought something else
    g = std::move(b).Build().value();

    LabelDict& dict = g.mutable_dict();
    PatternNodeId xo = rule.antecedent.AddNode(dict.Intern("person"), "xo");
    PatternNodeId pz = rule.antecedent.AddNode(dict.Intern("person"), "z");
    PatternNodeId pr = rule.antecedent.AddNode(dict.Intern("product"), "r");
    (void)rule.antecedent.AddEdge(xo, pz, dict.Intern("follow"),
                                  Quantifier::Universal());
    (void)rule.antecedent.AddEdge(pz, pr, dict.Intern("recom"));
    (void)rule.antecedent.set_focus(xo);

    PatternNodeId cxo = rule.consequent.AddNode(dict.Intern("person"), "xo");
    PatternNodeId cp = rule.consequent.AddNode(dict.Intern("product"), "r2");
    (void)rule.consequent.AddEdge(cxo, cp, dict.Intern("buy"));
    (void)rule.consequent.set_focus(cxo);
    rule.name = "buy-product";
  }
};

TEST(MetricsTest, XoRequiresEveryConsequentEdgeType) {
  Fixture f;
  AnswerSet xo = ComputeXo(f.rule, f.g);
  // p3 has no buy edge: excluded under LCWA. p0..p2 stay.
  EXPECT_EQ(xo, (AnswerSet{f.p0, f.p1, f.p2}));
}

TEST(MetricsTest, SupportIsIntersectionSize) {
  AnswerSet q1{1, 2, 3, 5};
  AnswerSet q2{2, 3, 4};
  EXPECT_EQ(Support(q1, q2), 2u);
  EXPECT_EQ(Support(q1, {}), 0u);
}

TEST(MetricsTest, ConfidenceUnderLcwa) {
  Fixture f;
  auto q1 = QMatch::Evaluate(f.rule.antecedent, f.g);
  auto q2 = QMatch::Evaluate(f.rule.consequent, f.g);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  // All four persons satisfy the antecedent (the single followee
  // recommends), all persons with a buy edge satisfy the consequent.
  EXPECT_EQ(q1.value(), (AnswerSet{f.p0, f.p1, f.p2, f.p3}));
  EXPECT_EQ(q2.value(), (AnswerSet{f.p0, f.p1, f.p2}));
  AnswerSet xo = ComputeXo(f.rule, f.g);
  // Denominator = q1 ∩ Xo = {p0,p1,p2}; numerator = q1 ∩ q2 = {p0,p1,p2}
  // — wait, p2 bought the *other* product, which still matches the
  // consequent pattern (any product). Confidence is 3/3 here.
  EXPECT_DOUBLE_EQ(Confidence(q1.value(), q2.value(), xo), 1.0);
}

TEST(MetricsTest, ConfidenceZeroOnEmptyDenominator) {
  AnswerSet q1{1, 2};
  AnswerSet q2{1};
  AnswerSet xo{};  // no vertex has complete consequent edges
  EXPECT_DOUBLE_EQ(Confidence(q1, q2, xo), 0.0);
}

TEST(MetricsTest, ConfidenceCountsTrueNegativesOnly) {
  // Force a specific product in the consequent: p2's "other" purchase no
  // longer satisfies it, but p2 stays in Xo (it has a buy edge), so it is
  // a genuine negative: confidence 2/3.
  Fixture f;
  LabelDict& dict = f.g.mutable_dict();
  // Rebuild the consequent against product vertex label with an extra
  // constraint: buy target must ALSO be recommended by someone.
  Pattern c;
  PatternNodeId cxo = c.AddNode(dict.Intern("person"), "xo");
  PatternNodeId cp = c.AddNode(dict.Intern("product"), "r2");
  PatternNodeId cz = c.AddNode(dict.Intern("person"), "z2");
  (void)c.AddEdge(cxo, cp, dict.Intern("buy"));
  (void)c.AddEdge(cz, cp, dict.Intern("recom"));
  (void)c.set_focus(cxo);
  f.rule.consequent = c;

  auto q1 = QMatch::Evaluate(f.rule.antecedent, f.g);
  auto q2 = QMatch::Evaluate(f.rule.consequent, f.g);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2.value(), (AnswerSet{f.p0, f.p1}));
  AnswerSet xo = ComputeXo(f.rule, f.g);
  EXPECT_EQ(xo, (AnswerSet{f.p0, f.p1, f.p2}));
  EXPECT_NEAR(Confidence(q1.value(), q2.value(), xo), 2.0 / 3.0, 1e-12);
}

// Lemma 10: support is anti-monotonic when a positive quantifier grows.
TEST(MetricsTest, SupportAntiMonotoneInQuantifier) {
  Fixture f;
  size_t prev_support = SIZE_MAX;
  for (double percent : {20.0, 50.0, 80.0, 100.0}) {
    Pattern q1;
    LabelDict& dict = f.g.mutable_dict();
    PatternNodeId xo = q1.AddNode(dict.Intern("person"), "xo");
    PatternNodeId z = q1.AddNode(dict.Intern("person"), "z");
    PatternNodeId r = q1.AddNode(dict.Intern("product"), "r");
    (void)q1.AddEdge(xo, z, dict.Intern("follow"),
                     Quantifier::Ratio(QuantOp::kGe, percent));
    (void)q1.AddEdge(z, r, dict.Intern("recom"));
    (void)q1.set_focus(xo);
    auto a1 = QMatch::Evaluate(q1, f.g);
    auto a2 = QMatch::Evaluate(f.rule.consequent, f.g);
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(a2.ok());
    size_t support = Support(a1.value(), a2.value());
    EXPECT_LE(support, prev_support);
    prev_support = support;
  }
}

}  // namespace
}  // namespace qgp
