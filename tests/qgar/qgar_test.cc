#include "qgar/qgar.h"

#include <gtest/gtest.h>

namespace qgp {
namespace {

Qgar MakeRule(LabelDict& dict) {
  Qgar r;
  PatternNodeId xo = r.antecedent.AddNode(dict.Intern("person"), "xo");
  PatternNodeId z = r.antecedent.AddNode(dict.Intern("person"), "z");
  PatternNodeId y = r.antecedent.AddNode(dict.Intern("album"), "y");
  (void)r.antecedent.AddEdge(xo, z, dict.Intern("follow"),
                             Quantifier::Ratio(QuantOp::kGe, 80.0));
  (void)r.antecedent.AddEdge(z, y, dict.Intern("like"));
  (void)r.antecedent.set_focus(xo);

  PatternNodeId cxo = r.consequent.AddNode(dict.Intern("person"), "xo");
  PatternNodeId cy = r.consequent.AddNode(dict.Intern("album"), "y2");
  (void)r.consequent.AddEdge(cxo, cy, dict.Intern("buy"));
  (void)r.consequent.set_focus(cxo);
  r.name = "R1";
  return r;
}

TEST(QgarTest, ValidRuleAccepted) {
  LabelDict dict;
  Qgar r = MakeRule(dict);
  EXPECT_TRUE(r.Validate().ok());
}

TEST(QgarTest, RejectsEmptySides) {
  LabelDict dict;
  Qgar r = MakeRule(dict);
  r.consequent = Pattern();
  r.consequent.AddNode(dict.Intern("person"), "xo");
  EXPECT_FALSE(r.Validate().ok());  // consequent has no edge
}

TEST(QgarTest, RejectsFocusLabelMismatch) {
  LabelDict dict;
  Qgar r = MakeRule(dict);
  Pattern c;
  PatternNodeId f = c.AddNode(dict.Intern("album"), "xo");
  PatternNodeId w = c.AddNode(dict.Intern("person"), "w");
  (void)c.AddEdge(f, w, dict.Intern("liked_by"));
  (void)c.set_focus(f);
  r.consequent = c;
  EXPECT_FALSE(r.Validate().ok());
}

TEST(QgarTest, RejectsOverlappingEdge) {
  LabelDict dict;
  Qgar r = MakeRule(dict);
  // Add the antecedent's (xo, z, follow) edge to the consequent.
  PatternNodeId z2 = r.consequent.AddNode(dict.Intern("person"), "z");
  (void)r.consequent.AddEdge(r.consequent.focus(), z2, dict.Intern("follow"));
  // Rename the consequent focus to match antecedent's "xo" (it already
  // is "xo"), so the (xo, z, follow) edge collides.
  EXPECT_FALSE(r.Validate().ok());
}

TEST(QgarTest, RejectsInvalidPatternInside) {
  LabelDict dict;
  Qgar r = MakeRule(dict);
  // Disconnect the antecedent.
  r.antecedent.AddNode(dict.Intern("person"), "orphan");
  EXPECT_FALSE(r.Validate().ok());
}

}  // namespace
}  // namespace qgp
