#include "qgar/miner.h"

#include <gtest/gtest.h>

#include "gen/social_gen.h"
#include "graph/graph_builder.h"
#include "qgar/gar_match.h"

namespace qgp {
namespace {

TEST(MinerTest, MinesRulesMeetingThresholds) {
  SocialConfig c;
  c.num_users = 800;
  c.community_size = 100;
  Graph g = std::move(GenerateSocialGraph(c)).value();

  MinerConfig mc;
  mc.min_confidence = 0.4;
  mc.min_support = 5;
  mc.max_rules = 5;
  mc.max_evaluations = 40;
  auto rules = MineQgars(g, mc);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_FALSE(rules->empty()) << "miner found no rules";
  for (const MinedRule& r : *rules) {
    EXPECT_GE(r.support, mc.min_support);
    EXPECT_GE(r.confidence, mc.min_confidence);
    EXPECT_TRUE(r.rule.Validate().ok());
    // Reported metrics must be reproducible by GarMatch.
    auto check = GarMatch(r.rule, g, 0.0);
    ASSERT_TRUE(check.ok());
    EXPECT_EQ(check->support, r.support);
    EXPECT_DOUBLE_EQ(check->confidence, r.confidence);
  }
  // Sorted by support descending.
  for (size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].support, (*rules)[i].support);
  }
}

TEST(MinerTest, RespectsRuleCap) {
  SocialConfig c;
  c.num_users = 500;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  MinerConfig mc;
  mc.min_confidence = 0.1;
  mc.min_support = 1;
  mc.max_rules = 2;
  auto rules = MineQgars(g, mc);
  ASSERT_TRUE(rules.ok());
  EXPECT_LE(rules->size(), 2u);
}

TEST(MinerTest, EmptyGraphFails) {
  GraphBuilder b;
  Graph g = std::move(b).Build().value();
  MinerConfig mc;
  EXPECT_FALSE(MineQgars(g, mc).ok());
}

TEST(MinerTest, HighThresholdYieldsFewOrNoRules) {
  SocialConfig c;
  c.num_users = 400;
  Graph g = std::move(GenerateSocialGraph(c)).value();
  MinerConfig strict;
  strict.min_confidence = 0.999;
  strict.min_support = 100000;
  auto rules = MineQgars(g, strict);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

}  // namespace
}  // namespace qgp
