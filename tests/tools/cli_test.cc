#include "tools/cli_lib.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace qgp::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunTool(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/qgp_cli_" + name;
}

void WriteTinyGraph(const std::string& path) {
  std::ofstream f(path);
  f << "v 0 person\nv 1 person\nv 2 product\n"
       "e 0 1 follow\ne 1 2 recom\n";
}

TEST(CliTest, NoArgsShowsUsage) {
  CliResult r = RunTool({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(CliTest, UnknownCommand) {
  CliResult r = RunTool({"frobnicate"});
  EXPECT_EQ(r.code, 2);
}

TEST(CliTest, StatsOnTextGraph) {
  std::string path = TempPath("stats.txt");
  WriteTinyGraph(path);
  CliResult r = RunTool({"stats", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("|V|=3"), std::string::npos);
  EXPECT_NE(r.out.find("|E|=2"), std::string::npos);
}

TEST(CliTest, StatsMissingFile) {
  CliResult r = RunTool({"stats", "/no/such/file"});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST(CliTest, ConvertThenStatsBinary) {
  std::string text = TempPath("conv.txt");
  std::string bin = TempPath("conv.bin");
  WriteTinyGraph(text);
  CliResult conv = RunTool({"convert", text, bin});
  ASSERT_EQ(conv.code, 0) << conv.err;
  CliResult stats = RunTool({"stats", bin});
  EXPECT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("|V|=3"), std::string::npos);
}

TEST(CliTest, MatchQuantifiedPattern) {
  std::string graph = TempPath("match.txt");
  WriteTinyGraph(graph);
  std::string pattern = TempPath("pattern.qgp");
  {
    std::ofstream f(pattern);
    f << "node xo person\nnode z person\nnode r product\n"
         "edge xo z follow =100%\nedge z r recom\nfocus xo\n";
  }
  for (const char* algo : {"qmatch", "qmatchn", "enum"}) {
    CliResult r = RunTool({"match", graph, pattern,
                       std::string("--algo=") + algo, "--stats"});
    EXPECT_EQ(r.code, 0) << algo << ": " << r.err;
    EXPECT_NE(r.out.find("matches: 1"), std::string::npos) << algo;
    EXPECT_NE(r.out.find("stats:"), std::string::npos) << algo;
  }
  CliResult bad = RunTool({"match", graph, pattern, "--algo=bogus"});
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("unknown --algo 'bogus'"), std::string::npos)
      << bad.err;
}

TEST(CliTest, MatchAlgoAutoSurfacesPlannerDecision) {
  std::string graph = TempPath("auto.txt");
  WriteTinyGraph(graph);
  std::string pattern = TempPath("auto_pattern.qgp");
  {
    std::ofstream f(pattern);
    f << "node xo person\nnode z person\nnode r product\n"
         "edge xo z follow =100%\nedge z r recom\nfocus xo\n";
  }
  // One pattern file passed twice = a two-entry batch on one engine:
  // the second entry replans the same family from the plan cache.
  CliResult r =
      RunTool({"match", graph, pattern, pattern, "--algo=auto", "--stats"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("matches: 1"), std::string::npos);
  // The planner's decision is surfaced per query (the resolved matcher,
  // never "auto") and in the engine stats line.
  EXPECT_NE(r.out.find(" [algo="), std::string::npos);
  EXPECT_EQ(r.out.find("[algo=auto"), std::string::npos);
  EXPECT_NE(r.out.find(", plan cached]"), std::string::npos);
  EXPECT_NE(r.out.find("plans_built=1"), std::string::npos);
  EXPECT_NE(r.out.find("plan_hits=1"), std::string::npos);
}

TEST(CliTest, MatchBatchSharesOneEngine) {
  std::string graph = TempPath("batch.txt");
  WriteTinyGraph(graph);
  std::string pattern_a = TempPath("batch_a.qgp");
  {
    std::ofstream f(pattern_a);
    f << "node xo person\nnode z person\nnode r product\n"
         "edge xo z follow =100%\nedge z r recom\nfocus xo\n";
  }
  std::string pattern_b = TempPath("batch_b.qgp");
  {
    std::ofstream f(pattern_b);
    f << "node xo person\nnode z person\n"
         "edge xo z follow\nfocus xo\n";
  }
  // Two pattern files = one engine batch: per-pattern results are
  // prefixed with the file tag, and --stats appends the engine's
  // cumulative cache line.
  CliResult r = RunTool(
      {"match", graph, pattern_a, pattern_b, "--stats", "--threads=2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find(pattern_a + ": matches: 1"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find(pattern_b + ": matches:"), std::string::npos);
  EXPECT_NE(r.out.find("engine: queries=2"), std::string::npos);
  EXPECT_NE(r.out.find("hit_ratio="), std::string::npos);
}

TEST(CliTest, MatchRejectsBadPattern) {
  std::string graph = TempPath("badpat.txt");
  WriteTinyGraph(graph);
  std::string pattern = TempPath("bad.qgp");
  {
    std::ofstream f(pattern);
    f << "node xo person\nedge xo nowhere follow\nfocus xo\n";
  }
  CliResult r = RunTool({"match", graph, pattern});
  EXPECT_EQ(r.code, 1);
}

TEST(CliTest, GenerateAndPartition) {
  std::string path = TempPath("social.bin");
  CliResult gen =
      RunTool({"generate", "social", path, "--size=400", "--binary"});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("generated social graph"), std::string::npos);
  CliResult part = RunTool({"partition", path, "--n=3", "--d=1"});
  EXPECT_EQ(part.code, 0) << part.err;
  EXPECT_NE(part.out.find("fragment 2"), std::string::npos);
  EXPECT_NE(part.out.find("skew"), std::string::npos);
}

TEST(CliTest, GenerateRejectsUnknownFamily) {
  CliResult r = RunTool({"generate", "quantum", TempPath("x.txt")});
  EXPECT_EQ(r.code, 2);
}

TEST(CliTest, MineOnSocialGraph) {
  std::string path = TempPath("mine.bin");
  ASSERT_EQ(
      RunTool({"generate", "social", path, "--size=800", "--binary"}).code, 0);
  CliResult r = RunTool({"mine", path, "--eta=0.4", "--support=5", "--rules=2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mined"), std::string::npos);
}

}  // namespace
}  // namespace qgp::cli
