#!/usr/bin/env python3
"""Unit tests for tools/compare_bench.py on crafted JSON fixtures.

Runs the comparator as a subprocess (the same way CI invokes it) and
asserts on exit codes and output for: pass-within-threshold, regression,
noise-floor exemption, scale mismatch, disappeared rows, malformed input.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
COMPARE = os.path.join(REPO_ROOT, "tools", "compare_bench.py")


def bench_doc(rows, scale="small"):
    return {
        "schema": 1,
        "bench": "fixture",
        "scale": scale,
        "rows": [{"config": c, "wall_ms": ms} for c, ms in rows],
    }


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as fh:
            if isinstance(doc, str):
                fh.write(doc)
            else:
                json.dump(doc, fh)
        return path

    def run_compare(self, *args):
        return subprocess.run(
            [sys.executable, COMPARE, *args],
            capture_output=True, text=True)

    def test_within_threshold_passes(self):
        base = self.write("base.json", bench_doc([("a", 10.0), ("b", 5.0)]))
        cur = self.write("cur.json", bench_doc([("a", 12.0), ("b", 4.0)]))
        result = self.run_compare(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK", result.stdout)

    def test_regression_fails(self):
        base = self.write("base.json", bench_doc([("a", 10.0), ("b", 5.0)]))
        cur = self.write("cur.json", bench_doc([("a", 13.0), ("b", 5.0)]))
        result = self.run_compare(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("a: 10.0000 ms -> 13.0000 ms", result.stderr)

    def test_exactly_at_threshold_passes(self):
        base = self.write("base.json", bench_doc([("a", 10.0)]))
        cur = self.write("cur.json", bench_doc([("a", 12.5)]))
        result = self.run_compare(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_noise_floor_rows_never_gate(self):
        # 10x slower but the baseline is microseconds: not a gate.
        base = self.write("base.json",
                          bench_doc([("tiny", 0.001), ("real", 8.0)]))
        cur = self.write("cur.json",
                         bench_doc([("tiny", 0.010), ("real", 8.1)]))
        result = self.run_compare(base, cur, "--min-wall-ms", "0.05")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("noise floor", result.stdout)

    def test_scale_mismatch_is_an_error_unless_allowed(self):
        base = self.write("base.json", bench_doc([("a", 1.0)], scale="small"))
        cur = self.write("cur.json", bench_doc([("a", 1.0)], scale="tiny"))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 2)
        self.assertIn("scale mismatch", result.stderr)
        result = self.run_compare(base, cur, "--allow-scale-mismatch")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_new_and_missing_rows_do_not_gate(self):
        base = self.write("base.json", bench_doc([("old", 3.0), ("kept", 2.0)]))
        cur = self.write("cur.json", bench_doc([("kept", 2.0), ("new", 9.9)]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("WARNING: row disappeared", result.stdout)
        self.assertIn("new", result.stdout)

    def test_match_filter_limits_comparison(self):
        base = self.write("base.json",
                          bench_doc([("build/a", 1.0), ("other", 1.0)]))
        cur = self.write("cur.json",
                         bench_doc([("build/a", 1.1), ("other", 99.0)]))
        result = self.run_compare(base, cur, "--match", "build/")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_row_threshold_override_loosens_matching_rows(self):
        # dpar/* is 50% slower: fails the global 25% gate, passes with a
        # 60% per-row override; the non-matching row still gates.
        base = self.write("base.json",
                          bench_doc([("dpar/partition", 10.0), ("a", 10.0)]))
        cur = self.write("cur.json",
                         bench_doc([("dpar/partition", 15.0), ("a", 10.0)]))
        result = self.run_compare(base, cur, "--threshold", "0.25")
        self.assertEqual(result.returncode, 1)
        result = self.run_compare(base, cur, "--threshold", "0.25",
                                  "--row-threshold", "dpar/=0.6")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("row threshold 60%", result.stdout)

    def test_row_threshold_can_tighten_and_still_gates(self):
        base = self.write("base.json", bench_doc([("hot/loop", 10.0)]))
        cur = self.write("cur.json", bench_doc([("hot/loop", 11.5)]))
        result = self.run_compare(base, cur, "--threshold", "0.25",
                                  "--row-threshold", "hot/=0.10")
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)

    def test_row_threshold_longest_match_wins(self):
        base = self.write("base.json", bench_doc([("dpar/partition", 10.0)]))
        cur = self.write("cur.json", bench_doc([("dpar/partition", 15.0)]))
        result = self.run_compare(
            base, cur, "--threshold", "0.25",
            "--row-threshold", "dpar/=0.1",
            "--row-threshold", "dpar/partition=0.6")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_row_threshold_malformed_spec_is_a_usage_error(self):
        base = self.write("base.json", bench_doc([("a", 1.0)]))
        cur = self.write("cur.json", bench_doc([("a", 1.0)]))
        result = self.run_compare(base, cur, "--row-threshold", "nofraction")
        self.assertEqual(result.returncode, 2)
        result = self.run_compare(base, cur, "--row-threshold", "a=notnum")
        self.assertEqual(result.returncode, 2)

    def test_malformed_json_is_a_usage_error(self):
        base = self.write("base.json", bench_doc([("a", 1.0)]))
        bad = self.write("bad.json", "{not json")
        result = self.run_compare(base, bad)
        self.assertEqual(result.returncode, 2)
        self.assertIn("does not parse", result.stderr)

    def test_missing_rows_key_is_a_usage_error(self):
        base = self.write("base.json", bench_doc([("a", 1.0)]))
        bad = self.write("bad.json", {"schema": 1})
        result = self.run_compare(base, bad)
        self.assertEqual(result.returncode, 2)
        self.assertIn("missing rows", result.stderr)

    def test_no_comparable_rows_is_a_usage_error(self):
        base = self.write("base.json", bench_doc([("a", 1.0)]))
        cur = self.write("cur.json", bench_doc([("b", 1.0)]))
        result = self.run_compare(base, cur)
        self.assertEqual(result.returncode, 2)


if __name__ == "__main__":
    unittest.main()
