#include "parallel/base_partitioner.h"

#include <gtest/gtest.h>

#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

Graph SmallWorld(size_t n, size_t m, uint64_t seed = 3) {
  SyntheticConfig c;
  c.num_vertices = n;
  c.num_edges = m;
  c.seed = seed;
  return std::move(GenerateSynthetic(c)).value();
}

TEST(BasePartitionTest, CoversAllVertices) {
  Graph g = SmallWorld(500, 1500);
  auto frag = BasePartition(g, 4);
  ASSERT_TRUE(frag.ok());
  ASSERT_EQ(frag->size(), g.num_vertices());
  for (uint32_t f : *frag) EXPECT_LT(f, 4u);
}

TEST(BasePartitionTest, BalancedWithinCap) {
  Graph g = SmallWorld(1000, 3000);
  const size_t n = 5;
  auto frag = BasePartition(g, n);
  ASSERT_TRUE(frag.ok());
  std::vector<size_t> sizes(n, 0);
  for (uint32_t f : *frag) ++sizes[f];
  const size_t cap = (g.num_vertices() + n - 1) / n;
  for (size_t s : sizes) {
    EXPECT_LE(s, cap);
    EXPECT_GT(s, 0u);
  }
}

TEST(BasePartitionTest, SingleFragment) {
  Graph g = SmallWorld(100, 300);
  auto frag = BasePartition(g, 1);
  ASSERT_TRUE(frag.ok());
  for (uint32_t f : *frag) EXPECT_EQ(f, 0u);
}

TEST(BasePartitionTest, MoreFragmentsThanVertices) {
  Graph g = SmallWorld(3, 3);
  auto frag = BasePartition(g, 10);
  ASSERT_TRUE(frag.ok());
  for (uint32_t f : *frag) EXPECT_LT(f, 10u);
}

TEST(BasePartitionTest, RejectsZeroFragments) {
  Graph g = SmallWorld(10, 20);
  EXPECT_FALSE(BasePartition(g, 0).ok());
}

TEST(BasePartitionTest, EmptyGraph) {
  SyntheticConfig c;
  c.num_vertices = 1;
  c.num_edges = 0;
  Graph g = std::move(GenerateSynthetic(c)).value();
  auto frag = BasePartition(g, 2);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag->size(), 1u);
}

}  // namespace
}  // namespace qgp
