// Fragment bundle round-trip and strictness: every DPar fragment
// survives Write→Read with its subgraph, ownership and id map intact
// (the shard-serve loading path), and every malformed .meta variant is
// an InvalidArgument, never a half-loaded bundle.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "gen/synthetic_gen.h"
#include "graph/graph_delta.h"
#include "parallel/dpar.h"
#include "parallel/fragment_io.h"

namespace qgp {
namespace {

Graph MakeGraph(uint64_t seed) {
  SyntheticConfig gc;
  gc.num_vertices = 50;
  gc.num_edges = 140;
  gc.num_node_labels = 3;
  gc.num_edge_labels = 2;
  gc.seed = seed;
  return std::move(GenerateSynthetic(gc)).value();
}

std::string Prefix(const std::string& stem) {
  return ::testing::TempDir() + "qgp_fragment_io_" + stem;
}

TEST(FragmentIoTest, EveryFragmentRoundTrips) {
  Graph g = MakeGraph(41);
  DParConfig pc;
  pc.num_fragments = 3;
  pc.d = 2;
  auto partition = DPar(g, pc);
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();
  for (size_t i = 0; i < partition->fragments.size(); ++i) {
    const Fragment& f = partition->fragments[i];
    const std::string prefix = Prefix("rt" + std::to_string(i));
    ASSERT_TRUE(WriteFragmentBundle(f, partition->d, i,
                                    partition->fragments.size(), prefix)
                    .ok());
    auto bundle = ReadFragmentBundle(prefix);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
    EXPECT_TRUE(ContentEquals(bundle->graph, f.sub.graph));
    EXPECT_EQ(bundle->d, partition->d);
    EXPECT_EQ(bundle->index, i);
    EXPECT_EQ(bundle->num_fragments, partition->fragments.size());
    EXPECT_EQ(bundle->owned_local, f.owned_local);
    EXPECT_EQ(bundle->local_to_global, f.sub.local_to_global);
    // The global owned set is recoverable exactly as documented.
    std::vector<VertexId> owned_global;
    for (VertexId lv : bundle->owned_local) {
      owned_global.push_back(bundle->local_to_global[lv]);
    }
    std::sort(owned_global.begin(), owned_global.end());
    EXPECT_EQ(owned_global, f.owned_global);
  }
}

TEST(FragmentIoTest, WriteRejectsInconsistentIndex) {
  Graph g = MakeGraph(42);
  DParConfig pc;
  pc.num_fragments = 2;
  auto partition = DPar(g, pc);
  ASSERT_TRUE(partition.ok());
  EXPECT_FALSE(WriteFragmentBundle(partition->fragments[0], partition->d,
                                   /*index=*/2, /*num_fragments=*/2,
                                   Prefix("badidx"))
                   .ok());
}

TEST(FragmentIoTest, MissingFilesAreErrors) {
  EXPECT_FALSE(ReadFragmentBundle(Prefix("nonexistent")).ok());
}

class FragmentIoMalformedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Graph g = MakeGraph(43);
    DParConfig pc;
    pc.num_fragments = 2;
    pc.d = 2;
    auto partition = DPar(g, pc);
    ASSERT_TRUE(partition.ok());
    prefix_ = Prefix("malformed");
    ASSERT_TRUE(
        WriteFragmentBundle(partition->fragments[0], partition->d, 0, 2,
                            prefix_)
            .ok());
    auto good = ReadFragmentBundle(prefix_);
    ASSERT_TRUE(good.ok());
    local_vertices_ = good->graph.num_vertices();
  }

  // Overwrites the .meta file and expects the read to fail structured.
  void ExpectRejected(const std::string& meta, const std::string& why) {
    std::ofstream out(prefix_ + ".meta", std::ios::trunc);
    out << meta;
    out.close();
    auto bundle = ReadFragmentBundle(prefix_);
    ASSERT_FALSE(bundle.ok()) << "accepted " << why;
    EXPECT_EQ(bundle.status().code(), StatusCode::kInvalidArgument) << why;
  }

  std::string prefix_;
  size_t local_vertices_ = 0;
};

TEST_F(FragmentIoMalformedTest, RejectsEveryMetaDeviation) {
  const std::string n = std::to_string(local_vertices_);
  ExpectRejected("", "empty meta");
  ExpectRejected("QGPFRAG9\nd 2\nfragment 0 2\nowned 0\nl2g 0\n",
                 "bad magic");
  ExpectRejected("QGPFRAG1\n", "truncated after magic");
  ExpectRejected("QGPFRAG1\nd -1\nfragment 0 2\nowned 0\nl2g 0\n",
                 "negative d");
  ExpectRejected("QGPFRAG1\nd x\nfragment 0 2\nowned 0\nl2g 0\n",
                 "non-numeric d");
  ExpectRejected("QGPFRAG1\nd 2\nfragment 2 2\nowned 0\nl2g 0\n",
                 "index >= total");
  ExpectRejected("QGPFRAG1\nd 2\nfragment 0 2\nowned 3 0 1\nl2g 0\n",
                 "owned count mismatch");
  ExpectRejected("QGPFRAG1\nd 2\nfragment 0 2\nowned 1 999999\nl2g " + n +
                     "\n",
                 "owned id out of local range");
  ExpectRejected("QGPFRAG1\nd 2\nfragment 0 2\nowned 0\nl2g 1 7\n",
                 "l2g size != graph vertices");
  ExpectRejected("QGPFRAG1\nd 2\nfragment 0 2\nowned 0\nl2g 0\njunk\n",
                 "trailing junk line");
}

}  // namespace
}  // namespace qgp
