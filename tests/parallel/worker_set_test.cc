// WorkerSet lifecycle: task dispatch, per-worker timing reports, and
// clean shutdown (Run must join every thread before returning, so no
// callback may outlive the call).
#include "parallel/worker_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace qgp {
namespace {

TEST(WorkerSetTest, ExposesConstructionParameters) {
  WorkerSet sim(3, ExecutionMode::kSimulated);
  EXPECT_EQ(sim.num_workers(), 3u);
  EXPECT_EQ(sim.mode(), ExecutionMode::kSimulated);
  WorkerSet thr(5, ExecutionMode::kThreads);
  EXPECT_EQ(thr.num_workers(), 5u);
  EXPECT_EQ(thr.mode(), ExecutionMode::kThreads);
}

TEST(WorkerSetTest, SimulatedModeRunsEachWorkerExactlyOnceInOrder) {
  WorkerSet workers(4, ExecutionMode::kSimulated);
  std::vector<size_t> order;
  auto report = workers.Run([&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_EQ(report.worker_seconds.size(), 4u);
}

TEST(WorkerSetTest, ThreadModeRunsEachWorkerExactlyOnce) {
  WorkerSet workers(8, ExecutionMode::kThreads);
  std::vector<std::atomic<int>> hits(8);
  auto report = workers.Run([&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(report.worker_seconds.size(), 8u);
}

TEST(WorkerSetTest, RunJoinsBeforeReturning) {
  // Shutdown correctness: after Run returns, all callbacks must have
  // completed — a still-running worker would see `done` flip and fail.
  WorkerSet workers(4, ExecutionMode::kThreads);
  std::atomic<int> completed{0};
  std::atomic<bool> done{false};
  workers.Run([&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(done.load());
    completed.fetch_add(1);
  });
  done.store(true);
  EXPECT_EQ(completed.load(), 4);
}

TEST(WorkerSetTest, ReportTotalsAreConsistent) {
  for (ExecutionMode mode :
       {ExecutionMode::kSimulated, ExecutionMode::kThreads}) {
    WorkerSet workers(3, mode);
    auto report = workers.Run([](size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    ASSERT_EQ(report.worker_seconds.size(), 3u);
    double max_s = 0, sum_s = 0;
    for (double s : report.worker_seconds) {
      EXPECT_GT(s, 0.0);
      max_s = std::max(max_s, s);
      sum_s += s;
    }
    EXPECT_DOUBLE_EQ(report.makespan_seconds, max_s);
    EXPECT_DOUBLE_EQ(report.total_work_seconds, sum_s);
    EXPECT_GE(report.wall_seconds, 0.0);
    if (mode == ExecutionMode::kSimulated) {
      // Sequential execution: the wall clock covers all workers.
      EXPECT_GE(report.wall_seconds, report.makespan_seconds);
    }
  }
}

TEST(WorkerSetTest, IsReusableAcrossRuns) {
  WorkerSet workers(2, ExecutionMode::kThreads);
  std::atomic<int> total{0};
  for (int round = 0; round < 3; ++round) {
    auto report = workers.Run([&](size_t) { total.fetch_add(1); });
    EXPECT_EQ(report.worker_seconds.size(), 2u);
  }
  EXPECT_EQ(total.load(), 6);
}

TEST(WorkerSetTest, ZeroWorkersIsANoOp) {
  WorkerSet workers(0, ExecutionMode::kSimulated);
  std::atomic<int> calls{0};
  auto report = workers.Run([&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(report.worker_seconds.empty());
  EXPECT_DOUBLE_EQ(report.makespan_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.total_work_seconds, 0.0);
}

TEST(WorkerSetTest, SingleWorkerThreadModeWorks) {
  WorkerSet workers(1, ExecutionMode::kThreads);
  std::set<size_t> seen;
  std::atomic<int> calls{0};
  auto report = workers.Run([&](size_t i) {
    seen.insert(i);  // single worker: no concurrent mutation
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, (std::set<size_t>{0}));
  EXPECT_EQ(report.worker_seconds.size(), 1u);
}

}  // namespace
}  // namespace qgp
