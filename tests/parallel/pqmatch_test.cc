// Lemma 9(1) in executable form: over a d-hop preserving partition, the
// parallel matchers must return exactly the sequential answers, for both
// worker-execution modes, positive and negative patterns.
#include "parallel/pqmatch.h"

#include <gtest/gtest.h>

#include "core/qmatch.h"
#include "gen/pattern_gen.h"
#include "gen/social_gen.h"
#include "gen/synthetic_gen.h"
#include "parallel/dpar.h"
#include "parallel/penum.h"

namespace qgp {
namespace {

Graph SocialGraph() {
  SocialConfig c;
  c.num_users = 700;
  c.community_size = 120;
  return std::move(GenerateSocialGraph(c)).value();
}

TEST(PQMatchTest, EquivalentToSequentialOnGeneratedPatterns) {
  Graph g = SocialGraph();
  DParConfig dc;
  dc.num_fragments = 4;
  dc.d = 2;
  auto part = DPar(g, dc);
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(part->Validate(g).ok());

  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.percent = 40.0;
  pc.num_negated = 1;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 4, pc, 13);
  ASSERT_FALSE(patterns.empty());

  ParallelConfig cfg;
  size_t usable = 0;
  for (const Pattern& q : patterns) {
    if (q.Radius() > dc.d) continue;
    ++usable;
    auto sequential = QMatch::Evaluate(q, g);
    ASSERT_TRUE(sequential.ok());
    auto parallel = PQMatch::Evaluate(q, *part, cfg);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->answers, sequential.value());
  }
  EXPECT_GT(usable, 0u);
}

TEST(PQMatchTest, ThreadModeMatchesSimulatedMode) {
  Graph g = SocialGraph();
  DParConfig dc;
  dc.num_fragments = 3;
  dc.d = 2;
  auto part = DPar(g, dc);
  ASSERT_TRUE(part.ok());

  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.num_negated = 0;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 2, pc, 31);
  ASSERT_FALSE(patterns.empty());
  for (const Pattern& q : patterns) {
    if (q.Radius() > dc.d) continue;
    ParallelConfig sim;
    sim.mode = ExecutionMode::kSimulated;
    ParallelConfig thr;
    thr.mode = ExecutionMode::kThreads;
    thr.threads_per_worker = 2;
    auto a = PQMatch::Evaluate(q, *part, sim);
    auto b = PQMatch::Evaluate(q, *part, thr);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->answers, b->answers);
  }
}

TEST(PQMatchTest, RejectsPatternWiderThanD) {
  Graph g = SocialGraph();
  DParConfig dc;
  dc.num_fragments = 2;
  dc.d = 1;
  auto part = DPar(g, dc);
  ASSERT_TRUE(part.ok());
  // A 2-hop chain pattern has radius 2 > d = 1.
  LabelDict& dict = g.mutable_dict();
  Pattern q;
  PatternNodeId a = q.AddNode(dict.Intern("person"), "a");
  PatternNodeId b = q.AddNode(dict.Intern("person"), "b");
  PatternNodeId c = q.AddNode(dict.Intern("person"), "c");
  (void)q.AddEdge(a, b, dict.Intern("follow"));
  (void)q.AddEdge(b, c, dict.Intern("follow"));
  (void)q.set_focus(a);
  ParallelConfig cfg;
  auto res = PQMatch::Evaluate(q, *part, cfg);
  EXPECT_FALSE(res.ok());
  // DParExtend repairs it.
  auto wider = DParExtend(g, *part, 2);
  ASSERT_TRUE(wider.ok());
  auto res2 = PQMatch::Evaluate(q, *wider, cfg);
  EXPECT_TRUE(res2.ok());
}

TEST(PQMatchTest, TimingFieldsPopulated) {
  Graph g = SocialGraph();
  DParConfig dc;
  dc.num_fragments = 4;
  dc.d = 2;
  auto part = DPar(g, dc);
  ASSERT_TRUE(part.ok());
  PatternGenConfig pc;
  pc.num_nodes = 3;
  pc.num_edges = 3;
  pc.num_quantified = 1;
  pc.num_negated = 0;
  auto patterns = GeneratePatternSuite(g, 1, pc, 41);
  ASSERT_FALSE(patterns.empty());
  ParallelConfig cfg;
  auto res = PQMatch::Evaluate(patterns[0], *part, cfg);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->fragment_seconds.size(), 4u);
  EXPECT_GE(res->parallel_seconds, 0.0);
  EXPECT_GE(res->total_work_seconds,
            *std::max_element(res->fragment_seconds.begin(),
                              res->fragment_seconds.end()));
}

TEST(PEnumTest, EquivalentToQMatchAndPQMatch) {
  Graph g = SocialGraph();
  DParConfig dc;
  dc.num_fragments = 3;
  dc.d = 2;
  auto part = DPar(g, dc);
  ASSERT_TRUE(part.ok());
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.percent = 40.0;
  pc.num_negated = 1;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 3, pc, 53);
  ASSERT_FALSE(patterns.empty());
  ParallelConfig cfg;
  size_t usable = 0;
  for (const Pattern& q : patterns) {
    if (q.Radius() > dc.d) continue;
    ++usable;
    auto sequential = QMatch::Evaluate(q, g);
    auto penum = PEnum::Evaluate(q, *part, cfg);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(penum.ok()) << penum.status().ToString();
    EXPECT_EQ(penum->answers, sequential.value());
  }
  EXPECT_GT(usable, 0u);
}

TEST(WorkerSetTest, SimulatedMakespanIsMaxWorkerTime) {
  WorkerSet workers(3, ExecutionMode::kSimulated);
  auto report = workers.Run([](size_t) { /* trivial */ });
  EXPECT_EQ(report.worker_seconds.size(), 3u);
  double max_time = *std::max_element(report.worker_seconds.begin(),
                                      report.worker_seconds.end());
  EXPECT_DOUBLE_EQ(report.makespan_seconds, max_time);
}

TEST(WorkerSetTest, ThreadModeRunsAllWorkers) {
  WorkerSet workers(4, ExecutionMode::kThreads);
  std::vector<std::atomic<int>> hits(4);
  auto report = workers.Run([&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(report.wall_seconds, 0.0);
}

}  // namespace
}  // namespace qgp
