// PEnum (§7) correctness: the parallel enumerate-then-verify baseline
// must return exactly the sequential EnumMatcher / QMatch answers over
// any d-hop preserving partition (Lemma 9 applies to it unchanged).
#include "parallel/penum.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/enum_matcher.h"
#include "core/qmatch.h"
#include "gen/pattern_gen.h"
#include "gen/social_gen.h"
#include "parallel/dpar.h"
#include "testing/paper_graphs.h"

namespace qgp {
namespace {

using qgp::testing::BuildG1;
using qgp::testing::BuildG2;
using qgp::testing::BuildQ3;
using qgp::testing::BuildQ4;
using qgp::testing::G1Ids;
using qgp::testing::G2Ids;

Partition MustPartition(const Graph& g, size_t fragments, int d) {
  DParConfig dc;
  dc.num_fragments = fragments;
  dc.d = d;
  auto part = DPar(g, dc);
  EXPECT_TRUE(part.ok()) << part.status().ToString();
  EXPECT_TRUE(part->Validate(g).ok());
  return std::move(part).value();
}

TEST(PEnumTest, Q3OnPartitionedG1MatchesExample7) {
  G1Ids ids;
  Graph g = BuildG1(&ids);
  Pattern q3 = BuildQ3(g.mutable_dict(), /*p=*/2);
  Partition part = MustPartition(g, 2, 2);
  ParallelConfig cfg;
  auto res = PEnum::Evaluate(q3, part, cfg);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->answers, (AnswerSet{ids.x2}));
}

TEST(PEnumTest, Q4OnPartitionedG2MatchesExample4) {
  G2Ids ids;
  Graph g = BuildG2(&ids);
  Pattern q4 = BuildQ4(g.mutable_dict(), /*p=*/2);
  Partition part = MustPartition(g, 3, q4.Radius());
  ParallelConfig cfg;
  auto res = PEnum::Evaluate(q4, part, cfg);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->answers, (AnswerSet{ids.x5, ids.x6}));
}

TEST(PEnumTest, MatchesSequentialEnumOnGeneratedWorkload) {
  SocialConfig sc;
  sc.num_users = 500;
  sc.community_size = 100;
  Graph g = std::move(GenerateSocialGraph(sc)).value();
  Partition part = MustPartition(g, 4, 2);
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.percent = 40.0;
  pc.num_negated = 1;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 4, pc, 71);
  ASSERT_FALSE(patterns.empty());
  ParallelConfig cfg;
  size_t usable = 0;
  for (const Pattern& q : patterns) {
    if (q.Radius() > 2) continue;
    ++usable;
    auto sequential = EnumMatcher::Evaluate(q, g);
    auto qmatch = QMatch::Evaluate(q, g);
    auto penum = PEnum::Evaluate(q, part, cfg);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    ASSERT_TRUE(qmatch.ok());
    ASSERT_TRUE(penum.ok()) << penum.status().ToString();
    EXPECT_EQ(penum->answers, *sequential);
    EXPECT_EQ(penum->answers, *qmatch);
  }
  EXPECT_GT(usable, 0u);
}

TEST(PEnumTest, ThreadAndSimulatedModesAgree) {
  SocialConfig sc;
  sc.num_users = 400;
  sc.community_size = 80;
  Graph g = std::move(GenerateSocialGraph(sc)).value();
  Partition part = MustPartition(g, 3, 2);
  PatternGenConfig pc;
  pc.num_nodes = 4;
  pc.num_edges = 4;
  pc.num_quantified = 1;
  pc.num_negated = 0;
  std::vector<Pattern> patterns = GeneratePatternSuite(g, 2, pc, 83);
  ASSERT_FALSE(patterns.empty());
  size_t usable = 0;
  for (const Pattern& q : patterns) {
    if (q.Radius() > 2) continue;
    ++usable;
    ParallelConfig sim;
    sim.mode = ExecutionMode::kSimulated;
    ParallelConfig thr;
    thr.mode = ExecutionMode::kThreads;
    auto a = PEnum::Evaluate(q, part, sim);
    auto b = PEnum::Evaluate(q, part, thr);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->answers, b->answers);
  }
  EXPECT_GT(usable, 0u);
}

TEST(PEnumTest, RejectsPatternWiderThanD) {
  G1Ids ids;
  Graph g = BuildG1(&ids);
  Partition part = MustPartition(g, 2, 1);
  // Q3 has radius 2 (xo -> z1 -> r) > d = 1.
  Pattern q3 = BuildQ3(g.mutable_dict(), 2);
  ASSERT_GT(q3.Radius(), 1);
  ParallelConfig cfg;
  EXPECT_FALSE(PEnum::Evaluate(q3, part, cfg).ok());
}

TEST(PEnumTest, ReportsTimingDecomposition) {
  G2Ids ids;
  Graph g = BuildG2(&ids);
  Pattern q4 = BuildQ4(g.mutable_dict(), 2);
  Partition part = MustPartition(g, 3, q4.Radius());
  ParallelConfig cfg;
  auto res = PEnum::Evaluate(q4, part, cfg);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->fragment_seconds.size(), 3u);
  double max_fragment = *std::max_element(res->fragment_seconds.begin(),
                                          res->fragment_seconds.end());
  EXPECT_GE(res->parallel_seconds, 0.0);
  EXPECT_GE(res->total_work_seconds, max_fragment);
}

}  // namespace
}  // namespace qgp
