#include "parallel/dpar.h"

#include <gtest/gtest.h>

#include "gen/social_gen.h"
#include "gen/synthetic_gen.h"

namespace qgp {
namespace {

Graph SmallWorld(size_t n, size_t m, uint64_t seed = 5) {
  SyntheticConfig c;
  c.num_vertices = n;
  c.num_edges = m;
  c.seed = seed;
  return std::move(GenerateSynthetic(c)).value();
}

TEST(DParTest, ValidatesOnSmallWorld) {
  Graph g = SmallWorld(300, 900);
  DParConfig c;
  c.num_fragments = 4;
  c.d = 2;
  auto part = DPar(g, c);
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  EXPECT_EQ(part->fragments.size(), 4u);
  EXPECT_EQ(part->d, 2);
  // The two §5.2 invariants: unique covering ownership + d-hop balls.
  EXPECT_TRUE(part->Validate(g).ok());
}

TEST(DParTest, ValidatesOnSocialGraph) {
  SocialConfig sc;
  sc.num_users = 600;
  sc.community_size = 150;
  Graph g = std::move(GenerateSocialGraph(sc)).value();
  DParConfig c;
  c.num_fragments = 3;
  c.d = 1;
  auto part = DPar(g, c);
  ASSERT_TRUE(part.ok());
  EXPECT_TRUE(part->Validate(g).ok());
}

TEST(DParTest, DZeroIsBasePartition) {
  Graph g = SmallWorld(200, 600);
  DParConfig c;
  c.num_fragments = 4;
  c.d = 0;
  auto part = DPar(g, c);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_border_nodes, 0u);
  EXPECT_TRUE(part->Validate(g).ok());
  size_t total_owned = 0;
  for (const Fragment& f : part->fragments) {
    total_owned += f.owned_global.size();
    EXPECT_EQ(f.owned_global.size(), f.sub.graph.num_vertices());
  }
  EXPECT_EQ(total_owned, g.num_vertices());
}

TEST(DParTest, OwnershipIsExactPartition) {
  Graph g = SmallWorld(400, 1200);
  DParConfig c;
  c.num_fragments = 5;
  c.d = 2;
  auto part = DPar(g, c);
  ASSERT_TRUE(part.ok());
  size_t total = 0;
  for (const Fragment& f : part->fragments) total += f.owned_global.size();
  EXPECT_EQ(total, g.num_vertices());
}

TEST(DParTest, LocalIdsMatchGlobalIds) {
  Graph g = SmallWorld(200, 500);
  DParConfig c;
  c.num_fragments = 3;
  c.d = 1;
  auto part = DPar(g, c);
  ASSERT_TRUE(part.ok());
  for (const Fragment& f : part->fragments) {
    ASSERT_EQ(f.owned_local.size(), f.owned_global.size());
    for (size_t i = 0; i < f.owned_local.size(); ++i) {
      EXPECT_EQ(f.sub.local_to_global[f.owned_local[i]], f.owned_global[i]);
    }
  }
}

TEST(DParTest, SkewAndReplicationAreSane) {
  Graph g = SmallWorld(1000, 3000);
  DParConfig c;
  c.num_fragments = 4;
  c.d = 1;
  auto part = DPar(g, c);
  ASSERT_TRUE(part.ok());
  EXPECT_GT(part->Skew(), 0.3);
  EXPECT_GE(part->ReplicationFactor(g), 1.0);
}

TEST(DParTest, ExtendIncreasesD) {
  Graph g = SmallWorld(300, 900);
  DParConfig c;
  c.num_fragments = 4;
  c.d = 1;
  auto part = DPar(g, c);
  ASSERT_TRUE(part.ok());
  auto wider = DParExtend(g, *part, 2);
  ASSERT_TRUE(wider.ok()) << wider.status().ToString();
  EXPECT_EQ(wider->d, 2);
  EXPECT_TRUE(wider->Validate(g).ok());
  // Same base regions.
  EXPECT_EQ(wider->base_region, part->base_region);
}

TEST(DParTest, ExtendRejectsSmallerD) {
  Graph g = SmallWorld(100, 300);
  DParConfig c;
  c.num_fragments = 2;
  c.d = 2;
  auto part = DPar(g, c);
  ASSERT_TRUE(part.ok());
  EXPECT_FALSE(DParExtend(g, *part, 2).ok());
  EXPECT_FALSE(DParExtend(g, *part, 1).ok());
}

TEST(DParTest, RejectsBadConfig) {
  Graph g = SmallWorld(50, 100);
  DParConfig c;
  c.num_fragments = 0;
  EXPECT_FALSE(DPar(g, c).ok());
  c.num_fragments = 2;
  c.d = -1;
  EXPECT_FALSE(DPar(g, c).ok());
  c.d = 1;
  c.balance_factor = 0.5;
  EXPECT_FALSE(DPar(g, c).ok());
}

}  // namespace
}  // namespace qgp
